#ifndef OCDD_DATAGEN_LINEITEM_H_
#define OCDD_DATAGEN_LINEITEM_H_

#include <cstddef>
#include <cstdint>

#include "relation/relation.h"

namespace ocdd::datagen {

/// A TPC-H-flavoured LINEITEM generator: 16 columns with the shape the
/// paper's LINEITEM dataset exercises — a monotone order key, order-grouped
/// line numbers, price/quantity correlations, low-cardinality flags, and
/// three chronologically-linked date columns (ship ≤ receipt, commit near
/// ship). Dates are `yyyy-mm-dd` strings so lexicographic order equals
/// chronological order. Deterministic in (rows, seed).
rel::Relation MakeLineitem(std::size_t rows, std::uint64_t seed = 42);

}  // namespace ocdd::datagen

#endif  // OCDD_DATAGEN_LINEITEM_H_
