#include "datagen/registry.h"

#include <cstdlib>

#include "common/string_util.h"
#include "datagen/fixtures.h"
#include "datagen/generators.h"
#include "datagen/lineitem.h"

namespace ocdd::datagen {

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>& specs = *new std::vector<DatasetSpec>{
      {"DBTESMA", 250000, 20000, 30, false},
      {"DBTESMA_1K", 1000, 1000, 30, false},
      {"FLIGHT_1K", 1000, 1000, 109, false},
      {"HEPATITIS", 155, 155, 20, false},
      {"HORSE", 300, 300, 29, false},
      {"LATTICE", 100000, 20000, 8, false},
      {"LETTER", 20000, 5000, 17, false},
      {"LINEITEM", 6001215, 50000, 16, false},
      {"NCVOTER_1K", 1000, 1000, 19, false},
      {"NO", 5, 5, 2, true},
      {"NUMBERS", 6, 6, 5, true},
      {"YES", 5, 5, 2, true},
  };
  return specs;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  std::string upper;
  for (char c : name) {
    upper.push_back(c >= 'a' && c <= 'z' ? static_cast<char>(c - 32) : c);
  }
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.name == upper) return spec;
  }
  return Status::NotFound("unknown dataset: " + name);
}

Result<rel::Relation> MakeDataset(const std::string& name, std::size_t rows,
                                  std::uint64_t seed) {
  OCDD_ASSIGN_OR_RETURN(DatasetSpec spec, FindDataset(name));
  std::size_t n = rows == 0 ? spec.default_rows : rows;
  if (spec.name == "DBTESMA" || spec.name == "DBTESMA_1K") {
    return MakeDbtesma(n, seed);
  }
  if (spec.name == "FLIGHT_1K") return MakeFlight(n, seed);
  if (spec.name == "HEPATITIS") return MakeHepatitis(n, seed);
  if (spec.name == "HORSE") return MakeHorse(n, seed);
  if (spec.name == "LATTICE") return MakeLattice(n, seed);
  if (spec.name == "LETTER") return MakeLetter(n, seed);
  if (spec.name == "LINEITEM") return MakeLineitem(n, seed);
  if (spec.name == "NCVOTER_1K") return MakeNcvoter(n, seed);
  if (spec.name == "NO") return MakeNo();
  if (spec.name == "NUMBERS") return MakeNumbers();
  if (spec.name == "YES") return MakeYes();
  return Status::Internal("unhandled dataset: " + spec.name);
}

bool FullScaleRequested() {
  const char* scale = std::getenv("OCDD_SCALE");
  return scale != nullptr && AsciiToLower(scale) == "full";
}

}  // namespace ocdd::datagen
