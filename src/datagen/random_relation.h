#ifndef OCDD_DATAGEN_RANDOM_RELATION_H_
#define OCDD_DATAGEN_RANDOM_RELATION_H_

#include <cstddef>
#include <string>

#include "common/rng.h"
#include "relation/relation.h"

namespace ocdd::datagen {

/// Shape envelope for a random QA relation. The generator samples the
/// concrete shape (and per-column structure) from `rng`, sweeping the
/// corners where OD discovery implementations historically diverge:
/// heavy ties, constant columns, NULL blocks, duplicated rows, near-sorted
/// data, order-equivalent column copies, coarsened (OD-inducing) copies,
/// and both high- and low-cardinality domains.
struct RandomRelationSpec {
  std::size_t min_rows = 4;
  std::size_t max_rows = 24;
  std::size_t min_cols = 2;
  std::size_t max_cols = 5;

  /// Probability that any given column receives NULLs (NULL rate is then
  /// sampled per column).
  double null_column_prob = 0.35;

  /// Probability that the whole relation gets a round of row duplication.
  double duplicate_rows_prob = 0.35;
};

/// Draws one relation from the spec. Deterministic in the state of `rng`:
/// the same Rng seed and call sequence always produce the same relation.
/// All columns are kInt with names "A", "B", "C", ...
rel::Relation MakeRandomRelation(Rng& rng, const RandomRelationSpec& spec = {});

}  // namespace ocdd::datagen

#endif  // OCDD_DATAGEN_RANDOM_RELATION_H_
