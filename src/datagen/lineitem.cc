#include "datagen/lineitem.h"

#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ocdd::datagen {

namespace {

using rel::Attribute;
using rel::DataType;
using rel::Relation;
using rel::Schema;
using rel::Value;

/// Renders day-number `d` (days since 1992-01-01) as "yyyy-mm-dd" with a
/// simplified 365-day calendar — monotone in `d`, which is all the ordering
/// semantics need.
std::string DayToDate(std::int64_t d) {
  static constexpr int kDaysPerMonth[12] = {31, 28, 31, 30, 31, 30,
                                            31, 31, 30, 31, 30, 31};
  std::int64_t year = 1992 + d / 365;
  std::int64_t doy = d % 365;
  int month = 0;
  while (doy >= kDaysPerMonth[month]) {
    doy -= kDaysPerMonth[month];
    ++month;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02d-%02lld",
                static_cast<long long>(year), month + 1,
                static_cast<long long>(doy + 1));
  return buf;
}

const char* const kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD",
                                     "NONE", "TAKE BACK RETURN"};
const char* const kShipMode[] = {"AIR", "FOB", "MAIL", "RAIL",
                                 "REG AIR", "SHIP", "TRUCK"};
const char* const kCommentWords[] = {"carefully", "quickly", "furiously",
                                     "packages", "deposits", "accounts",
                                     "requests", "ideas", "pending", "bold"};

}  // namespace

Relation MakeLineitem(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Attribute> attrs = {
      {"l_orderkey", DataType::kInt},
      {"l_partkey", DataType::kInt},
      {"l_suppkey", DataType::kInt},
      {"l_linenumber", DataType::kInt},
      {"l_quantity", DataType::kInt},
      {"l_extendedprice", DataType::kDouble},
      {"l_discount", DataType::kDouble},
      {"l_tax", DataType::kDouble},
      {"l_returnflag", DataType::kString},
      {"l_linestatus", DataType::kString},
      {"l_shipdate", DataType::kString},
      {"l_commitdate", DataType::kString},
      {"l_receiptdate", DataType::kString},
      {"l_shipinstruct", DataType::kString},
      {"l_shipmode", DataType::kString},
      {"l_comment", DataType::kString},
  };
  Relation::Builder b{Schema(std::move(attrs))};

  std::int64_t orderkey = 0;
  std::int64_t lines_left = 0;
  std::int64_t linenumber = 0;
  std::int64_t order_day = 0;
  std::size_t num_parts = rows / 5 + 20;

  for (std::size_t i = 0; i < rows; ++i) {
    if (lines_left == 0) {
      orderkey += 1 + static_cast<std::int64_t>(rng.Uniform(4));
      lines_left = 1 + static_cast<std::int64_t>(rng.Uniform(7));
      linenumber = 0;
      // Orders are appended roughly chronologically; days drift forward.
      order_day = static_cast<std::int64_t>(
          (2400.0 * static_cast<double>(i)) / static_cast<double>(rows) +
          rng.Uniform(60));
    }
    --lines_left;
    ++linenumber;

    std::int64_t partkey =
        1 + static_cast<std::int64_t>(rng.Uniform(num_parts));
    std::int64_t suppkey = 1 + (partkey * 7 + 3) % 100;
    std::int64_t quantity = 1 + static_cast<std::int64_t>(rng.Uniform(50));
    // TPC-H price formula: retail price depends on the part alone; the
    // extended price scales it by quantity, correlating the two.
    double retail = 900.0 + static_cast<double>((partkey * 97) % 1000) / 10.0;
    double extended = retail * static_cast<double>(quantity);
    double discount = static_cast<double>(rng.Uniform(11)) / 100.0;
    double tax = static_cast<double>(rng.Uniform(9)) / 100.0;

    std::int64_t ship_day =
        order_day + 1 + static_cast<std::int64_t>(rng.Uniform(120));
    std::int64_t commit_day =
        order_day + 30 + static_cast<std::int64_t>(rng.Uniform(60));
    std::int64_t receipt_day =
        ship_day + 1 + static_cast<std::int64_t>(rng.Uniform(30));

    // TPC-H semantics: lines shipped after the "current date" horizon are
    // still open ('O'/'N'); older ones are finished and possibly returned.
    constexpr std::int64_t kCurrentDay = 1900;
    const char* linestatus = ship_day > kCurrentDay ? "O" : "F";
    const char* returnflag =
        receipt_day > kCurrentDay ? "N" : (rng.Bernoulli(0.5) ? "A" : "R");

    std::string comment;
    int words = 2 + static_cast<int>(rng.Uniform(3));
    for (int w = 0; w < words; ++w) {
      if (w > 0) comment += ' ';
      comment += kCommentWords[rng.Uniform(10)];
    }

    auto s = b.AddRow({
        Value::Int(orderkey),
        Value::Int(partkey),
        Value::Int(suppkey),
        Value::Int(linenumber),
        Value::Int(quantity),
        Value::Double(extended),
        Value::Double(discount),
        Value::Double(tax),
        Value::String(returnflag),
        Value::String(linestatus),
        Value::String(DayToDate(ship_day)),
        Value::String(DayToDate(commit_day)),
        Value::String(DayToDate(receipt_day)),
        Value::String(kShipInstruct[rng.Uniform(4)]),
        Value::String(kShipMode[rng.Uniform(7)]),
        Value::String(comment),
    });
    assert(s.ok());
    (void)s;
  }
  return std::move(b).Build();
}

}  // namespace ocdd::datagen
