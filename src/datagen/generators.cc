#include "datagen/generators.h"

#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ocdd::datagen {

namespace {

using rel::Attribute;
using rel::DataType;
using rel::Relation;
using rel::Schema;
using rel::Value;

const char* const kFirstNames[] = {"James", "Mary", "Robert", "Patricia",
                                   "John", "Jennifer", "Michael", "Linda",
                                   "David", "Elizabeth", "William", "Barbara",
                                   "Richard", "Susan", "Joseph", "Jessica"};
const char* const kLastNames[] = {"Smith", "Johnson", "Williams", "Brown",
                                  "Jones", "Garcia", "Miller", "Davis",
                                  "Rodriguez", "Martinez", "Hernandez",
                                  "Lopez", "Gonzalez", "Wilson", "Anderson",
                                  "Thomas", "Taylor", "Moore", "Jackson",
                                  "Martin"};
const char* const kCities[] = {"Raleigh", "Durham", "Charlotte", "Greensboro",
                               "Asheville", "Wilmington", "Fayetteville",
                               "Cary", "Winston", "Concord", "Gastonia",
                               "Jacksonville", "Chapel Hill", "Huntersville",
                               "Apex", "Burlington", "Kannapolis", "Wilson",
                               "Hickory", "Goldsboro"};

std::string FourDigitDate(std::int64_t days_since_2000) {
  static constexpr int kDaysPerMonth[12] = {31, 28, 31, 30, 31, 30,
                                            31, 31, 30, 31, 30, 31};
  std::int64_t year = 2000 + days_since_2000 / 365;
  std::int64_t doy = days_since_2000 % 365;
  int month = 0;
  while (doy >= kDaysPerMonth[month]) {
    doy -= kDaysPerMonth[month];
    ++month;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02d-%02lld",
                static_cast<long long>(year), month + 1,
                static_cast<long long>(doy + 1));
  return buf;
}

void MustAdd(Relation::Builder& b, const std::vector<Value>& row) {
  auto s = b.AddRow(row);
  assert(s.ok());
  (void)s;
}

}  // namespace

Relation MakeLetter(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Attribute> attrs;
  attrs.push_back({"lettr", DataType::kString});
  const char* const feature_names[16] = {
      "x_box", "y_box", "width", "high", "onpix", "x_bar", "y_bar", "x2bar",
      "y2bar", "xybar", "x2ybr", "xy2br", "x_ege", "xegvy", "y_ege", "yegvx"};
  for (const char* name : feature_names) {
    attrs.push_back({name, DataType::kInt});
  }
  Relation::Builder b{Schema(std::move(attrs))};

  for (std::size_t i = 0; i < rows; ++i) {
    char letter = static_cast<char>('A' + rng.Uniform(26));
    // A latent "ink amount" couples the geometric features loosely, like the
    // real letter-recognition data: correlated but far from order-exact.
    std::int64_t latent = static_cast<std::int64_t>(rng.Uniform(8));
    std::vector<Value> row;
    row.reserve(17);
    row.push_back(Value::String(std::string(1, letter)));
    for (int f = 0; f < 16; ++f) {
      std::int64_t v = latent / 2 + static_cast<std::int64_t>(rng.Uniform(9));
      if (v > 15) v = 15;
      row.push_back(Value::Int(v));
    }
    MustAdd(b, row);
  }
  return std::move(b).Build();
}

Relation MakeDbtesma(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Attribute> attrs;
  // 30 columns: key, 3-level hierarchy ×2, ordered families, codes, noise.
  const char* names[30] = {
      "key",      "batch",    "region",   "zone",      "grp",
      "grp_code", "seq",      "seq_sq",   "seq_label", "price",
      "price_r",  "discount", "cat1",     "cat2",      "cat3",
      "cat4",     "flag1",    "flag2",    "flag3",     "noise1",
      "noise2",   "noise3",   "noise4",   "noise5",    "rank1",
      "rank2",    "mirror1",  "mirror2",  "const1",    "const2"};
  std::vector<DataType> types(30, DataType::kInt);
  types[8] = DataType::kString;   // seq_label
  types[9] = DataType::kDouble;   // price
  types[10] = DataType::kDouble;  // price_r
  for (int c = 0; c < 30; ++c) attrs.push_back({names[c], types[c]});
  Relation::Builder b{Schema(std::move(attrs))};

  for (std::size_t i = 0; i < rows; ++i) {
    std::int64_t key = static_cast<std::int64_t>(i) + 1;
    std::int64_t batch = key / 10;         // key → batch, monotone
    std::int64_t region = batch / 10;      // batch → region, monotone
    std::int64_t zone = region / 5;        // region → zone, monotone
    std::int64_t grp = static_cast<std::int64_t>(rng.Uniform(50));
    std::int64_t grp_code = grp * 3 + 7;   // grp ↔ grp_code (order equiv.)
    std::int64_t seq = static_cast<std::int64_t>(rng.Uniform(1000));
    std::int64_t seq_sq = seq * seq;       // seq ↔ seq_sq (order equiv.)
    char lbl[32];
    std::snprintf(lbl, sizeof(lbl), "S%06lld", static_cast<long long>(seq));
    double price = static_cast<double>(rng.Uniform(100000)) / 100.0;
    double price_r = price + 0.005;        // price ↔ price_r
    std::int64_t discount = static_cast<std::int64_t>(rng.Uniform(5));
    std::int64_t cat1 = static_cast<std::int64_t>(rng.Uniform(8));
    std::int64_t cat2 = cat1 / 2;          // cat1 → cat2, monotone
    std::int64_t cat3 = static_cast<std::int64_t>(rng.Uniform(12));
    std::int64_t cat4 = static_cast<std::int64_t>(rng.Uniform(4));
    std::int64_t flag1 = rng.Bernoulli(0.5) ? 1 : 0;
    std::int64_t flag2 = rng.Bernoulli(0.2) ? 1 : 0;
    std::int64_t flag3 = rng.Bernoulli(0.05) ? 1 : 0;  // quasi-constant
    std::vector<Value> row = {
        Value::Int(key),      Value::Int(batch),    Value::Int(region),
        Value::Int(zone),     Value::Int(grp),      Value::Int(grp_code),
        Value::Int(seq),      Value::Int(seq_sq),   Value::String(lbl),
        Value::Double(price), Value::Double(price_r), Value::Int(discount),
        Value::Int(cat1),     Value::Int(cat2),     Value::Int(cat3),
        Value::Int(cat4),     Value::Int(flag1),    Value::Int(flag2),
        Value::Int(flag3),
    };
    for (int nz = 0; nz < 5; ++nz) {
      row.push_back(Value::Int(static_cast<std::int64_t>(rng.Uniform(100))));
    }
    std::int64_t rank1 = static_cast<std::int64_t>(rng.Uniform(20));
    row.push_back(Value::Int(rank1));
    row.push_back(Value::Int(rank1 / 4));  // rank1 → rank2, monotone
    std::int64_t mirror = static_cast<std::int64_t>(rng.Uniform(30));
    row.push_back(Value::Int(mirror));
    row.push_back(Value::Int(mirror * 2 + 1));  // mirror1 ↔ mirror2
    row.push_back(Value::Int(7));               // const1
    row.push_back(Value::Int(1));               // const2
    MustAdd(b, row);
  }
  return std::move(b).Build();
}

Relation MakeNcvoter(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Attribute> attrs = {
      {"voter_id", DataType::kInt},      {"last_name", DataType::kString},
      {"first_name", DataType::kString}, {"midl_name", DataType::kString},
      {"city", DataType::kString},       {"zip_code", DataType::kInt},
      {"county_id", DataType::kInt},     {"precinct", DataType::kInt},
      {"age", DataType::kInt},           {"birth_year", DataType::kInt},
      {"party", DataType::kString},      {"gender", DataType::kString},
      {"race", DataType::kString},       {"ethnic", DataType::kString},
      {"status", DataType::kString},     {"reason", DataType::kString},
      {"registr_dt", DataType::kString}, {"district", DataType::kInt},
      {"ward", DataType::kInt},
  };
  Relation::Builder b{Schema(std::move(attrs))};

  const char* parties[3] = {"DEM", "REP", "UNA"};
  const char* races[5] = {"W", "B", "A", "I", "O"};
  for (std::size_t i = 0; i < rows; ++i) {
    std::int64_t voter_id = 100000 + static_cast<std::int64_t>(i);
    std::size_t city_idx = rng.Zipf(20, 1.0);
    // Three zips per city; zip determines city, county, precinct, district.
    std::int64_t zip =
        27000 + static_cast<std::int64_t>(city_idx) * 3 +
        static_cast<std::int64_t>(rng.Uniform(3));
    std::int64_t county = static_cast<std::int64_t>(city_idx) / 2;
    std::int64_t precinct = zip % 40;
    std::int64_t age = 18 + static_cast<std::int64_t>(rng.Uniform(80));
    std::int64_t birth_year = 2008 - age;  // inversely ordered vs age
    bool active = rng.Bernoulli(0.9);
    std::int64_t reg_days = static_cast<std::int64_t>(rng.Uniform(3000));
    std::vector<Value> row = {
        Value::Int(voter_id),
        Value::String(kLastNames[rng.Uniform(20)]),
        Value::String(kFirstNames[rng.Uniform(16)]),
        rng.Bernoulli(0.3) ? Value::Null()
                           : Value::String(std::string(
                                 1, static_cast<char>('A' + rng.Uniform(26)))),
        Value::String(kCities[city_idx]),
        Value::Int(zip),
        Value::Int(county),
        Value::Int(precinct),
        Value::Int(age),
        Value::Int(birth_year),
        Value::String(parties[rng.Uniform(3)]),
        Value::String(rng.Bernoulli(0.52) ? "F" : "M"),
        Value::String(races[rng.Zipf(5, 1.2)]),
        Value::String(rng.Bernoulli(0.08) ? "HL" : "NL"),
        Value::String(active ? "ACTIVE" : "INACTIVE"),
        active ? Value::String("VERIFIED") : Value::String("REMOVED"),
        Value::String(FourDigitDate(reg_days)),
        Value::Int(zip % 13),
        Value::Int(precinct % 5),
    };
    MustAdd(b, row);
  }
  return std::move(b).Build();
}

Relation MakeHepatitis(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Attribute> attrs = {
      {"class", DataType::kInt},        {"age", DataType::kInt},
      {"sex", DataType::kInt},          {"steroid", DataType::kInt},
      {"antivirals", DataType::kInt},   {"fatigue", DataType::kInt},
      {"malaise", DataType::kInt},      {"anorexia", DataType::kInt},
      {"liver_big", DataType::kInt},    {"liver_firm", DataType::kInt},
      {"spleen", DataType::kInt},       {"spiders", DataType::kInt},
      {"ascites", DataType::kInt},      {"varices", DataType::kInt},
      {"bilirubin", DataType::kDouble}, {"alk_phosphate", DataType::kInt},
      {"sgot", DataType::kInt},         {"albumin", DataType::kDouble},
      {"protime", DataType::kInt},      {"histology", DataType::kInt},
  };
  Relation::Builder b{Schema(std::move(attrs))};

  for (std::size_t i = 0; i < rows; ++i) {
    bool dies = rng.Bernoulli(0.2);
    auto binary = [&](double p_yes, double p_null) {
      if (rng.Bernoulli(p_null)) return Value::Null();
      return Value::Int(rng.Bernoulli(p_yes) ? 2 : 1);
    };
    double bili = 0.3 + static_cast<double>(rng.Uniform(70)) / 10.0;
    std::int64_t age = 7 + static_cast<std::int64_t>(rng.Uniform(72));
    std::vector<Value> row = {
        Value::Int(dies ? 1 : 2),
        Value::Int(age),
        binary(0.1, 0.0),   // sex, skewed
        binary(0.5, 0.01),  // steroid
        binary(0.15, 0.0),  // antivirals, quasi-constant
        binary(0.6, 0.01),
        binary(0.4, 0.01),
        binary(0.2, 0.01),
        binary(0.8, 0.06),
        binary(0.4, 0.07),
        binary(0.2, 0.03),
        binary(0.3, 0.03),
        binary(0.1, 0.03),  // ascites, quasi-constant
        binary(0.1, 0.03),  // varices, quasi-constant
        Value::Double(bili),
        rng.Bernoulli(0.18) ? Value::Null()
                            : Value::Int(30 + static_cast<std::int64_t>(
                                                  rng.Uniform(250))),
        rng.Bernoulli(0.03) ? Value::Null()
                            : Value::Int(10 + static_cast<std::int64_t>(
                                                  rng.Uniform(600))),
        rng.Bernoulli(0.1)
            ? Value::Null()
            : Value::Double(2.0 + static_cast<double>(rng.Uniform(45)) / 10.0),
        rng.Bernoulli(0.43) ? Value::Null()
                            : Value::Int(static_cast<std::int64_t>(
                                  rng.Uniform(100))),
        // Histology follows age deterministically and monotonically: the
        // one clean OD (`age → histology`) the tiny dataset always carries.
        Value::Int(age < 40 ? 1 : 2),
    };
    MustAdd(b, row);
  }
  return std::move(b).Build();
}

Relation MakeHorse(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Attribute> attrs;
  // 29 columns mirroring the UCI horse-colic schema's shape.
  const char* names[29] = {
      "surgery",   "age_cat",    "hospital_id", "rectal_temp", "pulse",
      "resp_rate", "temp_extr",  "periph_pulse", "mucous",     "cap_refill",
      "pain",      "peristalsis", "abd_dist",    "naso_reflux", "reflux_ph",
      "rectal_exam", "abdomen",  "cell_vol",    "protein",     "abdo_appear",
      "abdo_protein", "outcome", "surgical",    "lesion1",     "lesion2",
      "lesion3",   "cp_data",    "pulse_band",  "site_const"};
  std::vector<DataType> types(29, DataType::kInt);
  types[3] = DataType::kDouble;   // rectal_temp
  types[14] = DataType::kDouble;  // reflux_ph
  types[18] = DataType::kDouble;  // protein
  for (int c = 0; c < 29; ++c) attrs.push_back({names[c], types[c]});
  Relation::Builder b{Schema(std::move(attrs))};

  for (std::size_t i = 0; i < rows; ++i) {
    auto cat = [&](std::uint64_t k, double p_null) {
      if (rng.Bernoulli(p_null)) return Value::Null();
      return Value::Int(1 + static_cast<std::int64_t>(rng.Uniform(k)));
    };
    std::int64_t pulse = 30 + static_cast<std::int64_t>(rng.Uniform(150));
    std::int64_t cell_vol = 23 + static_cast<std::int64_t>(rng.Uniform(52));
    std::vector<Value> row = {
        cat(2, 0.0),                        // surgery
        Value::Int(rng.Bernoulli(0.08) ? 9 : 1),  // age: quasi-constant
        Value::Int(500000 + static_cast<std::int64_t>(rng.Uniform(300))),
        rng.Bernoulli(0.2) ? Value::Null()
                           : Value::Double(35.5 + static_cast<double>(
                                                      rng.Uniform(50)) /
                                                      10.0),
        rng.Bernoulli(0.08) ? Value::Null() : Value::Int(pulse),
        cat(50, 0.19),   // resp_rate
        cat(4, 0.19),    // temp_extr
        cat(4, 0.23),    // periph_pulse
        cat(6, 0.16),    // mucous
        cat(3, 0.11),    // cap_refill
        cat(5, 0.18),    // pain
        cat(4, 0.15),    // peristalsis
        cat(4, 0.19),    // abd_dist
        cat(3, 0.35),    // naso_reflux
        rng.Bernoulli(0.82)
            ? Value::Null()
            : Value::Double(1.0 + static_cast<double>(rng.Uniform(65)) / 10.0),
        cat(4, 0.34),    // rectal_exam
        cat(5, 0.39),    // abdomen
        Value::Int(cell_vol),
        Value::Double(3.0 + static_cast<double>(rng.Uniform(60)) / 10.0),
        cat(3, 0.55),    // abdo_appear
        cat(2, 0.66),    // abdo_protein
        cat(3, 0.0),     // outcome
        // The last block mirrors the real colic data's severity flags:
        // thresholds of the packed cell volume. Pairwise order compatible
        // but mutually unordered quasi-constants — the combination that
        // drives the Figure 5 slowdown when they join a column sample.
        Value::Int(cell_vol >= 58 ? 1 : 0),  // surgical: quasi-constant flag
        Value::Int(static_cast<std::int64_t>(rng.Uniform(28)) * 100 +
                   static_cast<std::int64_t>(rng.Uniform(100))),
        Value::Int(cell_vol >= 65 ? 1 : 0),  // lesion2: quasi-constant flag
        Value::Int(0),                       // lesion3: constant in practice
        Value::Int(cell_vol >= 50 ? 1 : 0),  // cp_data: quasi-constant flag
        // A banded copy of cell_vol (which is never NULL): the clean
        // monotone FD that gives HORSE a discoverable OD.
        Value::Int(cell_vol / 20),
        Value::Int(3),           // constant column
    };
    MustAdd(b, row);
  }
  return std::move(b).Build();
}

Relation MakeFlight(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Attribute> attrs;
  // Column plan (total 109):
  //  0..9     high-entropy identifiers & exact times (unique-ish)
  //  10..39   medium-entropy route/time/delay columns (some correlated)
  //  40..94   quasi-constant flags and codes (2–4 distinct values)
  //  95..108  constant columns (14)
  for (int c = 0; c < 10; ++c) {
    attrs.push_back({"id" + std::to_string(c),
                     c < 6 ? DataType::kInt : DataType::kString});
  }
  for (int c = 0; c < 30; ++c) {
    attrs.push_back({"mid" + std::to_string(c), DataType::kInt});
  }
  for (int c = 0; c < 55; ++c) {
    attrs.push_back({"flag" + std::to_string(c), DataType::kInt});
  }
  for (int c = 0; c < 14; ++c) {
    attrs.push_back({"const" + std::to_string(c),
                     c % 2 == 0 ? DataType::kInt : DataType::kString});
  }
  Relation::Builder b{Schema(std::move(attrs))};

  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    row.reserve(109);
    // Identifiers: unique, several mutually order-equivalent (same order).
    std::int64_t base = static_cast<std::int64_t>(i);
    row.push_back(Value::Int(base));                  // id0
    row.push_back(Value::Int(base * 7 + 1));          // id1 ↔ id0
    row.push_back(Value::Int(base * 13));             // id2 ↔ id0
    row.push_back(Value::Int(
        static_cast<std::int64_t>(rng.Uniform(1000000))));  // id3 random
    row.push_back(Value::Int(
        static_cast<std::int64_t>(rng.Uniform(1000000))));  // id4 random
    row.push_back(Value::Int(base % 997));            // id5: near-unique
    for (int c = 6; c < 10; ++c) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "T%08lld",
                    static_cast<long long>(base * (c + 1) % 99999989));
      row.push_back(Value::String(buf));
    }
    // Medium band: delays with correlated families.
    std::int64_t dep_delay = static_cast<std::int64_t>(rng.Uniform(180)) - 10;
    std::int64_t arr_delay = dep_delay + static_cast<std::int64_t>(
                                             rng.Uniform(30)) - 15;
    std::int64_t air_time = 30 + static_cast<std::int64_t>(rng.Uniform(360));
    std::int64_t distance = air_time * 8 + static_cast<std::int64_t>(
                                               rng.Uniform(40));
    row.push_back(Value::Int(dep_delay));
    row.push_back(Value::Int(arr_delay));
    row.push_back(Value::Int(air_time));
    row.push_back(Value::Int(distance));
    row.push_back(Value::Int(air_time / 60));  // hours: monotone in air_time
    for (int c = 5; c < 30; ++c) {
      row.push_back(Value::Int(static_cast<std::int64_t>(
          rng.Uniform(20 + static_cast<std::uint64_t>(c) * 10))));
    }
    // Quasi-constant band: 2–4 distinct values, heavily skewed.
    // The first 35 flags are *threshold indicators of the departure delay*
    // (e.g. delayed>15, delayed>30, cancelled, diverted, ...). Flags derived
    // from one latent are pairwise order compatible but do not order each
    // other (splits both ways), so the candidate tree expands over all of
    // them without pruning — the quasi-constant blow-up of §5.3.2/§5.4. The
    // remaining 20 flags are independent noise.
    for (int c = 0; c < 35; ++c) {
      std::int64_t threshold = 130 + c;  // 1-fraction from ~22% down to ~3%
      row.push_back(Value::Int(dep_delay >= threshold ? 1 : 0));
    }
    for (int c = 0; c < 20; ++c) {
      std::uint64_t card = 2 + (static_cast<std::uint64_t>(c) % 3);
      std::int64_t v = rng.Bernoulli(0.92)
                           ? 0
                           : 1 + static_cast<std::int64_t>(
                                     rng.Uniform(card - 1));
      row.push_back(Value::Int(v));
    }
    // Constants.
    for (int c = 0; c < 14; ++c) {
      if (c % 2 == 0) {
        row.push_back(Value::Int(2015));
      } else {
        row.push_back(Value::String("AA"));
      }
    }
    MustAdd(b, row);
  }
  return std::move(b).Build();
}

Relation MakeLattice(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  // Hidden total order: row r has hidden rank perm[r] (Fisher-Yates).
  std::vector<std::uint64_t> perm(rows);
  for (std::size_t r = 0; r < rows; ++r) perm[r] = r;
  for (std::size_t r = rows; r > 1; --r) {
    std::swap(perm[r - 1], perm[rng.Uniform(r)]);
  }
  // Co-prime bucket counts: column c takes value hidden·bucketsᶜ/rows, so
  // each column is a coarse monotone view of the hidden order, but no pair
  // of columns determines each other's buckets.
  static constexpr std::uint64_t kBuckets[8] = {5, 7, 9, 11, 13, 17, 6, 10};
  std::vector<Attribute> attrs;
  for (std::size_t c = 0; c < 8; ++c) {
    attrs.push_back({std::string(1, static_cast<char>('A' + c)),
                     DataType::kInt});
  }
  Relation::Builder b{Schema(std::move(attrs))};
  std::vector<Value> row(8);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      std::uint64_t hidden = c < 6 ? perm[r] : rows - 1 - perm[r];
      row[c] = Value::Int(
          static_cast<std::int64_t>(hidden * kBuckets[c] / rows));
    }
    MustAdd(b, row);
  }
  return std::move(b).Build();
}

}  // namespace ocdd::datagen
