#ifndef OCDD_DATAGEN_FIXTURES_H_
#define OCDD_DATAGEN_FIXTURES_H_

#include "relation/relation.h"

namespace ocdd::datagen {

/// Table 1 of the paper: the TaxInfo relation (name, income, savings,
/// bracket, tax). Carries `income → bracket`, `income ↔ tax`,
/// `income ~ savings`, and the motivating ODs of the introduction.
rel::Relation MakeTaxInfo();

/// The YES dataset (paper Table 5(a) / §5.1): two columns where neither
/// `A → B` nor `B → A` holds, yet `A ~ B` (equivalently `AB ↔ BA`) does.
/// ORDER finds nothing here; OCDDISCOVER finds the OCD — the paper's
/// incompleteness demonstration (§5.2.1).
rel::Relation MakeYes();

/// The NO dataset (paper Table 5(b) / §5.1): two columns with a swap, so
/// no OD/OCD holds in either direction; the single FD `B → A` holds
/// (matching `|Fd| = 1` in Table 6).
rel::Relation MakeNo();

/// The NUMBERS dataset (paper Table 7): a 6-row, 5-column integer table on
/// which the original FASTOD binary reported spurious ODs such as
/// `[B] → [AC]` (§5.2.2). The paper's table print is partially corrupted in
/// the available text; this reconstruction preserves the documented
/// property: `[B] → [AC]` must NOT hold (B has a swap against A), which the
/// regression tests assert against a correct checker.
rel::Relation MakeNumbers();

}  // namespace ocdd::datagen

#endif  // OCDD_DATAGEN_FIXTURES_H_
