#ifndef OCDD_DATAGEN_GENERATORS_H_
#define OCDD_DATAGEN_GENERATORS_H_

#include <cstddef>
#include <cstdint>

#include "relation/relation.h"

namespace ocdd::datagen {

/// Synthetic analogues of the HPI repeatability datasets (paper §5.1). The
/// originals are not redistributable offline; each generator reproduces the
/// column count and the *structural* properties the evaluation depends on
/// (see DESIGN.md §2). All are deterministic in (rows, seed).

/// LETTER analogue: 17 columns — one class label plus 16 small-integer
/// feature columns that are noisy enough that no exact OD survives at
/// scale, but with many minimal FDs from the dense feature space.
rel::Relation MakeLetter(std::size_t rows, std::uint64_t seed = 42);

/// DBTESMA analogue: 30 columns — a unique key, functional hierarchies
/// (key → region → zone), order-correlated column families, and
/// low-cardinality codes. Rich in both FDs and OCDs.
rel::Relation MakeDbtesma(std::size_t rows, std::uint64_t seed = 42);

/// NCVOTER analogue: 19 columns of voter-roll shape — id, names, city/zip
/// with the FD zip → city, ages, party/gender/status codes, registration
/// dates, precinct derived from zip.
rel::Relation MakeNcvoter(std::size_t rows, std::uint64_t seed = 42);

/// HEPATITIS analogue: 20 columns, default 155 rows — mostly binary
/// categorical attributes with '?'-style NULLs plus a few clinical numeric
/// columns. The tiny row count makes accidental dependencies abundant, the
/// property that gives the real HEPATITIS its huge FD count.
rel::Relation MakeHepatitis(std::size_t rows, std::uint64_t seed = 42);

/// HORSE (colic) analogue: 29 columns, default 300 rows — heavy categorical
/// mix with many NULLs, several quasi-constant columns, and a couple of
/// correlated vitals; the dataset whose quasi-constant column drives the
/// Figure 5 blow-up.
rel::Relation MakeHorse(std::size_t rows, std::uint64_t seed = 42);

/// LATTICE: 8 columns engineered to exercise the full OCD candidate
/// lattice — the partition-pipeline benchmark workload, not an analogue of
/// a repeatability dataset. Six columns are coarse monotone bucketings of
/// one hidden row permutation with pairwise co-prime bucket counts: every
/// pair within the family is order compatible, but no column orders
/// another (splits both ways), so no OD prunes and the BFS expands the
/// family's lattice to the last level. The remaining two columns bucket
/// the *reversed* permutation, so every cross-family candidate dies from a
/// swap at level 2.
rel::Relation MakeLattice(std::size_t rows, std::uint64_t seed = 42);

/// FLIGHT analogue: 109 columns, default 1000 rows — a wide schema with a
/// deliberate entropy spectrum: unique identifiers, medium-cardinality
/// route/time columns, a large band of quasi-constant flags (2–4 distinct
/// values), and fully constant columns. Reproduces the Figure 7 cliff when
/// columns are added in decreasing-entropy order.
rel::Relation MakeFlight(std::size_t rows, std::uint64_t seed = 42);

}  // namespace ocdd::datagen

#endif  // OCDD_DATAGEN_GENERATORS_H_
