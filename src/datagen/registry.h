#ifndef OCDD_DATAGEN_REGISTRY_H_
#define OCDD_DATAGEN_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"

namespace ocdd::datagen {

/// Descriptor of one evaluation dataset (paper Table 6).
struct DatasetSpec {
  std::string name;
  /// Row count used in the paper's evaluation.
  std::size_t paper_rows = 0;
  /// Scaled-down default so the full benchmark suite runs in minutes.
  std::size_t default_rows = 0;
  std::size_t num_columns = 0;
  /// Fixture datasets have a fixed instance; `rows` overrides are ignored.
  bool fixed = false;
};

/// All Table-6 datasets, in the paper's (alphabetical) order.
const std::vector<DatasetSpec>& AllDatasets();

/// Finds a spec by (case-insensitive) name.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Materializes a dataset. `rows == 0` picks `default_rows`
/// (or the fixture's intrinsic size). Unknown names yield NotFound.
Result<rel::Relation> MakeDataset(const std::string& name,
                                  std::size_t rows = 0,
                                  std::uint64_t seed = 42);

/// True when the environment requests paper-scale runs
/// (`OCDD_SCALE=full`); benches use this to pick `paper_rows`.
bool FullScaleRequested();

}  // namespace ocdd::datagen

#endif  // OCDD_DATAGEN_REGISTRY_H_
