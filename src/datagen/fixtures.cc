#include "datagen/fixtures.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace ocdd::datagen {

namespace {

using rel::Attribute;
using rel::Column;
using rel::DataType;
using rel::Relation;
using rel::Schema;
using rel::Value;

Relation BuildIntTable(const std::vector<std::string>& names,
                       const std::vector<std::vector<std::int64_t>>& columns) {
  std::vector<Attribute> attrs;
  std::vector<Column> cols;
  for (std::size_t c = 0; c < names.size(); ++c) {
    attrs.push_back(Attribute{names[c], DataType::kInt});
    std::vector<Value> vals;
    vals.reserve(columns[c].size());
    for (std::int64_t v : columns[c]) vals.push_back(Value::Int(v));
    cols.push_back(Column::FromValues(DataType::kInt, vals));
  }
  auto r = Relation::FromColumns(Schema(std::move(attrs)), std::move(cols));
  assert(r.ok());
  return std::move(r).value();
}

}  // namespace

Relation MakeTaxInfo() {
  std::vector<Attribute> attrs = {
      {"name", DataType::kString},   {"income", DataType::kInt},
      {"savings", DataType::kInt},   {"bracket", DataType::kInt},
      {"tax", DataType::kInt},
  };
  Relation::Builder b{Schema(std::move(attrs))};
  auto add = [&](const char* name, std::int64_t income, std::int64_t savings,
                 std::int64_t bracket, std::int64_t tax) {
    auto s = b.AddRow({Value::String(name), Value::Int(income),
                       Value::Int(savings), Value::Int(bracket),
                       Value::Int(tax)});
    assert(s.ok());
    (void)s;
  };
  add("T. Green", 35000, 3000, 1, 5250);
  add("J. Smith", 40000, 4000, 1, 6000);
  add("J. Doe", 40000, 3800, 1, 6000);
  add("S. Black", 55000, 6500, 2, 8500);
  add("W. White", 60000, 6500, 2, 9500);
  add("M. Darrel", 80000, 10000, 3, 14000);
  return std::move(b).Build();
}

Relation MakeYes() {
  // Neither A → B (A=2 ties with B 2,3: split) nor B → A (B=3 ties with
  // A 2,3: split), but sorting by either column leaves both non-decreasing:
  // A ~ B holds.
  return BuildIntTable({"A", "B"}, {{1, 2, 2, 3, 4},  //
                                    {1, 2, 3, 3, 4}});
}

Relation MakeNo() {
  // Rows 4 and 5 form a swap (A: 3 < 4, B: 7 > 1), so no OD or OCD holds
  // between A and B. B's values are all distinct, so the FD B → A holds —
  // the one FD Table 6 reports for this dataset.
  return BuildIntTable({"A", "B"}, {{1, 2, 3, 3, 4},  //
                                    {4, 5, 6, 7, 1}});
}

Relation MakeNumbers() {
  // Reconstruction of Table 7 (the printed table is corrupted in the
  // available paper text). The documented property is preserved:
  // [B] → [AC] does NOT hold — e.g. rows 2 and 3 have B: 3 > 2 while
  // A: 2 < 3 (a swap) — so a correct FASTOD must not report it.
  return BuildIntTable({"A", "B", "C", "D", "E"},
                       {{1, 2, 3, 3, 4, 4},
                        {3, 3, 2, 1, 4, 5},
                        {1, 2, 2, 2, 2, 3},
                        {1, 2, 2, 3, 4, 2},
                        {2, 1, 3, 3, 1, 4}});
}

}  // namespace ocdd::datagen
