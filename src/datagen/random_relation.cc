#include "datagen/random_relation.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

namespace ocdd::datagen {

namespace {

using Cell = std::optional<std::int64_t>;
using ColumnData = std::vector<Cell>;

/// One column's raw draw, before NULL injection.
ColumnData DrawColumn(Rng& rng, std::size_t rows,
                      const std::vector<ColumnData>& earlier) {
  ColumnData col(rows);
  // Flavors are weighted toward the tie-heavy/low-cardinality shapes where
  // split/swap bookkeeping is easiest to get wrong.
  std::uint64_t flavor = rng.Uniform(earlier.empty() ? 6 : 8);
  switch (flavor) {
    case 0: {  // constant
      std::int64_t v = rng.UniformInt(-3, 3);
      for (auto& c : col) c = v;
      break;
    }
    case 1: {  // tiny domain: dense ties
      std::uint64_t domain = 2 + rng.Uniform(2);  // 2..3 distinct values
      for (auto& c : col) c = static_cast<std::int64_t>(rng.Uniform(domain));
      break;
    }
    case 2: {  // medium domain
      std::uint64_t domain = 2 + rng.Uniform(rows);
      for (auto& c : col) c = static_cast<std::int64_t>(rng.Uniform(domain));
      break;
    }
    case 3: {  // high cardinality / near-key (collisions still possible)
      for (auto& c : col) c = rng.UniformInt(0, 4 * rows);
      break;
    }
    case 4: {  // near-sorted ascending with a few perturbations
      for (std::size_t r = 0; r < rows; ++r) {
        col[r] = static_cast<std::int64_t>(r / (1 + rng.Uniform(2)));
      }
      std::size_t flips = rng.Uniform(3);
      for (std::size_t f = 0; f < flips && rows > 1; ++f) {
        std::size_t i = rng.Uniform(rows - 1);
        std::swap(col[i], col[i + 1]);
      }
      break;
    }
    case 5: {  // skewed: one hot value plus a tail
      for (auto& c : col) {
        c = rng.Bernoulli(0.6) ? 0 : rng.UniformInt(1, 5);
      }
      break;
    }
    case 6: {  // order-equivalent copy of an earlier column (monotone recode)
      const ColumnData& src = earlier[rng.Uniform(earlier.size())];
      std::int64_t scale = 1 + static_cast<std::int64_t>(rng.Uniform(4));
      std::int64_t shift = rng.UniformInt(-10, 10);
      for (std::size_t r = 0; r < rows; ++r) {
        col[r] = src[r] ? Cell(*src[r] * scale + shift) : std::nullopt;
      }
      break;
    }
    default: {  // coarsened copy: src determines col → OD/FD material
      const ColumnData& src = earlier[rng.Uniform(earlier.size())];
      std::int64_t div = 2 + static_cast<std::int64_t>(rng.Uniform(3));
      for (std::size_t r = 0; r < rows; ++r) {
        if (src[r]) {
          // Floor division keeps the coarsening monotone for negatives too.
          std::int64_t v = *src[r];
          std::int64_t q = v / div;
          if (v % div != 0 && v < 0) --q;
          col[r] = q;
        }
      }
      break;
    }
  }
  return col;
}

}  // namespace

rel::Relation MakeRandomRelation(Rng& rng, const RandomRelationSpec& spec) {
  std::size_t rows =
      spec.min_rows + rng.Uniform(spec.max_rows - spec.min_rows + 1);
  std::size_t cols =
      spec.min_cols + rng.Uniform(spec.max_cols - spec.min_cols + 1);

  std::vector<ColumnData> data;
  data.reserve(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    data.push_back(DrawColumn(rng, rows, data));
  }

  // NULL injection. NULLs share the smallest code (NULLS FIRST), so blocks
  // of them both create ties and pull rows to the front of every sort.
  for (ColumnData& col : data) {
    if (!rng.Bernoulli(spec.null_column_prob)) continue;
    double rate = 0.1 + 0.4 * rng.UniformDouble();
    for (Cell& cell : col) {
      if (rng.Bernoulli(rate)) cell = std::nullopt;
    }
  }

  // Row duplication: repeat a sampled block of rows verbatim. Equal tuples
  // exercise the `p ⪯ q ∧ q ⪯ p` corner of Definition 2.2.
  if (rng.Bernoulli(spec.duplicate_rows_prob) && rows > 1) {
    std::size_t copies = 1 + rng.Uniform(rows / 2 + 1);
    for (std::size_t k = 0; k < copies; ++k) {
      std::size_t src = rng.Uniform(rows);
      for (ColumnData& col : data) col.push_back(col[src]);
    }
    rows += copies;
  }

  // Final row shuffle (sometimes skipped to keep near-sorted layouts).
  if (rng.Bernoulli(0.7)) {
    std::vector<std::size_t> perm(rows);
    for (std::size_t r = 0; r < rows; ++r) perm[r] = r;
    rng.Shuffle(perm);
    for (ColumnData& col : data) {
      ColumnData shuffled(rows);
      for (std::size_t r = 0; r < rows; ++r) shuffled[r] = col[perm[r]];
      col = std::move(shuffled);
    }
  }

  std::vector<rel::Attribute> attrs;
  std::vector<rel::Column> columns;
  for (std::size_t c = 0; c < cols; ++c) {
    attrs.push_back(rel::Attribute{std::string(1, static_cast<char>('A' + c)),
                                   rel::DataType::kInt});
    std::vector<rel::Value> vals;
    vals.reserve(rows);
    for (const Cell& cell : data[c]) {
      vals.push_back(cell ? rel::Value::Int(*cell) : rel::Value::Null());
    }
    columns.push_back(rel::Column::FromValues(rel::DataType::kInt, vals));
  }
  auto built = rel::Relation::FromColumns(rel::Schema(std::move(attrs)),
                                          std::move(columns));
  return std::move(built).value();
}

}  // namespace ocdd::datagen
