#ifndef OCDD_RELATION_SCHEMA_H_
#define OCDD_RELATION_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "relation/value.h"

namespace ocdd::rel {

/// An attribute (column) descriptor: name and inferred type.
struct Attribute {
  std::string name;
  DataType type = DataType::kString;
};

/// Ordered list of attributes of a relation.
///
/// Attribute positions are the canonical identifiers used throughout the
/// library (`ColumnId` = index into the schema); names are for I/O and
/// reporting.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::size_t num_columns() const { return attributes_.size(); }
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Position of the attribute named `name`, if present.
  std::optional<std::size_t> FindColumn(const std::string& name) const;

  /// Appends an attribute and returns its position.
  std::size_t AddAttribute(Attribute a);

  /// "name:type, name:type, ..." rendering for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_SCHEMA_H_
