#ifndef OCDD_RELATION_TYPE_INFERENCE_H_
#define OCDD_RELATION_TYPE_INFERENCE_H_

#include <string>
#include <vector>

#include "relation/value.h"

namespace ocdd::rel {

/// Options controlling how raw text fields become typed values.
struct TypeInferenceOptions {
  /// Strings that denote NULL (compared after whitespace stripping).
  /// The defaults match the HPI profiling datasets ("" and "?") plus the
  /// SQL spelling.
  std::vector<std::string> null_markers = {"", "?", "NULL", "null"};

  /// When true, skip inference entirely and treat every column as kString.
  /// This mirrors FASTOD's behaviour as described in the paper (§5.2.2),
  /// where all columns compare lexicographically.
  bool force_lexicographic = false;
};

/// Returns true if `field` denotes NULL under `opts`.
bool IsNullMarker(const std::string& field, const TypeInferenceOptions& opts);

/// Infers the most specific type for a column of raw text fields:
/// kInt if every non-null field parses as int64, else kDouble if every
/// non-null field parses as double, else kString. An all-NULL column is
/// kString.
DataType InferColumnType(const std::vector<std::string>& fields,
                         const TypeInferenceOptions& opts);

/// Converts one raw field to a typed value; `type` should come from
/// `InferColumnType` over the column (a non-conforming field falls back to
/// NULL for kInt/kDouble, which cannot happen when `type` was inferred from
/// this column).
Value ParseField(const std::string& field, DataType type,
                 const TypeInferenceOptions& opts);

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_TYPE_INFERENCE_H_
