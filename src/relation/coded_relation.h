#ifndef OCDD_RELATION_CODED_RELATION_H_
#define OCDD_RELATION_CODED_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace ocdd::rel {

/// Options controlling dictionary encoding.
struct EncodeOptions {
  /// Rank values by their string rendering instead of their natural typed
  /// order. Mirrors FASTOD's all-columns-are-strings behaviour (§5.2.2) and
  /// OCDDISCOVER's optional lexicographic mode.
  bool force_lexicographic = false;
};

/// One order-preserving dictionary-encoded column.
///
/// `codes[row]` is the dense rank of the row's value among the column's
/// distinct values: equal values share a code and `value_a < value_b` implies
/// `code_a < code_b`. The paper's NULL semantics (`NULL = NULL`,
/// `NULLS FIRST`, §4.3) are baked in: all NULLs share the smallest code.
/// Every comparison made by the discovery algorithms thus reduces to an
/// `int32` comparison.
struct CodedColumn {
  std::string name;
  DataType source_type = DataType::kString;
  std::vector<std::int32_t> codes;
  /// Number of distinct codes, counting the NULL class if present.
  std::int32_t num_distinct = 0;
  bool has_nulls = false;

  bool is_constant() const { return num_distinct <= 1; }
};

/// A fully dictionary-encoded relation: the input format of every discovery
/// algorithm's hot loop.
class CodedRelation {
 public:
  CodedRelation() = default;

  /// Encodes every column of `relation`. O(m log m) per column.
  static CodedRelation Encode(const Relation& relation,
                              const EncodeOptions& options = {});

  /// Builds directly from pre-computed coded columns (used by tests and
  /// generators that synthesize code matrices). All columns must have the
  /// same length. Callers that feed the partition-based algorithms
  /// (ListPartition, StrippedPartition, TANE, FASTOD, UCC) must respect the
  /// dense-rank invariant: codes in [0, num_distinct).
  static CodedRelation FromColumns(std::vector<CodedColumn> columns);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }
  const CodedColumn& column(ColumnId id) const { return columns_[id]; }
  const std::vector<CodedColumn>& columns() const { return columns_; }

  std::int32_t code(std::size_t row, ColumnId col) const {
    return columns_[col].codes[row];
  }
  const std::string& column_name(ColumnId col) const {
    return columns_[col].name;
  }

  /// Shannon entropy (natural log) of the column's value distribution —
  /// Definition 5.1 of the paper. 0 for constant columns, ln(m) when all
  /// values are distinct.
  double ColumnEntropy(ColumnId col) const;

  /// Stable 64-bit content fingerprint over shape, column names, and every
  /// code, FNV-1a style. Checkpoint snapshots store it so a `--resume`
  /// against a different input is detected and rejected rather than
  /// producing a silently inconsistent merge of two relations' results.
  std::uint64_t Fingerprint() const;

  /// Restriction to a column subset, in the given order (row data shared by
  /// copy of code vectors).
  CodedRelation ProjectColumns(const std::vector<ColumnId>& cols) const;

  /// Restriction to the first `n` rows, with codes re-densified so the
  /// dense-rank invariant (codes in [0, num_distinct)) keeps holding.
  CodedRelation HeadRows(std::size_t n) const;

 private:
  std::vector<CodedColumn> columns_;
  std::size_t num_rows_ = 0;
};

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_CODED_RELATION_H_
