#ifndef OCDD_RELATION_CODED_RELATION_H_
#define OCDD_RELATION_CODED_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace ocdd::rel {

/// Storage width of a dense code vector. The discovery kernels are
/// templated over the width so the hot loops stream the narrowest
/// representation a column (or partition) fits in — on low-cardinality
/// data this divides the check kernels' memory traffic by 4.
enum class CodeWidth : std::uint8_t {
  k8 = 1,
  k16 = 2,
  k32 = 4,
};

/// The narrowest width that can hold codes in [0, num_distinct).
inline CodeWidth WidthForDistinct(std::int64_t num_distinct) {
  if (num_distinct <= 256) return CodeWidth::k8;
  if (num_distinct <= 65536) return CodeWidth::k16;
  return CodeWidth::k32;
}

/// Options controlling dictionary encoding.
struct EncodeOptions {
  /// Rank values by their string rendering instead of their natural typed
  /// order. Mirrors FASTOD's all-columns-are-strings behaviour (§5.2.2) and
  /// OCDDISCOVER's optional lexicographic mode.
  bool force_lexicographic = false;

  /// Additionally bit-pack each column's codes at ⌈log₂ d⌉ bits per code
  /// (see CodedColumn::packed). Off by default: the fixed-width narrow
  /// mirrors are what the check kernels consume; the packed form exists
  /// for storage experiments and is unpacked before use.
  bool bit_pack = false;
};

/// One order-preserving dictionary-encoded column.
///
/// `codes[row]` is the dense rank of the row's value among the column's
/// distinct values: equal values share a code and `value_a < value_b` implies
/// `code_a < code_b`. The paper's NULL semantics (`NULL = NULL`,
/// `NULLS FIRST`, §4.3) are baked in: all NULLs share the smallest code.
/// Every comparison made by the discovery algorithms thus reduces to an
/// `int32` comparison.
///
/// `codes` is the canonical form. The narrow mirrors (`codes8`/`codes16`)
/// and the optional bit-packed form are *derived*: they are rebuilt by
/// `CodedRelation::Encode`/`FromColumns`/`HeadRows` and must never be
/// edited directly. Code that mutates `codes` by hand must round-trip the
/// column through `FromColumns` before the kernels see it (every in-tree
/// construction site already does).
struct CodedColumn {
  std::string name;
  DataType source_type = DataType::kString;
  std::vector<std::int32_t> codes;
  /// Number of distinct codes, counting the NULL class if present.
  std::int32_t num_distinct = 0;
  bool has_nulls = false;

  /// Derived narrow mirrors: exactly one of `codes8` (d ≤ 256) or
  /// `codes16` (256 < d ≤ 65536) is populated for non-empty columns that
  /// fit; wider columns expose only `codes`.
  std::vector<std::uint8_t> codes8;
  std::vector<std::uint16_t> codes16;

  /// Optional bit-packed codes (EncodeOptions::bit_pack): little-endian
  /// bit stream, `bits_per_code` bits per row, `bits_per_code == 0` when
  /// not packed.
  std::vector<std::uint64_t> packed;
  std::uint8_t bits_per_code = 0;

  bool is_constant() const { return num_distinct <= 1; }

  /// Narrowest storage this column carries.
  CodeWidth narrow_width() const { return WidthForDistinct(num_distinct); }

  /// Rebuilds the derived forms from `codes`. Internal; called by the
  /// CodedRelation factories.
  void SyncCompressedForms(bool bit_pack);

  /// Reads one code from the bit-packed form (requires bits_per_code > 0).
  std::int32_t PackedCodeAt(std::size_t row) const;

  /// Unpacks the bit-packed form into `out` (resized); requires packing.
  void UnpackInto(std::vector<std::int32_t>* out) const;
};

/// Read-only view of a column's narrowest code array; the kernels'
/// width-dispatch handle.
struct CodeView {
  const void* data = nullptr;
  CodeWidth width = CodeWidth::k32;

  std::int32_t At(std::size_t row) const {
    switch (width) {
      case CodeWidth::k8:
        return static_cast<const std::uint8_t*>(data)[row];
      case CodeWidth::k16:
        return static_cast<const std::uint16_t*>(data)[row];
      case CodeWidth::k32:
        break;
    }
    return static_cast<const std::int32_t*>(data)[row];
  }
};

/// The narrowest available view of a column's codes (falls back to the
/// canonical int32 array when no mirror is populated).
CodeView NarrowView(const CodedColumn& column);

/// A fully dictionary-encoded relation: the input format of every discovery
/// algorithm's hot loop.
class CodedRelation {
 public:
  CodedRelation() = default;

  /// Encodes every column of `relation`. O(m log m) per column.
  static CodedRelation Encode(const Relation& relation,
                              const EncodeOptions& options = {});

  /// Builds directly from pre-computed coded columns (used by tests and
  /// generators that synthesize code matrices). All columns must have the
  /// same length. Callers that feed the partition-based algorithms
  /// (ListPartition, StrippedPartition, TANE, FASTOD, UCC) must respect the
  /// dense-rank invariant: codes in [0, num_distinct). Narrow mirrors are
  /// (re)derived here, so hand-mutated `codes` become consistent again.
  static CodedRelation FromColumns(std::vector<CodedColumn> columns);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }
  const CodedColumn& column(ColumnId id) const { return columns_[id]; }
  const std::vector<CodedColumn>& columns() const { return columns_; }

  std::int32_t code(std::size_t row, ColumnId col) const {
    return columns_[col].codes[row];
  }
  const std::string& column_name(ColumnId col) const {
    return columns_[col].name;
  }

  /// Shannon entropy (natural log) of the column's value distribution —
  /// Definition 5.1 of the paper. 0 for constant columns, ln(m) when all
  /// values are distinct.
  double ColumnEntropy(ColumnId col) const;

  /// Stable 64-bit content fingerprint over shape, column names, and every
  /// code, FNV-1a style. Checkpoint snapshots store it so a `--resume`
  /// against a different input is detected and rejected rather than
  /// producing a silently inconsistent merge of two relations' results.
  std::uint64_t Fingerprint() const;

  /// Restriction to a column subset, in the given order (row data shared by
  /// copy of code vectors).
  CodedRelation ProjectColumns(const std::vector<ColumnId>& cols) const;

  /// Restriction to the first `n` rows, with codes re-densified so the
  /// dense-rank invariant (codes in [0, num_distinct)) keeps holding.
  CodedRelation HeadRows(std::size_t n) const;

 private:
  std::vector<CodedColumn> columns_;
  std::size_t num_rows_ = 0;
};

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_CODED_RELATION_H_
