#include "relation/relation.h"

#include <utility>

namespace ocdd::rel {

Relation::Builder::Builder(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (std::size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(schema_.attribute(i).type);
  }
}

Status Relation::Builder::AddRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != schema width " +
        std::to_string(schema_.num_columns()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    DataType t = schema_.attribute(i).type;
    bool ok = (t == DataType::kInt && v.is_int()) ||
              (t == DataType::kDouble && (v.is_double() || v.is_int())) ||
              (t == DataType::kString && v.is_string());
    if (!ok) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     schema_.attribute(i).name + "' at row " +
                                     std::to_string(num_rows_));
    }
  }
  for (std::size_t i = 0; i < row.size(); ++i) columns_[i].Append(row[i]);
  ++num_rows_;
  return Status::OK();
}

Relation Relation::Builder::Build() && {
  return Relation(std::move(schema_), std::move(columns_), num_rows_);
}

Result<Relation> Relation::FromColumns(Schema schema,
                                       std::vector<Column> columns) {
  if (columns.size() != schema.num_columns()) {
    return Status::InvalidArgument("column count does not match schema");
  }
  std::size_t rows = columns.empty() ? 0 : columns[0].size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].size() != rows) {
      return Status::InvalidArgument("ragged columns: column " +
                                     std::to_string(i) + " has " +
                                     std::to_string(columns[i].size()) +
                                     " rows, expected " + std::to_string(rows));
    }
    if (columns[i].type() != schema.attribute(i).type) {
      return Status::InvalidArgument("column " + std::to_string(i) +
                                     " type does not match schema");
    }
  }
  return Relation(std::move(schema), std::move(columns), rows);
}

Result<Relation> Relation::ProjectColumns(
    const std::vector<ColumnId>& columns) const {
  std::vector<Attribute> attrs;
  std::vector<Column> cols;
  attrs.reserve(columns.size());
  cols.reserve(columns.size());
  for (ColumnId id : columns) {
    if (id >= num_columns()) {
      return Status::InvalidArgument("column id " + std::to_string(id) +
                                     " out of range");
    }
    attrs.push_back(schema_.attribute(id));
    cols.push_back(columns_[id]);
  }
  return Relation(Schema(std::move(attrs)), std::move(cols), num_rows_);
}

Relation Relation::HeadRows(std::size_t n) const {
  if (n >= num_rows_) return *this;
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  return SelectRows(rows);
}

Relation Relation::SelectRows(const std::vector<std::size_t>& rows) const {
  Builder b(schema_);
  std::vector<Value> row(num_columns());
  for (std::size_t r : rows) {
    for (std::size_t c = 0; c < num_columns(); ++c) {
      row[c] = columns_[c].ValueAt(r);
    }
    // Types are preserved by construction, so AddRow cannot fail here.
    Status s = b.AddRow(row);
    (void)s;
  }
  return std::move(b).Build();
}

}  // namespace ocdd::rel
