#include "relation/batch.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"

namespace ocdd::rel {

namespace {

constexpr const char* kMagic = "ocdd-batch";
constexpr std::size_t kMaxSamples = 8;

/// One physical line of the batch text, with provenance for error reports.
struct Line {
  std::string text;        // terminator stripped
  std::uint64_t number;    // 1-based physical line number
  std::uint64_t byte_off;  // offset of the line's first byte
};

/// Splits on LF, CRLF, or lone CR — the same terminator tolerance as the
/// CSV scanner, so a batch file written on any platform parses.
std::vector<Line> SplitLines(const std::string& text) {
  std::vector<Line> lines;
  std::size_t start = 0;
  std::uint64_t number = 1;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    const bool at_end = i == text.size();
    if (!at_end && text[i] != '\n' && text[i] != '\r') continue;
    if (at_end && i == start) break;
    lines.push_back(Line{text.substr(start, i - start), number++, start});
    if (!at_end && text[i] == '\r' && i + 1 < text.size() &&
        text[i + 1] == '\n') {
      ++i;
    }
    start = i + 1;
  }
  return lines;
}

bool IsBlankOrComment(const std::string& s) {
  for (char c : s) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t') return false;
  }
  return true;
}

IngestError MakeError(IngestErrorCode code, const Line& line,
                      std::uint64_t column, std::string detail) {
  IngestError e;
  e.code = code;
  e.byte_offset = line.byte_off;
  e.row = line.number;
  e.column = column;
  e.detail = std::move(detail);
  e.excerpt = SanitizeExcerpt(line.text);
  return e;
}

/// One parsed cell: raw text plus whether it was quoted — an unquoted empty
/// (or null-marker) cell is NULL, a quoted one is a real string.
struct Cell {
  std::string text;
  bool quoted = false;
};

/// Splits one op line's payload into cells. RFC-4180-style quoting plus
/// backslash escapes (\n \r \\) inside quoted cells, so string values with
/// embedded newlines survive the one-op-per-line format.
bool SplitCells(const std::string& payload, std::vector<Cell>* cells,
                std::string* error) {
  cells->clear();
  std::size_t i = 0;
  for (;;) {
    Cell cell;
    if (i < payload.size() && payload[i] == '"') {
      cell.quoted = true;
      ++i;
      bool closed = false;
      while (i < payload.size()) {
        char c = payload[i];
        if (c == '"') {
          if (i + 1 < payload.size() && payload[i + 1] == '"') {
            cell.text.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        if (c == '\\') {
          if (i + 1 >= payload.size()) {
            *error = "dangling backslash escape in quoted cell";
            return false;
          }
          char n = payload[i + 1];
          if (n == 'n') {
            cell.text.push_back('\n');
          } else if (n == 'r') {
            cell.text.push_back('\r');
          } else if (n == '\\') {
            cell.text.push_back('\\');
          } else {
            *error = "unknown backslash escape in quoted cell";
            return false;
          }
          i += 2;
          continue;
        }
        cell.text.push_back(c);
        ++i;
      }
      if (!closed) {
        *error = "unterminated quote";
        return false;
      }
      if (i < payload.size() && payload[i] != ',') {
        *error = "garbage after closing quote";
        return false;
      }
    } else {
      while (i < payload.size() && payload[i] != ',') {
        if (payload[i] == '"') {
          *error = "quote inside unquoted cell";
          return false;
        }
        cell.text.push_back(payload[i]);
        ++i;
      }
    }
    cells->push_back(std::move(cell));
    if (i >= payload.size()) return true;
    ++i;  // separator
  }
}

/// Converts one cell to a typed value under the column's declared type.
/// Unlike CSV ingest (which infers types from the data and thus never sees
/// a non-conforming field), a batch cell can contradict the target schema —
/// that is a typed rejection, not a silent NULL.
bool TypedValue(const Cell& cell, DataType type,
                const TypeInferenceOptions& ti, Value* out,
                std::string* error) {
  if (!cell.quoted &&
      IsNullMarker(std::string(StripAsciiWhitespace(cell.text)), ti)) {
    *out = Value::Null();
    return true;
  }
  switch (type) {
    case DataType::kString:
      *out = Value::String(cell.text);
      return true;
    case DataType::kInt: {
      auto v = ParseInt64(StripAsciiWhitespace(cell.text));
      if (!v.has_value()) {
        *error = "cell does not parse as int64";
        return false;
      }
      *out = Value::Int(*v);
      return true;
    }
    case DataType::kDouble: {
      std::string_view stripped = StripAsciiWhitespace(cell.text);
      auto d = ParseDouble(stripped);
      if (!d.has_value()) {
        auto v = ParseInt64(stripped);
        if (!v.has_value()) {
          *error = "cell does not parse as double";
          return false;
        }
        *out = Value::Double(static_cast<double>(*v));
        return true;
      }
      *out = Value::Double(*d);
      return true;
    }
  }
  *error = "unknown column type";
  return false;
}

void AppendCell(std::string& out, const Value& v) {
  if (v.is_null()) return;  // empty unquoted cell
  std::string text;
  if (v.is_int()) {
    text = std::to_string(v.int_value());
  } else if (v.is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v.double_value());
    text = buf;
  } else {
    text = v.string_value();
  }
  bool needs_quoting = text.empty();
  TypeInferenceOptions ti;
  // A string that *looks* like a NULL marker or a number must be quoted or
  // the round-trip would re-type it.
  if (v.is_string() &&
      (IsNullMarker(std::string(StripAsciiWhitespace(text)), ti) ||
       text != std::string(StripAsciiWhitespace(text)))) {
    needs_quoting = true;
  }
  for (char c : text) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r' || c == '\\') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) {
    out += text;
    return;
  }
  out.push_back('"');
  for (char c : text) {
    if (c == '"') {
      out += "\"\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

Result<BatchParse> ParseBatchText(const std::string& text,
                                  const Schema& schema,
                                  const BatchParseOptions& options) {
  const BatchLimits& limits = options.limits;
  if (text.size() > limits.max_text_bytes) {
    IngestError e;
    e.code = IngestErrorCode::kInputTooLarge;
    e.detail = "batch text exceeds max_text_bytes";
    return e.ToStatus();
  }

  BatchParse parse;
  BatchIngestReport& report = parse.report;
  bool have_header = false;

  // Returns non-OK only under kFail; otherwise records the rejection.
  auto reject = [&](IngestError error, const std::string& raw) -> Status {
    if (options.on_bad_row == BadRowPolicy::kFail) {
      return error.ToStatus();
    }
    ++report.rows_rejected;
    report.rejected_by_code.Add(error.code);
    if (report.samples.size() < kMaxSamples) {
      report.samples.push_back(std::move(error));
    }
    if (options.on_bad_row == BadRowPolicy::kQuarantine) {
      report.quarantined_rows.push_back(raw);
    }
    return Status::OK();
  };

  for (const Line& line : SplitLines(text)) {
    if (IsBlankOrComment(line.text)) continue;

    if (line.text.find('\0') != std::string::npos) {
      IngestError e = MakeError(IngestErrorCode::kEmbeddedNul, line, 0,
                                "NUL byte in batch line");
      if (!have_header) return e.ToStatus();  // structural: header region
      ++report.records_total;
      auto r = reject(std::move(e), line.text);
      if (!r.ok()) return r;
      continue;
    }

    if (!have_header) {
      // First significant line must be the header; a bad header is always
      // fatal, like a bad CSV header.
      std::vector<std::string> parts;
      for (auto& p :
           SplitString(StripAsciiWhitespace(line.text), ' ')) {
        if (!p.empty()) parts.push_back(p);
      }
      if (parts.empty() || parts[0] != kMagic) {
        return MakeError(IngestErrorCode::kBadMagic, line, 0,
                         "expected 'ocdd-batch <version>' header")
            .ToStatus();
      }
      if (parts.size() != 2 || parts[1] != "1") {
        return MakeError(IngestErrorCode::kValueOutOfRange, line, 0,
                         "unsupported batch format version")
            .ToStatus();
      }
      have_header = true;
      continue;
    }

    ++report.records_total;
    if (line.text.size() > limits.max_line_bytes) {
      auto r = reject(MakeError(IngestErrorCode::kRecordTooLarge, line, 0,
                                "op line exceeds max_line_bytes"),
                      line.text);
      if (!r.ok()) return r;
      continue;
    }
    const char op = line.text[0];
    if (op != '-' && op != '+') {
      auto r = reject(MakeError(IngestErrorCode::kMalformedSyntax, line, 0,
                                "op line must start with '-' or '+'"),
                      line.text);
      if (!r.ok()) return r;
      continue;
    }
    if (parse.batch.num_ops() >= limits.max_ops) {
      // Like CsvLimits::max_rows this is always fatal: it signals the wrong
      // input, not one mangled line.
      return MakeError(IngestErrorCode::kTooManyRows, line, 0,
                       "batch exceeds max_ops")
          .ToStatus();
    }
    const std::string payload(
        StripAsciiWhitespace(std::string_view(line.text).substr(1)));

    if (op == '-') {
      auto v = ParseInt64(payload);
      if (!v.has_value() || *v < 0) {
        auto r = reject(
            MakeError(IngestErrorCode::kMalformedSyntax, line, 0,
                      "delete op needs a non-negative row index"),
            line.text);
        if (!r.ok()) return r;
        continue;
      }
      ++report.ops_parsed;
      parse.batch.deletes.push_back(static_cast<std::size_t>(*v));
      continue;
    }

    std::vector<Cell> cells;
    std::string cell_error;
    if (!SplitCells(payload, &cells, &cell_error)) {
      IngestErrorCode code = cell_error == "unterminated quote"
                                 ? IngestErrorCode::kUnterminatedQuote
                                 : IngestErrorCode::kMalformedSyntax;
      auto r = reject(MakeError(code, line, 0, cell_error), line.text);
      if (!r.ok()) return r;
      continue;
    }
    if (cells.size() != schema.num_columns()) {
      auto r = reject(
          MakeError(IngestErrorCode::kRaggedRow, line, 0,
                    "row has " + std::to_string(cells.size()) +
                        " cells, schema has " +
                        std::to_string(schema.num_columns())),
          line.text);
      if (!r.ok()) return r;
      continue;
    }
    std::vector<Value> row;
    row.reserve(cells.size());
    bool row_ok = true;
    for (std::size_t c = 0; c < cells.size() && row_ok; ++c) {
      Value value;
      std::string type_error;
      if (!TypedValue(cells[c], schema.attribute(c).type,
                      options.type_inference, &value, &type_error)) {
        auto r = reject(MakeError(IngestErrorCode::kValueOutOfRange, line,
                                  c + 1, type_error),
                        line.text);
        if (!r.ok()) return r;
        row_ok = false;
        break;
      }
      row.push_back(std::move(value));
    }
    if (!row_ok) continue;
    ++report.ops_parsed;
    parse.batch.appends.push_back(std::move(row));
  }

  if (!have_header) {
    IngestError e;
    e.code = IngestErrorCode::kEmptyInput;
    e.detail = "batch text has no header line";
    return e.ToStatus();
  }

  std::sort(parse.batch.deletes.begin(), parse.batch.deletes.end());
  parse.batch.deletes.erase(
      std::unique(parse.batch.deletes.begin(), parse.batch.deletes.end()),
      parse.batch.deletes.end());
  return parse;
}

Result<BatchParse> ReadBatchFile(const std::string& path, const Schema& schema,
                                 const BatchParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open batch file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseBatchText(buf.str(), schema, options);
}

std::string WriteBatchText(const RowBatch& batch, const Schema& schema) {
  std::string out = std::string(kMagic) + " 1\n";
  std::vector<std::size_t> deletes = batch.deletes;
  std::sort(deletes.begin(), deletes.end());
  deletes.erase(std::unique(deletes.begin(), deletes.end()), deletes.end());
  for (std::size_t d : deletes) {
    out += "- " + std::to_string(d) + "\n";
  }
  for (const std::vector<Value>& row : batch.appends) {
    out += "+ ";
    for (std::size_t c = 0; c < row.size() && c < schema.num_columns(); ++c) {
      if (c > 0) out.push_back(',');
      AppendCell(out, row[c]);
    }
    out.push_back('\n');
  }
  return out;
}

Result<Relation> ApplyBatch(const Relation& relation, const RowBatch& batch) {
  const Schema& schema = relation.schema();
  // Validate everything before touching any column: apply is all-or-nothing.
  for (std::size_t i = 0; i < batch.deletes.size(); ++i) {
    if (batch.deletes[i] >= relation.num_rows()) {
      return Status::InvalidArgument(
          "batch deletes row " + std::to_string(batch.deletes[i]) +
          " but the relation has " + std::to_string(relation.num_rows()) +
          " rows");
    }
    if (i > 0 && batch.deletes[i] <= batch.deletes[i - 1]) {
      return Status::InvalidArgument(
          "batch delete indices must be sorted and duplicate-free");
    }
  }
  for (const std::vector<Value>& row : batch.appends) {
    if (row.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "batch appends a row with " + std::to_string(row.size()) +
          " cells, schema has " + std::to_string(schema.num_columns()));
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      const Value& v = row[c];
      if (v.is_null()) continue;
      const DataType t = schema.attribute(c).type;
      const bool ok = (t == DataType::kInt && v.is_int()) ||
                      (t == DataType::kDouble &&
                       (v.is_double() || v.is_int())) ||
                      (t == DataType::kString && v.is_string());
      if (!ok) {
        return Status::InvalidArgument(
            "batch append cell type mismatch in column " +
            schema.attribute(c).name);
      }
    }
  }

  std::vector<std::size_t> keep;
  keep.reserve(relation.num_rows() - batch.deletes.size());
  std::size_t next_delete = 0;
  for (std::size_t r = 0; r < relation.num_rows(); ++r) {
    if (next_delete < batch.deletes.size() &&
        batch.deletes[next_delete] == r) {
      ++next_delete;
      continue;
    }
    keep.push_back(r);
  }
  Relation kept = relation.SelectRows(keep);

  std::vector<Column> columns;
  columns.reserve(schema.num_columns());
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    Column col = kept.column(c);
    for (const std::vector<Value>& row : batch.appends) {
      col.Append(row[c]);
    }
    columns.push_back(std::move(col));
  }
  return Relation::FromColumns(schema, std::move(columns));
}

}  // namespace ocdd::rel
