#ifndef OCDD_RELATION_CSV_H_
#define OCDD_RELATION_CSV_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/ingest_error.h"
#include "common/result.h"
#include "relation/relation.h"
#include "relation/type_inference.h"

namespace ocdd {
class RunContext;
}

namespace ocdd::rel {

/// What to do with a data record that fails to ingest (ragged width,
/// embedded NUL, oversized field, broken quoting):
///  * kFail       — abort the whole read with a structured IngestError
///                  naming the byte offset and row (the strict default);
///  * kSkip       — drop the record, count it per error code;
///  * kQuarantine — like kSkip, but additionally preserve the raw line
///                  (to CsvOptions::quarantine_path, or in memory when the
///                  path is empty) for later triage/repair.
/// A structurally bad *header* is always fatal — without it there is no
/// schema to ingest against.
enum class BadRowPolicy { kFail, kSkip, kQuarantine };

const char* BadRowPolicyName(BadRowPolicy policy);

/// Declared input limits, enforced *while scanning* — an adversarial input
/// is rejected (or its row quarantined) before the parser buffers more than
/// one limit's worth of bytes for it.
struct CsvLimits {
  /// Max bytes in one (unquoted-equivalent) field.
  std::size_t max_field_bytes = 1u << 20;
  /// Max raw bytes in one record, quotes and separators included.
  std::size_t max_record_bytes = 8u << 20;
  /// Max fields per record.
  std::size_t max_columns = 4096;
  /// Max data records (0 = unlimited). Exceeding this is always fatal —
  /// it signals the wrong input, not one mangled row.
  std::uint64_t max_rows = 0;
};

/// CSV parsing options (RFC-4180-style quoting, configurable separator).
struct CsvOptions {
  char separator = ',';
  /// When true the first record provides column names; otherwise columns are
  /// named "col0", "col1", ...
  bool has_header = true;
  TypeInferenceOptions type_inference;
  CsvLimits limits;
  BadRowPolicy on_bad_row = BadRowPolicy::kFail;
  /// Destination for quarantined raw rows (kQuarantine only). Empty keeps
  /// them in memory on the report — used by tests and the fuzzers.
  std::string quarantine_path;
  /// Optional: every rejected row under kSkip/kQuarantine is charged as one
  /// check against this context's budgets, so a supervised run cannot be
  /// ground down by an input that is mostly garbage. Not owned.
  RunContext* run_context = nullptr;
};

/// What happened at the untrusted-byte boundary during one read: exact
/// per-error-code rejection counts plus a few sample errors. Surfaced in
/// the CLI JSON reports (`"ingest"`) and `stop_state`.
struct CsvIngestReport {
  /// Data records seen (ingested + rejected); header not counted.
  std::uint64_t records_total = 0;
  std::uint64_t rows_ingested = 0;
  std::uint64_t rows_rejected = 0;
  IngestCounts rejected_by_code;
  /// First few structured errors, for reports and debugging.
  std::vector<IngestError> samples;
  /// Where quarantined rows were written (empty when none, or in-memory).
  std::string quarantine_path;
  /// In-memory quarantine sink, used when `CsvOptions::quarantine_path` is
  /// empty. Raw record bytes, terminators stripped.
  std::vector<std::string> quarantined_rows;

  bool clean() const { return rows_rejected == 0; }
};

/// A parsed relation plus the ingest accounting that produced it.
struct CsvRead {
  Relation relation;
  CsvIngestReport report;
};

/// Parses CSV text into a typed relation, applying `options.on_bad_row` to
/// records that fail to ingest.
///
/// Quoting: fields may be enclosed in double quotes; quoted fields may
/// contain the separator, newlines, and doubled quotes (`""` -> `"`).
/// Records may end in LF, CRLF, or a lone CR; a leading UTF-8 BOM is
/// stripped. Under kFail, the first bad record aborts the read with a
/// ParseError carrying the IngestError rendering (code, byte offset, row).
Result<CsvRead> ReadCsvWithReport(const std::string& text,
                                  const CsvOptions& options = {});

/// Reads and parses a CSV file from disk, with ingest accounting.
Result<CsvRead> ReadCsvFileWithReport(const std::string& path,
                                      const CsvOptions& options = {});

/// Parses CSV text into a typed relation (report discarded).
Result<Relation> ReadCsvString(const std::string& text,
                               const CsvOptions& options = {});

/// Reads and parses a CSV file from disk.
Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Serializes a relation as CSV (header + rows). Fields containing the
/// separator, quotes, or newlines are quoted; NULLs are written as empty
/// fields.
std::string WriteCsvString(const Relation& relation, char separator = ',');

/// Writes `relation` to `path`; returns an error if the file cannot be
/// created.
Status WriteCsvFile(const Relation& relation, const std::string& path,
                    char separator = ',');

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_CSV_H_
