#ifndef OCDD_RELATION_CSV_H_
#define OCDD_RELATION_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"
#include "relation/type_inference.h"

namespace ocdd::rel {

/// CSV parsing options (RFC-4180-style quoting, configurable separator).
struct CsvOptions {
  char separator = ',';
  /// When true the first record provides column names; otherwise columns are
  /// named "col0", "col1", ...
  bool has_header = true;
  TypeInferenceOptions type_inference;
};

/// Parses CSV text into a typed relation.
///
/// Quoting: fields may be enclosed in double quotes; quoted fields may
/// contain the separator, newlines, and doubled quotes (`""` -> `"`).
/// Records may end in LF or CRLF. Ragged rows yield a ParseError.
Result<Relation> ReadCsvString(const std::string& text,
                               const CsvOptions& options = {});

/// Reads and parses a CSV file from disk.
Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Serializes a relation as CSV (header + rows). Fields containing the
/// separator, quotes, or newlines are quoted; NULLs are written as empty
/// fields.
std::string WriteCsvString(const Relation& relation, char separator = ',');

/// Writes `relation` to `path`; returns an error if the file cannot be
/// created.
Status WriteCsvFile(const Relation& relation, const std::string& path,
                    char separator = ',');

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_CSV_H_
