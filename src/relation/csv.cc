#include "relation/csv.h"

#include <fstream>
#include <sstream>

namespace ocdd::rel {

namespace {

/// Splits raw CSV text into records of fields, honoring quotes.
Result<std::vector<std::vector<std::string>>> Tokenize(const std::string& text,
                                                       char sep) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_char_in_record = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    any_char_in_record = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\0') {
      // NUL never appears in valid CSV text (inside or outside quotes); it
      // is the signature of binary input fed to the text reader.
      return Status::ParseError("embedded NUL byte at offset " +
                                std::to_string(i));
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      any_char_in_record = true;
      continue;
    }
    if (c == '"' && field.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
      any_char_in_record = true;
    } else if (c == sep) {
      end_field();
      any_char_in_record = true;
    } else if (c == '\n') {
      // Trailing newline after the last record must not create an empty row.
      if (any_char_in_record || !record.empty() || !field.empty()) {
        end_record();
      }
    } else if (c == '\r') {
      // Swallow the CR of CRLF; a bare CR inside a field is kept.
      if (i + 1 < text.size() && text[i + 1] == '\n') continue;
      field.push_back(c);
      any_char_in_record = true;
    } else {
      field.push_back(c);
      any_char_in_record = true;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field at end of input");
  }
  if (any_char_in_record || !record.empty() || !field.empty()) {
    end_record();
  }
  return records;
}

}  // namespace

Result<Relation> ReadCsvString(const std::string& text,
                               const CsvOptions& options) {
  OCDD_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> records,
                        Tokenize(text, options.separator));
  if (records.empty()) {
    return Status::ParseError("empty CSV input");
  }

  std::vector<std::string> names;
  std::size_t first_data = 0;
  if (options.has_header) {
    names = records[0];
    first_data = 1;
  } else {
    for (std::size_t i = 0; i < records[0].size(); ++i) {
      names.push_back("col" + std::to_string(i));
    }
  }
  std::size_t width = names.size();
  for (std::size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != width) {
      return Status::ParseError(
          "row " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(width));
    }
  }

  // Per-column type inference over the data rows.
  std::vector<Attribute> attrs(width);
  std::vector<std::string> fields;
  fields.reserve(records.size());
  for (std::size_t c = 0; c < width; ++c) {
    fields.clear();
    for (std::size_t r = first_data; r < records.size(); ++r) {
      fields.push_back(records[r][c]);
    }
    attrs[c].name = names[c];
    attrs[c].type = InferColumnType(fields, options.type_inference);
  }

  std::vector<DataType> types(width);
  for (std::size_t c = 0; c < width; ++c) types[c] = attrs[c].type;

  Relation::Builder builder{Schema(std::move(attrs))};
  std::vector<Value> row(width);
  for (std::size_t r = first_data; r < records.size(); ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      row[c] = ParseField(records[r][c], types[c], options.type_inference);
    }
    OCDD_RETURN_IF_ERROR(builder.AddRow(row));
  }
  return std::move(builder).Build();
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

namespace {

bool NeedsQuoting(const std::string& s, char sep) {
  for (char c : s) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string& out, const std::string& s, char sep) {
  if (!NeedsQuoting(s, sep)) {
    out += s;
    return;
  }
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

std::string WriteCsvString(const Relation& relation, char separator) {
  std::string out;
  const Schema& schema = relation.schema();
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out.push_back(separator);
    AppendField(out, schema.attribute(c).name, separator);
  }
  out.push_back('\n');
  for (std::size_t r = 0; r < relation.num_rows(); ++r) {
    for (std::size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out.push_back(separator);
      AppendField(out, relation.ValueAt(r, c).ToString(), separator);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    char separator) {
  std::ofstream outf(path, std::ios::binary);
  if (!outf) {
    return Status::InvalidArgument("cannot create file: " + path);
  }
  outf << WriteCsvString(relation, separator);
  if (!outf) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace ocdd::rel
