#include "relation/csv.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/io_env.h"
#include "common/run_context.h"

namespace ocdd::rel {

const char* BadRowPolicyName(BadRowPolicy policy) {
  switch (policy) {
    case BadRowPolicy::kFail:
      return "fail";
    case BadRowPolicy::kSkip:
      return "skip";
    case BadRowPolicy::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

namespace {

/// One physical record as scanned from the raw text: its fields when it
/// tokenized cleanly, or a structured error plus the raw byte span
/// `[begin, end)` (terminator excluded) for quarantining.
struct RawRecord {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  std::size_t end = 0;
  /// 1-based physical record number (header counts as row 1).
  std::uint64_t row = 0;
  bool ok = true;
  IngestError error;
};

/// Record-at-a-time tokenizer with quote-state recovery: a structural error
/// (NUL, oversized field/record, too many columns, unterminated quote)
/// fails only the *current* record and resynchronizes at the next raw line
/// terminator, so one mangled row cannot take the rest of the file with it.
/// The declared CsvLimits are enforced while scanning — before the parser
/// buffers more than one limit's worth of bytes on the input's behalf.
class RecordScanner {
 public:
  RecordScanner(const std::string& text, const CsvOptions& options,
                std::size_t start)
      : text_(text), options_(options), pos_(start) {}

  /// Scans the next record into `*rec`; false at end of input. Blank lines
  /// are skipped without producing a record.
  bool Next(RawRecord* rec) {
    const std::size_t n = text_.size();
    // LF, CRLF, and lone CR all terminate records; runs of terminators are
    // blank lines, not empty records.
    while (pos_ < n) {
      if (text_[pos_] == '\n') {
        ++pos_;
      } else if (text_[pos_] == '\r') {
        pos_ += (pos_ + 1 < n && text_[pos_ + 1] == '\n') ? 2 : 1;
      } else {
        break;
      }
    }
    if (pos_ >= n) return false;

    rec->fields.clear();
    rec->ok = true;
    rec->error = IngestError{};
    rec->begin = pos_;
    rec->row = ++row_;

    const CsvLimits& lim = options_.limits;
    std::string field;
    bool in_quotes = false;
    bool field_was_quoted = false;
    std::size_t quote_open_pos = 0;

    auto end_field = [&]() -> bool {
      if (rec->fields.size() >= lim.max_columns) return false;
      rec->fields.push_back(std::move(field));
      field.clear();
      field_was_quoted = false;
      return true;
    };
    auto too_many_columns = [&](std::size_t at) {
      Fail(rec, IngestErrorCode::kTooManyColumns, at, rec->fields.size() + 1,
           "record exceeds max_columns=" + std::to_string(lim.max_columns));
    };

    while (pos_ < n) {
      const std::size_t i = pos_;
      const char c = text_[i];
      if (i - rec->begin >= lim.max_record_bytes) {
        Fail(rec, IngestErrorCode::kRecordTooLarge, i, 0,
             "record exceeds max_record_bytes=" +
                 std::to_string(lim.max_record_bytes));
        return true;
      }
      if (c == '\0') {
        // NUL never appears in valid CSV text (inside or outside quotes);
        // it is the signature of binary input fed to the text reader.
        Fail(rec, IngestErrorCode::kEmbeddedNul, i, rec->fields.size() + 1,
             "embedded NUL byte");
        return true;
      }
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < n && text_[i + 1] == '"') {
            field.push_back('"');
            pos_ += 2;
          } else {
            in_quotes = false;
            ++pos_;
          }
          continue;
        }
        if (field.size() >= lim.max_field_bytes) {
          Fail(rec, IngestErrorCode::kFieldTooLarge, i, rec->fields.size() + 1,
               "field exceeds max_field_bytes=" +
                   std::to_string(lim.max_field_bytes));
          return true;
        }
        field.push_back(c);
        ++pos_;
        continue;
      }
      if (c == '"' && field.empty() && !field_was_quoted) {
        in_quotes = true;
        field_was_quoted = true;
        quote_open_pos = i;
        ++pos_;
        continue;
      }
      if (c == options_.separator) {
        if (!end_field()) {
          too_many_columns(i);
          return true;
        }
        ++pos_;
        continue;
      }
      if (c == '\n' || c == '\r') {
        rec->end = i;
        pos_ = i + ((c == '\r' && i + 1 < n && text_[i + 1] == '\n') ? 2 : 1);
        if (!end_field()) {
          too_many_columns(i);
        }
        return true;
      }
      if (field.size() >= lim.max_field_bytes) {
        Fail(rec, IngestErrorCode::kFieldTooLarge, i, rec->fields.size() + 1,
             "field exceeds max_field_bytes=" +
                 std::to_string(lim.max_field_bytes));
        return true;
      }
      field.push_back(c);
      ++pos_;
    }
    // End of input inside a record.
    if (in_quotes) {
      Fail(rec, IngestErrorCode::kUnterminatedQuote, quote_open_pos,
           rec->fields.size() + 1,
           "quoted field never closed before end of input");
      return true;
    }
    rec->end = n;
    if (!end_field()) {
      too_many_columns(n);
    }
    return true;
  }

 private:
  /// Marks the record bad and resynchronizes at the next raw '\n' after
  /// `offset`. The scan is quote-blind: once a record is structurally
  /// broken its quote state cannot be trusted, and a plain line boundary is
  /// the recovery point that salvages the most subsequent rows.
  void Fail(RawRecord* rec, IngestErrorCode code, std::size_t offset,
            std::uint64_t column, std::string detail) {
    rec->ok = false;
    rec->error.code = code;
    rec->error.byte_offset = offset;
    rec->error.row = rec->row;
    rec->error.column = column;
    rec->error.detail = std::move(detail);
    const std::size_t term = text_.find('\n', offset);
    if (term == std::string::npos) {
      rec->end = text_.size();
      pos_ = text_.size();
    } else {
      rec->end = (term > rec->begin && text_[term - 1] == '\r') ? term - 1
                                                                : term;
      pos_ = term + 1;
    }
    rec->error.excerpt = SanitizeExcerpt(
        text_.substr(rec->begin,
                     std::min<std::size_t>(rec->end - rec->begin, 64)));
  }

  const std::string& text_;
  const CsvOptions& options_;
  std::size_t pos_;
  std::uint64_t row_ = 0;
};

constexpr std::size_t kMaxErrorSamples = 5;

IngestError RaggedRowError(const std::string& text, const RawRecord& rec,
                           std::size_t width) {
  IngestError err;
  err.code = IngestErrorCode::kRaggedRow;
  err.byte_offset = rec.begin;
  err.row = rec.row;
  err.column = rec.fields.size();
  err.detail = "row has " + std::to_string(rec.fields.size()) +
               " fields, expected " + std::to_string(width);
  err.excerpt = SanitizeExcerpt(
      text.substr(rec.begin, std::min<std::size_t>(rec.end - rec.begin, 64)));
  return err;
}

}  // namespace

Result<CsvRead> ReadCsvWithReport(const std::string& text,
                                  const CsvOptions& options) {
  CsvRead out;
  CsvIngestReport& report = out.report;

  // A leading UTF-8 BOM is presentation, not data.
  std::size_t start = 0;
  if (text.size() >= 3 && text.compare(0, 3, "\xEF\xBB\xBF") == 0) start = 3;

  RecordScanner scanner(text, options, start);
  RawRecord rec;

  std::vector<std::string> names;
  std::vector<std::vector<std::string>> rows;
  bool have_width = false;
  std::size_t width = 0;

  // Applies the bad-row policy to one rejected record. Returns non-OK only
  // when the whole read must stop (kFail, or a RunContext budget ran out).
  auto reject = [&](const RawRecord& bad, const IngestError& err) -> Status {
    if (options.on_bad_row == BadRowPolicy::kFail) return err.ToStatus();
    ++report.rows_rejected;
    report.rejected_by_code.Add(err.code);
    if (report.samples.size() < kMaxErrorSamples) report.samples.push_back(err);
    if (options.on_bad_row == BadRowPolicy::kQuarantine) {
      report.quarantined_rows.push_back(
          text.substr(bad.begin, bad.end - bad.begin));
    }
    if (options.run_context != nullptr && options.run_context->CountCheck(1)) {
      return Status::ResourceExhausted(
          "ingest stopped after " + std::to_string(report.rows_rejected) +
          " rejected rows (" +
          StopReasonName(options.run_context->stop_reason()) +
          "); last: " + err.ToString());
    }
    return Status::OK();
  };

  while (scanner.Next(&rec)) {
    if (!have_width) {
      // The first record anchors the schema (names or width); it must be
      // structurally sound no matter the policy — there is nothing to
      // ingest against without it.
      if (!rec.ok) return rec.error.ToStatus();
      width = rec.fields.size();
      have_width = true;
      if (options.has_header) {
        names = std::move(rec.fields);
        continue;
      }
      for (std::size_t i = 0; i < width; ++i) {
        names.push_back("col" + std::to_string(i));
      }
      // No header: the first record is data; fall through to count it.
    }
    ++report.records_total;
    if (options.limits.max_rows != 0 &&
        report.records_total > options.limits.max_rows) {
      IngestError err;
      err.code = IngestErrorCode::kTooManyRows;
      err.byte_offset = rec.begin;
      err.row = rec.row;
      err.detail =
          "input exceeds max_rows=" + std::to_string(options.limits.max_rows);
      return err.ToStatus();
    }
    if (!rec.ok) {
      OCDD_RETURN_IF_ERROR(reject(rec, rec.error));
      continue;
    }
    if (rec.fields.size() != width) {
      OCDD_RETURN_IF_ERROR(reject(rec, RaggedRowError(text, rec, width)));
      continue;
    }
    rows.push_back(std::move(rec.fields));
    ++report.rows_ingested;
  }

  if (!have_width) {
    IngestError err;
    err.code = IngestErrorCode::kEmptyInput;
    err.detail = "empty CSV input";
    return err.ToStatus();
  }

  // Quarantined raw rows go to the configured file; with no path they stay
  // on the report (tests, fuzzers).
  if (!report.quarantined_rows.empty() && !options.quarantine_path.empty()) {
    // Through io_env (sites "quarantine.*"): a full disk mid-quarantine is a
    // typed IoError, not a silently truncated evidence file.
    std::string joined;
    for (const std::string& line : report.quarantined_rows) {
      joined += line;
      joined += '\n';
    }
    OCDD_RETURN_IF_ERROR(IoWriteFileSynced(IoEnv::Get(), "quarantine",
                                           options.quarantine_path,
                                           joined.data(), joined.size()));
    report.quarantine_path = options.quarantine_path;
    report.quarantined_rows.clear();
  }

  // Per-column type inference over the ingested rows.
  std::vector<Attribute> attrs(width);
  std::vector<std::string> fields;
  fields.reserve(rows.size());
  for (std::size_t c = 0; c < width; ++c) {
    fields.clear();
    for (const auto& row : rows) {
      fields.push_back(row[c]);
    }
    attrs[c].name = names[c];
    attrs[c].type = InferColumnType(fields, options.type_inference);
  }

  std::vector<DataType> types(width);
  for (std::size_t c = 0; c < width; ++c) types[c] = attrs[c].type;

  Relation::Builder builder{Schema(std::move(attrs))};
  std::vector<Value> row_values(width);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < width; ++c) {
      row_values[c] = ParseField(row[c], types[c], options.type_inference);
    }
    OCDD_RETURN_IF_ERROR(builder.AddRow(row_values));
  }
  out.relation = std::move(builder).Build();
  return out;
}

Result<CsvRead> ReadCsvFileWithReport(const std::string& path,
                                      const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvWithReport(buf.str(), options);
}

Result<Relation> ReadCsvString(const std::string& text,
                               const CsvOptions& options) {
  OCDD_ASSIGN_OR_RETURN(CsvRead read, ReadCsvWithReport(text, options));
  return std::move(read.relation);
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  OCDD_ASSIGN_OR_RETURN(CsvRead read, ReadCsvFileWithReport(path, options));
  return std::move(read.relation);
}

namespace {

bool NeedsQuoting(const std::string& s, char sep) {
  for (char c : s) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(std::string& out, const std::string& s, char sep,
                 bool only_field) {
  // In a single-column relation an empty field would render as a blank
  // line, which the reader skips; quote it so the row survives round-trip.
  if (s.empty() && only_field) {
    out += "\"\"";
    return;
  }
  if (!NeedsQuoting(s, sep)) {
    out += s;
    return;
  }
  out.push_back('"');
  for (char c : s) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

std::string WriteCsvString(const Relation& relation, char separator) {
  std::string out;
  const Schema& schema = relation.schema();
  const bool single = schema.num_columns() == 1;
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out.push_back(separator);
    AppendField(out, schema.attribute(c).name, separator, single);
  }
  out.push_back('\n');
  for (std::size_t r = 0; r < relation.num_rows(); ++r) {
    for (std::size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out.push_back(separator);
      AppendField(out, relation.ValueAt(r, c).ToString(), separator, single);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    char separator) {
  const std::string text = WriteCsvString(relation, separator);
  return IoWriteFileSynced(IoEnv::Get(), "csv_write", path, text.data(),
                           text.size());
}

}  // namespace ocdd::rel
