#ifndef OCDD_RELATION_COLUMN_H_
#define OCDD_RELATION_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "relation/value.h"

namespace ocdd::rel {

/// Columnar storage for one attribute: a typed value vector plus a null mask.
///
/// Exactly one of the typed vectors is populated, matching `type()`; NULL
/// cells hold a default-constructed slot in the typed vector and are flagged
/// in the null mask.
class Column {
 public:
  /// Creates an empty column of the given type.
  explicit Column(DataType type = DataType::kString) : type_(type) {}

  /// Builds a typed column from row values. Values must match `type` or be
  /// NULL (integer values are widened when `type` is kDouble).
  static Column FromValues(DataType type, const std::vector<Value>& values);

  DataType type() const { return type_; }
  std::size_t size() const { return nulls_.size(); }

  bool is_null(std::size_t row) const { return nulls_[row]; }
  std::int64_t int_at(std::size_t row) const { return ints_[row]; }
  double double_at(std::size_t row) const { return doubles_[row]; }
  const std::string& string_at(std::size_t row) const { return strings_[row]; }

  /// Materializes the cell as a `Value` (NULL-aware).
  Value ValueAt(std::size_t row) const;

  /// Appends a cell; `v` must be NULL or match the column type
  /// (ints widen into double columns).
  void Append(const Value& v);

  /// Three-way comparison of two cells of this column under the library's
  /// NULL semantics (NULL = NULL, NULLS FIRST).
  int CompareRows(std::size_t a, std::size_t b) const;

 private:
  DataType type_;
  std::vector<bool> nulls_;
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_COLUMN_H_
