#ifndef OCDD_RELATION_RELATION_H_
#define OCDD_RELATION_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relation/column.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace ocdd::rel {

/// Index of a column within a relation's schema.
using ColumnId = std::size_t;

/// An immutable in-memory table: a schema plus columnar data.
///
/// `Relation` is the input type of every discovery algorithm in this
/// library. Construction goes through `Builder` (row-at-a-time, used by the
/// CSV reader and the dataset generators) or `FromColumns`.
class Relation {
 public:
  /// Incremental row-oriented construction.
  class Builder {
   public:
    explicit Builder(Schema schema);

    /// Appends one row; `row.size()` must equal the schema width and every
    /// cell must be NULL or match its column type. Returns InvalidArgument
    /// otherwise.
    Status AddRow(const std::vector<Value>& row);

    /// Finalizes; the builder must not be reused afterwards.
    Relation Build() &&;

   private:
    Schema schema_;
    std::vector<Column> columns_;
    std::size_t num_rows_ = 0;
  };

  Relation() = default;

  /// Wraps pre-built columns; all columns must have equal length and types
  /// matching the schema.
  static Result<Relation> FromColumns(Schema schema,
                                      std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return schema_.num_columns(); }
  const Column& column(ColumnId id) const { return columns_[id]; }

  /// Cell accessor for reporting paths (slow; hot loops use CodedRelation).
  Value ValueAt(std::size_t row, ColumnId col) const {
    return columns_[col].ValueAt(row);
  }

  /// Returns a relation restricted to `columns`, in the given order.
  /// Out-of-range ids yield InvalidArgument.
  Result<Relation> ProjectColumns(const std::vector<ColumnId>& columns) const;

  /// Returns a relation containing the first `n` rows (n may exceed
  /// num_rows(), yielding a copy). Used by the row-scalability benchmarks.
  Relation HeadRows(std::size_t n) const;

  /// Returns a relation with the given row subset, in the given order.
  Relation SelectRows(const std::vector<std::size_t>& rows) const;

 private:
  Relation(Schema schema, std::vector<Column> columns, std::size_t num_rows)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  Schema schema_;
  std::vector<Column> columns_;
  std::size_t num_rows_ = 0;
};

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_RELATION_H_
