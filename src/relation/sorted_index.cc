#include "relation/sorted_index.h"

#include <algorithm>
#include <numeric>

#include "common/prof.h"

namespace ocdd::rel {

namespace {

/// One stable counting-sort pass: permutes `in` into `out` ordered by the
/// column's codes, preserving the incoming order within equal codes.
template <typename C>
void CountingPass(const C* codes, std::size_t domain, const std::uint32_t* in,
                  std::uint32_t* out, std::size_t m,
                  std::vector<std::uint32_t>* counts) {
  counts->assign(domain + 1, 0);
  std::uint32_t* c = counts->data();
  for (std::size_t i = 0; i < m; ++i) {
    ++c[static_cast<std::size_t>(codes[in[i]]) + 1];
  }
  for (std::size_t d = 1; d <= domain; ++d) c[d] += c[d - 1];
  for (std::size_t i = 0; i < m; ++i) {
    out[c[static_cast<std::size_t>(codes[in[i]])]++] = in[i];
  }
}

/// Dispatches one counting pass over the column's narrowest code mirror.
void CountingPassForColumn(const CodedColumn& column, const std::uint32_t* in,
                           std::uint32_t* out, std::size_t m,
                           std::vector<std::uint32_t>* counts) {
  std::size_t domain = static_cast<std::size_t>(column.num_distinct);
  if (!column.codes8.empty()) {
    CountingPass(column.codes8.data(), domain, in, out, m, counts);
  } else if (!column.codes16.empty()) {
    CountingPass(column.codes16.data(), domain, in, out, m, counts);
  } else {
    CountingPass(column.codes.data(), domain, in, out, m, counts);
  }
}

}  // namespace

int CompareRowsOnList(const CodedRelation& relation,
                      const std::vector<ColumnId>& attrs, std::uint32_t row_a,
                      std::uint32_t row_b) {
  for (ColumnId col : attrs) {
    std::int32_t a = relation.code(row_a, col);
    std::int32_t b = relation.code(row_b, col);
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

void SortRowsByListInto(const CodedRelation& relation,
                        const std::vector<ColumnId>& attrs,
                        std::vector<std::uint32_t>* index) {
  prof::ScopedTimer timer(prof::Phase::kSortIndex);
  const std::size_t m = relation.num_rows();
  index->resize(m);
  std::iota(index->begin(), index->end(), 0);
  if (m < 2 || attrs.empty()) return;

  // LSD radix over the dense codes, last attribute first: each stable
  // counting pass is O(m + dᵢ), so the whole sort is comparison-free
  // whenever every column's domain is within the row count. Equal-key tie
  // order differs from the std::sort fallback below, but every consumer
  // (the sort-based checker walks, HoldsOcd) depends only on code values
  // at adjacent positions, never on which row id carries them.
  bool radix = true;
  for (ColumnId col : attrs) {
    if (static_cast<std::size_t>(relation.column(col).num_distinct) > m) {
      radix = false;
      break;
    }
  }
  if (radix) {
    thread_local std::vector<std::uint32_t> tmp;
    thread_local std::vector<std::uint32_t> counts;
    tmp.resize(m);
    prof::AddBytes(prof::Phase::kSortIndex,
                   static_cast<std::uint64_t>(attrs.size()) * m * 2 *
                       sizeof(std::uint32_t));
    std::uint32_t* src = index->data();
    std::uint32_t* dst = tmp.data();
    for (std::size_t p = attrs.size(); p-- > 0;) {
      CountingPassForColumn(relation.column(attrs[p]), src, dst, m, &counts);
      std::swap(src, dst);
    }
    if (src != index->data()) {
      std::copy(src, src + m, index->data());
    }
    return;
  }

  if (attrs.size() == 1) {
    // Single-attribute fast path: one code array, no per-comparison loop.
    const std::int32_t* codes = relation.column(attrs[0]).codes.data();
    std::sort(index->begin(), index->end(),
              [codes](std::uint32_t a, std::uint32_t b) {
                return codes[a] < codes[b];
              });
    return;
  }
  // Hoist the code pointers so the comparator does not chase
  // relation -> column -> vector per column per comparison.
  std::vector<const std::int32_t*> cols;
  cols.reserve(attrs.size());
  for (ColumnId col : attrs) {
    cols.push_back(relation.column(col).codes.data());
  }
  std::sort(index->begin(), index->end(),
            [&cols](std::uint32_t a, std::uint32_t b) {
              for (const std::int32_t* codes : cols) {
                if (codes[a] != codes[b]) return codes[a] < codes[b];
              }
              return false;
            });
}

std::vector<std::uint32_t> SortRowsByList(const CodedRelation& relation,
                                          const std::vector<ColumnId>& attrs) {
  std::vector<std::uint32_t> index;
  SortRowsByListInto(relation, attrs, &index);
  return index;
}

std::vector<std::uint32_t> StableSortRowsByList(
    const CodedRelation& relation, const std::vector<ColumnId>& attrs,
    std::vector<std::uint32_t> base) {
  if (attrs.size() == 1) {
    const std::int32_t* codes = relation.column(attrs[0]).codes.data();
    std::stable_sort(base.begin(), base.end(),
                     [codes](std::uint32_t a, std::uint32_t b) {
                       return codes[a] < codes[b];
                     });
    return base;
  }
  std::stable_sort(base.begin(), base.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return CompareRowsOnList(relation, attrs, a, b) < 0;
                   });
  return base;
}

}  // namespace ocdd::rel
