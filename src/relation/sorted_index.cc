#include "relation/sorted_index.h"

#include <algorithm>
#include <numeric>

namespace ocdd::rel {

int CompareRowsOnList(const CodedRelation& relation,
                      const std::vector<ColumnId>& attrs, std::uint32_t row_a,
                      std::uint32_t row_b) {
  for (ColumnId col : attrs) {
    std::int32_t a = relation.code(row_a, col);
    std::int32_t b = relation.code(row_b, col);
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> SortRowsByList(const CodedRelation& relation,
                                          const std::vector<ColumnId>& attrs) {
  std::vector<std::uint32_t> index(relation.num_rows());
  std::iota(index.begin(), index.end(), 0);
  std::sort(index.begin(), index.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return CompareRowsOnList(relation, attrs, a, b) < 0;
            });
  return index;
}

std::vector<std::uint32_t> StableSortRowsByList(
    const CodedRelation& relation, const std::vector<ColumnId>& attrs,
    std::vector<std::uint32_t> base) {
  std::stable_sort(base.begin(), base.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return CompareRowsOnList(relation, attrs, a, b) < 0;
                   });
  return base;
}

}  // namespace ocdd::rel
