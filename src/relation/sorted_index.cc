#include "relation/sorted_index.h"

#include <algorithm>
#include <numeric>

namespace ocdd::rel {

int CompareRowsOnList(const CodedRelation& relation,
                      const std::vector<ColumnId>& attrs, std::uint32_t row_a,
                      std::uint32_t row_b) {
  for (ColumnId col : attrs) {
    std::int32_t a = relation.code(row_a, col);
    std::int32_t b = relation.code(row_b, col);
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

void SortRowsByListInto(const CodedRelation& relation,
                        const std::vector<ColumnId>& attrs,
                        std::vector<std::uint32_t>* index) {
  index->resize(relation.num_rows());
  std::iota(index->begin(), index->end(), 0);
  if (attrs.size() == 1) {
    // Single-attribute fast path: one code array, no per-comparison loop.
    const std::int32_t* codes = relation.column(attrs[0]).codes.data();
    std::sort(index->begin(), index->end(),
              [codes](std::uint32_t a, std::uint32_t b) {
                return codes[a] < codes[b];
              });
    return;
  }
  // Hoist the code pointers so the comparator does not chase
  // relation -> column -> vector per column per comparison.
  std::vector<const std::int32_t*> cols;
  cols.reserve(attrs.size());
  for (ColumnId col : attrs) {
    cols.push_back(relation.column(col).codes.data());
  }
  std::sort(index->begin(), index->end(),
            [&cols](std::uint32_t a, std::uint32_t b) {
              for (const std::int32_t* codes : cols) {
                if (codes[a] != codes[b]) return codes[a] < codes[b];
              }
              return false;
            });
}

std::vector<std::uint32_t> SortRowsByList(const CodedRelation& relation,
                                          const std::vector<ColumnId>& attrs) {
  std::vector<std::uint32_t> index;
  SortRowsByListInto(relation, attrs, &index);
  return index;
}

std::vector<std::uint32_t> StableSortRowsByList(
    const CodedRelation& relation, const std::vector<ColumnId>& attrs,
    std::vector<std::uint32_t> base) {
  if (attrs.size() == 1) {
    const std::int32_t* codes = relation.column(attrs[0]).codes.data();
    std::stable_sort(base.begin(), base.end(),
                     [codes](std::uint32_t a, std::uint32_t b) {
                       return codes[a] < codes[b];
                     });
    return base;
  }
  std::stable_sort(base.begin(), base.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return CompareRowsOnList(relation, attrs, a, b) < 0;
                   });
  return base;
}

}  // namespace ocdd::rel
