#include "relation/coded_relation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/prof.h"

namespace ocdd::rel {

namespace {

CodedColumn EncodeColumn(const Relation& relation, ColumnId col,
                         const EncodeOptions& options) {
  const Column& column = relation.column(col);
  std::size_t m = relation.num_rows();

  CodedColumn out;
  out.name = relation.schema().attribute(col).name;
  out.source_type = column.type();
  out.codes.resize(m);

  // Sort row ids by value (NULLs first); equal runs share a code.
  std::vector<std::uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0);

  if (options.force_lexicographic) {
    // Rank by rendered string; NULLs still first and mutually equal.
    std::vector<std::string> rendered(m);
    std::vector<bool> is_null(m);
    for (std::size_t r = 0; r < m; ++r) {
      is_null[r] = column.is_null(r);
      if (!is_null[r]) rendered[r] = column.ValueAt(r).ToString();
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) -> bool {
                if (is_null[a] != is_null[b]) return is_null[a];
                if (is_null[a]) return false;
                return rendered[a] < rendered[b];
              });
    std::int32_t next = -1;
    for (std::size_t i = 0; i < m; ++i) {
      std::uint32_t r = order[i];
      bool new_run =
          i == 0 ||
          is_null[order[i - 1]] != is_null[r] ||
          (!is_null[r] && rendered[order[i - 1]] != rendered[r]);
      if (new_run) ++next;
      out.codes[r] = next;
      if (is_null[r]) out.has_nulls = true;
    }
    out.num_distinct = m == 0 ? 0 : next + 1;
    return out;
  }

  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return column.CompareRows(a, b) < 0;
            });
  std::int32_t next = -1;
  for (std::size_t i = 0; i < m; ++i) {
    std::uint32_t r = order[i];
    if (i == 0 || column.CompareRows(order[i - 1], r) != 0) ++next;
    out.codes[r] = next;
    if (column.is_null(r)) out.has_nulls = true;
  }
  out.num_distinct = m == 0 ? 0 : next + 1;
  return out;
}

}  // namespace

void CodedColumn::SyncCompressedForms(bool bit_pack) {
  codes8.clear();
  codes16.clear();
  packed.clear();
  bits_per_code = 0;
  std::size_t m = codes.size();
  if (m > 0) {
    if (num_distinct <= 256) {
      codes8.resize(m);
      for (std::size_t r = 0; r < m; ++r) {
        codes8[r] = static_cast<std::uint8_t>(codes[r]);
      }
    } else if (num_distinct <= 65536) {
      codes16.resize(m);
      for (std::size_t r = 0; r < m; ++r) {
        codes16[r] = static_cast<std::uint16_t>(codes[r]);
      }
    }
  }
  if (bit_pack && m > 0) {
    std::uint32_t max_code =
        num_distinct > 0 ? static_cast<std::uint32_t>(num_distinct - 1) : 0;
    std::uint8_t bits = 1;
    while ((max_code >> bits) != 0) ++bits;
    bits_per_code = bits;
    packed.assign((m * bits + 63) / 64, 0);
    for (std::size_t r = 0; r < m; ++r) {
      std::uint64_t v = static_cast<std::uint32_t>(codes[r]);
      std::size_t bit = r * bits;
      std::size_t word = bit / 64;
      std::size_t off = bit % 64;
      packed[word] |= v << off;
      if (off + bits > 64) packed[word + 1] |= v >> (64 - off);
    }
  }
}

std::int32_t CodedColumn::PackedCodeAt(std::size_t row) const {
  assert(bits_per_code > 0);
  std::uint8_t bits = bits_per_code;
  std::size_t bit = row * bits;
  std::size_t word = bit / 64;
  std::size_t off = bit % 64;
  std::uint64_t v = packed[word] >> off;
  if (off + bits > 64) v |= packed[word + 1] << (64 - off);
  std::uint64_t mask = bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
  return static_cast<std::int32_t>(v & mask);
}

void CodedColumn::UnpackInto(std::vector<std::int32_t>* out) const {
  assert(bits_per_code > 0);
  out->resize(codes.size());
  for (std::size_t r = 0; r < codes.size(); ++r) {
    (*out)[r] = PackedCodeAt(r);
  }
}

CodeView NarrowView(const CodedColumn& column) {
  if (!column.codes8.empty()) {
    return CodeView{column.codes8.data(), CodeWidth::k8};
  }
  if (!column.codes16.empty()) {
    return CodeView{column.codes16.data(), CodeWidth::k16};
  }
  return CodeView{column.codes.data(), CodeWidth::k32};
}

CodedRelation CodedRelation::Encode(const Relation& relation,
                                    const EncodeOptions& options) {
  prof::ScopedTimer timer(prof::Phase::kEncode);
  CodedRelation out;
  out.num_rows_ = relation.num_rows();
  out.columns_.reserve(relation.num_columns());
  for (ColumnId c = 0; c < relation.num_columns(); ++c) {
    out.columns_.push_back(EncodeColumn(relation, c, options));
    out.columns_.back().SyncCompressedForms(options.bit_pack);
  }
  return out;
}

CodedRelation CodedRelation::FromColumns(std::vector<CodedColumn> columns) {
  CodedRelation out;
  out.num_rows_ = columns.empty() ? 0 : columns[0].codes.size();
  for (CodedColumn& c : columns) {
    assert(c.codes.size() == out.num_rows_);
    c.SyncCompressedForms(c.bits_per_code > 0);
  }
  out.columns_ = std::move(columns);
  return out;
}

double CodedRelation::ColumnEntropy(ColumnId col) const {
  const CodedColumn& c = columns_[col];
  if (num_rows_ == 0) return 0.0;
  std::unordered_map<std::int32_t, std::size_t> counts;
  counts.reserve(static_cast<std::size_t>(c.num_distinct) * 2);
  for (std::int32_t code : c.codes) ++counts[code];
  double h = 0.0;
  double m = static_cast<double>(num_rows_);
  for (const auto& [code, n] : counts) {
    double p = static_cast<double>(n) / m;
    h -= p * std::log(p);
  }
  return h;
}

CodedRelation CodedRelation::ProjectColumns(
    const std::vector<ColumnId>& cols) const {
  CodedRelation out;
  out.num_rows_ = num_rows_;
  out.columns_.reserve(cols.size());
  for (ColumnId c : cols) {
    assert(c < columns_.size());
    out.columns_.push_back(columns_[c]);
  }
  return out;
}

std::uint64_t CodedRelation::Fingerprint() const {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= kPrime;
    }
  };
  mix(num_rows_);
  mix(columns_.size());
  for (const CodedColumn& c : columns_) {
    mix(c.name.size());
    for (char ch : c.name) mix(static_cast<unsigned char>(ch));
    mix(static_cast<std::uint64_t>(c.num_distinct));
    mix(c.has_nulls ? 1 : 0);
    for (std::int32_t code : c.codes) {
      mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(code)));
    }
  }
  return h;
}

CodedRelation CodedRelation::HeadRows(std::size_t n) const {
  if (n >= num_rows_) return *this;
  CodedRelation out;
  out.num_rows_ = n;
  out.columns_.reserve(columns_.size());
  for (const CodedColumn& c : columns_) {
    CodedColumn trimmed = c;
    trimmed.codes.resize(n);
    // Re-densify: consumers (ListPartition, StrippedPartition) rely on the
    // invariant that codes are dense ranks in [0, num_distinct). Remapping
    // sorted-unique old codes to their index preserves the relative order.
    std::vector<std::int32_t> sorted(trimmed.codes);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (std::int32_t& code : trimmed.codes) {
      code = static_cast<std::int32_t>(
          std::lower_bound(sorted.begin(), sorted.end(), code) -
          sorted.begin());
    }
    trimmed.num_distinct = static_cast<std::int32_t>(sorted.size());
    trimmed.SyncCompressedForms(c.bits_per_code > 0);
    out.columns_.push_back(std::move(trimmed));
  }
  return out;
}

}  // namespace ocdd::rel
