#ifndef OCDD_RELATION_SORTED_INDEX_H_
#define OCDD_RELATION_SORTED_INDEX_H_

#include <cstdint>
#include <vector>

#include "relation/coded_relation.h"

namespace ocdd::rel {

/// Lexicographic three-way comparison of two rows over an attribute list
/// (paper Definition 2.1, the `⪯` operator). Returns <0, 0, >0.
int CompareRowsOnList(const CodedRelation& relation,
                      const std::vector<ColumnId>& attrs, std::uint32_t row_a,
                      std::uint32_t row_b);

/// Returns a permutation of row ids sorted lexicographically by `attrs`
/// (ascending, NULLS FIRST by construction of the codes). This is the
/// `generateIndex()` primitive of Algorithm 2.
std::vector<std::uint32_t> SortRowsByList(const CodedRelation& relation,
                                          const std::vector<ColumnId>& attrs);

/// `SortRowsByList` into a caller-owned buffer (resized to the row count),
/// so repeated checks can reuse one allocation. Single-attribute lists take
/// a fast path that compares the raw `int32` codes directly instead of
/// walking the id list per comparison; longer lists hoist the per-column
/// code pointers out of the comparator.
void SortRowsByListInto(const CodedRelation& relation,
                        const std::vector<ColumnId>& attrs,
                        std::vector<std::uint32_t>* index);

/// Like `SortRowsByList` but reorders `base` (a previously computed index
/// whose order is used as the tie-break via stable sort). Sorting an index
/// that is already ordered by a prefix of `attrs` is faster in practice and
/// keeps results deterministic.
std::vector<std::uint32_t> StableSortRowsByList(
    const CodedRelation& relation, const std::vector<ColumnId>& attrs,
    std::vector<std::uint32_t> base);

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_SORTED_INDEX_H_
