#include "relation/column.h"

#include <cassert>

namespace ocdd::rel {

Column Column::FromValues(DataType type, const std::vector<Value>& values) {
  Column col(type);
  for (const Value& v : values) col.Append(v);
  return col;
}

Value Column::ValueAt(std::size_t row) const {
  if (nulls_[row]) return Value::Null();
  switch (type_) {
    case DataType::kInt:
      return Value::Int(ints_[row]);
    case DataType::kDouble:
      return Value::Double(doubles_[row]);
    case DataType::kString:
      return Value::String(strings_[row]);
  }
  return Value::Null();
}

void Column::Append(const Value& v) {
  nulls_.push_back(v.is_null());
  switch (type_) {
    case DataType::kInt:
      assert(v.is_null() || v.is_int());
      ints_.push_back(v.is_int() ? v.int_value() : 0);
      break;
    case DataType::kDouble:
      assert(v.is_null() || v.is_int() || v.is_double());
      doubles_.push_back(v.is_double() ? v.double_value()
                         : v.is_int() ? static_cast<double>(v.int_value())
                                      : 0.0);
      break;
    case DataType::kString:
      assert(v.is_null() || v.is_string());
      strings_.push_back(v.is_string() ? v.string_value() : std::string());
      break;
  }
}

int Column::CompareRows(std::size_t a, std::size_t b) const {
  bool na = nulls_[a];
  bool nb = nulls_[b];
  if (na || nb) {
    if (na && nb) return 0;  // NULL = NULL
    return na ? -1 : 1;      // NULLS FIRST
  }
  switch (type_) {
    case DataType::kInt: {
      std::int64_t x = ints_[a];
      std::int64_t y = ints_[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kDouble: {
      double x = doubles_[a];
      double y = doubles_[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString: {
      int c = strings_[a].compare(strings_[b]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

}  // namespace ocdd::rel
