#include "relation/value.h"

#include <cstdio>

namespace ocdd::rel {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_int()) return std::to_string(int_value());
  if (is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", double_value());
    return buf;
  }
  return string_value();
}

namespace {

// Rank of the alternative for cross-kind comparisons: NULL < numbers < strings.
int KindRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_string()) return 2;
  return 1;
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  int ka = KindRank(a);
  int kb = KindRank(b);
  if (ka != kb) return ka < kb ? -1 : 1;
  switch (ka) {
    case 0:  // both NULL: SQL `SET ANSI_NULLS ON` semantics — NULL = NULL.
      return 0;
    case 1: {  // numeric
      double da = a.is_int() ? static_cast<double>(a.int_value())
                             : a.double_value();
      double db = b.is_int() ? static_cast<double>(b.int_value())
                             : b.double_value();
      if (a.is_int() && b.is_int()) {
        std::int64_t ia = a.int_value();
        std::int64_t ib = b.int_value();
        return ia < ib ? -1 : (ia > ib ? 1 : 0);
      }
      return CompareDoubles(da, db);
    }
    default: {  // strings
      const std::string& sa = a.string_value();
      const std::string& sb = b.string_value();
      int c = sa.compare(sb);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

}  // namespace ocdd::rel
