#ifndef OCDD_RELATION_VALUE_H_
#define OCDD_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace ocdd::rel {

/// Logical type of a column after type inference.
///
/// Columns are homogeneously typed; per-cell NULLs are tracked separately by
/// the column's null mask (see column.h). The discovery algorithms follow the
/// paper's semantics (§4.3): `NULL = NULL` and `NULLS FIRST` — both are
/// realized once during dictionary encoding, after which NULLs need no
/// special-casing anywhere.
enum class DataType {
  kInt,     ///< 64-bit signed integer, natural ordering.
  kDouble,  ///< IEEE double, natural ordering.
  kString,  ///< UTF-8 byte string, lexicographic (byte-wise) ordering.
};

const char* DataTypeName(DataType t);

/// A single cell value: NULL, integer, double, or string.
///
/// `Value` is the row-oriented interchange type used at relation-building
/// and result-reporting boundaries; the hot discovery loops never touch it
/// (they operate on integer codes, see coded_relation.h).
class Value {
 public:
  /// Constructs a NULL value.
  Value() : repr_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(std::int64_t v) { return Value(Repr(v)); }
  static Value Double(double v) { return Value(Repr(v)); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  std::int64_t int_value() const { return std::get<std::int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }

  /// Renders the value; NULL renders as the empty string.
  std::string ToString() const;

  /// Total order with NULL first and NULL == NULL; numeric types compare
  /// numerically across int/double, strings byte-wise. Comparing a number
  /// with a string orders the number first (deterministic but should not
  /// occur inside a typed column).
  ///
  /// Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }

 private:
  using Repr = std::variant<std::monostate, std::int64_t, double, std::string>;
  explicit Value(Repr r) : repr_(std::move(r)) {}

  Repr repr_;
};

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_VALUE_H_
