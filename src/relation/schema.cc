#include "relation/schema.h"

namespace ocdd::rel {

std::optional<std::size_t> Schema::FindColumn(const std::string& name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::size_t Schema::AddAttribute(Attribute a) {
  attributes_.push_back(std::move(a));
  return attributes_.size() - 1;
}

std::string Schema::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += DataTypeName(attributes_[i].type);
  }
  return out;
}

}  // namespace ocdd::rel
