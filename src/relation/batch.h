#ifndef OCDD_RELATION_BATCH_H_
#define OCDD_RELATION_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ingest_error.h"
#include "common/result.h"
#include "relation/csv.h"
#include "relation/relation.h"

namespace ocdd::rel {

/// Append/delete batches against a relation — the delta unit of the
/// incremental maintenance pipeline (docs/incremental.md).
///
/// A batch is a set of row deletions (by pre-batch row index) plus a list of
/// appended rows. Application semantics are *deletes first, then appends*:
/// delete indices always refer to the relation as it was before the batch,
/// and appended rows land after the surviving rows, in batch order. This
/// makes a batch's meaning independent of the order its lines were written
/// in, and composes: a "mixed" batch equals a delete-only batch followed by
/// an append-only batch.

/// One parsed batch. `deletes` is sorted and duplicate-free after parsing;
/// every append row has exactly the schema's width, cells NULL or matching
/// the column type.
struct RowBatch {
  std::vector<std::size_t> deletes;
  std::vector<std::vector<Value>> appends;

  bool empty() const { return deletes.empty() && appends.empty(); }
  std::size_t num_ops() const { return deletes.size() + appends.size(); }
};

/// Declared bounds on one batch text, enforced while scanning — the wire
/// format is untrusted bytes (it arrives over the serve socket or from
/// arbitrary files) and must reject adversarial input before buffering it.
struct BatchLimits {
  std::size_t max_text_bytes = 64u << 20;
  std::size_t max_line_bytes = 1u << 20;
  std::size_t max_ops = 10'000'000;
};

/// Batch parsing options. Malformed lines follow the CSV ingest contract:
/// kFail aborts with a structured IngestError, kSkip drops and counts the
/// line, kQuarantine additionally preserves its raw bytes.
struct BatchParseOptions {
  BadRowPolicy on_bad_row = BadRowPolicy::kFail;
  BatchLimits limits;
  /// NULL markers etc. for typed cell parsing; `force_lexicographic` is
  /// ignored (the target schema fixes each column's type).
  TypeInferenceOptions type_inference;
};

/// Ingest accounting for one batch parse — same shape as CsvIngestReport so
/// the CLI/JSON surfaces render both boundaries uniformly.
struct BatchIngestReport {
  /// Operation lines seen (parsed + rejected); header/blank/comment lines
  /// are not counted.
  std::uint64_t records_total = 0;
  std::uint64_t ops_parsed = 0;
  std::uint64_t rows_rejected = 0;
  IngestCounts rejected_by_code;
  std::vector<IngestError> samples;
  /// Raw rejected lines (kQuarantine only), terminators stripped.
  std::vector<std::string> quarantined_rows;

  bool clean() const { return rows_rejected == 0; }
};

/// A parsed batch plus its ingest accounting.
struct BatchParse {
  RowBatch batch;
  BatchIngestReport report;
};

/// Parses the line-based batch wire format against `schema`:
///
///   ocdd-batch 1          # header (required first non-blank line)
///   - 17                  # delete pre-batch row 17
///   + 3,foo,1.5           # append a row (CSV cells, typed by the schema)
///   + ,"",2.0             # empty cell = NULL; quoted empty = empty string
///
/// Blank lines and `#` comments are ignored. Delete indices are decimal row
/// numbers; duplicates collapse. Append cells use RFC-4180-style quoting
/// (separator/quotes/newlines inside quotes are NOT supported across lines —
/// one op per line). Cells must parse under the column's type: a non-integer
/// in a kInt column is a `value_out_of_range` rejection, not a silent NULL.
///
/// A malformed *header* is always fatal (there is no format version to parse
/// against), like a malformed CSV header. Everything else follows
/// `options.on_bad_row`. Delete indices are validated against the relation
/// at *apply* time, not here — the same batch text may be replayed against
/// relations of different sizes.
Result<BatchParse> ParseBatchText(const std::string& text,
                                  const Schema& schema,
                                  const BatchParseOptions& options = {});

/// Reads and parses a batch file from disk.
Result<BatchParse> ReadBatchFile(const std::string& path, const Schema& schema,
                                 const BatchParseOptions& options = {});

/// Canonical rendering of a batch (header, sorted deletes, appends in
/// order); ParseBatchText round-trips it against the same schema.
std::string WriteBatchText(const RowBatch& batch, const Schema& schema);

/// Applies `batch` to `relation`: drops the delete indices, then appends the
/// new rows. Out-of-range or (post-dedup) duplicate delete indices and
/// appends whose width/types don't match the schema are InvalidArgument —
/// apply is all-or-nothing, the input relation is never half-mutated.
Result<Relation> ApplyBatch(const Relation& relation, const RowBatch& batch);

}  // namespace ocdd::rel

#endif  // OCDD_RELATION_BATCH_H_
