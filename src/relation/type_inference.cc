#include "relation/type_inference.h"

#include <string>

#include "common/string_util.h"

namespace ocdd::rel {

bool IsNullMarker(const std::string& field, const TypeInferenceOptions& opts) {
  std::string_view stripped = StripAsciiWhitespace(field);
  for (const std::string& marker : opts.null_markers) {
    if (stripped == marker) return true;
  }
  return false;
}

DataType InferColumnType(const std::vector<std::string>& fields,
                         const TypeInferenceOptions& opts) {
  if (opts.force_lexicographic) return DataType::kString;
  bool all_int = true;
  bool all_double = true;
  bool any_value = false;
  for (const std::string& f : fields) {
    if (IsNullMarker(f, opts)) continue;
    any_value = true;
    std::string_view stripped = StripAsciiWhitespace(f);
    if (all_int && !ParseInt64(stripped).has_value()) all_int = false;
    if (!all_int && all_double && !ParseDouble(stripped).has_value()) {
      all_double = false;
    }
    if (!all_int && !all_double) return DataType::kString;
  }
  if (!any_value) return DataType::kString;
  if (all_int) return DataType::kInt;
  if (all_double) return DataType::kDouble;
  return DataType::kString;
}

Value ParseField(const std::string& field, DataType type,
                 const TypeInferenceOptions& opts) {
  if (IsNullMarker(field, opts)) return Value::Null();
  std::string_view stripped = StripAsciiWhitespace(field);
  switch (type) {
    case DataType::kInt: {
      auto v = ParseInt64(stripped);
      return v ? Value::Int(*v) : Value::Null();
    }
    case DataType::kDouble: {
      auto v = ParseDouble(stripped);
      return v ? Value::Double(*v) : Value::Null();
    }
    case DataType::kString:
      return Value::String(std::string(field));
  }
  return Value::Null();
}

}  // namespace ocdd::rel
