#ifndef OCDD_ENGINE_SUPERVISOR_H_
#define OCDD_ENGINE_SUPERVISOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "report/json_reader.h"

namespace ocdd::engine {

/// Supervised restarts for discovery runs (`ocdd supervise`, see
/// docs/robustness.md).
///
/// The supervisor forks a child run, captures its stdout (one JSON report),
/// and classifies the outcome:
///  * crash (killed by a signal)            → restart with backoff;
///  * clean exit, report `completed: true`  → success;
///  * clean exit, retryable `stop_reason`   → restart with backoff
///    (deadline / check_budget / memory_budget / cancelled / fault_injected
///    — budgets are per attempt, so a restarted run makes fresh progress
///    from its checkpoint);
///  * clean exit, structural stop           → give up (a `level_cap` will
///    recur on every retry);
///  * non-zero exit                         → give up (input/usage errors
///    don't heal).
/// Restarting is only useful when the child runs with `--checkpoint`; from
/// the second attempt on, `resume_flag` is appended to the child argv so
/// each retry continues from the newest snapshot generation.

struct SuperviseOptions {
  /// Child argv; element 0 is the executable (resolved via PATH).
  std::vector<std::string> child_args;

  /// Total attempts, first run included. At least 1.
  int max_attempts = 5;

  /// Exponential backoff between attempts.
  double initial_backoff_seconds = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 30.0;

  /// Give up after this many consecutive *clean-exit stopped* attempts whose
  /// `stop_state.level` did not advance — each attempt burns its budget
  /// without completing a single further level, so retries cannot converge.
  /// Crashes are exempt (a crash loses up to one level legitimately).
  int no_progress_limit = 2;

  /// Appended to the child argv from the second attempt on; empty disables.
  std::string resume_flag = "--resume";
};

/// One child run, as observed by the supervisor.
struct SuperviseAttempt {
  int exit_code = 0;    ///< child exit status; -1 when killed by a signal
  int term_signal = 0;  ///< terminating signal, 0 for clean exits
  bool json_valid = false;  ///< stdout parsed as a JSON report
  bool completed = false;   ///< report's `completed`
  std::string stop_reason;  ///< report's `stop_reason`
  std::uint64_t stop_checks = 0;
  std::size_t stop_level = 0;
  std::size_t stop_frontier = 0;
  /// "success", "retry_crash", "retry_stopped", or "give_up".
  std::string classification;
  /// Sleep applied after this attempt (0 for the last one).
  double backoff_seconds = 0.0;
};

struct SuperviseResult {
  bool success = false;
  /// Why the supervisor gave up; empty on success.
  std::string give_up_reason;
  std::vector<SuperviseAttempt> attempts;
  /// The last attempt's parsed report, when any attempt produced one.
  bool have_report = false;
  report::JsonValue final_report;
};

/// Runs the child to success or exhaustion per `options`. Blocking.
SuperviseResult SuperviseRun(const SuperviseOptions& options);

/// One merged JSON document: the final child report (when present) plus a
/// "supervisor" member recording every attempt and the overall outcome.
std::string MergedResultJson(const SuperviseResult& result);

}  // namespace ocdd::engine

#endif  // OCDD_ENGINE_SUPERVISOR_H_
