#ifndef OCDD_ENGINE_SUPERVISOR_H_
#define OCDD_ENGINE_SUPERVISOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "report/json_reader.h"

namespace ocdd::engine {

/// Supervised restarts for discovery runs (`ocdd supervise`, see
/// docs/robustness.md) plus the worker-process primitives the `ocdd serve`
/// daemon pools (docs/serving.md).
///
/// The supervisor forks a child run, captures its stdout (one JSON report),
/// and classifies the outcome:
///  * crash (killed by a signal)            → restart with backoff;
///  * clean exit, report `completed: true`  → success;
///  * clean exit, retryable `stop_reason`   → restart with backoff
///    (deadline / check_budget / memory_budget / cancelled / fault_injected
///    — budgets are per attempt, so a restarted run makes fresh progress
///    from its checkpoint);
///  * clean exit, structural stop           → give up (a `level_cap` will
///    recur on every retry);
///  * non-zero exit                         → give up (input/usage errors
///    don't heal).
/// Restarting is only useful when the child runs with `--checkpoint`; from
/// the second attempt on, `resume_flag` is appended to the child argv so
/// each retry continues from the newest snapshot generation.

// ---------------------------------------------------------------------------
// Worker-process primitives (shared by supervise and serve)
// ---------------------------------------------------------------------------

/// One child run, as observed from the parent.
struct WorkerOutcome {
  int exit_code = 0;    ///< child exit status; -1 when killed by a signal
  int term_signal = 0;  ///< terminating signal, 0 for clean exits
  std::string stdout_text;
  bool spawn_failed = false;
  /// The run deadline passed and the child was SIGINTed (and SIGKILLed after
  /// the grace period if it did not drain). The child may still have exited
  /// cleanly with a partial JSON report — the cooperative-cancel contract.
  bool timed_out = false;
  /// `interrupt` flipped mid-run and the child was SIGINTed. Distinct from
  /// `timed_out` so a drain-stopped worker is not misreported as slow.
  bool interrupted = false;
};

struct WorkerRunOptions {
  /// Wall-clock limit for the child; 0 = none. At the deadline the child
  /// gets SIGINT (cooperative cancel — discovery children drain to a
  /// checkpoint and print partial JSON), then SIGKILL after
  /// `kill_grace_seconds` more.
  double timeout_seconds = 0.0;
  double kill_grace_seconds = 2.0;
  /// Optional external soft-stop (the serve daemon's drain): when it becomes
  /// true the child is SIGINTed exactly as on timeout. Not owned.
  const std::atomic<bool>* interrupt = nullptr;
};

/// fork + exec with the child's stdout captured into a pipe, stderr passed
/// through; enforces the timeout/interrupt escalation above. Blocking.
WorkerOutcome RunWorkerProcess(const std::vector<std::string>& args,
                               const WorkerRunOptions& options = {});

/// The restart-classification primitive shared by `ocdd supervise` and the
/// serve daemon's per-request retry loop — one code path decides what a
/// child outcome means.
enum class ChildVerdict {
  kCompleted,       ///< clean exit, report says completed
  kCrash,           ///< killed by a signal → retry heals
  kRetryableStop,   ///< clean stop whose budget is per attempt → retry heals
  kStructuralStop,  ///< clean stop that recurs deterministically (level_cap)
  kChildError,      ///< non-zero exit → input/usage error, don't retry
  kNoReport,        ///< clean exit but stdout was not a JSON report object
};

const char* ChildVerdictName(ChildVerdict verdict);

ChildVerdict ClassifyChild(int exit_code, int term_signal, bool json_valid,
                           bool completed, const std::string& stop_reason);

// ---------------------------------------------------------------------------
// Supervised restarts
// ---------------------------------------------------------------------------

struct SuperviseOptions {
  /// Child argv; element 0 is the executable (resolved via PATH).
  std::vector<std::string> child_args;

  /// Total attempts, first run included. At least 1.
  int max_attempts = 5;

  /// Exponential backoff between attempts.
  double initial_backoff_seconds = 0.5;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 30.0;

  /// Give up after this many consecutive *clean-exit stopped* attempts whose
  /// `stop_state.level` did not advance — each attempt burns its budget
  /// without completing a single further level, so retries cannot converge.
  /// Crashes are exempt (a crash loses up to one level legitimately).
  int no_progress_limit = 2;

  /// Appended to the child argv from the second attempt on; empty disables.
  std::string resume_flag = "--resume";
};

/// One child run, as observed by the supervisor.
struct SuperviseAttempt {
  int exit_code = 0;    ///< child exit status; -1 when killed by a signal
  int term_signal = 0;  ///< terminating signal, 0 for clean exits
  bool json_valid = false;  ///< stdout parsed as a JSON report
  bool completed = false;   ///< report's `completed`
  std::string stop_reason;  ///< report's `stop_reason`
  std::uint64_t stop_checks = 0;
  std::size_t stop_level = 0;
  std::size_t stop_frontier = 0;
  /// "success", "retry_crash", "retry_stopped", or "give_up".
  std::string classification;
  /// Sleep applied after this attempt (0 for the last one).
  double backoff_seconds = 0.0;
};

/// Why a supervised run gave up — the machine-readable verdict behind
/// `give_up_reason`. Emitted under `supervisor.give_up_kind` in the merged
/// JSON so downstream restart logic (the serve daemon, dashboards) can react
/// without parsing prose; in particular the no-progress guard is now visible
/// in the summary, not only via exit code 4.
enum class GiveUpKind {
  kNone = 0,           ///< the run succeeded
  kSpawnFailed,        ///< the child could not be started at all
  kChildError,         ///< non-zero child exit (input/usage errors)
  kNoReport,           ///< child stdout was not a JSON report
  kNonRetryableStop,   ///< structural stop (level_cap) recurs on retry
  kNoProgress,         ///< no-progress guard: stuck at the same level
  kAttemptsExhausted,  ///< attempt budget spent while still retryable
};

/// Stable lower_snake_case name (e.g. "no_progress").
const char* GiveUpKindName(GiveUpKind kind);

struct SuperviseResult {
  bool success = false;
  /// Why the supervisor gave up; empty on success.
  std::string give_up_reason;
  /// Machine-readable give-up classification; kNone on success.
  GiveUpKind give_up_kind = GiveUpKind::kNone;
  std::vector<SuperviseAttempt> attempts;
  /// The last attempt's parsed report, when any attempt produced one.
  bool have_report = false;
  report::JsonValue final_report;
};

/// Runs the child to success or exhaustion per `options`. Blocking.
SuperviseResult SuperviseRun(const SuperviseOptions& options);

/// One merged JSON document: the final child report (when present) plus a
/// "supervisor" member recording every attempt and the overall outcome.
std::string MergedResultJson(const SuperviseResult& result);

}  // namespace ocdd::engine

#endif  // OCDD_ENGINE_SUPERVISOR_H_
