#include "engine/executor.h"

#include <algorithm>

#include "relation/sorted_index.h"

namespace ocdd::engine {

bool Executor::VerifyPhysicalOrder() const {
  if (physical_.empty()) return true;
  for (std::uint32_t row = 0; row + 1 < relation_.num_rows(); ++row) {
    if (rel::CompareRowsOnList(relation_, physical_, row, row + 1) > 0) {
      return false;
    }
  }
  return true;
}

Plan Executor::Explain(const Query& query) const {
  Plan plan;
  if (kb_ != nullptr) {
    plan.simplified_order_by = kb_->SimplifyOrderBy(query.order_by).columns;
  } else {
    // Without OD knowledge only exact duplicates can be dropped.
    for (rel::ColumnId c : query.order_by) {
      if (std::find(plan.simplified_order_by.begin(),
                    plan.simplified_order_by.end(),
                    c) == plan.simplified_order_by.end()) {
        plan.simplified_order_by.push_back(c);
      }
    }
  }

  // Sort elision: the physical order must imply the simplified clause.
  // Discovered ODs remain valid on any filtered subset (removing rows can
  // never create a violating pair), so the reasoning is filter-safe.
  if (plan.simplified_order_by.empty()) {
    plan.sort_elided = true;
  } else if (!physical_.empty()) {
    if (kb_ != nullptr) {
      plan.sort_elided =
          kb_->Orders(od::AttributeList(physical_),
                      od::AttributeList(plan.simplified_order_by));
    } else {
      // Prefix rule only: physically sorted by (a,b,...) serves any prefix.
      plan.sort_elided =
          plan.simplified_order_by.size() <= physical_.size() &&
          std::equal(plan.simplified_order_by.begin(),
                     plan.simplified_order_by.end(), physical_.begin());
    }
  }

  plan.explanation = "scan";
  if (!query.filters.empty()) plan.explanation += "->filter";
  if (!plan.sort_elided) {
    plan.explanation += "->sort(";
    for (std::size_t i = 0; i < plan.simplified_order_by.size(); ++i) {
      if (i > 0) plan.explanation += ",";
      plan.explanation +=
          relation_.column_name(plan.simplified_order_by[i]);
    }
    plan.explanation += ")";
  } else if (!query.order_by.empty()) {
    plan.explanation += " (sort elided)";
  }
  if (query.limit != 0) plan.explanation += "->limit";
  return plan;
}

std::vector<std::uint32_t> Executor::Execute(const Query& query) const {
  Plan plan = Explain(query);

  // Scan + filter, in physical (row id) order.
  std::vector<std::uint32_t> rows;
  rows.reserve(relation_.num_rows());
  for (std::uint32_t row = 0; row < relation_.num_rows(); ++row) {
    bool keep = true;
    for (const Predicate& p : query.filters) {
      std::int32_t code = relation_.code(row, p.column);
      bool ok = p.op == Predicate::Op::kEq   ? code == p.code
                : p.op == Predicate::Op::kLe ? code <= p.code
                                             : code >= p.code;
      if (!ok) {
        keep = false;
        break;
      }
    }
    if (keep) rows.push_back(row);
  }

  if (!plan.sort_elided && !plan.simplified_order_by.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return rel::CompareRowsOnList(
                                  relation_, plan.simplified_order_by, a,
                                  b) < 0;
                     });
  }

  if (query.limit != 0 && rows.size() > query.limit) {
    rows.resize(query.limit);
  }
  return rows;
}

bool Executor::IsSorted(const std::vector<std::uint32_t>& rows,
                        const SortSpec& spec) const {
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    if (rel::CompareRowsOnList(relation_, spec, rows[i], rows[i + 1]) > 0) {
      return false;
    }
  }
  return true;
}

}  // namespace ocdd::engine
