#include "engine/supervisor.h"

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

namespace ocdd::engine {

namespace {

void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) *
                                 1e9);
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

bool IsRetryableStop(const std::string& reason) {
  // Budget and cancellation stops heal on retry (budgets are per attempt and
  // the checkpoint preserves progress); structural caps (level_cap) recur
  // deterministically, and "none" on an incomplete run is a reporting bug.
  return reason == "deadline" || reason == "check_budget" ||
         reason == "memory_budget" || reason == "cancelled" ||
         reason == "fault_injected";
}

}  // namespace

WorkerOutcome RunWorkerProcess(const std::vector<std::string>& args,
                               const WorkerRunOptions& options) {
  using Clock = std::chrono::steady_clock;
  WorkerOutcome out;
  if (args.empty()) {
    out.spawn_failed = true;
    return out;
  }
  int fds[2];
  if (::pipe(fds) != 0) {
    out.spawn_failed = true;
    return out;
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    out.spawn_failed = true;
    return out;
  }
  if (pid == 0) {
    // Own process group: escalation signals reach the worker's helpers and
    // grandchildren too, and a SIGKILLed worker cannot leave an orphan
    // holding the stdout pipe open (which would stall the read loop below
    // far past the kill).
    ::setpgid(0, 0);
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    _exit(127);  // exec failed
  }
  ::close(fds[1]);
  // Mirror the child's setpgid: whichever side runs first establishes the
  // group, so the group kill below never races the exec.
  ::setpgid(pid, pid);

  const bool have_deadline = options.timeout_seconds > 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             have_deadline ? options.timeout_seconds : 0.0));
  Clock::time_point kill_at{};  // armed when SIGINT is sent
  bool sigint_sent = false;

  char buf[1 << 14];
  for (;;) {
    // Escalation ladder: deadline/interrupt → SIGINT (the child drains to a
    // checkpoint and prints partial JSON), then SIGKILL after the grace
    // period. The pipe stays open through both so the drain output is
    // captured.
    const Clock::time_point now = Clock::now();
    if (!sigint_sent) {
      const bool interrupted =
          options.interrupt != nullptr &&
          options.interrupt->load(std::memory_order_relaxed);
      if (interrupted || (have_deadline && now >= deadline)) {
        if (::kill(-pid, SIGINT) != 0) ::kill(pid, SIGINT);
        sigint_sent = true;
        out.timed_out = !interrupted;
        out.interrupted = interrupted;
        kill_at = now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                std::max(0.0, options.kill_grace_seconds)));
      }
    } else if (now >= kill_at) {
      if (::kill(-pid, SIGKILL) != 0) ::kill(pid, SIGKILL);
      kill_at = now + std::chrono::hours(24);  // send it once
    }

    struct pollfd pfd;
    pfd.fd = fds[0];
    pfd.events = POLLIN;
    int rc = ::poll(&pfd, 1, 50);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;  // timeout tick: re-evaluate the ladder
    ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.stdout_text.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFSIGNALED(status)) {
    out.exit_code = -1;
    out.term_signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    out.exit_code = WEXITSTATUS(status);
  }
  return out;
}

const char* ChildVerdictName(ChildVerdict verdict) {
  switch (verdict) {
    case ChildVerdict::kCompleted:
      return "completed";
    case ChildVerdict::kCrash:
      return "crash";
    case ChildVerdict::kRetryableStop:
      return "retryable_stop";
    case ChildVerdict::kStructuralStop:
      return "structural_stop";
    case ChildVerdict::kChildError:
      return "child_error";
    case ChildVerdict::kNoReport:
      return "no_report";
  }
  return "unknown";
}

ChildVerdict ClassifyChild(int exit_code, int term_signal, bool json_valid,
                           bool completed, const std::string& stop_reason) {
  if (term_signal != 0) return ChildVerdict::kCrash;
  if (exit_code != 0) return ChildVerdict::kChildError;
  if (!json_valid) return ChildVerdict::kNoReport;
  if (completed) return ChildVerdict::kCompleted;
  return IsRetryableStop(stop_reason) ? ChildVerdict::kRetryableStop
                                      : ChildVerdict::kStructuralStop;
}

const char* GiveUpKindName(GiveUpKind kind) {
  switch (kind) {
    case GiveUpKind::kNone:
      return "none";
    case GiveUpKind::kSpawnFailed:
      return "spawn_failed";
    case GiveUpKind::kChildError:
      return "child_error";
    case GiveUpKind::kNoReport:
      return "no_report";
    case GiveUpKind::kNonRetryableStop:
      return "non_retryable_stop";
    case GiveUpKind::kNoProgress:
      return "no_progress";
    case GiveUpKind::kAttemptsExhausted:
      return "attempts_exhausted";
  }
  return "unknown";
}

SuperviseResult SuperviseRun(const SuperviseOptions& options) {
  SuperviseResult result;
  if (options.child_args.empty()) {
    result.give_up_reason = "no child command";
    result.give_up_kind = GiveUpKind::kSpawnFailed;
    return result;
  }
  const int max_attempts = std::max(1, options.max_attempts);
  double backoff = options.initial_backoff_seconds;
  int no_progress = 0;
  std::size_t prev_stop_level = 0;
  bool have_prev_stop = false;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<std::string> args = options.child_args;
    if (attempt > 0 && !options.resume_flag.empty() &&
        std::find(args.begin(), args.end(), options.resume_flag) ==
            args.end()) {
      args.push_back(options.resume_flag);
    }

    WorkerOutcome child = RunWorkerProcess(args);
    if (child.spawn_failed) {
      result.give_up_reason = "failed to spawn child process";
      result.give_up_kind = GiveUpKind::kSpawnFailed;
      return result;
    }

    SuperviseAttempt rec;
    rec.exit_code = child.exit_code;
    rec.term_signal = child.term_signal;

    Result<report::JsonValue> parsed = report::ParseJson(child.stdout_text);
    if (parsed.ok()) {
      const report::JsonValue& doc = parsed.value();
      rec.json_valid = doc.kind() == report::JsonValue::Kind::kObject;
      if (rec.json_valid) {
        rec.completed = doc["completed"].bool_value();
        rec.stop_reason = doc["stop_reason"].string_value();
        const report::JsonValue& stop = doc["stop_state"];
        rec.stop_checks =
            static_cast<std::uint64_t>(stop["checks"].number_value());
        rec.stop_level =
            static_cast<std::size_t>(stop["level"].number_value());
        rec.stop_frontier =
            static_cast<std::size_t>(stop["frontier_size"].number_value());
        result.final_report = doc;
        result.have_report = true;
      }
    }

    const bool last_attempt = attempt + 1 >= max_attempts;
    const ChildVerdict verdict =
        ClassifyChild(rec.exit_code, rec.term_signal, rec.json_valid,
                      rec.completed, rec.stop_reason);
    switch (verdict) {
      case ChildVerdict::kCrash:
        // Progress tracking is not advanced: the next clean stop is compared
        // against the last clean stop, not the crash.
        rec.classification = last_attempt ? "give_up" : "retry_crash";
        if (last_attempt) {
          result.give_up_kind = GiveUpKind::kAttemptsExhausted;
        }
        break;
      case ChildVerdict::kChildError:
        rec.classification = "give_up";
        result.give_up_kind = GiveUpKind::kChildError;
        result.give_up_reason =
            "child exited with code " + std::to_string(rec.exit_code);
        break;
      case ChildVerdict::kNoReport:
        rec.classification = "give_up";
        result.give_up_kind = GiveUpKind::kNoReport;
        result.give_up_reason = "child produced no parseable JSON report";
        break;
      case ChildVerdict::kCompleted:
        rec.classification = "success";
        result.success = true;
        break;
      case ChildVerdict::kStructuralStop:
        rec.classification = "give_up";
        result.give_up_kind = GiveUpKind::kNonRetryableStop;
        result.give_up_reason =
            "stop reason '" + rec.stop_reason + "' is not retryable";
        break;
      case ChildVerdict::kRetryableStop:
        if (have_prev_stop && rec.stop_level <= prev_stop_level) {
          ++no_progress;
        } else {
          no_progress = 0;
        }
        prev_stop_level = rec.stop_level;
        have_prev_stop = true;
        if (no_progress >= options.no_progress_limit) {
          rec.classification = "give_up";
          result.give_up_kind = GiveUpKind::kNoProgress;
          result.give_up_reason =
              "no level progress across " + std::to_string(no_progress + 1) +
              " stopped attempts (stuck at level " +
              std::to_string(rec.stop_level) + ")";
        } else {
          rec.classification = last_attempt ? "give_up" : "retry_stopped";
          if (last_attempt) {
            result.give_up_kind = GiveUpKind::kAttemptsExhausted;
          }
        }
        break;
    }

    const bool retrying = rec.classification == "retry_crash" ||
                          rec.classification == "retry_stopped";
    if (retrying) {
      rec.backoff_seconds = std::min(backoff, options.max_backoff_seconds);
    }
    result.attempts.push_back(rec);

    if (result.success || rec.classification == "give_up") {
      if (result.give_up_reason.empty() && !result.success) {
        result.give_up_reason =
            "attempt budget exhausted (" + std::to_string(max_attempts) +
            " attempts)";
      }
      if (result.success) result.give_up_kind = GiveUpKind::kNone;
      return result;
    }
    SleepSeconds(rec.backoff_seconds);
    backoff *= options.backoff_multiplier;
  }
  // Unreachable: the loop always returns on the last attempt.
  result.give_up_reason = "attempt budget exhausted";
  result.give_up_kind = GiveUpKind::kAttemptsExhausted;
  return result;
}

std::string MergedResultJson(const SuperviseResult& result) {
  using report::JsonValue;
  std::map<std::string, JsonValue> root;
  if (result.have_report) {
    root = result.final_report.object();
  }

  std::vector<JsonValue> attempts;
  attempts.reserve(result.attempts.size());
  for (const SuperviseAttempt& a : result.attempts) {
    std::map<std::string, JsonValue> rec;
    rec["exit_code"] = JsonValue::Number(a.exit_code);
    rec["term_signal"] = JsonValue::Number(a.term_signal);
    rec["completed"] = JsonValue::Bool(a.completed);
    rec["stop_reason"] = JsonValue::String(a.stop_reason);
    rec["stop_level"] = JsonValue::Number(static_cast<double>(a.stop_level));
    rec["classification"] = JsonValue::String(a.classification);
    rec["backoff_seconds"] = JsonValue::Number(a.backoff_seconds);
    attempts.push_back(JsonValue::Object(std::move(rec)));
  }

  std::map<std::string, JsonValue> sup;
  sup["success"] = JsonValue::Bool(result.success);
  sup["num_attempts"] =
      JsonValue::Number(static_cast<double>(result.attempts.size()));
  sup["give_up_reason"] = JsonValue::String(result.give_up_reason);
  sup["give_up_kind"] =
      JsonValue::String(GiveUpKindName(result.give_up_kind));
  sup["attempts"] = JsonValue::Array(std::move(attempts));
  root["supervisor"] = JsonValue::Object(std::move(sup));

  return report::SerializeJson(JsonValue::Object(std::move(root)));
}

}  // namespace ocdd::engine
