#ifndef OCDD_ENGINE_EXECUTOR_H_
#define OCDD_ENGINE_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "optimizer/order_by_rewrite.h"
#include "relation/coded_relation.h"

namespace ocdd::engine {

/// A minimal query executor demonstrating the paper's headline application
/// (§1, §6): order dependencies let the optimizer rewrite `ORDER BY` clauses
/// and *elide sorts entirely* when the table's physical order already
/// implies the requested one — the optimization the paper reports yielding
/// "significant speedups" inside IBM DB2 [17].
///
/// The engine is deliberately small: scan → filter → (sort?) → limit over a
/// CodedRelation, returning row ids. What it demonstrates is real, though:
/// the semantic contract that OD-based rewriting never changes query
/// results, and the measurable cost of the sorts it removes
/// (`bench_optimizer`).

/// An ORDER BY specification: ascending column list (the paper's
/// unidirectional OD model).
using SortSpec = std::vector<rel::ColumnId>;

/// A filter on one column, compared against a *code* (rank) constant —
/// order-preserving encoding makes rank predicates equivalent to value
/// predicates.
struct Predicate {
  enum class Op { kEq, kLe, kGe };

  rel::ColumnId column = 0;
  Op op = Op::kEq;
  std::int32_t code = 0;
};

/// SELECT * FROM t WHERE <filters, ANDed> ORDER BY <order_by> LIMIT <limit>.
struct Query {
  std::vector<Predicate> filters;
  SortSpec order_by;
  std::size_t limit = 0;  ///< 0 = no limit
};

/// The physical plan chosen for a query (EXPLAIN output).
struct Plan {
  /// ORDER BY after OD-based simplification (dropped duplicates, constants,
  /// prefix-ordered columns).
  SortSpec simplified_order_by;
  /// True when the table's declared physical order already implies the
  /// simplified clause — no sort operator at all.
  bool sort_elided = false;
  /// Human-readable one-liner, e.g. "scan→filter→limit (sort elided: ...)".
  std::string explanation;
};

/// Executes queries over one relation, consulting an optional OD knowledge
/// base for clause simplification and sort elision.
class Executor {
 public:
  /// `kb` may be null (no OD reasoning). The caller keeps both alive.
  Executor(const rel::CodedRelation& relation,
           const opt::OdKnowledgeBase* kb = nullptr)
      : relation_(relation), kb_(kb) {}

  /// Declares that the relation's rows are physically sorted by `spec`
  /// (ascending, lexicographic). Not verified here; see
  /// `VerifyPhysicalOrder`.
  void DeclarePhysicalOrder(SortSpec spec) { physical_ = std::move(spec); }

  /// True iff the rows really are sorted by the declared physical order.
  bool VerifyPhysicalOrder() const;

  /// Chooses the plan without running it.
  Plan Explain(const Query& query) const;

  /// Runs the query; returns row ids in output order.
  std::vector<std::uint32_t> Execute(const Query& query) const;

  /// Checks that `rows` is sorted under `spec` — the semantic contract any
  /// plan must satisfy; exposed for tests.
  bool IsSorted(const std::vector<std::uint32_t>& rows,
                const SortSpec& spec) const;

 private:
  const rel::CodedRelation& relation_;
  const opt::OdKnowledgeBase* kb_;
  SortSpec physical_;
};

}  // namespace ocdd::engine

#endif  // OCDD_ENGINE_EXECUTOR_H_
