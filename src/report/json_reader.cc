#include "report/json_reader.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "report/json_writer.h"

namespace ocdd::report {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {
const JsonValue& SharedNull() {
  static const JsonValue& null = *new JsonValue();
  return null;
}
}  // namespace

const JsonValue& JsonValue::operator[](const std::string& key) const {
  if (kind_ != Kind::kObject) return SharedNull();
  auto it = object_.find(key);
  return it == object_.end() ? SharedNull() : it->second;
}

const JsonValue& JsonValue::operator[](std::size_t index) const {
  if (kind_ != Kind::kArray || index >= array_.size()) return SharedNull();
  return array_[index];
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case JsonValue::Kind::kNull:
      return true;
    case JsonValue::Kind::kBool:
      return a.bool_ == b.bool_;
    case JsonValue::Kind::kNumber:
      return a.number_ == b.number_;
    case JsonValue::Kind::kString:
      return a.string_ == b.string_;
    case JsonValue::Kind::kArray:
      return a.array_ == b.array_;
    case JsonValue::Kind::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

namespace {

/// Recursive-descent parser over a string view with position tracking.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    OCDD_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    std::size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > 128) return Err("nesting too deep");
    struct DepthGuard {
      int& d;
      ~DepthGuard() { --d; }
    } guard{depth_};
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      OCDD_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    if (ConsumeWord("null")) return JsonValue();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    std::map<std::string, JsonValue> members;
    SkipWs();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      OCDD_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      OCDD_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members[std::move(key)] = std::move(value);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Err("expected ',' or '}'");
    }
    return JsonValue::Object(std::move(members));
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    for (;;) {
      OCDD_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Err("expected ',' or ']'");
    }
    return JsonValue::Array(std::move(items));
  }

  Result<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
            }
            // The writer only emits \u00xx for control bytes; decode the
            // BMP code point as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
        continue;
      }
      out += c;
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        digits = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
        ++pos_;
      }
      eat_digits();
    }
    if (!digits) return Err("malformed number");
    return JsonValue::Number(
        std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void SerializeInto(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.bool_value() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.10g", v.number_value());
      out += buf;
      break;
    }
    case JsonValue::Kind::kString:
      out += '"';
      out += JsonEscape(v.string_value());
      out += '"';
      break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.array()) {
        if (!first) out += ',';
        first = false;
        SerializeInto(item, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += JsonEscape(key);
        out += "\":";
        SerializeInto(value, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string SerializeJson(const JsonValue& value) {
  std::string out;
  SerializeInto(value, out);
  return out;
}

Result<std::vector<ReportDiffEntry>> DiffReports(const JsonValue& before,
                                                 const JsonValue& after) {
  const JsonValue& alg_a = before["algorithm"];
  const JsonValue& alg_b = after["algorithm"];
  if (alg_a.kind() != JsonValue::Kind::kString ||
      alg_b.kind() != JsonValue::Kind::kString) {
    return Status::InvalidArgument("not ocdd reports (missing 'algorithm')");
  }
  if (!(alg_a == alg_b)) {
    return Status::InvalidArgument(
        "cannot diff reports from different algorithms: " +
        alg_a.string_value() + " vs " + alg_b.string_value());
  }

  std::vector<ReportDiffEntry> out;
  // Every array-valued top-level member in either document is a dependency
  // collection; compare as sets of canonical renderings.
  std::set<std::string> collections;
  for (const auto& [key, value] : before.object()) {
    if (value.kind() == JsonValue::Kind::kArray) collections.insert(key);
  }
  for (const auto& [key, value] : after.object()) {
    if (value.kind() == JsonValue::Kind::kArray) collections.insert(key);
  }
  for (const std::string& collection : collections) {
    std::set<std::string> a;
    std::set<std::string> b;
    for (const JsonValue& item : before[collection].array()) {
      a.insert(SerializeJson(item));
    }
    for (const JsonValue& item : after[collection].array()) {
      b.insert(SerializeJson(item));
    }
    for (const std::string& gone : a) {
      if (b.count(gone) == 0) {
        out.push_back(ReportDiffEntry{ReportDiffEntry::Change::kRemoved,
                                      collection, gone});
      }
    }
    for (const std::string& added : b) {
      if (a.count(added) == 0) {
        out.push_back(ReportDiffEntry{ReportDiffEntry::Change::kAdded,
                                      collection, added});
      }
    }
  }
  return out;
}

}  // namespace ocdd::report
