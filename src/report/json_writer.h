#ifndef OCDD_REPORT_JSON_WRITER_H_
#define OCDD_REPORT_JSON_WRITER_H_

#include <string>

#include "algo/fastod/fastod.h"
#include "algo/fastod/fastod_bid.h"
#include "common/prof.h"
#include "algo/fd/tane.h"
#include "algo/order/order_discover.h"
#include "core/approximate.h"
#include "core/ocd_discover.h"
#include "relation/coded_relation.h"
#include "relation/csv.h"

namespace ocdd::report {

/// JSON serialization of discovery results, for downstream tooling
/// (dashboards, Metanome-style result stores, diffing between profiling
/// runs). The writer emits a stable, documented schema; attribute lists are
/// arrays of column *names* so the output is self-describing.
///
/// Escaping covers the JSON string escape set (quotes, backslash, control
/// characters); all numbers are emitted as plain decimal literals.

/// `{"lists": {"lhs": [...], "rhs": [...]}}`-style rendering helpers.
std::string JsonEscape(const std::string& s);

/// An OCDDISCOVER run:
/// `{"algorithm":"ocddiscover","num_rows":..,"num_columns":..,
///   "completed":..,"stop_reason":"none"|"deadline"|"check_budget"|
///   "memory_budget"|"cancelled"|"fault_injected"|"level_cap",
///   "checks":..,"elapsed_seconds":..,
///   "reduction":{"constants":[..],"equivalence_classes":[[..],..]},
///   "ocds":[{"lhs":[..],"rhs":[..]},..],
///   "ods":[{"lhs":[..],"rhs":[..]},..]}`
std::string ToJson(const core::OcdDiscoverResult& result,
                   const rel::CodedRelation& relation);

/// A TANE run: `{"algorithm":"tane","fds":[{"lhs":[..],"rhs":".."},..],...}`.
std::string ToJson(const algo::TaneResult& result,
                   const rel::CodedRelation& relation);

/// An ORDER run: `{"algorithm":"order","ods":[...],...}`.
std::string ToJson(const algo::OrderDiscoverResult& result,
                   const rel::CodedRelation& relation);

/// A FASTOD run: canonical ODs as
/// `{"kind":"constancy"|"compatible","context":[..],"left":"..","right":".."}`.
std::string ToJson(const algo::FastodResult& result,
                   const rel::CodedRelation& relation);

/// A bidirectional FASTOD run; compatibility kinds are
/// `"concordant"` / `"anti_concordant"`.
std::string ToJson(const algo::FastodBidResult& result,
                   const rel::CodedRelation& relation);

/// Approximate pairwise OCDs:
/// `{"algorithm":"approx_ocd","pairs":[{"lhs":..,"rhs":..,"removals":..,
///   "ratio":..},..]}`.
std::string ToJson(const std::vector<core::ApproximateOcd>& pairs,
                   const rel::CodedRelation& relation);

/// Splices an `"ingest"` member — the untrusted-byte-boundary accounting of
/// the CSV read that produced the relation — into a top-level JSON report
/// object produced by one of the `ToJson` overloads:
/// `"ingest":{"records_total":..,"rows_ingested":..,"rows_rejected":..,
///   "rejected_by_code":{"ragged_row":..,...},"quarantine_path":".."}`
/// (`quarantine_path` only when rows were quarantined to a file). Returns
/// `report_json` unchanged if it is not a JSON object.
std::string WithIngest(std::string report_json,
                       const rel::CsvIngestReport& ingest);

/// Splices a `"profile"` member — the in-process profiler's per-phase
/// cycle/byte breakdown (see common/prof.h) — into a top-level JSON report
/// object: `"profile":{"cycles_per_second":..,"phases":[{"name":..,
/// "cycles":..,"seconds":..,"bytes":..,"calls":..},..],
/// "alloc":{"bytes":..,"calls":..}}`. Returns `report_json` unchanged if it
/// is not a JSON object or the report is empty.
std::string WithProfile(std::string report_json, const prof::Report& profile);

}  // namespace ocdd::report

#endif  // OCDD_REPORT_JSON_WRITER_H_
