#include "report/json_writer.h"

#include <cstdio>

namespace ocdd::report {

namespace {

using od::AttributeList;
using rel::CodedRelation;

void AppendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void AppendName(std::string& out, const CodedRelation& r,
                rel::ColumnId col) {
  out += '"';
  out += JsonEscape(r.column_name(col));
  out += '"';
}

void AppendNameArray(std::string& out, const CodedRelation& r,
                     const std::vector<rel::ColumnId>& cols) {
  out += '[';
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ',';
    AppendName(out, r, cols[i]);
  }
  out += ']';
}

void AppendList(std::string& out, const CodedRelation& r,
                const AttributeList& list) {
  AppendNameArray(out, r, list.ids());
}

void AppendPair(std::string& out, const CodedRelation& r,
                const AttributeList& lhs, const AttributeList& rhs) {
  out += "{\"lhs\":";
  AppendList(out, r, lhs);
  out += ",\"rhs\":";
  AppendList(out, r, rhs);
  out += '}';
}

void AppendHeader(std::string& out, const char* algorithm,
                  const CodedRelation& r, bool completed,
                  StopReason stop_reason, std::uint64_t checks,
                  double elapsed, const StopState* stop_state = nullptr,
                  const CheckpointStats* checkpoint = nullptr) {
  out += "{\"algorithm\":\"";
  out += algorithm;
  out += "\",\"num_rows\":";
  out += std::to_string(r.num_rows());
  out += ",\"num_columns\":";
  out += std::to_string(r.num_columns());
  out += ",\"completed\":";
  out += completed ? "true" : "false";
  out += ",\"stop_reason\":\"";
  out += StopReasonName(stop_reason);
  out += "\",\"checks\":";
  out += std::to_string(checks);
  out += ",\"elapsed_seconds\":";
  AppendDouble(out, elapsed);
  if (stop_state != nullptr) {
    // Where the run stopped — drives `ocdd supervise`'s restart-vs-give-up
    // decision and post-mortem triage of budget-stopped runs.
    out += ",\"stop_state\":{\"checks\":";
    out += std::to_string(stop_state->checks);
    out += ",\"level\":";
    out += std::to_string(stop_state->level);
    out += ",\"frontier_size\":";
    out += std::to_string(stop_state->frontier_size);
    out += ",\"ingest_rejected\":";
    out += std::to_string(stop_state->ingest_rejected);
    out += '}';
  }
  if (checkpoint != nullptr && checkpoint->enabled) {
    out += ",\"checkpoint\":{\"resumed\":";
    out += checkpoint->resumed ? "true" : "false";
    out += ",\"resumed_generation\":";
    out += std::to_string(checkpoint->resumed_generation);
    out += ",\"snapshots_written\":";
    out += std::to_string(checkpoint->snapshots_written);
    out += ",\"corrupt_skipped\":";
    out += std::to_string(checkpoint->corrupt_skipped);
    out += ",\"warning\":\"";
    out += JsonEscape(checkpoint->warning);
    out += "\"}";
  }
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const core::OcdDiscoverResult& result,
                   const CodedRelation& relation) {
  std::string out;
  AppendHeader(out, "ocddiscover", relation, result.completed,
               result.stop_reason, result.num_checks,
               result.elapsed_seconds, &result.stop_state,
               &result.checkpoint_stats);
  out += ",\"reduction\":{\"constants\":";
  AppendNameArray(out, relation, result.reduction.constant_columns);
  out += ",\"equivalence_classes\":[";
  for (std::size_t i = 0; i < result.reduction.equivalence_classes.size();
       ++i) {
    if (i > 0) out += ',';
    AppendNameArray(out, relation, result.reduction.equivalence_classes[i]);
  }
  out += "]},\"ocds\":[";
  for (std::size_t i = 0; i < result.ocds.size(); ++i) {
    if (i > 0) out += ',';
    AppendPair(out, relation, result.ocds[i].lhs, result.ocds[i].rhs);
  }
  out += "],\"ods\":[";
  for (std::size_t i = 0; i < result.ods.size(); ++i) {
    if (i > 0) out += ',';
    AppendPair(out, relation, result.ods[i].lhs, result.ods[i].rhs);
  }
  out += "]}";
  return out;
}

std::string ToJson(const algo::TaneResult& result,
                   const CodedRelation& relation) {
  std::string out;
  AppendHeader(out, "tane", relation, result.completed,
               result.stop_reason, result.num_checks,
               result.elapsed_seconds, &result.stop_state,
               &result.checkpoint_stats);
  out += ",\"fds\":[";
  for (std::size_t i = 0; i < result.fds.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"lhs\":";
    AppendNameArray(out, relation, result.fds[i].lhs);
    out += ",\"rhs\":";
    AppendName(out, relation, result.fds[i].rhs);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string ToJson(const algo::OrderDiscoverResult& result,
                   const CodedRelation& relation) {
  std::string out;
  AppendHeader(out, "order", relation, result.completed,
               result.stop_reason, result.num_checks,
               result.elapsed_seconds, &result.stop_state);
  out += ",\"ods\":[";
  for (std::size_t i = 0; i < result.ods.size(); ++i) {
    if (i > 0) out += ',';
    AppendPair(out, relation, result.ods[i].lhs, result.ods[i].rhs);
  }
  out += "]}";
  return out;
}

std::string ToJson(const algo::FastodResult& result,
                   const CodedRelation& relation) {
  std::string out;
  AppendHeader(out, "fastod", relation, result.completed,
               result.stop_reason, result.num_checks,
               result.elapsed_seconds, &result.stop_state,
               &result.checkpoint_stats);
  out += ",\"canonical_ods\":[";
  for (std::size_t i = 0; i < result.ods.size(); ++i) {
    const od::CanonicalOd& od = result.ods[i];
    if (i > 0) out += ',';
    out += "{\"kind\":\"";
    out += od.kind == od::CanonicalOd::Kind::kConstancy ? "constancy"
                                                        : "compatible";
    out += "\",\"context\":";
    AppendNameArray(out, relation, od.context);
    if (od.kind == od::CanonicalOd::Kind::kOrderCompatible) {
      out += ",\"left\":";
      AppendName(out, relation, od.left);
    }
    out += ",\"right\":";
    AppendName(out, relation, od.right);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string ToJson(const algo::FastodBidResult& result,
                   const CodedRelation& relation) {
  std::string out;
  AppendHeader(out, "fastod_bid", relation, result.completed,
               result.stop_reason, result.num_checks,
               result.elapsed_seconds);
  out += ",\"canonical_ods\":[";
  for (std::size_t i = 0; i < result.ods.size(); ++i) {
    const algo::BidCanonicalOd& od = result.ods[i];
    if (i > 0) out += ',';
    out += "{\"kind\":\"";
    switch (od.kind) {
      case algo::BidCanonicalOd::Kind::kConstancy:
        out += "constancy";
        break;
      case algo::BidCanonicalOd::Kind::kConcordant:
        out += "concordant";
        break;
      case algo::BidCanonicalOd::Kind::kAntiConcordant:
        out += "anti_concordant";
        break;
    }
    out += "\",\"context\":";
    AppendNameArray(out, relation, od.context);
    if (od.kind != algo::BidCanonicalOd::Kind::kConstancy) {
      out += ",\"left\":";
      AppendName(out, relation, od.left);
    }
    out += ",\"right\":";
    AppendName(out, relation, od.right);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string WithIngest(std::string report_json,
                       const rel::CsvIngestReport& ingest) {
  std::size_t brace = report_json.rfind('}');
  if (brace == std::string::npos) return report_json;
  std::string member = ",\"ingest\":{\"records_total\":";
  member += std::to_string(ingest.records_total);
  member += ",\"rows_ingested\":";
  member += std::to_string(ingest.rows_ingested);
  member += ",\"rows_rejected\":";
  member += std::to_string(ingest.rows_rejected);
  member += ",\"rejected_by_code\":{";
  bool first = true;
  for (const auto& [code, count] : ingest.rejected_by_code.by_code()) {
    if (!first) member += ',';
    first = false;
    member += '"';
    member += JsonEscape(code);
    member += "\":";
    member += std::to_string(count);
  }
  member += '}';
  if (!ingest.quarantine_path.empty()) {
    member += ",\"quarantine_path\":\"";
    member += JsonEscape(ingest.quarantine_path);
    member += '"';
  }
  member += '}';
  report_json.insert(brace, member);
  return report_json;
}

std::string WithProfile(std::string report_json, const prof::Report& profile) {
  if (profile.empty()) return report_json;
  std::size_t brace = report_json.rfind('}');
  if (brace == std::string::npos) return report_json;
  std::string member = ",\"profile\":";
  member += prof::ToJson(profile);
  report_json.insert(brace, member);
  return report_json;
}

std::string ToJson(const std::vector<core::ApproximateOcd>& pairs,
                   const CodedRelation& relation) {
  std::string out = "{\"algorithm\":\"approx_ocd\",\"pairs\":[";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"lhs\":";
    AppendList(out, relation, pairs[i].ocd.lhs);
    out += ",\"rhs\":";
    AppendList(out, relation, pairs[i].ocd.rhs);
    out += ",\"removals\":";
    out += std::to_string(pairs[i].error.removals);
    out += ",\"ratio\":";
    AppendDouble(out, pairs[i].error.ratio);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace ocdd::report
