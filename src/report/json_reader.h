#ifndef OCDD_REPORT_JSON_READER_H_
#define OCDD_REPORT_JSON_READER_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace ocdd::report {

/// A minimal JSON document model + recursive-descent parser, sufficient for
/// reading back the reports json_writer.h emits (and any well-formed JSON).
/// Numbers are held as doubles; object member order is not preserved
/// (std::map keys are sorted) — both fine for report diffing.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::map<std::string, JsonValue> members);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Object member lookup; returns a shared null for missing keys or
  /// non-objects, so chains like `v["a"]["b"]` are safe.
  const JsonValue& operator[](const std::string& key) const;
  /// Array element lookup with the same out-of-range tolerance.
  const JsonValue& operator[](std::size_t index) const;

  /// Deep equality.
  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document. Trailing garbage, unterminated
/// strings/structures, bad escapes, and malformed numbers yield ParseError.
Result<JsonValue> ParseJson(const std::string& text);

/// One difference between two dependency reports.
struct ReportDiffEntry {
  enum class Change { kAdded, kRemoved };
  Change change = Change::kAdded;
  /// Which collection the entry belongs to ("ocds", "ods", "fds", ...).
  std::string collection;
  /// Canonical rendering of the dependency (the JSON object, re-serialized
  /// with sorted keys).
  std::string rendering;

  friend bool operator==(const ReportDiffEntry& a, const ReportDiffEntry& b) {
    return a.change == b.change && a.collection == b.collection &&
           a.rendering == b.rendering;
  }
};

/// Diffs two reports produced by the same algorithm: for every array-valued
/// top-level member (the dependency collections), reports entries present
/// in one document but not the other. Returns InvalidArgument when the
/// `algorithm` fields differ (cross-algorithm diffs are meaningless).
Result<std::vector<ReportDiffEntry>> DiffReports(const JsonValue& before,
                                                 const JsonValue& after);

/// Canonical re-serialization (sorted keys, minimal whitespace) used for
/// diff renderings and round-trip tests.
std::string SerializeJson(const JsonValue& value);

}  // namespace ocdd::report

#endif  // OCDD_REPORT_JSON_READER_H_
