#include "core/checker.h"

#include "relation/sorted_index.h"

namespace ocdd::core {

bool OrderChecker::HoldsOcd(const AttributeList& x,
                            const AttributeList& y) const {
  stats_.ocd_checks.fetch_add(1, std::memory_order_relaxed);

  // Theorem 4.1: X ~ Y iff XY → YX. Sorting by the concatenation XY makes
  // the Y projection the only possible source of violations: for adjacent
  // rows a ⪯_XY b, YX(a) ≻ YX(b) iff Y(a) ≻ Y(b) (see DESIGN.md §5).
  AttributeList xy = x.Concat(y);
  std::vector<std::uint32_t> index =
      rel::SortRowsByList(relation_, xy.ids());
  for (std::size_t i = 0; i + 1 < index.size(); ++i) {
    if (rel::CompareRowsOnList(relation_, y.ids(), index[i], index[i + 1]) >
        0) {
      return false;
    }
  }
  return true;
}

OdCheckOutcome OrderChecker::CheckOd(const AttributeList& lhs,
                                     const AttributeList& rhs,
                                     bool early_exit) const {
  stats_.od_checks.fetch_add(1, std::memory_order_relaxed);

  OdCheckOutcome outcome;
  std::size_t m = relation_.num_rows();
  if (m < 2) return outcome;

  // Sort by lhs, tie-broken by rhs: within an lhs-group rows are
  // rhs-ascending, so the group's rhs-minimum is its first row and its
  // rhs-maximum is its last row.
  AttributeList sort_key = lhs.Concat(rhs);
  std::vector<std::uint32_t> index =
      rel::SortRowsByList(relation_, sort_key.ids());

  bool have_prev = false;
  std::uint32_t prev_groups_max = 0;  // row with max rhs among earlier groups
  std::size_t i = 0;
  while (i < m) {
    // Find the end of the lhs-group starting at i.
    std::size_t j = i + 1;
    while (j < m && rel::CompareRowsOnList(relation_, lhs.ids(), index[i],
                                           index[j]) == 0) {
      ++j;
    }
    // Split: the group's rhs-extremes differ.
    if (rel::CompareRowsOnList(relation_, rhs.ids(), index[i],
                               index[j - 1]) != 0) {
      outcome.has_split = true;
      if (early_exit) return outcome;
    }
    // Swap: some earlier group's rhs-max exceeds this group's rhs-min.
    if (have_prev && rel::CompareRowsOnList(relation_, rhs.ids(),
                                            prev_groups_max, index[i]) > 0) {
      outcome.has_swap = true;
      if (early_exit) return outcome;
    }
    if (!have_prev || rel::CompareRowsOnList(relation_, rhs.ids(),
                                             prev_groups_max,
                                             index[j - 1]) < 0) {
      prev_groups_max = index[j - 1];
    }
    have_prev = true;
    i = j;
  }
  return outcome;
}

bool OrderChecker::HoldsOd(const AttributeList& lhs,
                           const AttributeList& rhs) const {
  return CheckOd(lhs, rhs, /*early_exit=*/true).valid();
}

}  // namespace ocdd::core
