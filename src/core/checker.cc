#include "core/checker.h"

#include <vector>

#include "relation/sorted_index.h"

namespace ocdd::core {

namespace {

/// Per-thread reusable buffers for the sort-based checks: the row index
/// being sorted, the concatenated sort key, and the hoisted code pointers.
/// Thread-local (not per-checker) because the parallel OCDDISCOVER driver
/// runs one checker from many pool workers; the buffers live for the
/// thread's lifetime and stop the kernels from allocating per check.
struct CheckScratch {
  std::vector<std::uint32_t> index;
  std::vector<rel::ColumnId> key;
  std::vector<const std::int32_t*> cols;
};

CheckScratch& TlsCheckScratch() {
  thread_local CheckScratch scratch;
  return scratch;
}

/// Loads the code-array pointers of `attrs` into `out`.
void HoistColumns(const rel::CodedRelation& relation,
                  const std::vector<rel::ColumnId>& attrs,
                  std::vector<const std::int32_t*>* out) {
  out->clear();
  for (rel::ColumnId col : attrs) {
    out->push_back(relation.column(col).codes.data());
  }
}

/// First position in [0, cols.size()) where the two rows differ, or
/// cols.size() when they are equal on every column. The discriminator the
/// lexicographic sort already evaluated; re-deriving it on adjacent rows is
/// how CheckOd finds group boundaries without a second full-list walk.
std::size_t FirstDiff(const std::vector<const std::int32_t*>& cols,
                      std::uint32_t row_a, std::uint32_t row_b) {
  std::size_t p = 0;
  for (; p < cols.size(); ++p) {
    if (cols[p][row_a] != cols[p][row_b]) break;
  }
  return p;
}

/// Three-way comparison over hoisted columns [begin, end).
int CompareOnCols(const std::vector<const std::int32_t*>& cols,
                  std::size_t begin, std::size_t end, std::uint32_t row_a,
                  std::uint32_t row_b) {
  for (std::size_t p = begin; p < end; ++p) {
    std::int32_t a = cols[p][row_a];
    std::int32_t b = cols[p][row_b];
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

}  // namespace

bool OrderChecker::HoldsOcd(const AttributeList& x,
                            const AttributeList& y) const {
  stats_.ocd_checks.fetch_add(1, std::memory_order_relaxed);

  // Theorem 4.1: X ~ Y iff XY → YX. Sorting by the concatenation XY makes
  // the Y projection the only possible source of violations: for adjacent
  // rows a ⪯_XY b, YX(a) ≻ YX(b) iff Y(a) ≻ Y(b) (see DESIGN.md §5).
  CheckScratch& scratch = TlsCheckScratch();
  scratch.key.assign(x.ids().begin(), x.ids().end());
  scratch.key.insert(scratch.key.end(), y.ids().begin(), y.ids().end());
  rel::SortRowsByListInto(relation_, scratch.key, &scratch.index);
  HoistColumns(relation_, y.ids(), &scratch.cols);
  const std::vector<std::uint32_t>& index = scratch.index;
  for (std::size_t i = 0; i + 1 < index.size(); ++i) {
    if (CompareOnCols(scratch.cols, 0, scratch.cols.size(), index[i],
                      index[i + 1]) > 0) {
      return false;
    }
  }
  return true;
}

OdCheckOutcome OrderChecker::CheckOd(const AttributeList& lhs,
                                     const AttributeList& rhs,
                                     bool early_exit) const {
  stats_.od_checks.fetch_add(1, std::memory_order_relaxed);

  OdCheckOutcome outcome;
  std::size_t m = relation_.num_rows();
  if (m < 2) return outcome;

  // Sort by lhs, tie-broken by rhs: within an lhs-group rows are
  // rhs-ascending, so the group's rhs-minimum is its first row and its
  // rhs-maximum is its last row.
  CheckScratch& scratch = TlsCheckScratch();
  scratch.key.assign(lhs.ids().begin(), lhs.ids().end());
  scratch.key.insert(scratch.key.end(), rhs.ids().begin(), rhs.ids().end());
  rel::SortRowsByListInto(relation_, scratch.key, &scratch.index);
  HoistColumns(relation_, scratch.key, &scratch.cols);
  const std::vector<std::uint32_t>& index = scratch.index;
  const std::vector<const std::int32_t*>& cols = scratch.cols;
  const std::size_t lhs_len = lhs.size();
  const std::size_t key_len = cols.size();

  // One walk over adjacent pairs. The first differing key position tells
  // both stories at once: a difference inside the lhs prefix closes the
  // current lhs-group; a difference in the rhs suffix means two rows of one
  // group differ on rhs — a split (the group's extremes differ, since the
  // tie-break keeps rhs ascending within a group).
  bool have_prev = false;
  std::uint32_t prev_groups_max = 0;  // row with max rhs among earlier groups
  std::size_t group_begin = 0;
  auto close_group = [&](std::size_t group_end) {
    // Swap: some earlier group's rhs-max exceeds this group's rhs-min.
    if (have_prev &&
        CompareOnCols(cols, lhs_len, key_len, prev_groups_max,
                      index[group_begin]) > 0) {
      outcome.has_swap = true;
    }
    if (!have_prev || CompareOnCols(cols, lhs_len, key_len, prev_groups_max,
                                    index[group_end - 1]) < 0) {
      prev_groups_max = index[group_end - 1];
    }
    have_prev = true;
  };
  for (std::size_t k = 0; k + 1 < m; ++k) {
    std::size_t pos = FirstDiff(cols, index[k], index[k + 1]);
    if (pos < lhs_len) {
      close_group(k + 1);
      if (early_exit && outcome.has_swap) return outcome;
      group_begin = k + 1;
    } else if (pos < key_len) {
      outcome.has_split = true;
      if (early_exit) return outcome;
    }
  }
  close_group(m);
  return outcome;
}

bool OrderChecker::HoldsOd(const AttributeList& lhs,
                           const AttributeList& rhs) const {
  return CheckOd(lhs, rhs, /*early_exit=*/true).valid();
}

}  // namespace ocdd::core
