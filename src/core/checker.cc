#include "core/checker.h"

#include <vector>

#include "common/prof.h"
#include "common/simd_dispatch.h"
#include "relation/sorted_index.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define OCDD_HAVE_AVX2_KERNELS 1
#endif

namespace ocdd::core {

namespace {

/// Per-thread reusable buffers for the sort-based checks: the row index
/// being sorted, the concatenated sort key, and the hoisted code pointers.
/// Thread-local (not per-checker) because the parallel OCDDISCOVER driver
/// runs one checker from many pool workers; the buffers live for the
/// thread's lifetime and stop the kernels from allocating per check.
struct CheckScratch {
  std::vector<std::uint32_t> index;
  std::vector<rel::ColumnId> key;
  std::vector<const std::int32_t*> cols;
};

CheckScratch& TlsCheckScratch() {
  thread_local CheckScratch scratch;
  return scratch;
}

/// Loads the code-array pointers of `attrs` into `out`.
void HoistColumns(const rel::CodedRelation& relation,
                  const std::vector<rel::ColumnId>& attrs,
                  std::vector<const std::int32_t*>* out) {
  out->clear();
  for (rel::ColumnId col : attrs) {
    out->push_back(relation.column(col).codes.data());
  }
}

/// First position in [0, cols.size()) where the two rows differ, or
/// cols.size() when they are equal on every column. The discriminator the
/// lexicographic sort already evaluated; re-deriving it on adjacent rows is
/// how CheckOd finds group boundaries without a second full-list walk.
std::size_t FirstDiff(const std::vector<const std::int32_t*>& cols,
                      std::uint32_t row_a, std::uint32_t row_b) {
  std::size_t p = 0;
  for (; p < cols.size(); ++p) {
    if (cols[p][row_a] != cols[p][row_b]) break;
  }
  return p;
}

/// Three-way comparison over hoisted columns [begin, end).
int CompareOnCols(const std::vector<const std::int32_t*>& cols,
                  std::size_t begin, std::size_t end, std::uint32_t row_a,
                  std::uint32_t row_b) {
  for (std::size_t p = begin; p < end; ++p) {
    std::int32_t a = cols[p][row_a];
    std::int32_t b = cols[p][row_b];
    if (a != b) return a < b ? -1 : 1;
  }
  return 0;
}

#if OCDD_HAVE_AVX2_KERNELS

/// Vectorized FirstDiff classification for 8 adjacent sorted-index pairs at
/// once. The walk never needs the exact first-diff *position* — only which
/// of three classes it falls in — so per pair it suffices to know whether
/// any lhs-prefix column differs (`lhs_mask` bit set: a group boundary) and
/// whether any key column differs at all (`any_mask` bit set: boundary or
/// split). Each column costs two 8-lane gathers (the rows of pairs
/// (index[k+j], index[k+j+1])) and a compare, replacing 16 dependent scalar
/// loads with branchy early-outs.
__attribute__((target("avx2"))) void DiffMasksAvx2(
    const std::vector<const std::int32_t*>& cols, std::size_t lhs_len,
    const std::uint32_t* idx, std::uint32_t* lhs_mask,
    std::uint32_t* any_mask) {
  __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
  __m256i vb =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + 1));
  __m256i lhs_acc = _mm256_setzero_si256();
  __m256i any_acc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi32(-1);
  for (std::size_t p = 0; p < cols.size(); ++p) {
    __m256i ga = _mm256_i32gather_epi32(cols[p], va, 4);
    __m256i gb = _mm256_i32gather_epi32(cols[p], vb, 4);
    __m256i neq = _mm256_xor_si256(_mm256_cmpeq_epi32(ga, gb), ones);
    if (p < lhs_len) lhs_acc = _mm256_or_si256(lhs_acc, neq);
    any_acc = _mm256_or_si256(any_acc, neq);
  }
  *lhs_mask = static_cast<std::uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(lhs_acc)));
  *any_mask = static_cast<std::uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(any_acc)));
}

/// Vectorized "is any of these 8 adjacent pairs descending on the hoisted
/// columns" test: a pair violates iff at its first differing column the
/// left row's code exceeds the right's. Branch-free first-diff semantics
/// via an "undecided" accumulator that zeroes a lane once a column has
/// discriminated its pair.
__attribute__((target("avx2"))) bool AnyDescendingAvx2(
    const std::vector<const std::int32_t*>& cols, const std::uint32_t* idx) {
  __m256i va =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
  __m256i vb =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + 1));
  __m256i undecided = _mm256_set1_epi32(-1);
  __m256i viol = _mm256_setzero_si256();
  for (std::size_t p = 0; p < cols.size(); ++p) {
    __m256i ga = _mm256_i32gather_epi32(cols[p], va, 4);
    __m256i gb = _mm256_i32gather_epi32(cols[p], vb, 4);
    __m256i gt = _mm256_cmpgt_epi32(ga, gb);
    viol = _mm256_or_si256(viol, _mm256_and_si256(undecided, gt));
    __m256i eq = _mm256_cmpeq_epi32(ga, gb);
    undecided = _mm256_and_si256(undecided, eq);
  }
  return _mm256_movemask_epi8(viol) != 0;
}

#endif  // OCDD_HAVE_AVX2_KERNELS

}  // namespace

bool OrderChecker::HoldsOcd(const AttributeList& x,
                            const AttributeList& y) const {
  stats_.ocd_checks.fetch_add(1, std::memory_order_relaxed);

  // Theorem 4.1: X ~ Y iff XY → YX. Sorting by the concatenation XY makes
  // the Y projection the only possible source of violations: for adjacent
  // rows a ⪯_XY b, YX(a) ≻ YX(b) iff Y(a) ≻ Y(b) (see DESIGN.md §5).
  CheckScratch& scratch = TlsCheckScratch();
  scratch.key.assign(x.ids().begin(), x.ids().end());
  scratch.key.insert(scratch.key.end(), y.ids().begin(), y.ids().end());
  rel::SortRowsByListInto(relation_, scratch.key, &scratch.index);
  HoistColumns(relation_, y.ids(), &scratch.cols);
  const std::vector<std::uint32_t>& index = scratch.index;
  prof::ScopedTimer timer(prof::Phase::kSortCheck);
  std::size_t i = 0;
#if OCDD_HAVE_AVX2_KERNELS
  if (simd::Active() == simd::Backend::kAvx2) {
    for (; i + 9 <= index.size(); i += 8) {
      if (AnyDescendingAvx2(scratch.cols, index.data() + i)) return false;
    }
  }
#endif
  for (; i + 1 < index.size(); ++i) {
    if (CompareOnCols(scratch.cols, 0, scratch.cols.size(), index[i],
                      index[i + 1]) > 0) {
      return false;
    }
  }
  return true;
}

OdCheckOutcome OrderChecker::CheckOd(const AttributeList& lhs,
                                     const AttributeList& rhs,
                                     bool early_exit) const {
  stats_.od_checks.fetch_add(1, std::memory_order_relaxed);

  OdCheckOutcome outcome;
  std::size_t m = relation_.num_rows();
  if (m < 2) return outcome;

  // Sort by lhs, tie-broken by rhs: within an lhs-group rows are
  // rhs-ascending, so the group's rhs-minimum is its first row and its
  // rhs-maximum is its last row.
  CheckScratch& scratch = TlsCheckScratch();
  scratch.key.assign(lhs.ids().begin(), lhs.ids().end());
  scratch.key.insert(scratch.key.end(), rhs.ids().begin(), rhs.ids().end());
  rel::SortRowsByListInto(relation_, scratch.key, &scratch.index);
  HoistColumns(relation_, scratch.key, &scratch.cols);
  const std::vector<std::uint32_t>& index = scratch.index;
  const std::vector<const std::int32_t*>& cols = scratch.cols;
  const std::size_t lhs_len = lhs.size();
  const std::size_t key_len = cols.size();

  // One walk over adjacent pairs. The first differing key position tells
  // both stories at once: a difference inside the lhs prefix closes the
  // current lhs-group; a difference in the rhs suffix means two rows of one
  // group differ on rhs — a split (the group's extremes differ, since the
  // tie-break keeps rhs ascending within a group).
  bool have_prev = false;
  std::uint32_t prev_groups_max = 0;  // row with max rhs among earlier groups
  std::size_t group_begin = 0;
  auto close_group = [&](std::size_t group_end) {
    // Swap: some earlier group's rhs-max exceeds this group's rhs-min.
    if (have_prev &&
        CompareOnCols(cols, lhs_len, key_len, prev_groups_max,
                      index[group_begin]) > 0) {
      outcome.has_swap = true;
    }
    if (!have_prev || CompareOnCols(cols, lhs_len, key_len, prev_groups_max,
                                    index[group_end - 1]) < 0) {
      prev_groups_max = index[group_end - 1];
    }
    have_prev = true;
  };
  prof::ScopedTimer timer(prof::Phase::kSortCheck);
  std::size_t k = 0;
#if OCDD_HAVE_AVX2_KERNELS
  // Blocked walk: classify 8 adjacent pairs per iteration. Only the class
  // of each pair's first difference matters (lhs prefix / rhs suffix /
  // none), so two accumulated compare masks replace the scalar per-column
  // early-out — and runs of all-equal or no-boundary pairs (the common case
  // inside large groups) are skipped 8 at a time. The per-pair actions
  // below mirror the scalar loop exactly, in the same order, so outcomes
  // and early exits are bit-identical.
  if (simd::Active() == simd::Backend::kAvx2) {
    for (; k + 9 <= m; k += 8) {
      std::uint32_t lhs_mask = 0;
      std::uint32_t any_mask = 0;
      DiffMasksAvx2(cols, lhs_len, index.data() + k, &lhs_mask, &any_mask);
      if (any_mask == 0) continue;
      if (lhs_mask == 0) {
        outcome.has_split = true;
        if (early_exit) return outcome;
        continue;
      }
      for (std::size_t j = 0; j < 8; ++j) {
        if ((lhs_mask >> j) & 1u) {
          close_group(k + j + 1);
          if (early_exit && outcome.has_swap) return outcome;
          group_begin = k + j + 1;
        } else if ((any_mask >> j) & 1u) {
          outcome.has_split = true;
          if (early_exit) return outcome;
        }
      }
    }
  }
#endif
  for (; k + 1 < m; ++k) {
    std::size_t pos = FirstDiff(cols, index[k], index[k + 1]);
    if (pos < lhs_len) {
      close_group(k + 1);
      if (early_exit && outcome.has_swap) return outcome;
      group_begin = k + 1;
    } else if (pos < key_len) {
      outcome.has_split = true;
      if (early_exit) return outcome;
    }
  }
  close_group(m);
  return outcome;
}

bool OrderChecker::HoldsOd(const AttributeList& lhs,
                           const AttributeList& rhs) const {
  return CheckOd(lhs, rhs, /*early_exit=*/true).valid();
}

}  // namespace ocdd::core
