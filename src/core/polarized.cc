#include "core/polarized.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"
#include "core/checker.h"
#include "od/attribute_list.h"
#include "od/dependency_set.h"

namespace ocdd::core {

std::string PolarizedListToString(const PolarizedList& list,
                                  const rel::CodedRelation& relation) {
  std::string out = "[";
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i > 0) out += ",";
    out += relation.column_name(list[i].column);
    out += list[i].descending ? "-" : "+";
  }
  out += "]";
  return out;
}

std::string PolarizedOcd::ToString(const rel::CodedRelation& relation) const {
  return PolarizedListToString(lhs, relation) + " ~ " +
         PolarizedListToString(rhs, relation);
}

std::string PolarizedOd::ToString(const rel::CodedRelation& relation) const {
  return PolarizedListToString(lhs, relation) + " -> " +
         PolarizedListToString(rhs, relation);
}

rel::CodedRelation AugmentWithReversedColumns(
    const rel::CodedRelation& relation) {
  std::vector<rel::CodedColumn> columns = relation.columns();
  columns.reserve(relation.num_columns() * 2);
  for (std::size_t c = 0; c < relation.num_columns(); ++c) {
    rel::CodedColumn reversed = relation.column(c);
    reversed.name += "(desc)";
    std::int32_t top = reversed.num_distinct - 1;
    for (std::int32_t& code : reversed.codes) code = top - code;
    columns.push_back(std::move(reversed));
  }
  return rel::CodedRelation::FromColumns(std::move(columns));
}

int CompareRowsOnPolarizedList(const rel::CodedRelation& relation,
                               const PolarizedList& list, std::uint32_t row_a,
                               std::uint32_t row_b) {
  for (const PolarizedAttribute& attr : list) {
    std::int32_t a = relation.code(row_a, attr.column);
    std::int32_t b = relation.code(row_b, attr.column);
    if (a != b) {
      int cmp = a < b ? -1 : 1;
      return attr.descending ? -cmp : cmp;
    }
  }
  return 0;
}

bool BruteForceHoldsPolarizedOd(const rel::CodedRelation& relation,
                                const PolarizedList& lhs,
                                const PolarizedList& rhs) {
  std::size_t m = relation.num_rows();
  for (std::uint32_t p = 0; p < m; ++p) {
    for (std::uint32_t q = 0; q < m; ++q) {
      if (CompareRowsOnPolarizedList(relation, lhs, p, q) <= 0 &&
          CompareRowsOnPolarizedList(relation, rhs, p, q) > 0) {
        return false;
      }
    }
  }
  return true;
}

namespace {

using od::AttributeList;
using od::AttributeListHash;

/// Decodes an augmented column id back to (column, direction).
PolarizedAttribute Decode(rel::ColumnId virtual_id, std::size_t n) {
  if (virtual_id < n) return PolarizedAttribute{virtual_id, false};
  return PolarizedAttribute{virtual_id - n, true};
}

PolarizedList DecodeList(const AttributeList& list, std::size_t n) {
  PolarizedList out;
  out.reserve(list.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    out.push_back(Decode(list[i], n));
  }
  return out;
}

rel::ColumnId BaseColumn(rel::ColumnId virtual_id, std::size_t n) {
  return virtual_id < n ? virtual_id : virtual_id - n;
}

struct Candidate {
  AttributeList x;
  AttributeList y;

  friend bool operator==(const Candidate& a, const Candidate& b) {
    return a.x == b.x && a.y == b.y;
  }
};

struct CandidateHash {
  std::size_t operator()(const Candidate& c) const {
    AttributeListHash h;
    return h(c.x) * 1000003ULL ^ h(c.y);
  }
};

bool UsesBase(const AttributeList& list, rel::ColumnId base, std::size_t n) {
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (BaseColumn(list[i], n) == base) return true;
  }
  return false;
}

}  // namespace

PolarizedDiscoverResult DiscoverPolarizedOcds(
    const rel::CodedRelation& relation,
    const PolarizedDiscoverOptions& options) {
  WallTimer timer;
  PolarizedDiscoverResult result;
  std::size_t n = relation.num_columns();

  rel::CodedRelation augmented = AugmentWithReversedColumns(relation);
  OrderChecker checker(augmented);

  // Non-constant base columns only; a constant is trivially compatible with
  // everything in both directions.
  std::vector<rel::ColumnId> active;
  for (rel::ColumnId c = 0; c < n; ++c) {
    if (!relation.column(c).is_constant()) active.push_back(c);
  }

  // Level 2, mirror-canonical: the lhs head is ascending. Per unordered
  // base pair {a, b} with a < b this yields (a+, b+) and (a+, b-); the
  // mirror images (a-, b-) and (a-, b+) are equivalent.
  std::vector<Candidate> level;
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (std::size_t j = i + 1; j < active.size(); ++j) {
      level.push_back(Candidate{AttributeList{active[i]},
                                AttributeList{active[j]}});
      level.push_back(Candidate{AttributeList{active[i]},
                                AttributeList{active[j] + n}});
    }
  }
  result.candidates_generated += level.size();

  auto budget_exceeded = [&] {
    if (options.max_checks != 0 &&
        checker.stats().TotalChecks() >= options.max_checks) {
      return true;
    }
    if (options.time_limit_seconds > 0.0 &&
        timer.ElapsedSeconds() >= options.time_limit_seconds) {
      return true;
    }
    return false;
  };

  std::size_t current_level = 2;
  bool aborted = false;
  while (!level.empty() && !aborted) {
    if (options.max_level != 0 && current_level > options.max_level) {
      aborted = true;
      break;
    }
    std::vector<Candidate> next;
    std::unordered_set<Candidate, CandidateHash> seen;
    for (const Candidate& c : level) {
      if (budget_exceeded()) {
        aborted = true;
        break;
      }
      if (!checker.HoldsOcd(c.x, c.y)) continue;
      result.ocds.push_back(
          PolarizedOcd{DecodeList(c.x, n), DecodeList(c.y, n)});
      bool od_xy = checker.HoldsOd(c.x, c.y);
      bool od_yx = checker.HoldsOd(c.y, c.x);
      if (od_xy) {
        result.ods.push_back(
            PolarizedOd{DecodeList(c.x, n), DecodeList(c.y, n)});
      }
      if (od_yx) {
        result.ods.push_back(
            PolarizedOd{DecodeList(c.y, n), DecodeList(c.x, n)});
      }
      for (rel::ColumnId base : active) {
        if (UsesBase(c.x, base, n) || UsesBase(c.y, base, n)) continue;
        for (rel::ColumnId v : {base, base + n}) {
          if (!od_xy) {
            Candidate child{c.x.WithAppended(v), c.y};
            if (seen.insert(child).second) next.push_back(std::move(child));
          }
          if (!od_yx) {
            Candidate child{c.x, c.y.WithAppended(v)};
            if (seen.insert(child).second) next.push_back(std::move(child));
          }
        }
      }
    }
    result.candidates_generated += next.size();
    level = std::move(next);
    ++current_level;
  }

  std::sort(result.ocds.begin(), result.ocds.end());
  std::sort(result.ods.begin(), result.ods.end());
  result.num_checks = checker.stats().TotalChecks();
  result.completed = !aborted;
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ocdd::core
