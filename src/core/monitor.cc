#include "core/monitor.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "core/checker.h"

namespace ocdd::core {

DependencyMonitor::DependencyMonitor(rel::Relation base,
                                     OcdDiscoverOptions options)
    : options_(options), relation_(std::move(base)) {
  Rebuild();
}

void DependencyMonitor::Rebuild() {
  coded_ = rel::CodedRelation::Encode(relation_);
  state_ = DiscoverOcds(coded_, options_);
}

Result<DependencyMonitor::UpdateReport> DependencyMonitor::AppendRows(
    const std::vector<std::vector<rel::Value>>& rows) {
  // Grow the relation (schema-validated row by row).
  rel::Relation::Builder builder(relation_.schema());
  std::vector<rel::Value> row(relation_.num_columns());
  for (std::size_t r = 0; r < relation_.num_rows(); ++r) {
    for (std::size_t c = 0; c < relation_.num_columns(); ++c) {
      row[c] = relation_.ValueAt(r, c);
    }
    OCDD_RETURN_IF_ERROR(builder.AddRow(row));
  }
  for (const std::vector<rel::Value>& new_row : rows) {
    OCDD_RETURN_IF_ERROR(builder.AddRow(new_row));
  }
  relation_ = std::move(builder).Build();
  ++num_appends_;

  rel::CodedRelation grown = rel::CodedRelation::Encode(relation_);
  OrderChecker checker(grown);
  UpdateReport report;

  // Structural damage: constants that started varying.
  for (rel::ColumnId c : state_.reduction.constant_columns) {
    if (!grown.column(c).is_constant()) {
      report.constant_broke = true;
    }
  }
  // Structural damage: equivalence classes that split.
  for (const std::vector<rel::ColumnId>& cls :
       state_.reduction.equivalence_classes) {
    for (std::size_t i = 1; i < cls.size(); ++i) {
      if (grown.column(cls[0]).codes != grown.column(cls[i]).codes) {
        report.equivalence_broke = true;
      }
    }
  }

  // Revalidate the dependency set on the grown relation. The options'
  // RunContext (if any) budgets this sweep like a discovery run; once it
  // stops, the remaining dependencies are retained *unverified* — they held
  // before the append, which is the sound conservative choice.
  RunContext* ctx = options_.run_context;
  bool stopped = false;
  auto sweep_stopped = [&]() -> bool {
    if (stopped) return true;
    if (ctx == nullptr) return false;
    try {
      ctx->AtInjectionPoint("monitor.revalidate");
    } catch (const FaultInjectedError&) {
      ctx->RequestStop(StopReason::kFaultInjected);
      stopped = true;
      return true;
    }
    if (ctx->ShouldStop()) stopped = true;
    return stopped;
  };

  std::vector<od::OrderDependency> live_ods;
  for (const od::OrderDependency& od : state_.ods) {
    if (sweep_stopped()) {
      live_ods.push_back(od);
      continue;
    }
    if (ctx != nullptr) ctx->CountCheck(1);
    if (checker.HoldsOd(od.lhs, od.rhs)) {
      live_ods.push_back(od);
    } else {
      report.invalidated_ods.push_back(od);
      report.od_broke = true;
    }
  }
  std::vector<od::OrderCompatibility> live_ocds;
  for (const od::OrderCompatibility& ocd : state_.ocds) {
    if (sweep_stopped()) {
      live_ocds.push_back(ocd);
      continue;
    }
    if (ctx != nullptr) ctx->CountCheck(1);
    if (checker.HoldsOcd(ocd.lhs, ocd.rhs)) {
      live_ocds.push_back(ocd);
    } else {
      report.invalidated_ocds.push_back(ocd);
    }
  }

  report.revalidation_complete = !stopped;
  report.stop_reason = ctx != nullptr ? ctx->stop_reason() : StopReason::kNone;

  if (!stopped &&
      (report.constant_broke || report.equivalence_broke || report.od_broke)) {
    // Previously-implicit dependencies may now need explicit discovery.
    coded_ = std::move(grown);
    state_ = DiscoverOcds(coded_, options_);
    report.rediscovered = true;
    return report;
  }

  // Cheap path (or stopped mid-sweep, where a re-discovery under a latched
  // context would discard everything): drop the known-falsified
  // dependencies, keep the rest.
  coded_ = std::move(grown);
  state_.ocds = std::move(live_ocds);
  state_.ods = std::move(live_ods);
  state_.completed = state_.completed && !stopped;
  return report;
}

}  // namespace ocdd::core
