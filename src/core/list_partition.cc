#include "core/list_partition.h"

#include <algorithm>
#include <limits>
#include <type_traits>

#include "common/prof.h"
#include "common/simd_dispatch.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define OCDD_HAVE_AVX2_KERNELS 1
#endif

namespace ocdd::core {

namespace {

/// Calls `f` with the partition's typed storage pointer (u8/u16/i32).
template <typename F>
decltype(auto) WithCodes(const ListPartition& p, F&& f) {
  switch (p.width()) {
    case rel::CodeWidth::k8:
      return f(p.data8());
    case rel::CodeWidth::k16:
      return f(p.data16());
    case rel::CodeWidth::k32:
      break;
  }
  return f(p.data32());
}

/// Calls `f` with the column's narrowest code array (u8/u16/i32).
template <typename F>
decltype(auto) WithColumnCodes(const rel::CodedColumn& c, F&& f) {
  if (!c.codes8.empty()) return f(c.codes8.data());
  if (!c.codes16.empty()) return f(c.codes16.data());
  return f(c.codes.data());
}

}  // namespace

void ListPartition::Allocate(std::size_t m, std::int32_t groups) {
  num_rows_ = m;
  num_groups_ = groups;
  switch (rel::WidthForDistinct(groups)) {
    case rel::CodeWidth::k8:
      c8_.resize(m);
      break;
    case rel::CodeWidth::k16:
      c16_.resize(m);
      break;
    case rel::CodeWidth::k32:
      c32_.resize(m);
      break;
  }
}

const void* ListPartition::StorageTag() const {
  switch (width()) {
    case rel::CodeWidth::k8:
      return c8_.data();
    case rel::CodeWidth::k16:
      return c16_.data();
    case rel::CodeWidth::k32:
      break;
  }
  return c32_.data();
}

rel::CodeView ListPartition::view() const {
  switch (width()) {
    case rel::CodeWidth::k8:
      return rel::CodeView{c8_.data(), rel::CodeWidth::k8};
    case rel::CodeWidth::k16:
      return rel::CodeView{c16_.data(), rel::CodeWidth::k16};
    case rel::CodeWidth::k32:
      break;
  }
  return rel::CodeView{c32_.data(), rel::CodeWidth::k32};
}

std::vector<std::int32_t> ListPartition::codes() const {
  std::vector<std::int32_t> out(num_rows_);
  rel::CodeView v = view();
  for (std::size_t i = 0; i < num_rows_; ++i) out[i] = v.At(i);
  return out;
}

ListPartition ListPartition::ForColumn(const rel::CodedRelation& relation,
                                       rel::ColumnId column) {
  const rel::CodedColumn& c = relation.column(column);
  ListPartition out;
  out.num_rows_ = c.codes.size();
  out.num_groups_ = c.num_distinct;
  // Prefer copying the column's narrow mirror outright; fall back to a
  // narrowing copy of the canonical codes when no mirror is populated
  // (hand-built columns that bypassed the CodedRelation factories).
  switch (rel::WidthForDistinct(c.num_distinct)) {
    case rel::CodeWidth::k8:
      if (!c.codes8.empty()) {
        out.c8_ = c.codes8;
      } else {
        out.c8_.resize(out.num_rows_);
        for (std::size_t r = 0; r < out.num_rows_; ++r) {
          out.c8_[r] = static_cast<std::uint8_t>(c.codes[r]);
        }
      }
      break;
    case rel::CodeWidth::k16:
      if (!c.codes16.empty()) {
        out.c16_ = c.codes16;
      } else {
        out.c16_.resize(out.num_rows_);
        for (std::size_t r = 0; r < out.num_rows_; ++r) {
          out.c16_[r] = static_cast<std::uint16_t>(c.codes[r]);
        }
      }
      break;
    case rel::CodeWidth::k32:
      out.c32_ = c.codes;
      break;
  }
  return out;
}

ListPartition ListPartition::ForList(const rel::CodedRelation& relation,
                                     const od::AttributeList& list) {
  ListPartition out = ForColumn(relation, list[0]);
  RefineScratch scratch;
  for (std::size_t i = 1; i < list.size(); ++i) {
    out = out.Refine(relation, list[i], &scratch);
  }
  return out;
}

ListPartition ListPartition::Refine(const rel::CodedRelation& relation,
                                    rel::ColumnId column) const {
  RefineScratch scratch;
  return Refine(relation, column, &scratch);
}

ListPartition ListPartition::Refine(const rel::CodedRelation& relation,
                                    rel::ColumnId column,
                                    RefineScratch* scratch,
                                    RefinePath path) const {
  const rel::CodedColumn& coded = relation.column(column);
  const std::size_t domain = static_cast<std::size_t>(coded.num_distinct);
  return WithCodes(*this, [&](const auto* parent) {
    return WithColumnCodes(coded, [&](const auto* col) {
      return RefineTyped(parent, col, domain, scratch, path);
    });
  });
}

template <typename P, typename C>
ListPartition ListPartition::RefineTyped(const P* parent, const C* col,
                                         std::size_t domain,
                                         RefineScratch* scratch,
                                         RefinePath path) const {
  const std::size_t m = num_rows_;
  const std::size_t groups = static_cast<std::size_t>(num_groups_);
  const std::uint64_t buckets = static_cast<std::uint64_t>(groups) * domain;

  prof::ScopedTimer timer(prof::Phase::kRefine);
  prof::AddBytes(prof::Phase::kRefine,
                 static_cast<std::uint64_t>(m) * (sizeof(P) + sizeof(C)));

  if (path == RefinePath::kAuto) {
    // The histogram path is two row passes plus a sequential bucket scan —
    // cheapest by far while g·d stays within a few multiples of m. Beyond
    // that, counting sort costs ~4 linear passes regardless of group
    // structure and comparison sort costs the bucket pass plus m·log(group
    // size): small domains mean large groups — the counting path's
    // territory; near-key columns (tiny groups) sort almost for free.
    if (buckets <= 8 * static_cast<std::uint64_t>(m)) {
      path = RefinePath::kHistogram;
    } else {
      path = domain * 4 <= m ? RefinePath::kCounting : RefinePath::kComparison;
    }
  }

  if (path == RefinePath::kHistogram) {
    // Bucket key = parent rank · d + code preserves (parent rank, code)
    // lexicographic order, so densely renumbering the occupied buckets in
    // key order yields exactly the refined ranks. The group count is known
    // before any rank is written, so the output is allocated at its final
    // width and filled directly.
    std::vector<std::uint32_t>& occupied = scratch->tmp;
    occupied.assign(static_cast<std::size_t>(buckets), 0);
    for (std::size_t row = 0; row < m; ++row) {
      occupied[static_cast<std::size_t>(parent[row]) * domain +
               static_cast<std::size_t>(col[row])] = 1;
    }
    std::uint32_t next = 0;
    for (std::uint32_t& slot : occupied) {
      if (slot != 0) slot = next++;
    }
    ListPartition out;
    out.Allocate(m, static_cast<std::int32_t>(next));
    auto fill = [&](auto* dst) {
      using D = std::remove_reference_t<decltype(dst[0])>;
      for (std::size_t row = 0; row < m; ++row) {
        dst[row] = static_cast<D>(
            occupied[static_cast<std::size_t>(parent[row]) * domain +
                     static_cast<std::size_t>(col[row])]);
      }
    };
    switch (out.width()) {
      case rel::CodeWidth::k8:
        fill(out.c8_.data());
        break;
      case rel::CodeWidth::k16:
        fill(out.c16_.data());
        break;
      case rel::CodeWidth::k32:
        fill(out.c32_.data());
        break;
    }
    return out;
  }

  // Parent-rank histogram: reused across consecutive refinements of the
  // same parent (the pipeline groups sibling lists by parent).
  std::vector<std::uint32_t>& offsets = scratch->rank_offsets;
  if (scratch->parent_tag != StorageTag()) {
    offsets.assign(groups + 1, 0);
    for (std::size_t row = 0; row < m; ++row) {
      ++offsets[static_cast<std::size_t>(parent[row]) + 1];
    }
    for (std::size_t g = 1; g < offsets.size(); ++g) {
      offsets[g] += offsets[g - 1];
    }
    scratch->parent_tag = StorageTag();
  }

  std::vector<std::uint32_t>& rows = scratch->rows;
  rows.resize(m);

  if (path == RefinePath::kCounting) {
    // Stable two-pass counting sort: first order rows by the new column's
    // code, then stably by parent rank — `rows` ends up sorted by
    // (parent rank, code) with no comparisons.
    std::vector<std::uint32_t>& code_offsets = scratch->code_offsets;
    code_offsets.assign(domain + 1, 0);
    for (std::size_t row = 0; row < m; ++row) {
      ++code_offsets[static_cast<std::size_t>(col[row]) + 1];
    }
    for (std::size_t d = 1; d < code_offsets.size(); ++d) {
      code_offsets[d] += code_offsets[d - 1];
    }
    std::vector<std::uint32_t>& tmp = scratch->tmp;
    tmp.resize(m);
    {
      std::vector<std::uint32_t>& cursor = scratch->cursor;
      cursor.assign(code_offsets.begin(), code_offsets.end() - 1);
      for (std::uint32_t row = 0; row < m; ++row) {
        tmp[cursor[static_cast<std::size_t>(col[row])]++] = row;
      }
    }
    {
      std::vector<std::uint32_t>& cursor = scratch->cursor;
      cursor.assign(offsets.begin(), offsets.end() - 1);
      for (std::size_t i = 0; i < m; ++i) {
        std::uint32_t row = tmp[i];
        rows[cursor[static_cast<std::size_t>(parent[row])]++] = row;
      }
    }
  } else {
    // Bucket rows by parent rank, then order each bucket by the new
    // column's codes.
    {
      std::vector<std::uint32_t>& cursor = scratch->cursor;
      cursor.assign(offsets.begin(), offsets.end() - 1);
      for (std::uint32_t row = 0; row < m; ++row) {
        rows[cursor[static_cast<std::size_t>(parent[row])]++] = row;
      }
    }
    for (std::size_t g = 0; g < groups; ++g) {
      std::uint32_t begin = offsets[g];
      std::uint32_t end = offsets[g + 1];
      std::sort(rows.begin() + begin, rows.begin() + end,
                [col](std::uint32_t a, std::uint32_t b) {
                  return col[a] < col[b];
                });
    }
  }

  // `rows` is ordered by (parent rank, code): assign dense new ranks,
  // bumping at every parent-group boundary or code change within a group.
  // Ranks are staged per position so the output vector can be allocated at
  // its final width (known only once the group count is), then scattered.
  std::vector<std::uint32_t>& ranks = scratch->ranks;
  ranks.resize(m);
  std::int32_t next_rank = -1;
  std::int32_t prev_parent = -1;
  std::int32_t prev_code = 0;
  for (std::size_t i = 0; i < m; ++i) {
    std::uint32_t row = rows[i];
    std::int32_t p = static_cast<std::int32_t>(parent[row]);
    std::int32_t code = static_cast<std::int32_t>(col[row]);
    if (p != prev_parent || code != prev_code) {
      ++next_rank;
      prev_parent = p;
      prev_code = code;
    }
    ranks[i] = static_cast<std::uint32_t>(next_rank);
  }

  ListPartition out;
  out.Allocate(m, next_rank + 1);
  auto scatter = [&](auto* dst) {
    using D = std::remove_reference_t<decltype(dst[0])>;
    for (std::size_t i = 0; i < m; ++i) {
      dst[rows[i]] = static_cast<D>(ranks[i]);
    }
  };
  switch (out.width()) {
    case rel::CodeWidth::k8:
      scatter(out.c8_.data());
      break;
    case rel::CodeWidth::k16:
      scatter(out.c16_.data());
      break;
    case rel::CodeWidth::k32:
      scatter(out.c32_.data());
      break;
  }
  return out;
}

namespace {

/// Per-lhs-group min/max of the rhs ranks, indexed by lhs rank. Min and max
/// are adjacent in memory so the per-row random update touches one cache
/// line, not two. Thread-local so the O(groups) arrays are reused across
/// checks instead of allocated per call — the parallel check phase runs one
/// instance per pool worker.
struct MinMax {
  std::int32_t lo;
  std::int32_t hi;
};

constexpr std::int32_t kI32Min = std::numeric_limits<std::int32_t>::min();
constexpr std::int32_t kI32Max = std::numeric_limits<std::int32_t>::max();

/// Extremes fill: one pass over the rows, scatter-updating the per-group
/// min/max. Deliberately scalar — AVX2 has gathers but no scatter, and the
/// group index stream has same-group dependencies a conflict-free vector
/// update would need AVX-512 CD semantics for. The width templating is
/// where the traffic win lives: u8 codes stream 4x fewer bytes than i32.
template <typename L, typename R>
void FillExtremes(const L* lc, const R* rc, std::size_t m, MinMax* ext) {
  for (std::size_t row = 0; row < m; ++row) {
    MinMax& e = ext[static_cast<std::size_t>(lc[row])];
    std::int32_t r = static_cast<std::int32_t>(rc[row]);
    e.lo = std::min(e.lo, r);
    e.hi = std::max(e.hi, r);
  }
}

/// Dual-direction fill: the same single pass also scatter-updates the
/// reverse direction's extremes, so checking X→Y and Y→X streams the two
/// rank vectors once instead of twice.
template <typename L, typename R>
void FillExtremesBoth(const L* lc, const R* rc, std::size_t m, MinMax* fwd,
                      MinMax* rev) {
  for (std::size_t row = 0; row < m; ++row) {
    std::int32_t l = static_cast<std::int32_t>(lc[row]);
    std::int32_t r = static_cast<std::int32_t>(rc[row]);
    MinMax& f = fwd[static_cast<std::size_t>(l)];
    f.lo = std::min(f.lo, r);
    f.hi = std::max(f.hi, r);
    MinMax& b = rev[static_cast<std::size_t>(r)];
    b.lo = std::min(b.lo, l);
    b.hi = std::max(b.hi, l);
  }
}

struct ScanResult {
  bool has_split = false;
  bool has_swap = false;
};

/// Group scan over the packed extremes: split iff some group's rhs ranks
/// are not all equal (lo != hi), swap iff some group's lo is undercut by
/// the running max of all previous groups' hi.
ScanResult ScanExtremesScalar(const MinMax* ext, std::size_t groups) {
  ScanResult res;
  std::int32_t running_max = kI32Min;
  for (std::size_t g = 0; g < groups; ++g) {
    const MinMax& e = ext[g];
    res.has_split |= e.lo != e.hi;
    res.has_swap |= running_max > e.lo;
    running_max = std::max(running_max, e.hi);
  }
  return res;
}

#if OCDD_HAVE_AVX2_KERNELS

/// AVX2 group scan: 8 groups per iteration. The packed {lo,hi} pairs are
/// deinterleaved into a lo and a hi vector, the running max becomes an
/// exclusive in-register prefix max of hi (log-step lane shifts) with a
/// scalar carry between blocks, and the two predicates reduce to compare +
/// accumulate. Bit-identical to ScanExtremesScalar by construction: both
/// evaluate exactly `lo != hi` and `max(prev his) > lo` per group.
__attribute__((target("avx2"))) ScanResult ScanExtremesAvx2(
    const MinMax* ext, std::size_t groups) {
  ScanResult res;
  std::int32_t carry = kI32Min;
  const __m256i min_vec = _mm256_set1_epi32(kI32Min);
  // shuffle_ps picks even (lo) / odd (hi) 32-bit lanes but leaves them in
  // per-128-bit-lane order [0,1,4,5,2,3,6,7]; this permute restores
  // sequential group order (prefix max needs it).
  const __m256i reorder = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
  const __m256i shift1 = _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6);
  const __m256i shift2 = _mm256_setr_epi32(0, 0, 0, 1, 2, 3, 4, 5);
  const __m256i shift4 = _mm256_setr_epi32(0, 0, 0, 0, 0, 1, 2, 3);
  __m256i eq_acc = _mm256_set1_epi32(-1);
  __m256i swap_acc = _mm256_setzero_si256();

  std::size_t g = 0;
  for (; g + 8 <= groups; g += 8) {
    __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ext + g));
    __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ext + g + 4));
    __m256 af = _mm256_castsi256_ps(a);
    __m256 bf = _mm256_castsi256_ps(b);
    __m256i lo = _mm256_permutevar8x32_epi32(
        _mm256_castps_si256(_mm256_shuffle_ps(af, bf, _MM_SHUFFLE(2, 0, 2, 0))),
        reorder);
    __m256i hi = _mm256_permutevar8x32_epi32(
        _mm256_castps_si256(_mm256_shuffle_ps(af, bf, _MM_SHUFFLE(3, 1, 3, 1))),
        reorder);

    eq_acc = _mm256_and_si256(eq_acc, _mm256_cmpeq_epi32(lo, hi));

    // Inclusive prefix max of hi across the 8 lanes.
    __m256i incl = hi;
    __m256i s = _mm256_blend_epi32(_mm256_permutevar8x32_epi32(incl, shift1),
                                   min_vec, 0x01);
    incl = _mm256_max_epi32(incl, s);
    s = _mm256_blend_epi32(_mm256_permutevar8x32_epi32(incl, shift2), min_vec,
                           0x03);
    incl = _mm256_max_epi32(incl, s);
    s = _mm256_blend_epi32(_mm256_permutevar8x32_epi32(incl, shift4), min_vec,
                           0x0F);
    incl = _mm256_max_epi32(incl, s);

    // Exclusive prefix max: lanes shift up one group, the carry (max of all
    // earlier blocks) enters at lane 0.
    __m256i excl = _mm256_blend_epi32(_mm256_permutevar8x32_epi32(incl, shift1),
                                      _mm256_set1_epi32(carry), 0x01);
    excl = _mm256_max_epi32(excl, _mm256_set1_epi32(carry));

    swap_acc = _mm256_or_si256(swap_acc, _mm256_cmpgt_epi32(excl, lo));
    carry = std::max(carry, _mm256_extract_epi32(incl, 7));
  }

  res.has_split = _mm256_movemask_epi8(eq_acc) != -1;
  res.has_swap = _mm256_movemask_epi8(swap_acc) != 0;

  std::int32_t running_max = carry;
  for (; g < groups; ++g) {
    const MinMax& e = ext[g];
    res.has_split |= e.lo != e.hi;
    res.has_swap |= running_max > e.lo;
    running_max = std::max(running_max, e.hi);
  }
  return res;
}

#endif  // OCDD_HAVE_AVX2_KERNELS

ScanResult ScanExtremes(const MinMax* ext, std::size_t groups) {
  prof::ScopedTimer timer(prof::Phase::kCheckScan);
  prof::AddBytes(prof::Phase::kCheckScan,
                 static_cast<std::uint64_t>(groups) * sizeof(MinMax));
#if OCDD_HAVE_AVX2_KERNELS
  if (simd::Active() == simd::Backend::kAvx2) {
    return ScanExtremesAvx2(ext, groups);
  }
#endif
  return ScanExtremesScalar(ext, groups);
}

/// Probe scan for the blocked fill's early exit. Same predicates as
/// ScanExtremesScalar, but groups a partial fill has not touched yet (lo
/// still the init sentinel — real ranks are < 2^31-1, so the sentinel is
/// unambiguous) are skipped: under the sentinel they would read as
/// lo != hi and fake a split. Both predicates are monotone in the set of
/// rows filled — a subset's extremes are achieved by real rows, more rows
/// only widen [lo, hi] — so any split or swap the probe sees is final.
ScanResult ProbeExtremes(const MinMax* ext, std::size_t groups) {
  ScanResult res;
  std::int32_t running_max = kI32Min;
  for (std::size_t g = 0; g < groups; ++g) {
    const MinMax& e = ext[g];
    if (e.lo == kI32Max) continue;
    res.has_split |= e.lo != e.hi;
    res.has_swap |= running_max > e.lo;
    running_max = std::max(running_max, e.hi);
  }
  return res;
}

/// Blocked fill with monotone early exit: fill a chunk of rows, probe, and
/// stop as soon as every flag the caller consumes is already true — the
/// probe's flags are then exactly the final answer, so results never depend
/// on where the exit lands. Callers that ignore `has_split` (CheckOcd)
/// pass need_split = false and may get an understated has_split back on an
/// early exit. The chunk size is clamped below by the group count so the
/// O(groups) probe can never outweigh the fill it gates. On most levels a
/// candidate that fails does so within the first few chunks, which turns
/// the fill from O(rows per check) into O(rows to first witness).
template <typename L, typename R>
ScanResult FillScanOne(const L* lc, const R* rc, std::size_t m, MinMax* ext,
                       std::size_t groups, bool need_split) {
  const std::size_t chunk = std::max<std::size_t>(std::size_t{4096}, groups);
  std::size_t row = 0;
  for (;;) {
    const std::size_t end = std::min(m, row + chunk);
    {
      prof::ScopedTimer timer(prof::Phase::kCheckFill);
      prof::AddBytes(prof::Phase::kCheckFill,
                     static_cast<std::uint64_t>(end - row) *
                         (sizeof(lc[0]) + sizeof(rc[0])));
      FillExtremes(lc + row, rc + row, end - row, ext);
    }
    row = end;
    if (row >= m) return ScanExtremes(ext, groups);
    ScanResult probe = ProbeExtremes(ext, groups);
    if (probe.has_swap && (probe.has_split || !need_split)) return probe;
  }
}

ScanResult FillAndScan(const ListPartition& lhs, const ListPartition& rhs,
                       bool need_split) {
  thread_local std::vector<MinMax> out;
  std::size_t groups = static_cast<std::size_t>(lhs.num_groups());
  out.assign(groups, MinMax{kI32Max, kI32Min});
  MinMax* ext = out.data();
  const std::size_t m = lhs.num_rows();
  ScanResult res;
  WithCodes(lhs, [&](const auto* lc) {
    WithCodes(rhs, [&](const auto* rc) {
      res = FillScanOne(lc, rc, m, ext, groups, need_split);
    });
  });
  return res;
}

}  // namespace

OdCheckOutcome ListPartition::CheckOd(const ListPartition& lhs,
                                      const ListPartition& rhs) {
  OdCheckOutcome outcome;
  if (lhs.num_rows() < 2) return outcome;
  ScanResult scan = FillAndScan(lhs, rhs, /*need_split=*/true);
  outcome.has_split = scan.has_split;
  outcome.has_swap = scan.has_swap;
  return outcome;
}

void ListPartition::CheckOdBoth(const ListPartition& lhs,
                                const ListPartition& rhs,
                                OdCheckOutcome* forward,
                                OdCheckOutcome* reverse) {
  *forward = OdCheckOutcome{};
  *reverse = OdCheckOutcome{};
  if (lhs.num_rows() < 2) return;

  thread_local std::vector<MinMax> fwd_ext;
  thread_local std::vector<MinMax> rev_ext;
  std::size_t fwd_groups = static_cast<std::size_t>(lhs.num_groups());
  std::size_t rev_groups = static_cast<std::size_t>(rhs.num_groups());
  fwd_ext.assign(fwd_groups, MinMax{kI32Max, kI32Min});
  rev_ext.assign(rev_groups, MinMax{kI32Max, kI32Min});
  const std::size_t m = lhs.num_rows();
  // Blocked dual fill with the same monotone early exit as FillScanOne:
  // stop once all four flags are true — the probes' flags are then the
  // exact final answer for both directions.
  ScanResult fwd;
  ScanResult rev;
  WithCodes(lhs, [&](const auto* lc) {
    WithCodes(rhs, [&](const auto* rc) {
      const std::size_t chunk =
          std::max<std::size_t>(std::size_t{4096}, fwd_groups + rev_groups);
      std::size_t row = 0;
      for (;;) {
        const std::size_t end = std::min(m, row + chunk);
        {
          prof::ScopedTimer timer(prof::Phase::kCheckFill);
          prof::AddBytes(prof::Phase::kCheckFill,
                         static_cast<std::uint64_t>(end - row) *
                             (sizeof(lc[0]) + sizeof(rc[0])));
          FillExtremesBoth(lc + row, rc + row, end - row, fwd_ext.data(),
                           rev_ext.data());
        }
        row = end;
        if (row >= m) {
          fwd = ScanExtremes(fwd_ext.data(), fwd_groups);
          rev = ScanExtremes(rev_ext.data(), rev_groups);
          return;
        }
        ScanResult pf = ProbeExtremes(fwd_ext.data(), fwd_groups);
        ScanResult pr = ProbeExtremes(rev_ext.data(), rev_groups);
        if (pf.has_split && pf.has_swap && pr.has_split && pr.has_swap) {
          fwd = pf;
          rev = pr;
          return;
        }
      }
    });
  });
  forward->has_split = fwd.has_split;
  forward->has_swap = fwd.has_swap;
  reverse->has_split = rev.has_split;
  reverse->has_swap = rev.has_swap;
}

bool ListPartition::CheckOcd(const ListPartition& lhs,
                             const ListPartition& rhs) {
  if (lhs.num_rows() < 2) return true;
  return !FillAndScan(lhs, rhs, /*need_split=*/false).has_swap;
}

}  // namespace ocdd::core
