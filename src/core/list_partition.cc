#include "core/list_partition.h"

#include <algorithm>
#include <limits>

namespace ocdd::core {

ListPartition ListPartition::ForColumn(const rel::CodedRelation& relation,
                                       rel::ColumnId column) {
  ListPartition out;
  out.codes_ = relation.column(column).codes;
  out.num_groups_ = relation.column(column).num_distinct;
  return out;
}

ListPartition ListPartition::ForList(const rel::CodedRelation& relation,
                                     const od::AttributeList& list) {
  ListPartition out = ForColumn(relation, list[0]);
  for (std::size_t i = 1; i < list.size(); ++i) {
    out = out.Refine(relation, list[i]);
  }
  return out;
}

ListPartition ListPartition::Refine(const rel::CodedRelation& relation,
                                    rel::ColumnId column) const {
  const std::vector<std::int32_t>& col = relation.column(column).codes;
  std::size_t m = codes_.size();

  // Bucket rows by their current rank (counting sort pass), then order each
  // bucket by the new attribute's codes.
  std::vector<std::uint32_t> offsets(
      static_cast<std::size_t>(num_groups_) + 1, 0);
  for (std::int32_t c : codes_) {
    ++offsets[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t g = 1; g < offsets.size(); ++g) {
    offsets[g] += offsets[g - 1];
  }
  std::vector<std::uint32_t> rows(m);
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::uint32_t row = 0; row < m; ++row) {
      rows[cursor[static_cast<std::size_t>(codes_[row])]++] = row;
    }
  }

  ListPartition out;
  out.codes_.resize(m);
  std::int32_t next_rank = -1;
  for (std::int32_t g = 0; g < num_groups_; ++g) {
    std::uint32_t begin = offsets[static_cast<std::size_t>(g)];
    std::uint32_t end = offsets[static_cast<std::size_t>(g) + 1];
    std::sort(rows.begin() + begin, rows.begin() + end,
              [&](std::uint32_t a, std::uint32_t b) {
                return col[a] < col[b];
              });
    std::int32_t prev_code = std::numeric_limits<std::int32_t>::min();
    for (std::uint32_t i = begin; i < end; ++i) {
      if (col[rows[i]] != prev_code) {
        ++next_rank;
        prev_code = col[rows[i]];
      }
      out.codes_[rows[i]] = next_rank;
    }
  }
  out.num_groups_ = next_rank + 1;
  return out;
}

namespace {

/// Per-lhs-group min/max of the rhs ranks, indexed by lhs rank.
struct GroupExtremes {
  std::vector<std::int32_t> min_rhs;
  std::vector<std::int32_t> max_rhs;
};

GroupExtremes ComputeExtremes(const ListPartition& lhs,
                              const ListPartition& rhs) {
  GroupExtremes out;
  std::size_t groups = static_cast<std::size_t>(lhs.num_groups());
  out.min_rhs.assign(groups, std::numeric_limits<std::int32_t>::max());
  out.max_rhs.assign(groups, std::numeric_limits<std::int32_t>::min());
  const auto& lc = lhs.codes();
  const auto& rc = rhs.codes();
  for (std::size_t row = 0; row < lc.size(); ++row) {
    std::size_t g = static_cast<std::size_t>(lc[row]);
    out.min_rhs[g] = std::min(out.min_rhs[g], rc[row]);
    out.max_rhs[g] = std::max(out.max_rhs[g], rc[row]);
  }
  return out;
}

}  // namespace

OdCheckOutcome ListPartition::CheckOd(const ListPartition& lhs,
                                      const ListPartition& rhs) {
  OdCheckOutcome outcome;
  if (lhs.num_rows() < 2) return outcome;
  GroupExtremes ext = ComputeExtremes(lhs, rhs);
  std::int32_t running_max = std::numeric_limits<std::int32_t>::min();
  for (std::size_t g = 0; g < ext.min_rhs.size(); ++g) {
    if (ext.min_rhs[g] != ext.max_rhs[g]) outcome.has_split = true;
    if (running_max > ext.min_rhs[g]) outcome.has_swap = true;
    running_max = std::max(running_max, ext.max_rhs[g]);
  }
  return outcome;
}

bool ListPartition::CheckOcd(const ListPartition& lhs,
                             const ListPartition& rhs) {
  if (lhs.num_rows() < 2) return true;
  GroupExtremes ext = ComputeExtremes(lhs, rhs);
  std::int32_t running_max = std::numeric_limits<std::int32_t>::min();
  for (std::size_t g = 0; g < ext.min_rhs.size(); ++g) {
    if (running_max > ext.min_rhs[g]) return false;
    running_max = std::max(running_max, ext.max_rhs[g]);
  }
  return true;
}

}  // namespace ocdd::core
