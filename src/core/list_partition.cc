#include "core/list_partition.h"

#include <algorithm>
#include <limits>

namespace ocdd::core {

ListPartition ListPartition::ForColumn(const rel::CodedRelation& relation,
                                       rel::ColumnId column) {
  ListPartition out;
  out.codes_ = relation.column(column).codes;
  out.num_groups_ = relation.column(column).num_distinct;
  return out;
}

ListPartition ListPartition::ForList(const rel::CodedRelation& relation,
                                     const od::AttributeList& list) {
  ListPartition out = ForColumn(relation, list[0]);
  RefineScratch scratch;
  for (std::size_t i = 1; i < list.size(); ++i) {
    out = out.Refine(relation, list[i], &scratch);
  }
  return out;
}

ListPartition ListPartition::Refine(const rel::CodedRelation& relation,
                                    rel::ColumnId column) const {
  RefineScratch scratch;
  return Refine(relation, column, &scratch);
}

ListPartition ListPartition::Refine(const rel::CodedRelation& relation,
                                    rel::ColumnId column,
                                    RefineScratch* scratch,
                                    RefinePath path) const {
  const rel::CodedColumn& coded = relation.column(column);
  const std::int32_t* col = coded.codes.data();
  const std::size_t m = codes_.size();
  const std::size_t groups = static_cast<std::size_t>(num_groups_);

  const std::size_t domain = static_cast<std::size_t>(coded.num_distinct);
  const std::uint64_t buckets = static_cast<std::uint64_t>(groups) * domain;

  if (path == RefinePath::kAuto) {
    // The histogram path is two row passes plus a sequential bucket scan —
    // cheapest by far while g·d stays within a few multiples of m. Beyond
    // that, counting sort costs ~4 linear passes regardless of group
    // structure and comparison sort costs the bucket pass plus m·log(group
    // size): small domains mean large groups — the counting path's
    // territory; near-key columns (tiny groups) sort almost for free.
    if (buckets <= 8 * static_cast<std::uint64_t>(m)) {
      path = RefinePath::kHistogram;
    } else {
      path = domain * 4 <= m ? RefinePath::kCounting : RefinePath::kComparison;
    }
  }

  if (path == RefinePath::kHistogram) {
    // Bucket key = parent rank · d + code preserves (parent rank, code)
    // lexicographic order, so densely renumbering the occupied buckets in
    // key order yields exactly the refined ranks.
    std::vector<std::uint32_t>& occupied = scratch->tmp;
    occupied.assign(static_cast<std::size_t>(buckets), 0);
    const std::int32_t* parent = codes_.data();
    for (std::size_t row = 0; row < m; ++row) {
      occupied[static_cast<std::size_t>(parent[row]) * domain +
               static_cast<std::size_t>(col[row])] = 1;
    }
    std::uint32_t next = 0;
    for (std::uint32_t& slot : occupied) {
      if (slot != 0) slot = next++;
    }
    ListPartition out;
    out.codes_.resize(m);
    for (std::size_t row = 0; row < m; ++row) {
      out.codes_[row] = static_cast<std::int32_t>(
          occupied[static_cast<std::size_t>(parent[row]) * domain +
                   static_cast<std::size_t>(col[row])]);
    }
    out.num_groups_ = static_cast<std::int32_t>(next);
    return out;
  }

  // Parent-rank histogram: reused across consecutive refinements of the
  // same parent (the pipeline groups sibling lists by parent).
  std::vector<std::uint32_t>& offsets = scratch->rank_offsets;
  if (scratch->parent_tag != codes_.data()) {
    offsets.assign(groups + 1, 0);
    for (std::int32_t c : codes_) {
      ++offsets[static_cast<std::size_t>(c) + 1];
    }
    for (std::size_t g = 1; g < offsets.size(); ++g) {
      offsets[g] += offsets[g - 1];
    }
    scratch->parent_tag = codes_.data();
  }

  std::vector<std::uint32_t>& rows = scratch->rows;
  rows.resize(m);

  if (path == RefinePath::kCounting) {
    // Stable two-pass counting sort: first order rows by the new column's
    // code, then stably by parent rank — `rows` ends up sorted by
    // (parent rank, code) with no comparisons.
    std::vector<std::uint32_t>& code_offsets = scratch->code_offsets;
    code_offsets.assign(domain + 1, 0);
    for (std::size_t row = 0; row < m; ++row) {
      ++code_offsets[static_cast<std::size_t>(col[row]) + 1];
    }
    for (std::size_t d = 1; d < code_offsets.size(); ++d) {
      code_offsets[d] += code_offsets[d - 1];
    }
    std::vector<std::uint32_t>& tmp = scratch->tmp;
    tmp.resize(m);
    {
      std::vector<std::uint32_t>& cursor = scratch->cursor;
      cursor.assign(code_offsets.begin(), code_offsets.end() - 1);
      for (std::uint32_t row = 0; row < m; ++row) {
        tmp[cursor[static_cast<std::size_t>(col[row])]++] = row;
      }
    }
    {
      std::vector<std::uint32_t>& cursor = scratch->cursor;
      cursor.assign(offsets.begin(), offsets.end() - 1);
      for (std::size_t i = 0; i < m; ++i) {
        std::uint32_t row = tmp[i];
        rows[cursor[static_cast<std::size_t>(codes_[row])]++] = row;
      }
    }
  } else {
    // Bucket rows by parent rank, then order each bucket by the new
    // column's codes.
    {
      std::vector<std::uint32_t>& cursor = scratch->cursor;
      cursor.assign(offsets.begin(), offsets.end() - 1);
      for (std::uint32_t row = 0; row < m; ++row) {
        rows[cursor[static_cast<std::size_t>(codes_[row])]++] = row;
      }
    }
    for (std::size_t g = 0; g < groups; ++g) {
      std::uint32_t begin = offsets[g];
      std::uint32_t end = offsets[g + 1];
      std::sort(rows.begin() + begin, rows.begin() + end,
                [col](std::uint32_t a, std::uint32_t b) {
                  return col[a] < col[b];
                });
    }
  }

  // `rows` is ordered by (parent rank, code): assign dense new ranks,
  // bumping at every parent-group boundary or code change within a group.
  ListPartition out;
  out.codes_.resize(m);
  std::int32_t next_rank = -1;
  std::int32_t prev_parent = -1;
  std::int32_t prev_code = 0;
  for (std::size_t i = 0; i < m; ++i) {
    std::uint32_t row = rows[i];
    std::int32_t parent = codes_[row];
    std::int32_t code = col[row];
    if (parent != prev_parent || code != prev_code) {
      ++next_rank;
      prev_parent = parent;
      prev_code = code;
    }
    out.codes_[row] = next_rank;
  }
  out.num_groups_ = next_rank + 1;
  return out;
}

namespace {

/// Per-lhs-group min/max of the rhs ranks, indexed by lhs rank. Min and max
/// are adjacent in memory so the per-row random update touches one cache
/// line, not two. Thread-local so the O(groups) array is reused across
/// checks instead of allocated per call — the parallel check phase runs one
/// instance per pool worker.
struct MinMax {
  std::int32_t lo;
  std::int32_t hi;
};

std::vector<MinMax>& ComputeExtremes(const ListPartition& lhs,
                                     const ListPartition& rhs) {
  thread_local std::vector<MinMax> out;
  std::size_t groups = static_cast<std::size_t>(lhs.num_groups());
  out.assign(groups, MinMax{std::numeric_limits<std::int32_t>::max(),
                            std::numeric_limits<std::int32_t>::min()});
  const std::int32_t* lc = lhs.codes().data();
  const std::int32_t* rc = rhs.codes().data();
  MinMax* ext = out.data();
  const std::size_t m = lhs.num_rows();
  for (std::size_t row = 0; row < m; ++row) {
    MinMax& e = ext[static_cast<std::size_t>(lc[row])];
    std::int32_t r = rc[row];
    if (r < e.lo) e.lo = r;
    if (r > e.hi) e.hi = r;
  }
  return out;
}

}  // namespace

OdCheckOutcome ListPartition::CheckOd(const ListPartition& lhs,
                                      const ListPartition& rhs) {
  OdCheckOutcome outcome;
  if (lhs.num_rows() < 2) return outcome;
  const std::vector<MinMax>& ext = ComputeExtremes(lhs, rhs);
  std::int32_t running_max = std::numeric_limits<std::int32_t>::min();
  for (const MinMax& e : ext) {
    if (e.lo != e.hi) outcome.has_split = true;
    if (running_max > e.lo) outcome.has_swap = true;
    running_max = std::max(running_max, e.hi);
  }
  return outcome;
}

bool ListPartition::CheckOcd(const ListPartition& lhs,
                             const ListPartition& rhs) {
  if (lhs.num_rows() < 2) return true;
  const std::vector<MinMax>& ext = ComputeExtremes(lhs, rhs);
  std::int32_t running_max = std::numeric_limits<std::int32_t>::min();
  for (const MinMax& e : ext) {
    if (running_max > e.lo) return false;
    running_max = std::max(running_max, e.hi);
  }
  return true;
}

}  // namespace ocdd::core
