#ifndef OCDD_CORE_CHECKER_H_
#define OCDD_CORE_CHECKER_H_

#include <atomic>
#include <cstdint>

#include "od/attribute_list.h"
#include "relation/coded_relation.h"

namespace ocdd::core {

using od::AttributeList;

/// Outcome of a full OD check, following the split/swap dichotomy of
/// Theorem 2 in [16] (restated in §2.2 of the paper): when `X → Y` fails,
/// either two tuples tie on `X` but differ on `Y` (a *split*, i.e. the
/// embedded FD fails) or two tuples strictly ordered by `X` are inverted on
/// `Y` (a *swap*, i.e. order compatibility fails) — or both.
struct OdCheckOutcome {
  bool has_split = false;
  bool has_swap = false;

  bool valid() const { return !has_split && !has_swap; }
};

/// Counters accumulated across checks; readable concurrently.
struct CheckStats {
  std::atomic<std::uint64_t> ocd_checks{0};
  std::atomic<std::uint64_t> od_checks{0};

  std::uint64_t TotalChecks() const {
    return ocd_checks.load(std::memory_order_relaxed) +
           od_checks.load(std::memory_order_relaxed);
  }
  void Reset() {
    ocd_checks.store(0, std::memory_order_relaxed);
    od_checks.store(0, std::memory_order_relaxed);
  }
};

/// Validity checker for OD/OCD candidates over a coded relation
/// (paper §4.3, "Order Checking").
///
/// All methods are const and thread-safe: the parallel OCDDISCOVER driver
/// calls them concurrently from the worker pool. Each check sorts a fresh
/// row index by the candidate's left-hand side — `O(m log m)` comparisons,
/// matching the paper's "Checking with Indexes".
class OrderChecker {
 public:
  explicit OrderChecker(const rel::CodedRelation& relation)
      : relation_(relation) {}

  OrderChecker(const OrderChecker&) = delete;
  OrderChecker& operator=(const OrderChecker&) = delete;

  /// OCD single check (Theorem 4.1): `X ~ Y` iff the OD `XY → YX` holds.
  /// Since both sides of that OD carry the same attribute multiset, no split
  /// can occur; the scan only looks for swaps.
  bool HoldsOcd(const AttributeList& x, const AttributeList& y) const;

  /// Full OD check `lhs → rhs` with exact split/swap classification.
  ///
  /// The scan sorts by `lhs` with `rhs` as tie-break, then walks the
  /// lhs-groups: a group whose first and last rows differ on `rhs` is a
  /// split; a group whose first row is rhs-below the running rhs-maximum of
  /// earlier groups is a swap. When `early_exit` is set the scan stops at
  /// the first violation (the returned outcome then reports *a* violation,
  /// not necessarily both kinds).
  OdCheckOutcome CheckOd(const AttributeList& lhs, const AttributeList& rhs,
                         bool early_exit) const;

  /// Convenience: `CheckOd(lhs, rhs, /*early_exit=*/true).valid()`.
  bool HoldsOd(const AttributeList& lhs, const AttributeList& rhs) const;

  const rel::CodedRelation& relation() const { return relation_; }
  CheckStats& stats() const { return stats_; }

 private:
  const rel::CodedRelation& relation_;
  mutable CheckStats stats_;
};

}  // namespace ocdd::core

#endif  // OCDD_CORE_CHECKER_H_
