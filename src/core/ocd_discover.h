#ifndef OCDD_CORE_OCD_DISCOVER_H_
#define OCDD_CORE_OCD_DISCOVER_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/run_context.h"
#include "common/snapshot.h"
#include "core/column_reduction.h"
#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::core {

/// The three bits of one candidate's check outcome, as exchanged with a
/// `CandidateCheckHook`. The OD bits are meaningful only when `ocd_valid`
/// is set — an invalid OCD candidate spawns nothing and its embedded ODs
/// are never tested (§4.2.1).
struct CandidateOutcome {
  bool ocd_valid = false;
  bool od_xy = false;
  bool od_yx = false;
};

/// Injection seam for incremental maintenance (src/algo/incremental/).
///
/// Before a candidate `X ~ Y` is checked against the data the driver asks
/// `Lookup`; returning true serves the outcome without a data pass — the
/// candidate is not charged to the check budget and its lists are not
/// partitioned. After every *data-backed* check the driver reports the
/// fresh outcome through `Observe`, letting the hook warm its cache for
/// the next run. Both methods are invoked sequentially from the driver
/// thread (never from pool workers), so implementations need no locking.
///
/// Soundness is entirely the hook's burden: a served outcome must be
/// exactly what a data-backed check of the current relation would return,
/// or the walk diverges from the from-scratch result.
class CandidateCheckHook {
 public:
  virtual ~CandidateCheckHook() = default;
  virtual bool Lookup(const od::AttributeList& x, const od::AttributeList& y,
                      CandidateOutcome* out) = 0;
  virtual void Observe(const od::AttributeList& x, const od::AttributeList& y,
                       const CandidateOutcome& outcome) = 0;
};

/// Tuning knobs for a discovery run.
struct OcdDiscoverOptions {
  /// Injectable run control: deadline, check/memory budgets, cooperative
  /// cancellation, fault injection (see common/run_context.h). Not owned;
  /// may be nullptr, in which case the run uses a private context built from
  /// the legacy knobs below. When both are given, `max_checks` and
  /// `time_limit_seconds` are merged into the provided context.
  RunContext* run_context = nullptr;

  /// Worker threads for candidate checking (paper §4.2.2); 1 = sequential.
  std::size_t num_threads = 1;

  /// Abort once this many candidate checks have been performed
  /// (0 = unlimited). Mirrors the paper's 5-hour wall-clock cut-off; partial
  /// results discovered so far are returned with `completed == false`.
  std::uint64_t max_checks = 0;

  /// Wall-clock budget in seconds (0 = unlimited); same partial-result
  /// semantics as `max_checks`.
  double time_limit_seconds = 0.0;

  /// Cap on the tree level ℓ = |X| + |Y| (0 = unlimited).
  std::size_t max_level = 0;

  /// Abort when a level would exceed this many candidates — a memory
  /// backstop for quasi-constant blow-ups (§5.3.2), where the paper sees
  /// levels with millions of candidates. 0 = unlimited.
  std::size_t max_candidates_per_level = 4'000'000;

  /// Disable to skip the columnsReduction() phase (ablation).
  bool apply_column_reduction = true;

  /// Check candidates with cached *sorted partitions* (list_partition.h)
  /// instead of sorting a fresh row index per candidate. This is the
  /// linear-time checking scheme of ORDER [10] that §5.3.1 notes could be
  /// re-implemented in this approach: each side's rank vector is derived
  /// from its parent's by one O(m)-ish refinement and every check becomes
  /// O(m). Costs memory proportional to (#distinct list sides × rows);
  /// bounded by `max_partition_cache_bytes`, beyond which candidates fall
  /// back to the sort-based checker. Results are identical either way.
  bool use_sorted_partitions = false;

  /// Memory budget for the sorted-partition cache (0 = unlimited).
  std::size_t max_partition_cache_bytes = 1ULL << 30;  // 1 GiB

  /// Disable to skip the Theorem-3.9 pruning rules: every valid OCD then
  /// extends both sides regardless of the embedded ODs (ablation). The
  /// search then also visits — and reports — OCDs that the pruned run
  /// leaves implicit (they are derivable from emitted ODs), at the cost of
  /// strictly more candidates and checks.
  bool apply_od_pruning = true;

  /// Optional candidate-outcome cache consulted before every data-backed
  /// check (see CandidateCheckHook above). Not owned; nullptr = every
  /// candidate is checked against the data.
  CandidateCheckHook* check_hook = nullptr;

  /// Crash-safe checkpointing (see docs/checkpointing.md). Snapshots are
  /// taken at level boundaries — the BFS frontier plus the emitted OCD/OD
  /// sets — per the RunContext cadence, plus once on any early stop (drain)
  /// and once at completion. With `resume` set, the newest valid generation
  /// whose relation fingerprint matches is restored and the run redoes at
  /// most the one level that was in flight.
  CheckpointConfig checkpoint;
};

/// Output of `DiscoverOcds`.
struct OcdDiscoverResult {
  /// Minimal OCDs (disjoint duplicate-free sides) over the reduced
  /// universe U′, canonicalized and sorted.
  std::vector<od::OrderCompatibility> ocds;

  /// ODs emitted at valid OCD nodes (`X → Y` and/or `Y → X` where both the
  /// OCD and the OD hold), sorted.
  std::vector<od::OrderDependency> ods;

  /// The columnsReduction() output: constants and equivalence classes are
  /// an integral part of the result (paper §4.1).
  ColumnReduction reduction;

  /// Total candidate checks performed (OCD single checks + OD checks) —
  /// the `#checks` column of Table 6.
  std::uint64_t num_checks = 0;

  /// Number of OCD candidates generated across all levels.
  std::uint64_t candidates_generated = 0;

  /// Candidates answered by `options.check_hook` without a data pass, and
  /// candidates that missed the hook and were recomputed against the data.
  /// Both zero when no hook was installed.
  std::uint64_t hook_served = 0;
  std::uint64_t hook_recomputed = 0;

  /// Highest tree level fully processed (level ℓ holds candidates with
  /// |X| + |Y| = ℓ; the first level is 2).
  std::size_t levels_completed = 0;

  /// False when a budget (checks/time/level), cancellation, or fault stopped
  /// the run early.
  bool completed = true;

  /// Why the run stopped (`kNone` when `completed`). Level and
  /// candidates-per-level caps report `kLevelCap`.
  StopReason stop_reason = StopReason::kNone;

  /// Where the run was when it stopped (meaningful when `!completed`).
  StopState stop_state;

  /// What checkpointing did (zero-initialized when disabled).
  CheckpointStats checkpoint_stats;

  /// Peak footprint of the sorted-partition cache (0 when the sort-based
  /// checker was used throughout).
  std::size_t partition_cache_bytes = 0;

  double elapsed_seconds = 0.0;
};

/// Runs OCDDISCOVER (Algorithm 1) over `relation`.
///
/// The search enumerates OCD candidates `X ~ Y` with disjoint,
/// duplicate-free sides breadth-first: level 2 holds all single-attribute
/// pairs; a valid candidate spawns `XA ~ Y` and `X ~ YA` for every unused
/// attribute A, except that a side whose full OD already holds is not
/// extended (its extensions are implied — Theorem 3.9). Invalid candidates
/// spawn nothing (Theorem 3.7). Each candidate is validated with the
/// single-check reduction of Theorem 4.1.
OcdDiscoverResult DiscoverOcds(const rel::CodedRelation& relation,
                               const OcdDiscoverOptions& options = {});

}  // namespace ocdd::core

#endif  // OCDD_CORE_OCD_DISCOVER_H_
