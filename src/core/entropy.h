#ifndef OCDD_CORE_ENTROPY_H_
#define OCDD_CORE_ENTROPY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relation/coded_relation.h"

namespace ocdd::core {

/// Per-column diversity statistics (paper §5.4, Definition 5.1).
struct ColumnEntropyInfo {
  rel::ColumnId id = 0;
  double entropy = 0.0;          ///< Shannon entropy, natural log.
  std::int32_t num_distinct = 0;
};

/// Entropy and distinct counts for every column, sorted by *decreasing*
/// entropy (ties broken by ascending id). The order matches the sampling
/// protocol of Figure 7: most diverse columns first, constants last.
std::vector<ColumnEntropyInfo> RankColumnsByEntropy(
    const rel::CodedRelation& relation);

/// The `k` most diverse columns (by the ranking above), as ids in ranking
/// order. `k` is clamped to the column count.
std::vector<rel::ColumnId> TopEntropyColumns(const rel::CodedRelation& relation,
                                             std::size_t k);

/// Columns with at least `min_distinct` distinct values — the paper's
/// suggested guard against quasi-constant columns (§5.4).
std::vector<rel::ColumnId> ColumnsWithMinDistinct(
    const rel::CodedRelation& relation, std::int32_t min_distinct);

}  // namespace ocdd::core

#endif  // OCDD_CORE_ENTROPY_H_
