#include "core/expansion.h"

#include <algorithm>
#include <set>

#include "od/dependency_set.h"

namespace ocdd::core {

namespace {

using od::AttributeList;
using od::OrderDependency;

/// Collects expanded ODs with dedup and a materialization cap.
class Sink {
 public:
  Sink(std::uint64_t cap) : cap_(cap) {}

  void Add(OrderDependency od) {
    // The set keeps every distinct OD so both deduplication and the count
    // stay exact; only the materialized output vector is capped.
    auto [it, inserted] = seen_.insert(std::move(od));
    if (inserted) ++total_;
  }

  ExpandedResult Finish() && {
    ExpandedResult out;
    out.total_count = total_;
    out.truncated = total_ > cap_;
    out.ods.reserve(std::min<std::uint64_t>(total_, cap_));
    for (const OrderDependency& od : seen_) {
      if (out.ods.size() >= cap_) break;
      out.ods.push_back(od);
    }
    return out;
  }

 private:
  std::uint64_t cap_;
  std::uint64_t total_ = 0;
  bool truncated_ = false;
  std::set<OrderDependency> seen_;
};

/// Enumerates every substitution of a list's attributes by members of their
/// order-equivalence classes (Replace theorem) and calls `fn` on each.
template <typename Fn>
void ForEachSubstitution(const AttributeList& list,
                         const ColumnReduction& reduction, const Fn& fn) {
  std::vector<std::vector<ColumnId>> choices;
  choices.reserve(list.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    choices.push_back(reduction.ClassOf(list[i]));
  }
  std::vector<std::size_t> pick(list.size(), 0);
  for (;;) {
    std::vector<ColumnId> attrs(list.size());
    for (std::size_t i = 0; i < list.size(); ++i) {
      attrs[i] = choices[i][pick[i]];
    }
    fn(AttributeList(std::move(attrs)));
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < pick.size()) {
      if (++pick[pos] < choices[pos].size()) break;
      pick[pos] = 0;
      ++pos;
    }
    if (pos == pick.size()) break;
    if (pick.empty()) break;
  }
}

}  // namespace

ExpandedResult ExpandResults(const OcdDiscoverResult& result,
                             const rel::CodedRelation& relation,
                             const ExpansionOptions& options) {
  Sink sink(options.max_materialized);
  const ColumnReduction& red = result.reduction;

  auto add_all_substitutions = [&](const AttributeList& lhs,
                                   const AttributeList& rhs) {
    ForEachSubstitution(lhs, red, [&](const AttributeList& l) {
      ForEachSubstitution(rhs, red, [&](const AttributeList& r) {
        sink.Add(OrderDependency{l, r});
      });
    });
  };

  // (1) directly emitted ODs.
  for (const OrderDependency& od : result.ods) {
    add_all_substitutions(od.lhs, od.rhs);
  }

  // (2) per OCD: the defining order equivalence, plus Theorem 3.8 forms.
  for (const od::OrderCompatibility& ocd : result.ocds) {
    AttributeList xy = ocd.lhs.Concat(ocd.rhs);
    AttributeList yx = ocd.rhs.Concat(ocd.lhs);
    add_all_substitutions(xy, yx);
    add_all_substitutions(yx, xy);
    if (options.include_repeated_attribute_ods) {
      add_all_substitutions(xy, ocd.rhs);
      add_all_substitutions(yx, ocd.lhs);
    }
  }

  // (3) order-equivalent columns themselves: A → B and B → A per class pair.
  for (const std::vector<ColumnId>& cls : red.equivalence_classes) {
    for (std::size_t i = 0; i < cls.size(); ++i) {
      for (std::size_t j = 0; j < cls.size(); ++j) {
        if (i == j) continue;
        sink.Add(OrderDependency{AttributeList{cls[i]}, AttributeList{cls[j]}});
      }
    }
  }

  // (4) constants: ordered by every attribute.
  if (options.include_constant_ods) {
    for (ColumnId c : red.constant_columns) {
      for (ColumnId a = 0; a < relation.num_columns(); ++a) {
        if (a == c) continue;
        sink.Add(OrderDependency{AttributeList{a}, AttributeList{c}});
      }
    }
  }

  return std::move(sink).Finish();
}

}  // namespace ocdd::core
