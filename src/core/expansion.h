#ifndef OCDD_CORE_EXPANSION_H_
#define OCDD_CORE_EXPANSION_H_

#include <cstdint>
#include <vector>

#include "core/ocd_discover.h"
#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::core {

/// Controls for `ExpandResults`.
struct ExpansionOptions {
  /// Stop materializing ODs past this count; `total_count` keeps counting.
  std::uint64_t max_materialized = 1'000'000;

  /// Include the repeated-attribute forms `XY → Y` / `YX → X` implied by
  /// each OCD (Theorem 3.8) — the dependencies ORDER cannot discover.
  bool include_repeated_attribute_ods = true;

  /// Include `A → C` for every constant column C and attribute A ≠ C.
  bool include_constant_ods = true;
};

/// Results of expanding a discovery run back to the original schema (§5.2).
struct ExpandedResult {
  /// Materialized ODs over the *original* universe (representatives
  /// substituted by every member of their equivalence class), deduplicated
  /// and sorted; truncated at `max_materialized`.
  std::vector<od::OrderDependency> ods;

  /// Exact number of distinct expanded ODs, whether materialized or not.
  std::uint64_t total_count = 0;

  bool truncated = false;
};

/// Expands a discovery result to the full OD set over the original schema:
///
///  1. every emitted OD `X → Y` as-is;
///  2. per OCD `X ~ Y`: the defining equivalence `XY → YX`, `YX → XY`, and
///     (optionally) the Theorem-3.8 forms `XY → Y`, `YX → X`;
///  3. every OD rewritten over each combination of order-equivalence class
///     members of its attributes (Replace theorem);
///  4. per constant column C: `A → C` for every other attribute A
///     (a constant is ordered by everything).
///
/// This is the translation the paper applies before comparing counts with
/// ORDER and FASTOD (§5.2).
ExpandedResult ExpandResults(const OcdDiscoverResult& result,
                             const rel::CodedRelation& relation,
                             const ExpansionOptions& options = {});

}  // namespace ocdd::core

#endif  // OCDD_CORE_EXPANSION_H_
