#ifndef OCDD_CORE_LIST_PARTITION_H_
#define OCDD_CORE_LIST_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/checker.h"
#include "od/attribute_list.h"
#include "relation/coded_relation.h"

namespace ocdd::core {

/// How `ListPartition::Refine` orders the rows inside each parent group.
enum class RefinePath {
  /// Pick per call: counting sort when the new column's domain is small
  /// relative to the row count, comparison sort otherwise.
  kAuto,
  /// Two stable counting-sort passes over (code, parent rank): O(m + d + g)
  /// with no comparisons. Wins when groups are large (small domains).
  kCounting,
  /// Direct bucket renumbering over the key `parent rank · d + code`:
  /// marks occupied buckets, densely renumbers them in key order, then
  /// assigns each row its bucket's rank — two passes over the rows and one
  /// over the g·d buckets, never materializing a row order. The fastest
  /// path whenever g·d is within a small multiple of m.
  kHistogram,
  /// Bucket by parent rank, then std::sort each group by the new column's
  /// codes: O(m + Σ gᵢ log gᵢ). Wins when groups are already tiny.
  kComparison,
};

/// Reusable buffers for `Refine`, so a pipeline of refinements performs no
/// per-call allocations (beyond the result's own rank vector). One scratch
/// per thread; a scratch must not be shared between concurrent refinements.
///
/// Consecutive refinements of the *same* parent partition additionally
/// reuse the parent's rank histogram (`rank_offsets`): the parallel
/// partition pipeline groups each level's missing lists by parent to
/// exploit exactly this.
struct RefineScratch {
  /// Identity of the partition `rank_offsets` was computed for (its rank
  /// storage's buffer address); an opaque tag, only ever compared. Call
  /// `Invalidate()` after destroying a partition this scratch refined, in
  /// the unlikely case a new partition's buffer could land at the same
  /// address (long-lived cached parents, as in the discovery driver, are
  /// never at risk).
  const void* parent_tag = nullptr;
  std::vector<std::uint32_t> rank_offsets;
  std::vector<std::uint32_t> code_offsets;
  std::vector<std::uint32_t> cursor;
  std::vector<std::uint32_t> rows;
  std::vector<std::uint32_t> tmp;
  /// Per-position refined ranks of the counting/comparison paths, staged
  /// here until the group count (and so the output width) is known.
  std::vector<std::uint32_t> ranks;

  void Invalidate() { parent_tag = nullptr; }
};

/// A *sorted partition* of the rows under an attribute list X: the dense,
/// order-preserving rank of every row under the lexicographic order `⪯_X`.
///
/// This is the data structure the ORDER paper [10] uses for its validity
/// checks, which §5.3.1 of the reproduced paper notes "could have been
/// re-implemented in our approach" to avoid re-sorting per candidate. That
/// re-implementation is this class:
///
///  * `ForColumn` is free — a CodedColumn's codes already are the sorted
///    partition of the singleton list;
///  * `Refine` extends a list by one attribute in O(m)–O(m log g) where g
///    is the largest group, instead of the O(m log m) full sort per check;
///  * `CheckOd` / `CheckOcd` validate a candidate from the two sides'
///    partitions in O(m) — no sorting at all.
///
/// The BFS candidate tree extends sides by appending one attribute, so each
/// level's partitions derive from the previous level's — see the
/// `use_sorted_partitions` option of `DiscoverOcds`.
///
/// Storage is width-adaptive: the rank vector lives in the narrowest of
/// `uint8`/`uint16`/`int32` that holds `[0, num_groups)`, chosen from the
/// actual group count (a deterministic function of the partition content,
/// so cache accounting stays bit-identical across thread counts and
/// backends). On low-cardinality data this shrinks the partition cache and
/// the check kernels' memory traffic by 4x; the check and refine kernels
/// are templated over the width and always stream the stored form directly.
class ListPartition {
 public:
  ListPartition() = default;

  /// Rank vector of a single-attribute list (copies the column's narrowest
  /// code mirror).
  static ListPartition ForColumn(const rel::CodedRelation& relation,
                                 rel::ColumnId column);

  /// Rank vector of an arbitrary non-empty list, built by refining the
  /// head column by each subsequent attribute.
  static ListPartition ForList(const rel::CodedRelation& relation,
                               const od::AttributeList& list);

  /// Ranks of the list `this->list ++ [column]`: groups of equal rank are
  /// subdivided by the column's codes, renumbering ranks in order.
  ListPartition Refine(const rel::CodedRelation& relation,
                       rel::ColumnId column) const;

  /// `Refine` with caller-owned scratch (no internal allocations) and an
  /// explicit path choice. `kCounting` and `kComparison` produce identical
  /// partitions; `kAuto` picks by the column's domain size.
  ListPartition Refine(const rel::CodedRelation& relation,
                       rel::ColumnId column, RefineScratch* scratch,
                       RefinePath path = RefinePath::kAuto) const;

  std::size_t num_rows() const { return num_rows_; }
  std::int32_t num_groups() const { return num_groups_; }

  /// Width of the stored rank vector (the narrowest fitting num_groups).
  rel::CodeWidth width() const { return rel::WidthForDistinct(num_groups_); }

  /// Read-only width-dispatch view of the stored ranks.
  rel::CodeView view() const;

  /// Typed storage accessors; valid only for the matching `width()`.
  const std::uint8_t* data8() const { return c8_.data(); }
  const std::uint16_t* data16() const { return c16_.data(); }
  const std::int32_t* data32() const { return c32_.data(); }

  /// Materializes the ranks as int32 (a copy — the storage is
  /// width-adaptive). Convenience for tests and cold paths; kernels use
  /// `view()` or the typed accessors.
  std::vector<std::int32_t> codes() const;

  /// Approximate heap footprint, for cache budgeting. Uses capacity, so
  /// call `ShrinkToFit` first when the partition is about to be cached —
  /// otherwise the budget is charged for slack the allocator is holding.
  std::size_t MemoryBytes() const {
    return c8_.capacity() * sizeof(std::uint8_t) +
           c16_.capacity() * sizeof(std::uint16_t) +
           c32_.capacity() * sizeof(std::int32_t) + sizeof(*this);
  }

  /// Releases rank-vector slack (capacity beyond size) so `MemoryBytes`
  /// reflects real heap use before the partition enters a budgeted cache.
  void ShrinkToFit() {
    c8_.shrink_to_fit();
    c16_.shrink_to_fit();
    c32_.shrink_to_fit();
  }

  /// Full OD check `X → Y` from the two sides' partitions (split and swap
  /// classification identical to OrderChecker::CheckOd), in O(m + groups).
  /// `has_swap` alone decides the OCD single check (Theorem 4.1), so one
  /// call answers both "X ~ Y?" and "X → Y?".
  static OdCheckOutcome CheckOd(const ListPartition& lhs,
                                const ListPartition& rhs);

  /// Both directions in one pass over the rows: `*forward` gets the
  /// `lhs → rhs` outcome, `*reverse` the `rhs → lhs` outcome. A single
  /// traversal fills both sides' extremes arrays, halving the dominant
  /// sequential read traffic versus two `CheckOd` calls — the discovery
  /// driver needs both directions for every order-compatible candidate.
  static void CheckOdBoth(const ListPartition& lhs, const ListPartition& rhs,
                          OdCheckOutcome* forward, OdCheckOutcome* reverse);

  /// OCD single check (Theorem 4.1): true iff no swap between the two
  /// sides, i.e. no row pair with `lhs` strictly increasing and `rhs`
  /// strictly decreasing. O(m + groups).
  static bool CheckOcd(const ListPartition& lhs, const ListPartition& rhs);

 private:
  /// Sizes the storage vector matching `WidthForDistinct(groups)` and sets
  /// the shape fields; exactly one vector is non-empty afterwards (m > 0).
  void Allocate(std::size_t m, std::int32_t groups);

  /// Address of the active storage buffer — the scratch `parent_tag`.
  const void* StorageTag() const;

  template <typename P, typename C>
  ListPartition RefineTyped(const P* parent, const C* col, std::size_t domain,
                            RefineScratch* scratch, RefinePath path) const;

  /// Exactly one of these is non-empty (for num_rows_ > 0): the one
  /// matching `width()`.
  std::vector<std::uint8_t> c8_;
  std::vector<std::uint16_t> c16_;
  std::vector<std::int32_t> c32_;
  std::size_t num_rows_ = 0;
  std::int32_t num_groups_ = 0;
};

}  // namespace ocdd::core

#endif  // OCDD_CORE_LIST_PARTITION_H_
