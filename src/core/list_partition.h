#ifndef OCDD_CORE_LIST_PARTITION_H_
#define OCDD_CORE_LIST_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/checker.h"
#include "od/attribute_list.h"
#include "relation/coded_relation.h"

namespace ocdd::core {

/// A *sorted partition* of the rows under an attribute list X: the dense,
/// order-preserving rank of every row under the lexicographic order `⪯_X`.
///
/// This is the data structure the ORDER paper [10] uses for its validity
/// checks, which §5.3.1 of the reproduced paper notes "could have been
/// re-implemented in our approach" to avoid re-sorting per candidate. That
/// re-implementation is this class:
///
///  * `ForColumn` is free — a CodedColumn's codes already are the sorted
///    partition of the singleton list;
///  * `Refine` extends a list by one attribute in O(m log g) where g is the
///    largest group, instead of the O(m log m) full sort per check;
///  * `CheckOd` / `CheckOcdSwap` validate a candidate from the two sides'
///    partitions in O(m) — no sorting at all.
///
/// The BFS candidate tree extends sides by appending one attribute, so each
/// level's partitions derive from the previous level's — see the
/// `use_sorted_partitions` option of `DiscoverOcds`.
class ListPartition {
 public:
  ListPartition() = default;

  /// Rank vector of a single-attribute list (copies the column codes).
  static ListPartition ForColumn(const rel::CodedRelation& relation,
                                 rel::ColumnId column);

  /// Rank vector of an arbitrary non-empty list, built by refining the
  /// head column by each subsequent attribute.
  static ListPartition ForList(const rel::CodedRelation& relation,
                               const od::AttributeList& list);

  /// Ranks of the list `this->list ++ [column]`: groups of equal rank are
  /// subdivided by the column's codes, renumbering ranks in order.
  ListPartition Refine(const rel::CodedRelation& relation,
                       rel::ColumnId column) const;

  std::size_t num_rows() const { return codes_.size(); }
  std::int32_t num_groups() const { return num_groups_; }
  const std::vector<std::int32_t>& codes() const { return codes_; }

  /// Approximate heap footprint, for cache budgeting.
  std::size_t MemoryBytes() const {
    return codes_.capacity() * sizeof(std::int32_t) + sizeof(*this);
  }

  /// Full OD check `X → Y` from the two sides' partitions (split and swap
  /// classification identical to OrderChecker::CheckOd), in O(m + groups).
  static OdCheckOutcome CheckOd(const ListPartition& lhs,
                                const ListPartition& rhs);

  /// OCD single check (Theorem 4.1): true iff no swap between the two
  /// sides, i.e. no row pair with `lhs` strictly increasing and `rhs`
  /// strictly decreasing. O(m + groups).
  static bool CheckOcd(const ListPartition& lhs, const ListPartition& rhs);

 private:
  std::vector<std::int32_t> codes_;
  std::int32_t num_groups_ = 0;
};

}  // namespace ocdd::core

#endif  // OCDD_CORE_LIST_PARTITION_H_
