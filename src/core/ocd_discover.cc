#include "core/ocd_discover.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/prof.h"
#include "common/snapshot.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/checker.h"
#include "core/list_partition.h"
#include "od/dependency_set.h"

namespace ocdd::core {

namespace {

using od::AttributeList;
using od::AttributeListHash;

/// One node of the candidate tree: the pair (X, Y) of an OCD candidate.
struct Candidate {
  AttributeList x;
  AttributeList y;

  friend bool operator==(const Candidate& a, const Candidate& b) {
    return a.x == b.x && a.y == b.y;
  }
};

struct CandidateHash {
  std::size_t operator()(const Candidate& c) const {
    AttributeListHash h;
    return h(c.x) * 1000003ULL ^ h(c.y);
  }
};

/// Heap-inclusive footprint estimate of one candidate, the unit the
/// RunContext memory budget is charged in for the level frontier.
std::size_t CandidateBytes(const Candidate& c) {
  return sizeof(Candidate) +
         (c.x.size() + c.y.size()) * sizeof(rel::ColumnId);
}

/// Per-candidate check outcome, filled by the (possibly parallel) check
/// phase and consumed by the sequential generation phase.
struct CheckedCandidate {
  bool checked = false;  // false when the budget aborted before this one
  bool ocd_valid = false;
  bool od_xy = false;
  bool od_yx = false;
};

class Driver {
 public:
  Driver(const rel::CodedRelation& relation, const OcdDiscoverOptions& options)
      : relation_(relation), options_(options), checker_(relation) {
    ctx_ = options.run_context != nullptr ? options.run_context : &local_ctx_;
    if (options.max_checks != 0) ctx_->set_check_budget(options.max_checks);
    if (options.time_limit_seconds > 0.0) {
      ctx_->set_time_limit_seconds(options.time_limit_seconds);
    }
  }

  OcdDiscoverResult Run() {
    WallTimer timer;
    OcdDiscoverResult result;

    if (options_.apply_column_reduction) {
      result.reduction = ReduceColumns(relation_);
    } else {
      for (ColumnId c = 0; c < relation_.num_columns(); ++c) {
        result.reduction.reduced_universe.push_back(c);
      }
    }
    const std::vector<ColumnId>& universe = result.reduction.reduced_universe;

    od::DependencyStore store;
    std::vector<Candidate> level;
    std::size_t level_bytes = 0;
    std::size_t current_level = 2;
    bool aborted = false;
    StopReason cap_reason = StopReason::kNone;

    CheckpointStats& ck = result.checkpoint_stats;
    ck.enabled = options_.checkpoint.enabled();
    std::unique_ptr<SnapshotStore> snap;
    const std::uint64_t fingerprint =
        ck.enabled ? relation_.Fingerprint() : 0;
    if (ck.enabled) {
      snap = std::make_unique<SnapshotStore>(options_.checkpoint.dir,
                                             "ocddiscover");
      snap->set_fault_injector(ctx_->fault_injector());
    }

    // State blob captured at the last level boundary (start of the level
    // currently in flight); written on cadence, and at drain when the run
    // stops mid-level so a restart redoes at most one level.
    auto encode_state = [&](bool completed_flag) {
      SnapshotBuilder b;
      ByteWriter meta;
      meta.U32(1);  // state format version
      meta.U64(fingerprint);
      meta.U64(current_level);
      meta.U64(result.levels_completed);
      meta.U64(TotalChecks());
      meta.U64(result.candidates_generated);
      meta.U8(completed_flag ? 1 : 0);
      b.AddSection("meta", meta.Take());
      ByteWriter fr;
      fr.U32(static_cast<std::uint32_t>(level.size()));
      for (const Candidate& c : level) {
        fr.IdVec(c.x.ids());
        fr.IdVec(c.y.ids());
      }
      b.AddSection("frontier", fr.Take());
      ByteWriter cl;
      cl.U32(static_cast<std::uint32_t>(store.ods().size()));
      for (const od::OrderDependency& d : store.ods()) {
        cl.IdVec(d.lhs.ids());
        cl.IdVec(d.rhs.ids());
      }
      cl.U32(static_cast<std::uint32_t>(store.ocds().size()));
      for (const od::OrderCompatibility& d : store.ocds()) {
        cl.IdVec(d.lhs.ids());
        cl.IdVec(d.rhs.ids());
      }
      b.AddSection("claims", cl.Take());
      return b.Encode();
    };

    auto write_snapshot = [&](const std::string& blob) {
      Result<std::uint64_t> gen =
          snap->Write(blob, options_.checkpoint.keep_generations);
      if (gen.ok()) {
        ++ck.snapshots_written;
        ctx_->MarkCheckpointed();
        return true;
      }
      ck.warning = gen.status().message();
      return false;
    };

    auto decode_state = [&](const SnapshotView& view) {
      const std::string* meta_s = view.Find("meta");
      const std::string* fr_s = view.Find("frontier");
      const std::string* cl_s = view.Find("claims");
      if (meta_s == nullptr || fr_s == nullptr || cl_s == nullptr) {
        ck.warning = "resume skipped: snapshot missing sections";
        return false;
      }
      ByteReader meta(*meta_s);
      if (meta.U32() != 1) {
        ck.warning = "resume skipped: unknown snapshot state version";
        return false;
      }
      if (meta.U64() != fingerprint) {
        ck.warning = "resume skipped: snapshot is for a different relation";
        return false;
      }
      std::uint64_t s_level = meta.U64();
      std::uint64_t s_levels_completed = meta.U64();
      std::uint64_t s_checks = meta.U64();
      std::uint64_t s_candidates = meta.U64();
      meta.U8();  // completed flag; an empty frontier says the same thing
      if (!meta.ok()) {
        ck.warning = "resume skipped: snapshot meta damaged";
        return false;
      }
      ByteReader fr(*fr_s);
      std::uint32_t n = fr.U32();
      std::vector<Candidate> restored;
      restored.reserve(n);
      for (std::uint32_t i = 0; i < n && fr.ok(); ++i) {
        AttributeList x(fr.IdVec());
        AttributeList y(fr.IdVec());
        restored.push_back(Candidate{std::move(x), std::move(y)});
      }
      if (!fr.ok()) {
        ck.warning = "resume skipped: snapshot frontier damaged";
        return false;
      }
      ByteReader cl(*cl_s);
      od::DependencyStore restored_store;
      std::uint32_t num_ods = cl.U32();
      for (std::uint32_t i = 0; i < num_ods && cl.ok(); ++i) {
        AttributeList lhs(cl.IdVec());
        AttributeList rhs(cl.IdVec());
        restored_store.AddOd(
            od::OrderDependency{std::move(lhs), std::move(rhs)});
      }
      std::uint32_t num_ocds = cl.U32();
      for (std::uint32_t i = 0; i < num_ocds && cl.ok(); ++i) {
        AttributeList lhs(cl.IdVec());
        AttributeList rhs(cl.IdVec());
        restored_store.AddOcd(
            od::OrderCompatibility{std::move(lhs), std::move(rhs)});
      }
      if (!cl.ok()) {
        ck.warning = "resume skipped: snapshot claims damaged";
        return false;
      }
      // Commit: replay the frontier's memory charge, then adopt the state.
      std::size_t restored_bytes = 0;
      for (const Candidate& c : restored) {
        std::size_t bytes = CandidateBytes(c);
        if (!ctx_->ChargeMemory(bytes)) {
          aborted = true;
          break;
        }
        restored_bytes += bytes;
      }
      level = std::move(restored);
      level_bytes = restored_bytes;
      current_level = static_cast<std::size_t>(s_level);
      result.levels_completed = static_cast<std::size_t>(s_levels_completed);
      result.candidates_generated = s_candidates;
      checks_base_ = s_checks;
      store = std::move(restored_store);
      return true;
    };

    bool resumed = false;
    if (ck.enabled && options_.checkpoint.resume) {
      Result<LoadedSnapshot> loaded = snap->Load();
      if (loaded.ok()) {
        ck.corrupt_skipped = loaded->corrupt_skipped;
        if (decode_state(loaded->view)) {
          resumed = true;
          ck.resumed = true;
          ck.resumed_generation = loaded->generation;
        }
      } else {
        ck.warning = "resume skipped: " + loaded.status().message();
      }
    }

    if (!resumed) {
      // Level ℓ = 2: all unordered single-attribute pairs (Algorithm 1
      // line 4).
      for (std::size_t i = 0; i < universe.size() && !aborted; ++i) {
        for (std::size_t j = i + 1; j < universe.size(); ++j) {
          Candidate c{AttributeList{universe[i]}, AttributeList{universe[j]}};
          std::size_t bytes = CandidateBytes(c);
          if (!ctx_->ChargeMemory(bytes)) {
            aborted = true;
            break;
          }
          level_bytes += bytes;
          level.push_back(std::move(c));
        }
      }
      result.candidates_generated += level.size();
    }

    std::unique_ptr<ThreadPool> pool;
    if (options_.num_threads > 1) {
      pool = std::make_unique<ThreadPool>(options_.num_threads);
    }

    std::string pending_blob;
    bool pending_written = true;
    try {
      while (!level.empty() && !aborted) {
        if (snap) {
          prof::ScopedTimer ck_timer(prof::Phase::kCheckpoint);
          pending_blob = encode_state(false);
          pending_written = false;
          if (ctx_->CheckpointDue()) {
            pending_written = write_snapshot(pending_blob);
          }
        }
        ctx_->AtInjectionPoint("ocd.level");
        if (ctx_->ShouldStop()) {
          aborted = true;
          break;
        }
        if (options_.max_level != 0 && current_level > options_.max_level) {
          aborted = true;
          cap_reason = StopReason::kLevelCap;
          break;
        }

        // Hook pre-resolution (sequential): candidates whose outcome the
        // hook can prove are served up front, so the partition pipeline
        // below never pays for their lists and the check phase skips them.
        std::vector<CheckedCandidate> checked(level.size());
        std::vector<char> served;
        if (options_.check_hook != nullptr) {
          served.assign(level.size(), 0);
          for (std::size_t i = 0; i < level.size(); ++i) {
            CandidateOutcome out;
            if (options_.check_hook->Lookup(level[i].x, level[i].y, &out)) {
              served[i] = 1;
              checked[i] =
                  CheckedCandidate{true, out.ocd_valid, out.od_xy, out.od_yx};
              ++hook_served_;
            }
          }
        }

        // Sorted-partition mode: make sure both sides of every candidate
        // have a cached rank vector before the (parallel, read-only) check
        // phase. Refinement itself is parallel — see
        // PrepareLevelPartitions.
        if (options_.use_sorted_partitions) {
          PrepareLevelPartitions(level, pool.get(),
                                 served.empty() ? nullptr : &served);
        }

        auto check_one = [&](std::size_t i) {
          if (!served.empty() && served[i] != 0) return;
          if (ctx_->ShouldStop()) return;
          ctx_->AtInjectionPoint("ocd.check");
          const Candidate& c = level[i];
          CheckedCandidate& out = checked[i];
          out.checked = true;

          const ListPartition* px = FindPartition(c.x);
          const ListPartition* py = FindPartition(c.y);
          if (px != nullptr && py != nullptr) {
            // One row pass fills both directions' extremes, answering the
            // OCD single check (swap only, Theorem 4.1) and both embedded
            // ODs X → Y and Y → X at once — the rank vectors are streamed
            // once instead of twice. The check accounting is unchanged:
            // 1 OCD check, plus 2 OD checks at valid nodes.
            part_checks_.fetch_add(1, std::memory_order_relaxed);
            ctx_->CountCheck(1);
            OdCheckOutcome xy;
            OdCheckOutcome yx;
            ListPartition::CheckOdBoth(*px, *py, &xy, &yx);
            out.ocd_valid = !xy.has_swap;
            if (out.ocd_valid) {
              part_checks_.fetch_add(2, std::memory_order_relaxed);
              ctx_->CountCheck(2);
              out.od_xy = xy.valid();
              out.od_yx = yx.valid();
            }
            return;
          }

          ctx_->CountCheck(1);
          out.ocd_valid = checker_.HoldsOcd(c.x, c.y);
          if (out.ocd_valid) {
            // §4.2.1: at every valid OCD node, test both embedded ODs. These
            // drive pruning and are emitted when valid (Algorithm 3).
            ctx_->CountCheck(2);
            out.od_xy = checker_.HoldsOd(c.x, c.y);
            out.od_yx = checker_.HoldsOd(c.y, c.x);
          }
        };

        if (pool) {
          Status check_status = pool->ParallelFor(level.size(), check_one);
          if (!check_status.ok()) {
            // A check task threw (fault injection or otherwise): the pool
            // contained it; stop the run and return the sound prefix.
            ctx_->RequestStop(StopReason::kFaultInjected);
          }
        } else {
          for (std::size_t i = 0; i < level.size(); ++i) check_one(i);
        }
        aborted = ctx_->stop_requested();

        // Feed every data-backed outcome to the hook (sequential, like
        // Lookup). Candidates the budget stopped before checking are not
        // reported — their outcome is unknown.
        if (options_.check_hook != nullptr) {
          for (std::size_t i = 0; i < level.size(); ++i) {
            if (served[i] != 0 || !checked[i].checked) continue;
            ++hook_recomputed_;
            options_.check_hook->Observe(
                level[i].x, level[i].y,
                CandidateOutcome{checked[i].ocd_valid, checked[i].od_xy,
                                 checked[i].od_yx});
          }
        }

        // Sequential generation phase: emission + next level (deduplicated).
        // On abort the emission still runs — every candidate the check phase
        // finished contributes to the partial result — but no children are
        // generated.
        std::vector<Candidate> next;
        std::size_t next_bytes = 0;
        std::unordered_set<Candidate, CandidateHash> seen;
        prof::ScopedTimer generate_timer(prof::Phase::kGenerate);
        for (std::size_t i = 0; i < level.size(); ++i) {
          const Candidate& c = level[i];
          const CheckedCandidate& r = checked[i];
          if (!r.checked || !r.ocd_valid) continue;
          ctx_->AtInjectionPoint("ocd.generate");

          store.AddOcd(od::OrderCompatibility{c.x, c.y});
          if (r.od_xy) store.AddOd(od::OrderDependency{c.x, c.y});
          if (r.od_yx) store.AddOd(od::OrderDependency{c.y, c.x});
          if (aborted) continue;

          bool extend_x = !r.od_xy || !options_.apply_od_pruning;
          bool extend_y = !r.od_yx || !options_.apply_od_pruning;
          if (!extend_x && !extend_y) continue;

          for (ColumnId a : universe) {
            if (c.x.Contains(a) || c.y.Contains(a)) continue;
            if (extend_x) {
              Candidate child{c.x.WithAppended(a), c.y};
              if (seen.count(child) == 0) {
                std::size_t bytes = CandidateBytes(child);
                if (!ctx_->ChargeMemory(bytes)) {
                  aborted = true;
                  break;
                }
                next_bytes += bytes;
                seen.insert(child);
                next.push_back(std::move(child));
              }
            }
            if (extend_y) {
              Candidate child{c.x, c.y.WithAppended(a)};
              if (seen.count(child) == 0) {
                std::size_t bytes = CandidateBytes(child);
                if (!ctx_->ChargeMemory(bytes)) {
                  aborted = true;
                  break;
                }
                next_bytes += bytes;
                seen.insert(child);
                next.push_back(std::move(child));
              }
            }
          }
          if (options_.max_candidates_per_level != 0 &&
              next.size() > options_.max_candidates_per_level) {
            aborted = true;
            cap_reason = StopReason::kLevelCap;
            break;
          }
        }

        if (!aborted) {
          result.levels_completed = current_level;
        }
        result.candidates_generated += next.size();
        level = std::move(next);
        ctx_->ReleaseMemory(level_bytes);
        level_bytes = next_bytes;
        ++current_level;
      }
    } catch (const FaultInjectedError&) {
      // An injection point fired `kThrow` in the sequential path. The
      // emitted prefix in `store` is intact and sound; report the stop.
      ctx_->RequestStop(StopReason::kFaultInjected);
      aborted = true;
    }
    ctx_->ReleaseMemory(level_bytes);

    aborted = aborted || ctx_->stop_requested();

    // Drain-to-checkpoint: a stopped run persists the state captured at the
    // last level boundary, so `--resume` redoes at most the level that was
    // in flight. A finished run writes a final generation (empty frontier)
    // so resuming a completed run is a no-op that returns the full result.
    if (snap) {
      prof::ScopedTimer ck_timer(prof::Phase::kCheckpoint);
      if (aborted) {
        if (!pending_written && !pending_blob.empty()) {
          write_snapshot(pending_blob);
        }
      } else {
        level.clear();
        write_snapshot(encode_state(true));
      }
    }

    result.stop_state.checks = TotalChecks();
    result.stop_state.level = current_level;
    result.stop_state.frontier_size = level.size();

    store.Finalize();
    result.ocds = store.ocds();
    result.ods = store.ods();
    result.num_checks = TotalChecks();
    result.completed = !aborted;
    result.stop_reason =
        ctx_->stop_reason() != StopReason::kNone ? ctx_->stop_reason()
                                                 : cap_reason;
    result.hook_served = hook_served_;
    result.hook_recomputed = hook_recomputed_;
    result.partition_cache_bytes = cache_bytes_;
    result.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

 private:
  std::uint64_t TotalChecks() const {
    // checks_base_ carries the checks of previous attempts when this run
    // was resumed from a snapshot, keeping reported totals cumulative.
    return checks_base_ + checker_.stats().TotalChecks() +
           part_checks_.load(std::memory_order_relaxed);
  }

  /// Cached-partition lookup; nullptr when the list was not cached (the
  /// caller falls back to the sort-based checker). Read-only, thread-safe
  /// during the check phase.
  const ListPartition* FindPartition(const od::AttributeList& list) const {
    if (!options_.use_sorted_partitions) return nullptr;
    auto it = part_cache_.find(list);
    return it == part_cache_.end() ? nullptr : &it->second;
  }

  /// Two-phase per-level partition pipeline. Phase 1 (sequential) plans
  /// every list the level needs that the cache is missing, walking each
  /// side's prefixes so the plan is prefix-closed and its order depends
  /// only on the candidate order — never on thread count. Phase 2 refines
  /// the plan layer by layer (all lists of one length are independent once
  /// the shorter ones are published) on the pool, sorting each layer by
  /// parent so sibling refinements on one worker share the parent's rank
  /// histogram, then publishes sequentially under the cache budget.
  ///
  /// Budget overflow stays graceful exactly as the old sequential pass: an
  /// over-budget partition is dropped, its descendants are skipped, and
  /// the affected candidates fall back to the sort-based checker. The
  /// RunContext is consulted between layers so a stopped run does not
  /// grind through refinements whose checks will never execute.
  /// `served`, when non-null, flags candidates already answered by the
  /// check hook — their lists are not planned (nor refined, nor charged to
  /// the cache budget), which is where the incremental walk's partition
  /// savings come from.
  void PrepareLevelPartitions(const std::vector<Candidate>& level,
                              ThreadPool* pool,
                              const std::vector<char>* served = nullptr) {
    struct Job {
      od::AttributeList list;
      ListPartition result;
      bool computed = false;
    };
    std::vector<Job> jobs;
    std::unordered_map<od::AttributeList, std::size_t, AttributeListHash>
        planned;
    std::size_t max_len = 0;
    std::vector<std::vector<Job*>> layers;
    {
      prof::ScopedTimer plan_timer(prof::Phase::kPlan);
      auto plan_list = [&](const od::AttributeList& list) {
        for (std::size_t k = 1; k <= list.size(); ++k) {
          od::AttributeList prefix(std::vector<ColumnId>(
              list.ids().begin(), list.ids().begin() + k));
          if (part_cache_.find(prefix) != part_cache_.end()) continue;
          if (planned.find(prefix) != planned.end()) continue;
          planned.emplace(prefix, jobs.size());
          jobs.push_back(Job{std::move(prefix), ListPartition{}, false});
        }
      };
      for (std::size_t i = 0; i < level.size(); ++i) {
        if (served != nullptr && (*served)[i] != 0) continue;
        plan_list(level[i].x);
        plan_list(level[i].y);
      }
      if (jobs.empty()) return;

      for (const Job& j : jobs) max_len = std::max(max_len, j.list.size());
      layers.resize(max_len + 1);
      for (Job& j : jobs) layers[j.list.size()].push_back(&j);
    }

    auto compute_job = [&](Job& job) {
      if (job.list.size() == 1) {
        job.result = ListPartition::ForColumn(relation_, job.list[0]);
        job.computed = true;
        return;
      }
      od::AttributeList prefix(std::vector<ColumnId>(
          job.list.ids().begin(), job.list.ids().end() - 1));
      auto parent = part_cache_.find(prefix);
      if (parent == part_cache_.end()) return;  // dropped by the budget
      thread_local RefineScratch scratch;
      job.result = parent->second.Refine(
          relation_, job.list[job.list.size() - 1], &scratch);
      job.computed = true;
    };

    for (std::size_t len = 1; len <= max_len; ++len) {
      std::vector<Job*>& layer = layers[len];
      if (layer.empty()) continue;
      if (ctx_->stop_requested()) return;
      // Group siblings: jobs that refine the same parent become adjacent,
      // so one worker's contiguous block reuses the parent histogram.
      // Deterministic (pure list comparison), hence thread-count-stable.
      std::stable_sort(layer.begin(), layer.end(),
                       [](const Job* a, const Job* b) {
                         return a->list.ids() < b->list.ids();
                       });
      if (pool != nullptr && layer.size() > 1) {
        Status status = pool->ParallelFor(
            layer.size(), [&](std::size_t i) { compute_job(*layer[i]); });
        if (!status.ok()) {
          // A refinement threw (allocation failure or similar): contained
          // by the pool; stop the run and let the level unwind.
          ctx_->RequestStop(StopReason::kFaultInjected);
          return;
        }
      } else {
        for (Job* j : layer) compute_job(*j);
      }
      // Publish in the sorted (deterministic) order, shrunk so the budget
      // is charged for real heap use, not allocator slack.
      prof::ScopedTimer publish_timer(prof::Phase::kPublish);
      for (Job* j : layer) {
        if (!j->computed) continue;
        j->result.ShrinkToFit();
        std::size_t bytes = j->result.MemoryBytes();
        if (options_.max_partition_cache_bytes != 0 &&
            cache_bytes_ + bytes > options_.max_partition_cache_bytes) {
          continue;
        }
        prof::AddAlloc(bytes);
        cache_bytes_ += bytes;
        part_cache_.emplace(std::move(j->list), std::move(j->result));
      }
    }
  }

  const rel::CodedRelation& relation_;
  const OcdDiscoverOptions& options_;
  OrderChecker checker_;
  RunContext local_ctx_;
  RunContext* ctx_ = nullptr;
  std::uint64_t checks_base_ = 0;
  std::uint64_t hook_served_ = 0;
  std::uint64_t hook_recomputed_ = 0;
  std::atomic<std::uint64_t> part_checks_{0};
  std::unordered_map<od::AttributeList, ListPartition, AttributeListHash>
      part_cache_;
  std::size_t cache_bytes_ = 0;
};

}  // namespace

OcdDiscoverResult DiscoverOcds(const rel::CodedRelation& relation,
                               const OcdDiscoverOptions& options) {
  Driver driver(relation, options);
  return driver.Run();
}

}  // namespace ocdd::core
