#include "core/entropy.h"

#include <algorithm>

namespace ocdd::core {

std::vector<ColumnEntropyInfo> RankColumnsByEntropy(
    const rel::CodedRelation& relation) {
  std::vector<ColumnEntropyInfo> out;
  out.reserve(relation.num_columns());
  for (rel::ColumnId c = 0; c < relation.num_columns(); ++c) {
    out.push_back(ColumnEntropyInfo{c, relation.ColumnEntropy(c),
                                    relation.column(c).num_distinct});
  }
  std::sort(out.begin(), out.end(),
            [](const ColumnEntropyInfo& a, const ColumnEntropyInfo& b) {
              if (a.entropy != b.entropy) return a.entropy > b.entropy;
              return a.id < b.id;
            });
  return out;
}

std::vector<rel::ColumnId> TopEntropyColumns(const rel::CodedRelation& relation,
                                             std::size_t k) {
  std::vector<ColumnEntropyInfo> ranked = RankColumnsByEntropy(relation);
  k = std::min(k, ranked.size());
  std::vector<rel::ColumnId> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(ranked[i].id);
  return out;
}

std::vector<rel::ColumnId> ColumnsWithMinDistinct(
    const rel::CodedRelation& relation, std::int32_t min_distinct) {
  std::vector<rel::ColumnId> out;
  for (rel::ColumnId c = 0; c < relation.num_columns(); ++c) {
    if (relation.column(c).num_distinct >= min_distinct) out.push_back(c);
  }
  return out;
}

}  // namespace ocdd::core
