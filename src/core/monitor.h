#ifndef OCDD_CORE_MONITOR_H_
#define OCDD_CORE_MONITOR_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "core/ocd_discover.h"
#include "relation/coded_relation.h"
#include "relation/relation.h"

namespace ocdd::core {

/// Maintains a discovered dependency set while rows are appended — the
/// paper's future-work scenario (§7, "dynamic inputs, where additional rows
/// may be added at runtime").
///
/// The key monotonicity property: inserting rows can only *invalidate*
/// dependencies, never create new ones (a dependency valid on the grown
/// instance was valid on every subset). Maintenance therefore alternates
/// between two regimes:
///
///  * **cheap revalidation** — when neither the column-reduction structure
///    (constants, order-equivalence classes) nor any emitted OD breaks,
///    dropping the OCDs the new rows falsified is *exactly* equivalent to a
///    fresh discovery on the grown relation: by downward closure
///    (Theorem 3.6) a broken OCD's entire subtree breaks with it, and the
///    Theorem-3.9 pruning decisions are unchanged;
///  * **re-discovery** — when a constant column starts varying, an
///    equivalence class splits, or an emitted OD breaks, previously-implicit
///    dependencies stop being derivable, so the monitor re-runs OCDDISCOVER
///    on the grown relation.
class DependencyMonitor {
 public:
  /// What one `AppendRows` call did.
  struct UpdateReport {
    /// OCDs/ODs the new rows falsified (before any re-discovery).
    std::vector<od::OrderCompatibility> invalidated_ocds;
    std::vector<od::OrderDependency> invalidated_ods;

    /// True when structural damage forced a full re-run.
    bool rediscovered = false;

    /// Why the re-run happened (diagnostics).
    bool constant_broke = false;
    bool equivalence_broke = false;
    bool od_broke = false;

    /// False when the options' RunContext stopped the revalidation sweep
    /// mid-way: unverified dependencies are conservatively *retained* (they
    /// held before the append and may still hold), and any re-discovery is
    /// skipped. `stop_reason` says why (kNone when the sweep finished).
    bool revalidation_complete = true;
    StopReason stop_reason = StopReason::kNone;
  };

  /// Runs the initial discovery on `base`.
  ///
  /// When `options.run_context` is set, the same context governs the
  /// initial discovery, every AppendRows revalidation sweep, and any
  /// re-discovery. A latched stop persists across calls until the caller
  /// invokes RunContext::Reset() — deliberate, so a cancelled monitor stays
  /// cancelled.
  explicit DependencyMonitor(rel::Relation base,
                             OcdDiscoverOptions options = {});

  DependencyMonitor(const DependencyMonitor&) = delete;
  DependencyMonitor& operator=(const DependencyMonitor&) = delete;

  /// Appends `rows` (validated against the schema) and updates the
  /// dependency set.
  Result<UpdateReport> AppendRows(
      const std::vector<std::vector<rel::Value>>& rows);

  const rel::Relation& relation() const { return relation_; }
  const OcdDiscoverResult& current() const { return state_; }
  std::size_t num_appends() const { return num_appends_; }

 private:
  void Rebuild();

  OcdDiscoverOptions options_;
  rel::Relation relation_;
  rel::CodedRelation coded_;
  OcdDiscoverResult state_;
  std::size_t num_appends_ = 0;
};

}  // namespace ocdd::core

#endif  // OCDD_CORE_MONITOR_H_
