#ifndef OCDD_CORE_POLARIZED_H_
#define OCDD_CORE_POLARIZED_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "relation/coded_relation.h"

namespace ocdd::core {

/// Bidirectional ("polarized") order dependencies — the generalization the
/// paper's related work points to [15]: each attribute in a list carries its
/// own sort direction, mirroring SQL's `ORDER BY a ASC, b DESC`.
///
/// The key observation the implementation exploits: a polarized list over
/// relation r is an ordinary list over the *augmented* relation r± that
/// contains, for every column, a second copy with reversed value order.
/// Everything proved for unidirectional ODs therefore transfers verbatim,
/// and the discovery below reuses the production OrderChecker unchanged.

struct PolarizedAttribute {
  rel::ColumnId column = 0;
  bool descending = false;

  friend bool operator==(const PolarizedAttribute& a,
                         const PolarizedAttribute& b) {
    return a.column == b.column && a.descending == b.descending;
  }
  friend bool operator<(const PolarizedAttribute& a,
                        const PolarizedAttribute& b) {
    if (a.column != b.column) return a.column < b.column;
    return a.descending < b.descending;
  }
};

using PolarizedList = std::vector<PolarizedAttribute>;

/// Renders as "[a+,b-]" using the relation's column names.
std::string PolarizedListToString(const PolarizedList& list,
                                  const rel::CodedRelation& relation);

/// A polarized order compatibility `lhs ~ rhs`.
struct PolarizedOcd {
  PolarizedList lhs;
  PolarizedList rhs;

  std::string ToString(const rel::CodedRelation& relation) const;

  friend bool operator==(const PolarizedOcd& a, const PolarizedOcd& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const PolarizedOcd& a, const PolarizedOcd& b) {
    if (a.lhs != b.lhs) return a.lhs < b.lhs;
    return a.rhs < b.rhs;
  }
};

/// A polarized order dependency `lhs → rhs`.
struct PolarizedOd {
  PolarizedList lhs;
  PolarizedList rhs;

  std::string ToString(const rel::CodedRelation& relation) const;

  friend bool operator==(const PolarizedOd& a, const PolarizedOd& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const PolarizedOd& a, const PolarizedOd& b) {
    if (a.lhs != b.lhs) return a.lhs < b.lhs;
    return a.rhs < b.rhs;
  }
};

/// Builds r±: columns [0, n) are the originals, column n + i carries the
/// reversed codes of column i (rank r becomes num_distinct−1−r), so
/// ascending order on n + i is descending order on i.
rel::CodedRelation AugmentWithReversedColumns(
    const rel::CodedRelation& relation);

/// Lexicographic three-way comparison under per-attribute directions.
int CompareRowsOnPolarizedList(const rel::CodedRelation& relation,
                               const PolarizedList& list, std::uint32_t row_a,
                               std::uint32_t row_b);

/// O(m²) semantic ground truth for tests, straight from Definition 2.2
/// with the polarized comparator.
bool BruteForceHoldsPolarizedOd(const rel::CodedRelation& relation,
                                const PolarizedList& lhs,
                                const PolarizedList& rhs);

struct PolarizedDiscoverOptions {
  std::uint64_t max_checks = 0;     ///< 0 = unlimited
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  /// Polarized trees grow 2× faster per level than unidirectional ones;
  /// the default caps candidate sides at |X| + |Y| = 4.
  std::size_t max_level = 4;
};

struct PolarizedDiscoverResult {
  /// Minimal polarized OCDs, mirror-canonicalized: the head attribute of
  /// the lhs is always ascending (flipping every direction on both sides
  /// of a dependency preserves validity, so only one of the two mirror
  /// images is reported).
  std::vector<PolarizedOcd> ocds;
  std::vector<PolarizedOd> ods;
  std::uint64_t num_checks = 0;
  std::uint64_t candidates_generated = 0;
  bool completed = true;
  double elapsed_seconds = 0.0;
};

/// Breadth-first discovery of polarized OCDs/ODs — the OCDDISCOVER tree
/// over direction-annotated attributes. Constant columns are skipped;
/// column reduction is not applied (inverse equivalences like
/// `age ↑ ↔ birth_year ↓` are reported as dependencies instead).
PolarizedDiscoverResult DiscoverPolarizedOcds(
    const rel::CodedRelation& relation,
    const PolarizedDiscoverOptions& options = {});

}  // namespace ocdd::core

#endif  // OCDD_CORE_POLARIZED_H_
