#include "core/approximate.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "core/list_partition.h"

namespace ocdd::core {

namespace {

/// Row ranks under the two lists, plus a row order sorted by (x, y).
struct RankedRows {
  std::vector<std::int32_t> xr;
  std::vector<std::int32_t> yr;
  std::vector<std::uint32_t> order;  // rows sorted by (xr, yr)
};

RankedRows RankRows(const rel::CodedRelation& relation,
                    const od::AttributeList& x, const od::AttributeList& y) {
  RankedRows out;
  out.xr = ListPartition::ForList(relation, x).codes();
  out.yr = ListPartition::ForList(relation, y).codes();
  out.order.resize(relation.num_rows());
  std::iota(out.order.begin(), out.order.end(), 0);
  std::sort(out.order.begin(), out.order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (out.xr[a] != out.xr[b]) return out.xr[a] < out.xr[b];
              return out.yr[a] < out.yr[b];
            });
  return out;
}

/// Longest non-decreasing subsequence length (patience sorting): `tails[k]`
/// holds the smallest possible last element of a non-decreasing subsequence
/// of length k+1.
std::size_t LongestNonDecreasingSubsequence(
    const std::vector<std::int32_t>& seq) {
  std::vector<std::int32_t> tails;
  for (std::int32_t v : seq) {
    auto it = std::upper_bound(tails.begin(), tails.end(), v);
    if (it == tails.end()) {
      tails.push_back(v);
    } else {
      *it = v;
    }
  }
  return tails.size();
}

/// Fenwick tree over y-ranks supporting prefix-max queries.
class MaxFenwick {
 public:
  explicit MaxFenwick(std::size_t n) : tree_(n + 1, 0) {}

  /// max over positions [0, pos] (inclusive); 0 when empty.
  std::uint64_t PrefixMax(std::size_t pos) const {
    std::uint64_t best = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) {
      best = std::max(best, tree_[i]);
    }
    return best;
  }

  void Update(std::size_t pos, std::uint64_t value) {
    for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] = std::max(tree_[i], value);
    }
  }

 private:
  std::vector<std::uint64_t> tree_;
};

}  // namespace

ApproximateError OcdError(const rel::CodedRelation& relation,
                          const od::AttributeList& x,
                          const od::AttributeList& y) {
  ApproximateError out;
  std::size_t m = relation.num_rows();
  if (m < 2) return out;
  RankedRows ranked = RankRows(relation, x, y);

  // With rows ordered by (x, y), a subset is swap-free iff its y-rank
  // subsequence is non-decreasing (x-ties were pre-sorted by y, so they can
  // always all be kept).
  std::vector<std::int32_t> seq;
  seq.reserve(m);
  for (std::uint32_t row : ranked.order) seq.push_back(ranked.yr[row]);
  std::size_t keep = LongestNonDecreasingSubsequence(seq);
  out.removals = m - keep;
  out.ratio = static_cast<double>(out.removals) / static_cast<double>(m);
  return out;
}

ApproximateError OdError(const rel::CodedRelation& relation,
                         const od::AttributeList& lhs,
                         const od::AttributeList& rhs) {
  ApproximateError out;
  std::size_t m = relation.num_rows();
  if (m < 2) return out;
  RankedRows ranked = RankRows(relation, lhs, rhs);

  // Collapse rows into (x-rank, y-rank) blocks with multiplicities; the
  // kept subset picks blocks with strictly increasing x (one y per x) and
  // non-decreasing y, maximizing the total multiplicity.
  struct Block {
    std::int32_t x;
    std::int32_t y;
    std::uint64_t count;
  };
  std::vector<Block> blocks;
  std::size_t max_y = 0;
  for (std::size_t i = 0; i < m;) {
    std::uint32_t row = ranked.order[i];
    std::size_t j = i + 1;
    while (j < m && ranked.xr[ranked.order[j]] == ranked.xr[row] &&
           ranked.yr[ranked.order[j]] == ranked.yr[row]) {
      ++j;
    }
    blocks.push_back(Block{ranked.xr[row], ranked.yr[row],
                           static_cast<std::uint64_t>(j - i)});
    max_y = std::max(max_y, static_cast<std::size_t>(ranked.yr[row]));
    i = j;
  }

  // Weighted longest chain: process blocks grouped by x (ascending); each
  // block's best chain ends with an earlier-x block of y' ≤ y. Updates are
  // deferred until the whole x-group is scored so that two blocks with the
  // same x can never be chained together.
  MaxFenwick fenwick(max_y + 1);
  std::uint64_t best_total = 0;
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t j = i;
    while (j < blocks.size() && blocks[j].x == blocks[i].x) ++j;
    std::vector<std::uint64_t> scores(j - i);
    for (std::size_t k = i; k < j; ++k) {
      scores[k - i] =
          blocks[k].count +
          fenwick.PrefixMax(static_cast<std::size_t>(blocks[k].y));
    }
    for (std::size_t k = i; k < j; ++k) {
      fenwick.Update(static_cast<std::size_t>(blocks[k].y), scores[k - i]);
      best_total = std::max(best_total, scores[k - i]);
    }
    i = j;
  }

  out.removals = m - static_cast<std::size_t>(best_total);
  out.ratio = static_cast<double>(out.removals) / static_cast<double>(m);
  return out;
}

std::vector<std::uint32_t> OcdRepairRows(const rel::CodedRelation& relation,
                                         const od::AttributeList& x,
                                         const od::AttributeList& y) {
  std::size_t m = relation.num_rows();
  if (m < 2) return {};
  RankedRows ranked = RankRows(relation, x, y);

  // Longest non-decreasing subsequence with predecessor reconstruction
  // (patience sorting keeping, per pile, the position that ends there).
  std::vector<std::int32_t> tails;            // last y-rank per length
  std::vector<std::size_t> tail_pos;          // position achieving tails[k]
  std::vector<std::int64_t> parent(m, -1);    // previous position in the LNDS
  std::vector<std::size_t> length_at(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    std::int32_t v = ranked.yr[ranked.order[i]];
    auto it = std::upper_bound(tails.begin(), tails.end(), v);
    std::size_t k = static_cast<std::size_t>(it - tails.begin());
    if (it == tails.end()) {
      tails.push_back(v);
      tail_pos.push_back(i);
    } else {
      *it = v;
      tail_pos[k] = i;
    }
    parent[i] = k == 0 ? -1 : static_cast<std::int64_t>(tail_pos[k - 1]);
    length_at[i] = k + 1;
  }

  // Walk back from the end of the longest subsequence; everything not on
  // the kept chain is the removal witness.
  std::vector<bool> keep(m, false);
  std::int64_t pos = static_cast<std::int64_t>(tail_pos.back());
  while (pos >= 0) {
    keep[static_cast<std::size_t>(pos)] = true;
    pos = parent[static_cast<std::size_t>(pos)];
  }
  std::vector<std::uint32_t> removals;
  for (std::size_t i = 0; i < m; ++i) {
    if (!keep[i]) removals.push_back(ranked.order[i]);
  }
  std::sort(removals.begin(), removals.end());
  return removals;
}

std::vector<std::uint32_t> OdRepairRows(const rel::CodedRelation& relation,
                                        const od::AttributeList& lhs,
                                        const od::AttributeList& rhs) {
  std::size_t m = relation.num_rows();
  if (m < 2) return {};
  RankedRows ranked = RankRows(relation, lhs, rhs);

  // Same weighted-chain dynamic program as OdError, with row lists and
  // backpointers per block so the kept subset can be reconstructed.
  struct Block {
    std::int32_t x;
    std::int32_t y;
    std::vector<std::uint32_t> rows;
    std::uint64_t score = 0;
    std::int64_t parent = -1;
  };
  std::vector<Block> blocks;
  std::size_t max_y = 0;
  for (std::size_t i = 0; i < m;) {
    std::uint32_t row = ranked.order[i];
    Block b;
    b.x = ranked.xr[row];
    b.y = ranked.yr[row];
    std::size_t j = i;
    while (j < m && ranked.xr[ranked.order[j]] == b.x &&
           ranked.yr[ranked.order[j]] == b.y) {
      b.rows.push_back(ranked.order[j]);
      ++j;
    }
    max_y = std::max(max_y, static_cast<std::size_t>(b.y));
    blocks.push_back(std::move(b));
    i = j;
  }

  // Fenwick over y-ranks holding (best score, block index) pairs.
  struct Entry {
    std::uint64_t score = 0;
    std::int64_t block = -1;
  };
  std::vector<Entry> tree(max_y + 2);
  auto prefix_best = [&](std::size_t pos) {
    Entry best;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) {
      if (tree[i].score > best.score) best = tree[i];
    }
    return best;
  };
  auto update = [&](std::size_t pos, const Entry& e) {
    for (std::size_t i = pos + 1; i < tree.size(); i += i & (~i + 1)) {
      if (e.score > tree[i].score) tree[i] = e;
    }
  };

  std::int64_t best_block = -1;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < blocks.size();) {
    std::size_t j = i;
    while (j < blocks.size() && blocks[j].x == blocks[i].x) ++j;
    for (std::size_t k = i; k < j; ++k) {
      Entry prev = prefix_best(static_cast<std::size_t>(blocks[k].y));
      blocks[k].score = prev.score + blocks[k].rows.size();
      blocks[k].parent = prev.block;
    }
    for (std::size_t k = i; k < j; ++k) {
      update(static_cast<std::size_t>(blocks[k].y),
             Entry{blocks[k].score, static_cast<std::int64_t>(k)});
      if (blocks[k].score > best_score) {
        best_score = blocks[k].score;
        best_block = static_cast<std::int64_t>(k);
      }
    }
    i = j;
  }

  std::vector<bool> keep_row(m, false);
  for (std::int64_t b = best_block; b >= 0;
       b = blocks[static_cast<std::size_t>(b)].parent) {
    for (std::uint32_t row : blocks[static_cast<std::size_t>(b)].rows) {
      keep_row[row] = true;
    }
  }
  std::vector<std::uint32_t> removals;
  for (std::uint32_t row = 0; row < m; ++row) {
    if (!keep_row[row]) removals.push_back(row);
  }
  return removals;
}

std::vector<ApproximateOcd> DiscoverApproximatePairOcds(
    const rel::CodedRelation& relation, double max_ratio) {
  std::vector<ApproximateOcd> out;
  for (rel::ColumnId a = 0; a < relation.num_columns(); ++a) {
    if (relation.column(a).is_constant()) continue;
    for (rel::ColumnId b = a + 1; b < relation.num_columns(); ++b) {
      if (relation.column(b).is_constant()) continue;
      ApproximateError err =
          OcdError(relation, od::AttributeList{a}, od::AttributeList{b});
      if (err.ratio <= max_ratio) {
        out.push_back(ApproximateOcd{
            od::OrderCompatibility{od::AttributeList{a},
                                   od::AttributeList{b}},
            err});
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ocdd::core
