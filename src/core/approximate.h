#ifndef OCDD_CORE_APPROXIMATE_H_
#define OCDD_CORE_APPROXIMATE_H_

#include <cstddef>
#include <vector>

#include "od/attribute_list.h"
#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::core {

/// Approximate order dependencies under the g₃ error measure used for
/// approximate FDs [11]: the minimum number of tuples whose removal makes
/// the dependency hold exactly. Real data rarely satisfies interesting ODs
/// perfectly — a handful of dirty rows destroys them — so profiling tools
/// report the dependencies that hold on all but a small fraction of rows.

struct ApproximateError {
  /// g₃: minimum tuples to remove.
  std::size_t removals = 0;
  /// removals / num_rows (0 for an empty relation).
  double ratio = 0.0;

  bool exact() const { return removals == 0; }
};

/// g₃ error of the OCD `x ~ y`.
///
/// A swap is a row pair with `x` strictly increasing and `y` strictly
/// decreasing; the largest swap-free subset corresponds to the longest
/// non-decreasing subsequence of y-ranks with rows ordered by (x, y) ranks,
/// so the error is computed exactly in O(m log m).
ApproximateError OcdError(const rel::CodedRelation& relation,
                          const od::AttributeList& x,
                          const od::AttributeList& y);

/// g₃ error of the OD `lhs → rhs`.
///
/// The largest valid subset must in addition be split-free: rows tied on
/// `lhs` must agree on `rhs`, i.e. the kept rows form blocks of identical
/// (lhs-rank, rhs-rank) with at most one rhs-rank per lhs-rank and
/// rhs-ranks non-decreasing. Solved exactly as a weighted
/// longest-chain problem with a Fenwick max-tree in O(B log B) over the
/// B ≤ m distinct blocks.
ApproximateError OdError(const rel::CodedRelation& relation,
                         const od::AttributeList& lhs,
                         const od::AttributeList& rhs);

/// One approximately-order-compatible column pair.
struct ApproximateOcd {
  od::OrderCompatibility ocd;
  ApproximateError error;

  friend bool operator<(const ApproximateOcd& a, const ApproximateOcd& b) {
    if (a.error.removals != b.error.removals) {
      return a.error.removals < b.error.removals;
    }
    return a.ocd < b.ocd;
  }
};

/// A minimum-size set of row ids whose removal makes `x ~ y` hold exactly —
/// a g₃ witness (`size() == OcdError(...).removals`). The data-cleaning
/// view of approximate dependencies (§1 mentions cleansing): these are the
/// rows to quarantine so the rest of the table satisfies the dependency.
std::vector<std::uint32_t> OcdRepairRows(const rel::CodedRelation& relation,
                                         const od::AttributeList& x,
                                         const od::AttributeList& y);

/// Minimum-size removal witness for the OD `lhs → rhs`
/// (`size() == OdError(...).removals`).
std::vector<std::uint32_t> OdRepairRows(const rel::CodedRelation& relation,
                                        const od::AttributeList& lhs,
                                        const od::AttributeList& rhs);

/// Every single-attribute pair `A ~ B` whose g₃ ratio is at most
/// `max_ratio`, sorted by increasing error. `max_ratio` = 0 reduces to
/// exact pairwise OCD discovery. Constant columns are skipped (their error
/// is trivially 0 against everything).
std::vector<ApproximateOcd> DiscoverApproximatePairOcds(
    const rel::CodedRelation& relation, double max_ratio);

}  // namespace ocdd::core

#endif  // OCDD_CORE_APPROXIMATE_H_
