#include "core/column_reduction.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

namespace ocdd::core {

ColumnId ColumnReduction::Representative(ColumnId id) const {
  for (const std::vector<ColumnId>& cls : equivalence_classes) {
    for (ColumnId member : cls) {
      if (member == id) return cls.front();
    }
  }
  return id;
}

std::vector<ColumnId> ColumnReduction::ClassOf(ColumnId representative) const {
  for (const std::vector<ColumnId>& cls : equivalence_classes) {
    if (cls.front() == representative) return cls;
  }
  return {representative};
}

std::string ColumnReduction::ToString(
    const rel::CodedRelation& relation) const {
  std::string out;
  out += "constant: {";
  for (std::size_t i = 0; i < constant_columns.size(); ++i) {
    if (i > 0) out += ",";
    out += relation.column_name(constant_columns[i]);
  }
  out += "}, classes: ";
  for (const auto& cls : equivalence_classes) {
    out += "{";
    for (std::size_t i = 0; i < cls.size(); ++i) {
      if (i > 0) out += ",";
      out += relation.column_name(cls[i]);
    }
    out += "}";
  }
  return out;
}

namespace {

// 64-bit FNV-1a over the code vector; collisions re-verified exactly.
std::uint64_t HashCodes(const std::vector<std::int32_t>& codes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::int32_t c : codes) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ColumnReduction ReduceColumns(const rel::CodedRelation& relation) {
  ColumnReduction out;
  std::size_t n = relation.num_columns();

  // (a) constant columns.
  std::vector<bool> is_constant(n, false);
  for (ColumnId c = 0; c < n; ++c) {
    if (relation.column(c).is_constant()) {
      is_constant[c] = true;
      out.constant_columns.push_back(c);
    }
  }

  // (b) order-equivalent classes: bucket by code-vector hash, verify
  // exactly inside each bucket.
  std::unordered_map<std::uint64_t, std::vector<ColumnId>> buckets;
  for (ColumnId c = 0; c < n; ++c) {
    if (is_constant[c]) continue;
    buckets[HashCodes(relation.column(c).codes)].push_back(c);
  }

  std::vector<bool> merged_away(n, false);
  std::vector<std::vector<ColumnId>> classes;
  for (auto& [hash, cols] : buckets) {
    if (cols.size() < 2) continue;
    std::sort(cols.begin(), cols.end());
    std::vector<bool> used(cols.size(), false);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (used[i]) continue;
      std::vector<ColumnId> cls{cols[i]};
      for (std::size_t j = i + 1; j < cols.size(); ++j) {
        if (used[j]) continue;
        if (relation.column(cols[i]).codes == relation.column(cols[j]).codes) {
          cls.push_back(cols[j]);
          used[j] = true;
        }
      }
      if (cls.size() >= 2) {
        for (std::size_t k = 1; k < cls.size(); ++k) {
          merged_away[cls[k]] = true;
        }
        classes.push_back(std::move(cls));
      }
    }
  }
  std::sort(classes.begin(), classes.end());
  out.equivalence_classes = std::move(classes);

  for (ColumnId c = 0; c < n; ++c) {
    if (!is_constant[c] && !merged_away[c]) out.reduced_universe.push_back(c);
  }
  return out;
}

}  // namespace ocdd::core
