#ifndef OCDD_CORE_COLUMN_REDUCTION_H_
#define OCDD_CORE_COLUMN_REDUCTION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relation/coded_relation.h"

namespace ocdd::core {

using rel::ColumnId;

/// Output of the `columnsReduction()` phase (paper §4.1).
struct ColumnReduction {
  /// Attributes surviving the reduction (U′): non-constant class
  /// representatives, in ascending id order.
  std::vector<ColumnId> reduced_universe;

  /// Constant columns removed. Each is ordered by every attribute list, so
  /// it contributes `[] → C` and, by expansion, `A → C` for every A.
  std::vector<ColumnId> constant_columns;

  /// Order-equivalence classes with ≥ 2 members; the first member is the
  /// representative kept in `reduced_universe`.
  std::vector<std::vector<ColumnId>> equivalence_classes;

  /// Returns the representative of `id` (itself when not merged away).
  ColumnId Representative(ColumnId id) const;

  /// For a representative, all columns it stands for (itself included);
  /// for a non-representative or constant column, just {id}.
  std::vector<ColumnId> ClassOf(ColumnId representative) const;

  std::string ToString(const rel::CodedRelation& relation) const;
};

/// Applies the paper's two reduction operations:
///  (a) removal of constant columns;
///  (b) merging of order-equivalent columns (`A ↔ B`) into classes, keeping
///      the smallest id as representative.
///
/// Order equivalence of two single columns holds iff their dense
/// order-preserving codes are identical vectors: `A ↔ B` means the two
/// columns induce the same weak ordering of rows, and the dense-rank
/// encoding is the canonical representative of exactly that weak ordering.
/// Grouping therefore hashes the code vectors — O(n·m) overall instead of
/// O(n²) pairwise OD checks (equivalent to the paper's pairwise `A → B`,
/// `B → A` checks followed by connected components).
ColumnReduction ReduceColumns(const rel::CodedRelation& relation);

}  // namespace ocdd::core

#endif  // OCDD_CORE_COLUMN_REDUCTION_H_
