#ifndef OCDD_SERVE_SERVER_H_
#define OCDD_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "report/json_reader.h"
#include "serve/cache.h"
#include "serve/disk_health.h"
#include "serve/protocol.h"
#include "serve/tenant.h"
#include "serve/transport.h"

namespace ocdd::serve {

/// Configuration of one `ocdd serve` daemon (docs/serving.md).
struct ServerOptions {
  /// Unix-domain socket path; a stale file is unlinked at bind time.
  std::string socket_path;

  /// Endpoint spec overriding `socket_path` when non-empty — the CLI's
  /// `--listen`. Accepts everything ParseEndpoint does; "127.0.0.1:0" binds
  /// an ephemeral TCP port (the bound port is in `endpoint()` after Start).
  std::string listen_address;

  /// Executor threads; each runs at most one worker process at a time, so
  /// this is also the daemon-wide concurrency cap.
  std::size_t num_executors = 2;

  /// Admitted-but-not-yet-running requests the daemon will hold; beyond
  /// this the daemon sheds load with a typed `queue_full` reject.
  std::size_t queue_capacity = 16;

  /// Concurrent connections being read or answered; beyond this new
  /// connections are shed with a typed `connection_limit` reject. 0 = no
  /// cap. Distinct from `queue_capacity`: this bounds *sockets* (and the
  /// short-lived reader thread each one holds), that bounds admitted work.
  std::size_t max_connections = 64;

  /// Serve-side wall-clock backstop per worker attempt; 0 = none. The
  /// tenant's own time budget travels to the worker as `--time-limit` and
  /// normally fires first (a clean in-band stop); this one catches workers
  /// that stopped cooperating.
  double request_timeout_seconds = 0.0;

  /// Crash-retry policy: total attempts per request (first run included)
  /// and the bounded exponential backoff between them. Only signal deaths
  /// retry — clean stops and error exits are answers, not faults.
  int max_attempts = 3;
  double backoff_base_seconds = 0.05;
  double backoff_cap_seconds = 1.0;

  /// Seconds a SIGTERM drain waits for in-flight workers to finish on their
  /// own before interrupting them (SIGINT → they checkpoint and emit
  /// partial JSON).
  double drain_grace_seconds = 5.0;

  /// Admission watermark over the *committed* memory budgets of queued and
  /// running requests (each request commits its tenant's memory budget at
  /// admission); 0 disables. Requests whose admission would push the sum
  /// past the watermark are shed with `memory_watermark`.
  std::size_t memory_watermark_bytes = 0;

  /// Result cache budget; 0 disables caching entirely.
  std::size_t cache_capacity_bytes = 16u << 20;
  /// Directory for cache persistence across restarts; empty = memory only.
  std::string cache_dir;

  /// Root directory for per-request worker checkpoints (one subdirectory
  /// per cache key); empty disables worker checkpointing. With it set,
  /// crash retries resume instead of recomputing, and drain-interrupted
  /// workers leave a resumable snapshot behind.
  std::string checkpoint_root;

  /// Seconds between periodic result-cache persists while serving; 0 keeps
  /// the old behavior (persist only at drain). Periodic persistence both
  /// bounds the result loss of a daemon crash and gives the disk-health
  /// monitor a live write path to observe.
  double cache_persist_interval_seconds = 0.0;

  /// Consecutive durable-write failures before the daemon flips to disk
  /// degraded mode (docs/robustness.md, "Degraded mode"). In degraded mode
  /// the daemon keeps serving from memory: persistence is suspended,
  /// workers run without checkpoint dirs, and apply_batch (which *needs*
  /// disk) is shed with a typed `disk_degraded` reject.
  int disk_failure_threshold = 1;

  /// Seconds between recovery probes (write+fsync+unlink of a small file)
  /// while degraded; a successful probe returns the daemon to healthy and
  /// triggers a catch-up persist.
  double disk_probe_interval_seconds = 5.0;

  TenantConfig tenants;

  /// Worker argv prefix; the executor appends `<source> --algo <algo>
  /// --json` plus budget/checkpoint flags. The CLI passes
  /// `{self_exe, "run"}`; tests substitute `{"/bin/sh", script.sh}` fakes.
  std::vector<std::string> worker_argv_prefix;

  /// Worker argv prefix for "apply_batch" requests (incremental
  /// maintenance, docs/incremental.md); the executor appends `[<batch>]
  /// --state <dir> [--base <source>] --json` plus budget flags. The CLI
  /// passes `{self_exe, "apply-batch"}`. Requires `checkpoint_root` (the
  /// warm state lives under `<root>/incremental/<tenant>/<state>`); a
  /// stateless daemon answers apply_batch with a typed error.
  std::vector<std::string> batch_worker_argv_prefix;

  FrameLimits frame_limits;
  RequestLimits request_limits;

  /// Per-read/write socket timeout — one recv/send that makes no progress
  /// for this long fails. A client that stops mid-frame (torn frame) is
  /// answered with a typed reject and closed, never waited on forever.
  double io_timeout_seconds = 5.0;

  /// Total wall-clock budget for reading one request frame — the slowloris
  /// guard. A client trickling one byte per io_timeout window keeps each
  /// read alive but still hits this deadline and is evicted. Also the idle
  /// reaper: a connection that sends nothing at all for this long is closed
  /// silently. 0 = no total deadline (per-read timeout still applies).
  double frame_deadline_seconds = 10.0;
};

/// Aggregate daemon counters, all under one lock with the admission state so
/// a `stats` response is a consistent snapshot.
struct ServerCounters {
  std::uint64_t connections = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t rejected_bad_request = 0;
  std::uint64_t rejected_bad_frame = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_tenant_limit = 0;
  std::uint64_t rejected_memory_watermark = 0;
  std::uint64_t rejected_connection_limit = 0;
  /// apply_batch shed while the disk was degraded (needs durable state).
  std::uint64_t rejected_disk_degraded = 0;
  /// accept() failures (EMFILE/ENFILE/...); each backs the accept loop off
  /// instead of busy-spinning.
  std::uint64_t accept_errors = 0;
  /// Periodic/drain cache persists that succeeded / failed.
  std::uint64_t cache_persist_ok = 0;
  std::uint64_t cache_persist_failed = 0;
  /// Connections evicted by the frame deadline after sending *some* bytes —
  /// slowloris clients (typed `torn_frame` reject, best effort).
  std::uint64_t slowloris_evicted = 0;
  /// Connections reaped by the frame deadline having sent *no* bytes —
  /// idle peers, closed without a response.
  std::uint64_t idle_reaped = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t completed_timeout = 0;
  std::uint64_t completed_error = 0;
  std::uint64_t retries = 0;
  std::uint64_t worker_crashes = 0;
  std::uint64_t drain_interrupted = 0;
};

/// The `ocdd serve` daemon: accept loop, per-connection reader threads,
/// admission control, a bounded queue feeding a pool of executor threads
/// (one worker process each), the result cache, and graceful drain.
/// Single-use: construct, Start(), Run().
///
/// Connection lifecycle: the accept loop only accepts and enforces the
/// connection cap; a short-lived reader thread reads the single request
/// frame (bounded by the per-read timeout *and* the total frame deadline)
/// and either answers inline (ping/stats/reject) or queues the work. The
/// executor that runs the worker sends the response and closes the fd. One
/// slow or malicious client therefore never blocks accepts or other
/// connections.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens on the endpoint and loads the persisted cache.
  Status Start();

  /// Serves until RequestStop(); then drains (reject queued, grace then
  /// interrupt in-flight, persist cache) and returns. Blocking.
  Status Run();

  /// Initiates graceful drain. Async-signal-safe (one write() on a pipe) —
  /// the CLI calls this straight from its SIGTERM handler.
  void RequestStop();

  /// Consistent stats snapshot (the `stats` request payload and the final
  /// drain report).
  report::JsonValue StatsJson() const;

  const std::string& socket_path() const { return options_.socket_path; }

  /// The bound endpoint. After Start() on a TCP spec with port 0 this
  /// carries the kernel-assigned port, so tests can bind ephemerally.
  const Endpoint& endpoint() const { return endpoint_; }

 private:
  struct Pending {
    int fd = -1;
    ServeRequest request;
    TenantQuota quota;
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  void ConnectionThread(int fd);
  void ExecutorLoop();
  /// Periodic cache persistence + degraded-mode probe-and-recover.
  void MaintenanceLoop();
  /// One cache persist attempt, reported to the disk-health monitor.
  void PersistCache();
  ServeResponse Execute(const Pending& pending);
  ServeResponse RunWorker(const Pending& pending, std::uint64_t fingerprint,
                          const CacheKey& key);
  ServeResponse RunBatchWorker(const Pending& pending);
  /// Stamps the disk_degraded flag on the response, sends it, closes fd.
  void SendResponse(int fd, ServeResponse response);
  void FinishRequest(const Pending& pending, const ServeResponse& response);

  ServerOptions options_;
  TenantTable tenants_;
  ResultCache cache_;
  DiskHealthMonitor disk_;

  Endpoint endpoint_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};

  std::atomic<bool> draining_{false};
  /// Flipped when the drain grace expires; RunWorkerProcess SIGINTs
  /// children watching it.
  std::atomic<bool> interrupt_workers_{false};

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  std::size_t running_ = 0;
  /// Sum of committed memory budgets of queued + running requests.
  std::size_t committed_memory_ = 0;
  ServerCounters counters_;

  /// Live reader threads (detached); drain waits for the count to reach
  /// zero — every reader is time-bounded by the frame deadline, so the wait
  /// terminates.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::size_t active_connections_ = 0;

  std::vector<std::thread> executors_;

  /// Maintenance thread (periodic persist + disk probes); joined at drain.
  std::thread maintenance_;
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
};

}  // namespace ocdd::serve

#endif  // OCDD_SERVE_SERVER_H_
