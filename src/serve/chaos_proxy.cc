#include "serve/chaos_proxy.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

namespace ocdd::serve {

namespace {

/// Close with an RST instead of a FIN: SO_LINGER with zero timeout makes
/// the kernel discard unsent data and send a reset — the "connection reset
/// by peer" a dying middlebox produces.
void CloseWithReset(int fd) {
  linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
}

/// Reads until EOF (the daemon closes after its one response frame).
/// Returns false on error/timeout before EOF.
bool ReadToEof(int fd, std::string* out) {
  char buf[4096];
  for (;;) {
    std::size_t n = 0;
    const IoStatus status = ReadSome(fd, buf, sizeof(buf), &n);
    if (status == IoStatus::kEof) return true;
    if (status != IoStatus::kOk) return false;
    out->append(buf, n);
  }
}

}  // namespace

const char* ChaosFaultName(ChaosFault fault) {
  switch (fault) {
    case ChaosFault::kNone: return "none";
    case ChaosFault::kLatency: return "latency";
    case ChaosFault::kResetMidFrame: return "reset_mid_frame";
    case ChaosFault::kTornWrite: return "torn_write";
    case ChaosFault::kBlackhole: return "blackhole";
    case ChaosFault::kCorrupt: return "corrupt";
    case ChaosFault::kResetRequest: return "reset_request";
    case ChaosFault::kMix: return "mix";
  }
  return "unknown";
}

ChaosProxy::ChaosProxy(Endpoint upstream, ChaosPlan plan)
    : upstream_(std::move(upstream)), plan_(plan), rng_(plan.seed) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  Endpoint local;
  local.kind = Endpoint::Kind::kTcp;
  local.host = "127.0.0.1";
  local.port = 0;  // ephemeral
  OCDD_ASSIGN_OR_RETURN(BoundListener bound, ListenOn(local));
  listen_fd_ = bound.fd;
  endpoint_ = bound.endpoint;
  if (::pipe(stop_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("chaos proxy: pipe() failed");
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ChaosProxy::Stop() {
  if (!started_) return;
  started_ = false;
  char byte = 1;
  ssize_t ignored = ::write(stop_pipe_[1], &byte, 1);
  (void)ignored;
  accept_thread_.join();
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
}

ChaosCounters ChaosProxy::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

ChaosFault ChaosProxy::PickFault() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.connections;
  if (plan_.fault == ChaosFault::kNone) {
    ++counters_.passed_through;
    return ChaosFault::kNone;
  }
  if (plan_.max_faults != 0 && injected_ >= plan_.max_faults) {
    ++counters_.passed_through;
    return ChaosFault::kNone;
  }
  if (!rng_.Bernoulli(plan_.probability)) {
    ++counters_.passed_through;
    return ChaosFault::kNone;
  }
  ChaosFault fault = plan_.fault;
  if (fault == ChaosFault::kMix) {
    static const ChaosFault kRecoverable[4] = {
        ChaosFault::kLatency, ChaosFault::kResetMidFrame,
        ChaosFault::kTornWrite, ChaosFault::kCorrupt};
    fault = kRecoverable[rng_.Uniform(4)];
  }
  ++injected_;
  ++counters_.faults_injected;
  switch (fault) {
    case ChaosFault::kLatency: ++counters_.latency; break;
    case ChaosFault::kResetMidFrame: ++counters_.reset_mid_frame; break;
    case ChaosFault::kTornWrite: ++counters_.torn_write; break;
    case ChaosFault::kBlackhole: ++counters_.blackhole; break;
    case ChaosFault::kCorrupt: ++counters_.corrupt; break;
    case ChaosFault::kResetRequest: ++counters_.reset_request; break;
    default: break;
  }
  return fault;
}

void ChaosProxy::AcceptLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop()
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    SetIoDeadline(fd, plan_.io_timeout_seconds);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++active_connections_;
    }
    std::thread([this, fd] {
      HandleConnection(fd);
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        --active_connections_;
      }
      conn_cv_.notify_all();
    }).detach();
  }
}

void ChaosProxy::HandleConnection(int client_fd) {
  // Read the one request frame. Parsing + re-encoding is byte-identical to
  // the original (the framing is deterministic), and gives the proxy a
  // clean boundary to inject at.
  std::string payload;
  FrameError frame_error = FrameError::kNone;
  if (ReadFrame(client_fd, plan_.frame_limits, plan_.io_timeout_seconds,
                &payload, &frame_error) != IoStatus::kOk) {
    ::close(client_fd);
    return;
  }

  const ChaosFault fault = PickFault();

  if (fault == ChaosFault::kResetRequest) {
    // The daemon never hears about this request at all.
    CloseWithReset(client_fd);
    return;
  }

  Result<int> upstream = ConnectTo(upstream_);
  if (!upstream.ok()) {
    ::close(client_fd);
    return;
  }
  const int up_fd = *upstream;
  SetIoDeadline(up_fd, plan_.io_timeout_seconds);

  std::string response;
  const bool forwarded =
      WriteFull(up_fd, EncodeFrame(payload)) == IoStatus::kOk &&
      ReadToEof(up_fd, &response);
  ::close(up_fd);
  if (!forwarded) {
    CloseWithReset(client_fd);
    return;
  }

  switch (fault) {
    case ChaosFault::kNone: {
      WriteFull(client_fd, response);
      ::close(client_fd);
      return;
    }
    case ChaosFault::kLatency: {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan_.latency_seconds));
      WriteFull(client_fd, response);
      ::close(client_fd);
      return;
    }
    case ChaosFault::kResetMidFrame: {
      const std::size_t cut =
          plan_.cut_at_bytes < response.size() ? plan_.cut_at_bytes
                                               : response.size();
      WriteFull(client_fd, response.data(), cut);
      CloseWithReset(client_fd);
      return;
    }
    case ChaosFault::kTornWrite: {
      const std::size_t cut =
          plan_.cut_at_bytes < response.size() ? plan_.cut_at_bytes
                                               : response.size();
      WriteFull(client_fd, response.data(), cut);
      ::close(client_fd);  // orderly FIN: the client sees a torn stream
      return;
    }
    case ChaosFault::kBlackhole: {
      // Hold the socket open, send nothing: the client's read timeout is
      // the only way out. Bounded so the proxy itself always drains.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan_.blackhole_hold_seconds));
      ::close(client_fd);
      return;
    }
    case ChaosFault::kCorrupt: {
      // Flip one payload byte (past the 12-byte header when possible): the
      // frame still parses structurally but the CRC check must reject it.
      std::string bad = response;
      const std::size_t at = bad.size() > kFrameHeaderBytes
                                 ? kFrameHeaderBytes
                                 : bad.size() - 1;
      if (!bad.empty()) bad[at] = static_cast<char>(bad[at] ^ 0x40);
      WriteFull(client_fd, bad);
      ::close(client_fd);
      return;
    }
    case ChaosFault::kResetRequest:
    case ChaosFault::kMix:
      break;  // handled above / resolved by PickFault
  }
  ::close(client_fd);
}

}  // namespace ocdd::serve
