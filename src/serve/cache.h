#ifndef OCDD_SERVE_CACHE_H_
#define OCDD_SERVE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/snapshot.h"

namespace ocdd::serve {

/// Key of one cached discovery result: the relation content fingerprint (the
/// same 64-bit fingerprint checkpoint snapshots are bound to,
/// rel::CodedRelation::Fingerprint) plus the request digest (algorithm and
/// result-shaping options, protocol.h RequestDigest). Two tenants asking the
/// same question about the same bytes share one entry.
struct CacheKey {
  std::uint64_t fingerprint = 0;
  std::uint64_t digest = 0;

  friend bool operator<(const CacheKey& a, const CacheKey& b) {
    return a.fingerprint != b.fingerprint ? a.fingerprint < b.fingerprint
                                          : a.digest < b.digest;
  }
  friend bool operator==(const CacheKey& a, const CacheKey& b) {
    return a.fingerprint == b.fingerprint && a.digest == b.digest;
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t bytes = 0;
  std::size_t entries = 0;
  /// Persistence accounting: snapshot generations skipped as corrupt during
  /// load, and whether the last load found nothing valid at all.
  std::uint64_t load_corrupt_skipped = 0;
  bool load_failed = false;
};

/// An LRU map from CacheKey to a canonical report-JSON string, bounded by a
/// byte budget over the stored payloads. Thread-safe.
///
/// Persistence rides the PR 3 snapshot machinery: `Save` encodes every entry
/// into one CRC-guarded snapshot image written through a SnapshotStore
/// (atomic temp-fsync-rename with generation fallback), and `Load` restores
/// from the newest generation that validates. A corrupt or missing cache
/// file is *never* an error — the daemon starts cold and rebuilds
/// (docs/serving.md; the fault matrix in tests/serve_test.cc corrupts the
/// file on purpose).
class ResultCache {
 public:
  /// `capacity_bytes` bounds the sum of stored payload sizes; 0 disables
  /// the cache entirely (Get always misses, Put is a no-op).
  explicit ResultCache(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  bool enabled() const { return capacity_bytes_ != 0; }

  /// Copies the payload into `*report_json` and marks the entry
  /// most-recently-used. False on miss.
  bool Get(const CacheKey& key, std::string* report_json);

  /// Inserts or refreshes `key`, evicting least-recently-used entries until
  /// the budget holds. A payload larger than the whole budget is dropped.
  void Put(const CacheKey& key, std::string report_json);

  CacheStats Stats() const;

  /// Serializes every entry (MRU first) into `store` as the next snapshot
  /// generation.
  Status Save(SnapshotStore& store) const;

  /// Replaces the contents from the newest valid generation in `store`,
  /// re-applying the byte budget. Corruption and absence degrade to an
  /// empty cache; the stats record what happened.
  void Load(const SnapshotStore& store);

 private:
  void EvictToFitLocked();

  mutable std::mutex mu_;
  std::size_t capacity_bytes_;
  /// LRU order, most recent first; the map holds iterators into it.
  std::list<std::pair<CacheKey, std::string>> lru_;
  std::map<CacheKey, std::list<std::pair<CacheKey, std::string>>::iterator>
      index_;
  CacheStats stats_;
};

}  // namespace ocdd::serve

#endif  // OCDD_SERVE_CACHE_H_
