#ifndef OCDD_SERVE_CHAOS_PROXY_H_
#define OCDD_SERVE_CHAOS_PROXY_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/rng.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace ocdd::serve {

/// Network fault classes the proxy can inject (docs/serving.md). All of
/// them act on real sockets, so the client and daemon under test exercise
/// exactly the code paths a flaky production network would.
enum class ChaosFault {
  kNone,           ///< pass-through
  kLatency,        ///< delay before forwarding the response
  kResetMidFrame,  ///< RST (SO_LINGER{1,0}) after a prefix of the response
  kTornWrite,      ///< orderly FIN after a prefix of the response
  kBlackhole,      ///< swallow the response; hold the socket, send nothing
  kCorrupt,        ///< flip one response payload byte (CRC must catch it)
  kResetRequest,   ///< RST before the request ever reaches the daemon
  kMix,            ///< per-connection uniform pick of the recoverable four
                   ///< (latency / reset / torn / corrupt)
};

const char* ChaosFaultName(ChaosFault fault);

struct ChaosPlan {
  ChaosFault fault = ChaosFault::kNone;
  /// Per-connection probability of injecting the fault; 1.0 = always.
  double probability = 1.0;
  /// Cap on total injected faults; after this many the proxy becomes a
  /// clean pass-through (deterministic "fails N times then succeeds" for
  /// retry tests). 0 = unlimited.
  std::uint64_t max_faults = 0;
  double latency_seconds = 0.05;
  /// Response bytes forwarded before a reset/torn cut. The default lands
  /// mid-header: the client sees a torn frame, not a short payload.
  std::size_t cut_at_bytes = 7;
  /// How long a black-holed connection is held open (the client's read
  /// timeout should fire first).
  double blackhole_hold_seconds = 2.0;
  std::uint64_t seed = 1;
  FrameLimits frame_limits;
  /// Per-read/write socket timeout on both legs.
  double io_timeout_seconds = 5.0;
};

struct ChaosCounters {
  std::uint64_t connections = 0;
  std::uint64_t passed_through = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t latency = 0;
  std::uint64_t reset_mid_frame = 0;
  std::uint64_t torn_write = 0;
  std::uint64_t blackhole = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t reset_request = 0;
};

/// An in-process TCP fault proxy: listens on 127.0.0.1:<ephemeral>, relays
/// one request frame to `upstream` (Unix or TCP) and the response back,
/// injecting the planned fault on the way. One thread per connection; the
/// request leg is parsed-and-re-encoded (the framing is deterministic, so
/// a clean relay is byte-identical) which lets the proxy cut, delay,
/// corrupt or swallow the response at exact byte positions.
class ChaosProxy {
 public:
  ChaosProxy(Endpoint upstream, ChaosPlan plan);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listener and starts the accept thread.
  Status Start();

  /// Stops accepting, waits for in-flight connections (all time-bounded)
  /// and joins. Idempotent.
  void Stop();

  /// Where clients connect (valid after Start()).
  const Endpoint& endpoint() const { return endpoint_; }

  ChaosCounters counters() const;

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);
  ChaosFault PickFault();

  Endpoint upstream_;
  ChaosPlan plan_;
  Endpoint endpoint_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  bool started_ = false;

  mutable std::mutex mu_;
  Rng rng_;
  ChaosCounters counters_;
  std::uint64_t injected_ = 0;

  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::size_t active_connections_ = 0;
};

}  // namespace ocdd::serve

#endif  // OCDD_SERVE_CHAOS_PROXY_H_
