#include "serve/tenant.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "report/json_reader.h"

namespace ocdd::serve {

namespace {

using report::JsonValue;

/// Largest quota value accepted from config; above this is a typo, not a
/// budget (2^53 also bounds what a JSON double represents exactly).
constexpr double kMaxQuotaValue = 9.0e15;

Status QuotaFromJson(const JsonValue& obj, TenantQuota* quota) {
  if (obj.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("tenant quota is not a JSON object");
  }
  auto number = [&obj](const char* name, double* out) {
    const JsonValue& v = obj[name];
    if (v.is_null()) {
      *out = -1.0;
      return Status::OK();
    }
    double d = v.number_value();
    if (d < 0 || d > kMaxQuotaValue) {
      return Status::InvalidArgument(std::string("tenant quota field '") +
                                     name + "' out of range");
    }
    *out = d;
    return Status::OK();
  };
  double v = -1.0;
  OCDD_RETURN_IF_ERROR(number("time_limit_seconds", &v));
  if (v >= 0) quota->budgets.time_limit_seconds = v;
  OCDD_RETURN_IF_ERROR(number("max_checks", &v));
  if (v >= 0) quota->budgets.max_checks = static_cast<std::uint64_t>(v);
  OCDD_RETURN_IF_ERROR(number("memory_bytes", &v));
  if (v >= 0) quota->budgets.memory_bytes = static_cast<std::size_t>(v);
  OCDD_RETURN_IF_ERROR(number("max_in_flight", &v));
  if (v >= 0) quota->max_in_flight = static_cast<std::size_t>(v);
  return Status::OK();
}

}  // namespace

void TenantTable::SetQuota(const std::string& tenant, TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  overrides_[tenant] = quota;
}

TenantQuota TenantTable::QuotaFor(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = overrides_.find(tenant);
  return it != overrides_.end() ? it->second : default_quota_;
}

bool TenantTable::TryAdmit(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = overrides_.find(tenant);
  const TenantQuota& quota =
      it != overrides_.end() ? it->second : default_quota_;
  TenantStats& stats = stats_[tenant];
  if (quota.max_in_flight != 0 && stats.in_flight >= quota.max_in_flight) {
    ++stats.rejected_limit;
    return false;
  }
  ++stats.in_flight;
  ++stats.admitted;
  return true;
}

void TenantTable::Release(const std::string& tenant, bool completed) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantStats& stats = stats_[tenant];
  if (stats.in_flight > 0) --stats.in_flight;
  if (completed) ++stats.completed;
}

std::map<std::string, TenantStats> TenantTable::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<TenantConfig> ParseTenantConfig(const std::string& json_text) {
  OCDD_ASSIGN_OR_RETURN(JsonValue doc, report::ParseJson(json_text));
  if (doc.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("tenant config is not a JSON object");
  }
  TenantConfig config;
  if (!doc["default"].is_null()) {
    OCDD_RETURN_IF_ERROR(QuotaFromJson(doc["default"], &config.default_quota));
  }
  const JsonValue& tenants = doc["tenants"];
  if (!tenants.is_null()) {
    if (tenants.kind() != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("'tenants' is not a JSON object");
    }
    for (const auto& [name, value] : tenants.object()) {
      // Overrides start from the default so a partial override inherits the
      // rest of the default quota rather than resetting it to unlimited.
      TenantQuota quota = config.default_quota;
      OCDD_RETURN_IF_ERROR(QuotaFromJson(value, &quota));
      config.overrides[name] = quota;
    }
  }
  return config;
}

Result<TenantConfig> LoadTenantConfig(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open tenant config '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTenantConfig(buf.str());
}

}  // namespace ocdd::serve
