#include "serve/protocol.h"

#include <utility>

#include "common/snapshot.h"

namespace ocdd::serve {

namespace {

using report::JsonValue;

/// String fields cross the trust boundary into responses, logs, and worker
/// argv — reject embedded control bytes outright instead of escaping them.
bool HasControlBytes(const std::string& s) {
  for (char c : s) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) return true;
  }
  return false;
}

Status ValidateStringField(const char* name, const std::string& value,
                           std::size_t max_bytes) {
  if (value.size() > max_bytes) {
    return Status::InvalidArgument(std::string(name) + " exceeds " +
                                   std::to_string(max_bytes) + " bytes");
  }
  if (HasControlBytes(value)) {
    return Status::InvalidArgument(std::string(name) +
                                   " contains control bytes");
  }
  return Status::OK();
}

std::uint64_t Fnv1a(std::uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h ^= 0xff;  // field separator so {"a","b"} != {"ab",""}
  h *= 0x100000001b3ull;
  return h;
}

std::uint64_t Fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

const char* FrameErrorName(FrameError error) {
  switch (error) {
    case FrameError::kNone:
      return "none";
    case FrameError::kBadMagic:
      return "bad_magic";
    case FrameError::kOversized:
      return "oversized";
    case FrameError::kCrcMismatch:
      return "crc_mismatch";
  }
  return "unknown";
}

std::string EncodeFrame(const std::string& payload) {
  ByteWriter w;
  w.U32(kFrameMagic);
  w.U32(static_cast<std::uint32_t>(payload.size()));
  w.U32(Crc32(payload.data(), payload.size()));
  std::string out = w.Take();
  out += payload;
  return out;
}

FrameDecoder::Event FrameDecoder::Next(std::string* payload,
                                       FrameError* error) {
  *error = dead_;
  if (dead_ != FrameError::kNone) return Event::kError;

  // Compact the buffer once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }

  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return Event::kNeedMore;

  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data()) + consumed_;
  auto u32_at = [&](std::size_t off) {
    return static_cast<std::uint32_t>(p[off]) |
           (static_cast<std::uint32_t>(p[off + 1]) << 8) |
           (static_cast<std::uint32_t>(p[off + 2]) << 16) |
           (static_cast<std::uint32_t>(p[off + 3]) << 24);
  };
  // Header violations are checked against the *declared* length before any
  // payload byte is waited for — an adversarial 4 GiB length is rejected
  // from 12 bytes of input, never buffered.
  if (u32_at(0) != kFrameMagic) {
    dead_ = FrameError::kBadMagic;
    *error = dead_;
    return Event::kError;
  }
  const std::uint32_t len = u32_at(4);
  if (len > limits_.max_payload_bytes) {
    dead_ = FrameError::kOversized;
    *error = dead_;
    return Event::kError;
  }
  if (avail < kFrameHeaderBytes + len) return Event::kNeedMore;
  const std::uint32_t crc = u32_at(8);
  const char* body = buffer_.data() + consumed_ + kFrameHeaderBytes;
  if (Crc32(body, len) != crc) {
    dead_ = FrameError::kCrcMismatch;
    *error = dead_;
    return Event::kError;
  }
  payload->assign(body, len);
  consumed_ += kFrameHeaderBytes + len;
  return Event::kFrame;
}

Result<ServeRequest> ParseRequest(const std::string& payload,
                                  const RequestLimits& limits) {
  if (payload.size() > limits.max_source_bytes + limits.max_tenant_bytes +
                           limits.max_id_bytes + 4096) {
    return Status::InvalidArgument("request payload implausibly large");
  }
  OCDD_ASSIGN_OR_RETURN(JsonValue doc, report::ParseJson(payload));
  if (doc.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("request is not a JSON object");
  }

  ServeRequest req;
  if (!doc["kind"].is_null()) req.kind = doc["kind"].string_value();
  if (req.kind != "run" && req.kind != "apply_batch" && req.kind != "ping" &&
      req.kind != "stats") {
    return Status::InvalidArgument("unknown request kind '" + req.kind + "'");
  }
  req.id = doc["id"].string_value();
  OCDD_RETURN_IF_ERROR(ValidateStringField("id", req.id, limits.max_id_bytes));
  if (!doc["tenant"].is_null()) req.tenant = doc["tenant"].string_value();
  OCDD_RETURN_IF_ERROR(
      ValidateStringField("tenant", req.tenant, limits.max_tenant_bytes));
  if (req.tenant.empty()) {
    return Status::InvalidArgument("tenant must be non-empty");
  }
  if (req.kind != "run" && req.kind != "apply_batch") return req;

  if (req.kind == "run") {
    if (!doc["algo"].is_null()) req.algo = doc["algo"].string_value();
    if (req.algo != "discover" && req.algo != "fds" && req.algo != "fastod") {
      return Status::InvalidArgument("unknown algo '" + req.algo +
                                     "' (discover, fds, fastod)");
    }
  }
  req.source = doc["source"].string_value();
  OCDD_RETURN_IF_ERROR(
      ValidateStringField("source", req.source, limits.max_source_bytes));
  if (req.kind == "run" && req.source.empty()) {
    return Status::InvalidArgument("run request needs a source");
  }

  auto size_field = [&doc](const char* name, std::size_t dflt,
                           std::size_t max, std::size_t* out) {
    const JsonValue& v = doc[name];
    if (v.is_null()) {
      *out = dflt;
      return Status::OK();
    }
    double d = v.number_value();
    if (d < 0 || d > static_cast<double>(max)) {
      return Status::InvalidArgument(std::string(name) + " out of range");
    }
    *out = static_cast<std::size_t>(d);
    return Status::OK();
  };
  OCDD_RETURN_IF_ERROR(size_field("rows", 0, limits.max_rows, &req.rows));
  OCDD_RETURN_IF_ERROR(size_field("seed", 42, ~std::size_t{0} >> 1,
                                  &req.seed));
  OCDD_RETURN_IF_ERROR(
      size_field("max_level", 0, limits.max_level, &req.max_level));
  if (!doc["use_cache"].is_null()) {
    req.use_cache = doc["use_cache"].bool_value();
  }

  if (req.kind == "apply_batch") {
    req.batch = doc["batch"].string_value();
    OCDD_RETURN_IF_ERROR(
        ValidateStringField("batch", req.batch, limits.max_source_bytes));
    req.state = doc["state"].string_value();
    OCDD_RETURN_IF_ERROR(
        ValidateStringField("state", req.state, limits.max_state_bytes));
    // The state name becomes a directory component under the daemon's
    // checkpoint root: reject anything that could traverse or hide.
    if (req.state.empty()) {
      return Status::InvalidArgument("apply_batch request needs a state name");
    }
    if (req.state[0] == '.') {
      return Status::InvalidArgument("state must not start with '.'");
    }
    for (char c : req.state) {
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
      if (!ok) {
        return Status::InvalidArgument(
            "state may only contain [A-Za-z0-9._-]");
      }
    }
  }
  return req;
}

std::string SerializeRequest(const ServeRequest& request) {
  std::map<std::string, JsonValue> m;
  m["kind"] = JsonValue::String(request.kind);
  if (!request.id.empty()) m["id"] = JsonValue::String(request.id);
  m["tenant"] = JsonValue::String(request.tenant);
  if (request.kind == "run" || request.kind == "apply_batch") {
    if (request.kind == "run") {
      m["algo"] = JsonValue::String(request.algo);
      m["use_cache"] = JsonValue::Bool(request.use_cache);
    } else {
      if (!request.batch.empty()) {
        m["batch"] = JsonValue::String(request.batch);
      }
      m["state"] = JsonValue::String(request.state);
    }
    if (!request.source.empty() || request.kind == "run") {
      m["source"] = JsonValue::String(request.source);
    }
    if (request.rows != 0) {
      m["rows"] = JsonValue::Number(static_cast<double>(request.rows));
    }
    m["seed"] = JsonValue::Number(static_cast<double>(request.seed));
    if (request.max_level != 0) {
      m["max_level"] =
          JsonValue::Number(static_cast<double>(request.max_level));
    }
  }
  return report::SerializeJson(JsonValue::Object(std::move(m)));
}

std::string SerializeResponse(const ServeResponse& response) {
  std::map<std::string, JsonValue> m;
  if (!response.id.empty()) m["id"] = JsonValue::String(response.id);
  m["status"] = JsonValue::String(response.status);
  if (!response.reject_reason.empty()) {
    m["reject_reason"] = JsonValue::String(response.reject_reason);
  }
  if (!response.error.empty()) m["error"] = JsonValue::String(response.error);
  m["attempts"] = JsonValue::Number(response.attempts);
  m["cache"] = JsonValue::String(response.cache);
  if (response.disk_degraded) m["disk_degraded"] = JsonValue::Bool(true);
  if (response.have_report) m["report"] = response.report;
  return report::SerializeJson(JsonValue::Object(std::move(m)));
}

Result<ServeResponse> ParseResponse(const std::string& payload) {
  OCDD_ASSIGN_OR_RETURN(JsonValue doc, report::ParseJson(payload));
  if (doc.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("response is not a JSON object");
  }
  ServeResponse resp;
  resp.id = doc["id"].string_value();
  resp.status = doc["status"].string_value();
  if (resp.status != "ok" && resp.status != "rejected" &&
      resp.status != "timeout" && resp.status != "error") {
    return Status::InvalidArgument("unknown response status '" + resp.status +
                                   "'");
  }
  resp.reject_reason = doc["reject_reason"].string_value();
  resp.error = doc["error"].string_value();
  resp.attempts = static_cast<int>(doc["attempts"].number_value());
  resp.cache = doc["cache"].string_value();
  resp.disk_degraded = doc["disk_degraded"].bool_value();
  const JsonValue& report = doc["report"];
  if (!report.is_null()) {
    resp.have_report = true;
    resp.report = report;
  }
  return resp;
}

std::uint64_t RequestDigest(const ServeRequest& request) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = Fnv1a(h, request.algo);
  h = Fnv1a(h, request.source);
  h = Fnv1a(h, static_cast<std::uint64_t>(request.rows));
  h = Fnv1a(h, static_cast<std::uint64_t>(request.seed));
  h = Fnv1a(h, static_cast<std::uint64_t>(request.max_level));
  return h;
}

}  // namespace ocdd::serve
