#include "serve/client.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace ocdd::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count());
}

Result<int> Connect(const Endpoint& endpoint, const ClientOptions& options) {
  const int attempts =
      options.connect_attempts < 1 ? 1 : options.connect_attempts;
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.connect_retry_seconds));
    }
    Result<int> fd = ConnectTo(endpoint);
    if (fd.ok()) {
      SetIoDeadline(*fd, options.io_timeout_seconds);
      return fd;
    }
    last = fd.status();
  }
  return last;
}

/// A reject the daemon issued because of *load*, not because of anything
/// wrong with the request — less load (or another try) can change it.
bool IsShedReject(const ServeResponse& response) {
  if (response.status != "rejected") return false;
  return response.reject_reason == "queue_full" ||
         response.reject_reason == "tenant_limit" ||
         response.reject_reason == "connection_limit" ||
         response.reject_reason == "memory_watermark";
}

}  // namespace

const char* ClientOutcomeName(ClientOutcome outcome) {
  switch (outcome) {
    case ClientOutcome::kResponse: return "response";
    case ClientOutcome::kRetriesExhausted: return "retries_exhausted";
    case ClientOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case ClientOutcome::kCircuitOpen: return "circuit_open";
    case ClientOutcome::kNotRetryable: return "not_retryable";
  }
  return "unknown";
}

Result<ServeResponse> SendRequestOnce(const Endpoint& endpoint,
                                      const ServeRequest& request,
                                      const ClientOptions& options,
                                      bool* request_sent) {
  if (request_sent != nullptr) *request_sent = false;
  OCDD_ASSIGN_OR_RETURN(int fd, Connect(endpoint, options));
  const std::string frame = EncodeFrame(SerializeRequest(request));
  // WriteFull: MSG_NOSIGNAL + EINTR/short-write loop — a daemon that dies
  // mid-exchange is a typed transport error, never a SIGPIPE.
  if (WriteFull(fd, frame) != IoStatus::kOk) {
    ::close(fd);
    return Status::Internal("short write to daemon");
  }
  if (request_sent != nullptr) *request_sent = true;

  std::string payload;
  FrameError frame_error = FrameError::kNone;
  const IoStatus status =
      ReadFrame(fd, options.frame_limits, /*total_deadline_seconds=*/0.0,
                &payload, &frame_error);
  ::close(fd);
  if (status != IoStatus::kOk) {
    if (frame_error != FrameError::kNone) {
      return Status::ParseError(std::string("bad response frame: ") +
                                FrameErrorName(frame_error));
    }
    if (status == IoStatus::kTimeout) {
      return Status::Internal("daemon response timed out");
    }
    return Status::Internal("connection closed mid-response");
  }
  return ParseResponse(payload);
}

Result<ServeResponse> SendRequest(const std::string& socket_path,
                                  const ServeRequest& request,
                                  const ClientOptions& options) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = socket_path;
  return SendRequestOnce(endpoint, request, options);
}

ServeClient::ServeClient(Endpoint endpoint, ClientOptions options,
                         RetryOptions retry)
    : endpoint_(std::move(endpoint)),
      options_(std::move(options)),
      retry_(retry),
      rng_(retry.jitter_seed) {}

ClientResult ServeClient::Call(const ServeRequest& request) {
  ClientResult result;
  const bool idempotent = request.kind != "apply_batch";
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(retry_.deadline_seconds));
  const bool have_deadline = retry_.deadline_seconds > 0;
  const int max_attempts =
      1 + (retry_.max_retries < 0 ? 0 : retry_.max_retries);

  // Circuit breaker gate: while open, fail fast until the cooldown has
  // elapsed; then let exactly one half-open probe through.
  if (retry_.breaker_threshold > 0 && breaker_ == BreakerState::kOpen) {
    const std::uint64_t cooldown_ms =
        static_cast<std::uint64_t>(retry_.breaker_cooldown_seconds * 1000.0);
    if (NowMs() - breaker_opened_ms_ < cooldown_ms) {
      result.outcome = ClientOutcome::kCircuitOpen;
      result.error = "circuit breaker open (" +
                     std::to_string(consecutive_failures_) +
                     " consecutive transport failures)";
      return result;
    }
    breaker_ = BreakerState::kHalfOpen;
  }

  std::string last_error;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (have_deadline && Clock::now() >= deadline) {
      result.outcome = ClientOutcome::kDeadlineExceeded;
      result.error = "deadline exceeded after " +
                     std::to_string(result.attempts) + " attempt(s): " +
                     last_error;
      return result;
    }

    bool request_sent = false;
    result.attempts = attempt;
    Result<ServeResponse> response =
        SendRequestOnce(endpoint_, request, options_, &request_sent);

    if (response.ok()) {
      // Any typed answer means the daemon is reachable: breaker closes.
      consecutive_failures_ = 0;
      breaker_ = BreakerState::kClosed;
      if (IsShedReject(*response) && attempt < max_attempts) {
        ++result.shed_rejects;
        last_error = "shed (" + response->reject_reason + ")";
      } else {
        result.outcome = ClientOutcome::kResponse;
        result.response = std::move(*response);
        return result;
      }
    } else {
      ++result.transport_failures;
      last_error = response.status().message();
      ++consecutive_failures_;
      if (retry_.breaker_threshold > 0) {
        if (breaker_ == BreakerState::kHalfOpen ||
            consecutive_failures_ >= retry_.breaker_threshold) {
          breaker_ = BreakerState::kOpen;
          breaker_opened_ms_ = NowMs();
        }
      }
      if (!idempotent && request_sent) {
        // The daemon may have received — and acted on — the batch. A blind
        // retry could apply it twice; surface the ambiguity instead (the
        // caller consults batch_seq and replays, docs/incremental.md).
        result.outcome = ClientOutcome::kNotRetryable;
        result.error = "apply_batch failed after the request was delivered "
                       "(" + last_error + "); not retried — outcome unknown";
        return result;
      }
      if (retry_.breaker_threshold > 0 && breaker_ == BreakerState::kOpen) {
        result.outcome = ClientOutcome::kCircuitOpen;
        result.error = "circuit breaker opened (" + last_error + ")";
        return result;
      }
    }

    if (attempt < max_attempts) {
      // Jittered exponential backoff: min(cap, base·2^(n-1)) scaled into
      // [0.5, 1] so synchronized clients fan out.
      double delay = retry_.backoff_base_seconds;
      for (int i = 1; i < attempt; ++i) delay *= 2.0;
      if (delay > retry_.backoff_cap_seconds) {
        delay = retry_.backoff_cap_seconds;
      }
      delay *= 0.5 + 0.5 * rng_.UniformDouble();
      if (have_deadline) {
        const double remaining =
            std::chrono::duration<double>(deadline - Clock::now()).count();
        if (remaining <= 0) {
          result.outcome = ClientOutcome::kDeadlineExceeded;
          result.error = "deadline exceeded after " +
                         std::to_string(result.attempts) +
                         " attempt(s): " + last_error;
          return result;
        }
        if (delay > remaining) delay = remaining;
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }

  result.outcome = ClientOutcome::kRetriesExhausted;
  result.error = "gave up after " + std::to_string(result.attempts) +
                 " attempt(s): " + last_error;
  return result;
}

}  // namespace ocdd::serve
