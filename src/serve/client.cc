#include "serve/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ocdd::serve {

namespace {

Result<int> Connect(const std::string& socket_path,
                    const ClientOptions& options) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int attempts =
      options.connect_attempts < 1 ? 1 : options.connect_attempts;
  int last_errno = 0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.connect_retry_seconds));
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      if (options.io_timeout_seconds > 0) {
        timeval tv;
        tv.tv_sec = static_cast<time_t>(options.io_timeout_seconds);
        tv.tv_usec = static_cast<suseconds_t>(
            (options.io_timeout_seconds - tv.tv_sec) * 1e6);
        setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      }
      return fd;
    }
    last_errno = errno;
    ::close(fd);
  }
  return Status::NotFound("cannot connect to '" + socket_path +
                          "': " + std::strerror(last_errno));
}

}  // namespace

Result<ServeResponse> SendRequest(const std::string& socket_path,
                                  const ServeRequest& request,
                                  const ClientOptions& options) {
  OCDD_ASSIGN_OR_RETURN(int fd, Connect(socket_path, options));
  const std::string frame = EncodeFrame(SerializeRequest(request));
  std::size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a daemon that dies mid-exchange is a typed transport
    // error for the caller, not a SIGPIPE that kills the client process.
    ssize_t n =
        ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return Status::Internal("short write to daemon");
    }
    off += static_cast<std::size_t>(n);
  }

  FrameDecoder decoder(options.frame_limits);
  std::string payload;
  FrameError frame_error = FrameError::kNone;
  char buf[4096];
  for (;;) {
    FrameDecoder::Event ev = decoder.Next(&payload, &frame_error);
    if (ev == FrameDecoder::Event::kFrame) break;
    if (ev == FrameDecoder::Event::kError) {
      ::close(fd);
      return Status::ParseError(std::string("bad response frame: ") +
                                FrameErrorName(frame_error));
    }
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return Status::Internal("connection closed mid-response");
    }
    decoder.Feed(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return ParseResponse(payload);
}

}  // namespace ocdd::serve
