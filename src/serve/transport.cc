#include "serve/transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace ocdd::serve {

namespace {

bool ParsePort(const std::string& text, std::uint16_t* port) {
  if (text.empty() || text.size() > 5 ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  const unsigned long value = std::strtoul(text.c_str(), nullptr, 10);
  if (value > 65535) return false;
  *port = static_cast<std::uint16_t>(value);
  return true;
}

Result<Endpoint> ParseTcpSpec(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("tcp endpoint '" + spec +
                                   "' needs host:port");
  }
  Endpoint ep;
  ep.kind = Endpoint::Kind::kTcp;
  ep.host = spec.substr(0, colon);
  if (ep.host.empty()) ep.host = "0.0.0.0";
  if (!ParsePort(spec.substr(colon + 1), &ep.port)) {
    return Status::InvalidArgument("tcp endpoint '" + spec +
                                   "' has a bad port");
  }
  return ep;
}

}  // namespace

std::string Endpoint::ToString() const {
  if (kind == Kind::kUnix) return path;
  return host + ":" + std::to_string(port);
}

Result<Endpoint> ParseEndpoint(const std::string& spec) {
  if (spec.empty()) {
    return Status::InvalidArgument("empty endpoint");
  }
  if (spec.rfind("unix:", 0) == 0) {
    Endpoint ep;
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      return Status::InvalidArgument("unix endpoint '" + spec +
                                     "' has an empty path");
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) return ParseTcpSpec(spec.substr(4));
  // Bare spec: a '/' anywhere means a filesystem path; otherwise it must
  // parse as host:port. A Unix socket path without a slash is spelled with
  // the unix: prefix.
  if (spec.find('/') != std::string::npos) {
    Endpoint ep;
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec;
    return ep;
  }
  return ParseTcpSpec(spec);
}

const char* IoStatusName(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kEof: return "eof";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kError: return "error";
  }
  return "unknown";
}

IoStatus ReadSome(int fd, char* buf, std::size_t cap, std::size_t* n) {
  for (;;) {
    const ssize_t rc = ::recv(fd, buf, cap, 0);
    if (rc > 0) {
      *n = static_cast<std::size_t>(rc);
      return IoStatus::kOk;
    }
    if (rc == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
    return IoStatus::kError;
  }
}

IoStatus ReadFull(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  std::size_t off = 0;
  while (off < len) {
    std::size_t n = 0;
    const IoStatus status = ReadSome(fd, p + off, len - off, &n);
    if (status != IoStatus::kOk) return status;
    off += n;
  }
  return IoStatus::kOk;
}

IoStatus WriteFull(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t rc = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
    if (rc > 0) {
      off += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return IoStatus::kTimeout;
    }
    if (rc == 0) return IoStatus::kEof;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

bool SetIoDeadline(int fd, double seconds) {
  if (seconds <= 0) return true;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0 &&
         ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
}

IoStatus ReadFrame(int fd, const FrameLimits& limits,
                   double total_deadline_seconds, std::string* payload,
                   FrameError* frame_error, bool* got_bytes) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(total_deadline_seconds));

  FrameDecoder decoder(limits);
  *frame_error = FrameError::kNone;
  if (got_bytes != nullptr) *got_bytes = false;
  char buf[4096];
  for (;;) {
    const FrameDecoder::Event ev = decoder.Next(payload, frame_error);
    if (ev == FrameDecoder::Event::kFrame) return IoStatus::kOk;
    if (ev == FrameDecoder::Event::kError) return IoStatus::kError;

    if (total_deadline_seconds > 0) {
      // The overall deadline is enforced with poll() so a peer trickling
      // bytes cannot reset it: each wait gets only the *remaining* budget.
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return IoStatus::kTimeout;
      pollfd pfd{fd, POLLIN, 0};
      const int prc = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
      if (prc < 0) {
        if (errno == EINTR) continue;
        return IoStatus::kError;
      }
      if (prc == 0) return IoStatus::kTimeout;
    }

    std::size_t n = 0;
    const IoStatus status = ReadSome(fd, buf, sizeof(buf), &n);
    if (status != IoStatus::kOk) return status;
    if (got_bytes != nullptr) *got_bytes = true;
    decoder.Feed(buf, n);
  }
}

Result<BoundListener> ListenOn(const Endpoint& endpoint, int backlog) {
  BoundListener bound;
  bound.endpoint = endpoint;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.empty()) {
      return Status::InvalidArgument("listen: empty unix socket path");
    }
    if (endpoint.path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("listen: socket path too long (" +
                                     endpoint.path + ")");
    }
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    bound.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (bound.fd < 0) return Status::Internal("listen: socket() failed");
    ::unlink(endpoint.path.c_str());
    if (::bind(bound.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status s = Status::Internal("listen: cannot bind '" + endpoint.path +
                                  "': " + std::strerror(errno));
      ::close(bound.fd);
      return s;
    }
  } else {
    bound.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (bound.fd < 0) return Status::Internal("listen: socket() failed");
    const int one = 1;
    ::setsockopt(bound.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(endpoint.port);
    const std::string host =
        endpoint.host.empty() ? std::string("0.0.0.0") : endpoint.host;
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(bound.fd);
      return Status::InvalidArgument("listen: bad host '" + host +
                                     "' (use a dotted-quad IPv4 address)");
    }
    if (::bind(bound.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status s = Status::Internal("listen: cannot bind " +
                                  endpoint.ToString() + ": " +
                                  std::strerror(errno));
      ::close(bound.fd);
      return s;
    }
    // Port 0 asked the kernel for an ephemeral port; report the real one.
    sockaddr_in actual{};
    socklen_t actual_len = sizeof(actual);
    if (::getsockname(bound.fd, reinterpret_cast<sockaddr*>(&actual),
                      &actual_len) == 0) {
      bound.endpoint.port = ntohs(actual.sin_port);
    }
    bound.endpoint.host = host;
  }
  if (::listen(bound.fd, backlog) != 0) {
    Status s = Status::Internal("listen: listen() failed: " +
                                std::string(std::strerror(errno)));
    ::close(bound.fd);
    return s;
  }
  return bound;
}

Result<int> ConnectTo(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("connect: socket path too long: " +
                                     endpoint.path);
    }
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("connect: socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status s = Status::NotFound("cannot connect to '" + endpoint.path +
                                  "': " + std::strerror(errno));
      ::close(fd);
      return s;
    }
    return fd;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  std::string host = endpoint.host.empty() ? "127.0.0.1" : endpoint.host;
  if (host == "0.0.0.0") host = "127.0.0.1";  // connect-side convenience
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Resolve a name (e.g. "localhost") through getaddrinfo.
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* info = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &info) != 0 ||
        info == nullptr) {
      if (info != nullptr) ::freeaddrinfo(info);
      return Status::NotFound("cannot resolve host '" + host + "'");
    }
    addr.sin_addr =
        reinterpret_cast<sockaddr_in*>(info->ai_addr)->sin_addr;
    ::freeaddrinfo(info);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("connect: socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::NotFound("cannot connect to " + endpoint.ToString() +
                                ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace ocdd::serve
