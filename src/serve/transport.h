#ifndef OCDD_SERVE_TRANSPORT_H_
#define OCDD_SERVE_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "serve/protocol.h"

namespace ocdd::serve {

/// Transport layer of the `ocdd serve` daemon (docs/serving.md).
///
/// One vocabulary for *where* a daemon lives — a Unix-domain socket path or
/// a TCP `host:port` — and one set of socket I/O primitives shared by the
/// server, the client, and the chaos proxy. Every byte moved over a serve
/// socket goes through `ReadSome`/`ReadFull`/`WriteFull` here: they loop on
/// EINTR and short writes, use MSG_NOSIGNAL on every send (a peer that hung
/// up must surface as a typed I/O error, never as a SIGPIPE), and map
/// timeouts (SO_RCVTIMEO/SO_SNDTIMEO firing as EAGAIN) to a distinct status
/// so callers can tell a slow peer from a dead one.

// ---------------------------------------------------------------------------
// Endpoints
// ---------------------------------------------------------------------------

/// Where a daemon listens (or a client connects). Parsed from one string:
/// anything containing a '/' — or nothing that parses as `host:port` — is a
/// Unix socket path; `host:port` with a numeric port is TCP. `tcp:` and
/// `unix:` prefixes force the interpretation.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  /// Unix: the socket path.
  std::string path;
  /// TCP: host (an IPv4 dotted quad or a name resolved at bind/connect
  /// time) and port. Port 0 binds an ephemeral port (tests); the bound
  /// listener reports the real one.
  std::string host;
  std::uint16_t port = 0;

  /// Canonical rendering: the path for Unix, "host:port" for TCP.
  std::string ToString() const;
};

/// Parses an endpoint spec. Accepted: "/path/daemon.sock",
/// "unix:/path/daemon.sock", "127.0.0.1:7411", "tcp:127.0.0.1:7411",
/// ":7411" (all-interfaces shorthand, host 0.0.0.0).
Result<Endpoint> ParseEndpoint(const std::string& spec);

// ---------------------------------------------------------------------------
// Socket I/O primitives
// ---------------------------------------------------------------------------

/// Outcome of one socket read/write. `kTimeout` is the socket-level deadline
/// (SO_RCVTIMEO/SO_SNDTIMEO) firing — the peer is slow, not gone.
enum class IoStatus {
  kOk,
  kEof,      ///< orderly shutdown from the peer mid-operation
  kTimeout,  ///< the configured socket deadline expired
  kError,    ///< connection reset or any other socket error (see errno)
};

const char* IoStatusName(IoStatus status);

/// Reads up to `cap` bytes; `*n` holds the count on kOk. Loops on EINTR.
IoStatus ReadSome(int fd, char* buf, std::size_t cap, std::size_t* n);

/// Reads exactly `len` bytes, looping on short reads and EINTR.
IoStatus ReadFull(int fd, void* buf, std::size_t len);

/// Writes all `len` bytes with MSG_NOSIGNAL, looping on short writes and
/// EINTR. An EPIPE/ECONNRESET lands as kError, never a signal.
IoStatus WriteFull(int fd, const void* data, std::size_t len);

inline IoStatus WriteFull(int fd, const std::string& bytes) {
  return WriteFull(fd, bytes.data(), bytes.size());
}

/// Sets SO_RCVTIMEO and SO_SNDTIMEO; <= 0 leaves the socket blocking.
bool SetIoDeadline(int fd, double seconds);

/// Reads one complete protocol frame with an overall wall-clock deadline —
/// the slowloris guard. The per-read socket deadline bounds each read();
/// `total_deadline_seconds` (0 = none) bounds the whole frame, so a client
/// trickling one byte per read-timeout window still gets evicted. On
/// success `*payload` holds the frame payload. `kTimeout` covers both the
/// per-read and the total deadline; `*frame_error` is set (non-kNone) only
/// when the stream itself framed garbage. `*got_bytes` (optional) reports
/// whether any bytes arrived at all — an idle connection (zero bytes, then
/// deadline or EOF) is distinguishable from a torn frame.
IoStatus ReadFrame(int fd, const FrameLimits& limits,
                   double total_deadline_seconds, std::string* payload,
                   FrameError* frame_error, bool* got_bytes = nullptr);

// ---------------------------------------------------------------------------
// Listeners and connections
// ---------------------------------------------------------------------------

/// A bound, listening socket. For TCP with port 0 the `endpoint` carries the
/// kernel-assigned port (via getsockname), so tests can bind ephemerally.
struct BoundListener {
  int fd = -1;
  Endpoint endpoint;
};

/// Binds and listens on `endpoint`. Unix: unlinks a stale socket file
/// first. TCP: SO_REUSEADDR, binds `host:port` (host empty or "0.0.0.0" =
/// all interfaces).
Result<BoundListener> ListenOn(const Endpoint& endpoint, int backlog = 64);

/// One blocking connect attempt to `endpoint`. The caller owns the fd.
Result<int> ConnectTo(const Endpoint& endpoint);

}  // namespace ocdd::serve

#endif  // OCDD_SERVE_TRANSPORT_H_
