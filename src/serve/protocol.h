#ifndef OCDD_SERVE_PROTOCOL_H_
#define OCDD_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "report/json_reader.h"

namespace ocdd::serve {

/// Wire protocol of the `ocdd serve` daemon (docs/serving.md).
///
/// A connection carries exactly one request frame and one response frame
/// over a Unix-domain stream socket. A frame is a fixed 12-byte header —
/// magic, payload length, payload CRC32, all little-endian u32 — followed by
/// the payload bytes:
///
///   +--------+--------+--------+----------------+
///   | magic  | length | crc32  | payload ...    |
///   +--------+--------+--------+----------------+
///
/// Payloads are JSON documents (the same hardened parser that reads reports
/// back, src/report/json_reader.h). Everything arriving over the socket is
/// untrusted bytes: lengths are bounded *before* allocation, the CRC is
/// validated before the payload is parsed, and any header violation is a
/// typed `FrameError` — the daemon never crashes on a torn or malicious
/// frame, it answers with a typed reject and closes (the PR 4 ingest
/// contract, extended to the serving boundary).

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// The bytes "OCD1" on the wire; the trailing digit is the protocol version
/// (a breaking change bumps it).
inline constexpr std::uint32_t kFrameMagic = 0x3144'434Fu;

/// Header bytes on the wire: magic + length + crc.
inline constexpr std::size_t kFrameHeaderBytes = 12;

struct FrameLimits {
  /// Hard payload bound; an honest request is a few hundred bytes, an honest
  /// response a few MiB of report JSON.
  std::size_t max_payload_bytes = 8u << 20;
};

/// Typed framing violations — the serving layer's reject vocabulary.
enum class FrameError {
  kNone = 0,
  kBadMagic,      ///< header does not start with kFrameMagic
  kOversized,     ///< declared length exceeds FrameLimits
  kCrcMismatch,   ///< payload bytes do not match the header CRC (torn/flipped)
};

const char* FrameErrorName(FrameError error);

/// Encodes `payload` into one wire frame.
std::string EncodeFrame(const std::string& payload);

/// Incremental frame decoder: feed bytes as they arrive, pull frames as they
/// complete. After the first error the stream is unrecoverable (length
/// framing is lost) and every further `Next` reports the same error.
class FrameDecoder {
 public:
  explicit FrameDecoder(FrameLimits limits = {}) : limits_(limits) {}

  void Feed(const char* data, std::size_t size) {
    buffer_.append(data, size);
  }
  void Feed(const std::string& bytes) { buffer_.append(bytes); }

  enum class Event {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< `*payload` holds the next payload
    kError,     ///< `*error` holds the violation; the stream is dead
  };

  /// Extracts the next complete frame from the buffer.
  Event Next(std::string* payload, FrameError* error);

  /// Bytes buffered but not yet consumed.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  FrameLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;
  FrameError dead_ = FrameError::kNone;
};

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Declared bounds on a parsed request — the payload is untrusted even after
/// it frames and parses as JSON.
struct RequestLimits {
  std::size_t max_tenant_bytes = 64;
  std::size_t max_source_bytes = 4096;
  std::size_t max_id_bytes = 128;
  std::size_t max_rows = 100'000'000;
  std::size_t max_level = 64;
  /// Warm-state names become a directory component under the daemon's
  /// checkpoint root, so they are tightly constrained (see ParseRequest).
  std::size_t max_state_bytes = 64;
};

/// One client request. `kind` "run" executes a discovery; "apply_batch"
/// applies one incremental maintenance step to a named warm state
/// (docs/incremental.md); "ping" and "stats" are control probes answered
/// inline by the acceptor.
struct ServeRequest {
  std::string kind = "run";
  /// Correlation id, echoed verbatim in the response.
  std::string id;
  std::string tenant = "default";
  /// "discover", "fds", or "fastod" — the `ocdd run --algo` vocabulary.
  /// Ignored by "apply_batch" (always OCDDISCOVER maintenance).
  std::string algo = "discover";
  /// Dataset name or CSV path, as for `ocdd run`. For "apply_batch" this is
  /// the *base* source, consulted only when the warm state needs a
  /// from-scratch bootstrap (empty = state must already exist).
  std::string source;
  std::size_t rows = 0;
  std::size_t seed = 42;
  std::size_t max_level = 0;
  /// Opt out of the result cache for this request. "apply_batch" is never
  /// cached (it mutates state — replaying a cached answer would lie).
  bool use_cache = true;

  /// "apply_batch" only: path to the batch file (the `ocdd-batch 1` wire
  /// format), empty = bootstrap/validate the state without applying.
  std::string batch;
  /// "apply_batch" only: warm-state name, scoped per tenant under the
  /// daemon's checkpoint root. Restricted to [A-Za-z0-9._-], no leading
  /// dot — it becomes a filesystem path component.
  std::string state;
};

/// Parses and validates an untrusted request payload. Unknown members are
/// ignored (forward compatibility); violations of `limits`, a bad `kind`,
/// a bad `algo`, or control characters in string fields are InvalidArgument.
Result<ServeRequest> ParseRequest(const std::string& payload,
                                  const RequestLimits& limits = {});

/// Canonical JSON rendering (sorted keys); ParseRequest round-trips it.
std::string SerializeRequest(const ServeRequest& request);

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Response status vocabulary. Every admitted request terminates in exactly
/// one of these; `rejected` carries a `reject_reason` from the admission
/// vocabulary (docs/serving.md lists the full state machine).
///   ok       — a worker produced a report (possibly a partial one with
///              `completed: false`; a truncated answer is still an answer)
///   rejected — admission refused the request; nothing ran
///   timeout  — the serve-side deadline fired; a partial report may be
///              attached when the worker drained in time
///   error    — the worker failed terminally (crash retries exhausted,
///              bad source, no parseable report)
struct ServeResponse {
  std::string id;
  std::string status = "error";
  std::string reject_reason;  ///< set when status == "rejected"
  std::string error;          ///< human-readable detail for "error"
  /// Worker attempts consumed (0 for rejects and cache hits).
  int attempts = 0;
  /// "hit", "miss", or "off".
  std::string cache = "off";
  /// True when the daemon answered while its disk was in degraded mode:
  /// the result is served from memory, persistence and worker checkpoints
  /// are suspended (docs/robustness.md, "Degraded mode").
  bool disk_degraded = false;
  bool have_report = false;
  report::JsonValue report;
};

/// Builds the response payload (canonical JSON, sorted keys).
std::string SerializeResponse(const ServeResponse& response);

/// Parses a response payload (the client side of the boundary; responses
/// from the socket are just as untrusted as requests).
Result<ServeResponse> ParseResponse(const std::string& payload);

/// Canonical cache/admission digest of a run request: everything that
/// changes what a worker would compute, excluding the tenant (two tenants
/// asking the same question share a cache line). FNV-1a 64.
std::uint64_t RequestDigest(const ServeRequest& request);

}  // namespace ocdd::serve

#endif  // OCDD_SERVE_PROTOCOL_H_
