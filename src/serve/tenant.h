#ifndef OCDD_SERVE_TENANT_H_
#define OCDD_SERVE_TENANT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/run_context.h"

namespace ocdd::serve {

/// Per-tenant resource quota: the RunContext budget bundle a worker runs
/// under, plus an admission-side concurrency cap. A zero field means
/// unlimited, matching RunBudgets semantics.
struct TenantQuota {
  RunBudgets budgets;
  /// Requests a tenant may have queued or running at once; 0 = unlimited.
  std::size_t max_in_flight = 0;
};

/// Accounting snapshot for one tenant, exposed through `stats` requests.
struct TenantStats {
  std::size_t in_flight = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_limit = 0;
  std::uint64_t completed = 0;
};

/// Plain quota configuration: a default plus named overrides. Movable (no
/// locks), so it can travel through Result and ServerOptions; a TenantTable
/// is constructed from it at daemon start.
struct TenantConfig {
  TenantQuota default_quota;
  std::map<std::string, TenantQuota> overrides;
};

/// Thread-safe tenant registry: a default quota plus named overrides, and
/// per-tenant in-flight accounting used by admission control. Unknown tenants
/// get the default quota (multi-tenancy is cooperative isolation, not
/// authentication — docs/serving.md).
class TenantTable {
 public:
  explicit TenantTable(TenantConfig config = {})
      : default_quota_(config.default_quota),
        overrides_(std::move(config.overrides)) {}

  void SetQuota(const std::string& tenant, TenantQuota quota);
  TenantQuota QuotaFor(const std::string& tenant) const;

  /// Admission check-and-claim: increments the tenant's in-flight count if
  /// under its cap, else records a tenant_limit reject and returns false.
  bool TryAdmit(const std::string& tenant);

  /// Releases one in-flight slot (`completed` marks normal termination —
  /// ok/timeout/error — as opposed to a drain reject of a queued request).
  void Release(const std::string& tenant, bool completed);

  std::map<std::string, TenantStats> Snapshot() const;

 private:
  mutable std::mutex mu_;
  TenantQuota default_quota_;
  std::map<std::string, TenantQuota> overrides_;
  std::map<std::string, TenantStats> stats_;
};

/// Parses a tenants config document:
///
///   {
///     "default": {"time_limit_seconds": 30, "max_checks": 1000000,
///                 "memory_bytes": 268435456, "max_in_flight": 4},
///     "tenants": {"alice": {"max_in_flight": 1}}
///   }
///
/// Every field is optional (absent = unlimited; a named override inherits
/// the rest of the default quota). The file is untrusted input: parsed with
/// the hardened JSON reader, fields range-checked.
Result<TenantConfig> ParseTenantConfig(const std::string& json_text);

/// Reads and parses `path` via ParseTenantConfig.
Result<TenantConfig> LoadTenantConfig(const std::string& path);

}  // namespace ocdd::serve

#endif  // OCDD_SERVE_TENANT_H_
