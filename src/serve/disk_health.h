#ifndef OCDD_SERVE_DISK_HEALTH_H_
#define OCDD_SERVE_DISK_HEALTH_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace ocdd {

/// Disk-health state machine for the serve daemon
/// (docs/robustness.md, "Degraded mode").
///
/// The daemon's durable writes — periodic result-cache persistence,
/// checkpoint stores handed to workers — are conveniences layered on an
/// in-memory service. When the disk goes bad (full, read-only, failing
/// media), losing those conveniences must not take the daemon down: after
/// `failure_threshold` consecutive persistent-write failures the monitor
/// flips to kDegraded, the server suspends persistence and stops handing
/// workers checkpoint directories, and requests keep being served from
/// memory with `disk_degraded` surfaced in stats and responses. A periodic
/// probe (write + fsync + unlink of a small file through the io_env
/// "disk_probe.*" sites) flips the state back to kHealthy once the disk
/// recovers, and the server re-persists suspended state.
enum class DiskHealth {
  kHealthy = 0,
  kDegraded,
};

const char* DiskHealthName(DiskHealth health);

class DiskHealthMonitor {
 public:
  /// `probe_dir` is where recovery probes write (the daemon's cache or
  /// checkpoint root); empty disables probing (state then only recovers via
  /// a successful reported write). `failure_threshold` consecutive failures
  /// trip degraded; 1 means the first failure trips it.
  DiskHealthMonitor(std::string probe_dir, int failure_threshold,
                    std::chrono::milliseconds probe_interval);

  /// A durable write on the monitored disk failed. Returns true when this
  /// call tripped the kHealthy -> kDegraded transition.
  bool ReportFailure(const std::string& detail);

  /// A durable write succeeded. In degraded mode this is treated like a
  /// successful probe. Returns true when this call recovered to kHealthy.
  bool ReportSuccess();

  DiskHealth health() const;
  bool degraded() const { return health() == DiskHealth::kDegraded; }

  /// True when degraded and the probe interval has elapsed since the last
  /// probe attempt (rate-limits Probe; callers poll this from their
  /// maintenance loop).
  bool ProbeDue() const;

  /// Attempts a write+fsync+unlink probe in `probe_dir`. Returns true when
  /// the probe succeeded and the monitor recovered to kHealthy. No-op
  /// (false) when healthy or when `probe_dir` is empty.
  bool Probe();

  // --- introspection (stats JSON) -----------------------------------------

  std::uint64_t consecutive_failures() const;
  std::uint64_t degraded_entered() const;  ///< lifetime trip count
  std::uint64_t recovered() const;         ///< lifetime recovery count
  std::uint64_t probes_attempted() const;
  /// Detail string from the failure that tripped degraded (empty if healthy).
  std::string last_failure() const;

 private:
  bool RecoverLocked();

  const std::string probe_dir_;
  const int failure_threshold_;
  const std::chrono::milliseconds probe_interval_;

  mutable std::mutex mu_;
  DiskHealth health_ = DiskHealth::kHealthy;
  std::uint64_t consecutive_failures_ = 0;
  std::uint64_t degraded_entered_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t probes_attempted_ = 0;
  std::string last_failure_;
  std::chrono::steady_clock::time_point last_probe_{};
};

}  // namespace ocdd

#endif  // OCDD_SERVE_DISK_HEALTH_H_
