#include "serve/cache.h"

#include <utility>

namespace ocdd::serve {

namespace {
/// Snapshot section holding the serialized entries.
constexpr char kSection[] = "serve_cache";
/// Bumped on any change to the entry encoding.
constexpr std::uint32_t kCacheVersion = 1;
}  // namespace

bool ResultCache::Get(const CacheKey& key, std::string* report_json) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *report_json = it->second->second;
  ++stats_.hits;
  return true;
}

void ResultCache::Put(const CacheKey& key, std::string report_json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_bytes_ == 0 || report_json.size() > capacity_bytes_) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.bytes -= it->second->second.size();
    stats_.bytes += report_json.size();
    it->second->second = std::move(report_json);
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    stats_.bytes += report_json.size();
    lru_.emplace_front(key, std::move(report_json));
    index_[key] = lru_.begin();
    ++stats_.insertions;
  }
  stats_.entries = lru_.size();
  EvictToFitLocked();
}

void ResultCache::EvictToFitLocked() {
  while (stats_.bytes > capacity_bytes_ && !lru_.empty()) {
    auto& back = lru_.back();
    stats_.bytes -= back.second.size();
    index_.erase(back.first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

CacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status ResultCache::Save(SnapshotStore& store) const {
  std::string payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ByteWriter w;
    w.U32(kCacheVersion);
    w.U64(lru_.size());
    for (const auto& [key, report] : lru_) {
      w.U64(key.fingerprint);
      w.U64(key.digest);
      w.Str(report);
    }
    payload = w.Take();
  }
  SnapshotBuilder builder;
  builder.AddSection(kSection, std::move(payload));
  OCDD_ASSIGN_OR_RETURN(std::uint64_t gen, store.Write(builder.Encode()));
  (void)gen;
  return Status::OK();
}

void ResultCache::Load(const SnapshotStore& store) {
  Result<LoadedSnapshot> loaded = store.Load();
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
  stats_.load_failed = false;
  stats_.load_corrupt_skipped = 0;
  if (!loaded.ok()) {
    // Missing or wholly corrupt cache file: start cold, never fail.
    stats_.load_failed = true;
    return;
  }
  stats_.load_corrupt_skipped = loaded->corrupt_skipped;
  const std::string* section = loaded->view.Find(kSection);
  if (section == nullptr) {
    stats_.load_failed = true;
    return;
  }
  ByteReader r(*section);
  if (r.U32() != kCacheVersion) {
    stats_.load_failed = true;
    return;
  }
  const std::uint64_t count = r.U64();
  // Entries were saved MRU-first; appending preserves recency order.
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    CacheKey key;
    key.fingerprint = r.U64();
    key.digest = r.U64();
    std::string report = r.Str();
    if (!r.ok()) break;
    if (index_.count(key) != 0) continue;
    stats_.bytes += report.size();
    lru_.emplace_back(key, std::move(report));
    index_[key] = std::prev(lru_.end());
  }
  if (!r.ok()) stats_.load_failed = true;
  EvictToFitLocked();
}

}  // namespace ocdd::serve
