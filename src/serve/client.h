#ifndef OCDD_SERVE_CLIENT_H_
#define OCDD_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "serve/protocol.h"
#include "serve/transport.h"

namespace ocdd::serve {

struct ClientOptions {
  /// Connect attempts (the daemon may still be binding its socket when a
  /// client races it at startup) and the delay between them.
  int connect_attempts = 40;
  double connect_retry_seconds = 0.05;
  /// Socket read/write timeout for the exchange itself; 0 = none.
  double io_timeout_seconds = 30.0;
  FrameLimits frame_limits;
};

/// Retry policy for a ServeClient (docs/serving.md). A retry is only ever
/// attempted for *transport* failures (connect refused, reset, torn
/// response, bad response frame) and *shed* rejects (`queue_full`,
/// `tenant_limit`, `connection_limit`, `memory_watermark`) — answers the
/// daemon will give differently under less load. Typed answers (`ok`,
/// `timeout`, `error`, `rejected:bad_request`, `rejected:draining`) are
/// terminal: retrying cannot change them.
///
/// Retried `run` requests are idempotent by construction: the daemon keys
/// its result cache by {relation fingerprint, request digest}, so a retry
/// of the same request hits the cache and returns the byte-identical
/// report rather than recomputing. `apply_batch` is NOT idempotent — a
/// retry is attempted only when the failure happened before the request
/// frame was fully written (the daemon cannot have acted on it).
struct RetryOptions {
  /// Retries after the first attempt; 0 = single-shot (legacy behavior).
  int max_retries = 0;
  /// Overall wall-clock budget across all attempts and backoff sleeps;
  /// 0 = none.
  double deadline_seconds = 0.0;
  /// Jittered exponential backoff between attempts:
  /// min(cap, base·2^(attempt-1)) scaled by a uniform factor in [0.5, 1].
  double backoff_base_seconds = 0.05;
  double backoff_cap_seconds = 2.0;
  /// Seed for the backoff jitter (ocdd::Rng) — deterministic in tests.
  std::uint64_t jitter_seed = 0x0c2d5eed;

  /// Circuit breaker: after this many *consecutive* transport failures the
  /// breaker opens and calls fail fast (kCircuitOpen) without touching the
  /// network until `breaker_cooldown_seconds` elapse; then one half-open
  /// probe is let through — success closes the breaker, failure re-opens
  /// it. 0 disables the breaker. Typed daemon answers (even errors and
  /// rejects) count as breaker successes: the daemon is reachable.
  int breaker_threshold = 0;
  double breaker_cooldown_seconds = 1.0;
};

/// How a resilient call terminated.
enum class ClientOutcome {
  /// A typed daemon response was obtained (any status — inspect it).
  kResponse,
  /// All attempts failed on transport or shed rejects; retry budget spent.
  kRetriesExhausted,
  /// The overall deadline expired before a terminal answer.
  kDeadlineExceeded,
  /// The circuit breaker was open; the network was not touched.
  kCircuitOpen,
  /// A non-idempotent request (apply_batch) failed after its bytes were
  /// delivered; retrying could re-apply the batch, so the failure is
  /// surfaced instead.
  kNotRetryable,
};

const char* ClientOutcomeName(ClientOutcome outcome);

struct ClientResult {
  ClientOutcome outcome = ClientOutcome::kResponse;
  /// Valid when outcome == kResponse.
  ServeResponse response;
  /// Attempts that reached the network (>= 1 unless kCircuitOpen).
  int attempts = 0;
  /// Transport-level failures across those attempts.
  int transport_failures = 0;
  /// Shed rejects (queue_full/...) swallowed by retries.
  int shed_rejects = 0;
  /// Terminal error description when outcome != kResponse.
  std::string error;
};

/// A client handle with retry, backoff and circuit-breaker state. Each
/// Call() performs up to 1 + max_retries request/response exchanges; the
/// breaker state persists across Call()s on the same handle.
class ServeClient {
 public:
  explicit ServeClient(Endpoint endpoint, ClientOptions options = {},
                       RetryOptions retry = {});

  ClientResult Call(const ServeRequest& request);

  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  BreakerState breaker_state() const { return breaker_; }

  const Endpoint& endpoint() const { return endpoint_; }

 private:
  Endpoint endpoint_;
  ClientOptions options_;
  RetryOptions retry_;
  Rng rng_;

  BreakerState breaker_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  std::uint64_t breaker_opened_ms_ = 0;  // steady-clock ms at open
};

/// One request/response exchange with an `ocdd serve` daemon: connect
/// (with startup retry), send one request frame, read one response frame.
/// The response payload is untrusted — framing and status vocabulary are
/// validated before anything is returned. `request_sent` (optional)
/// reports whether the request frame was fully written before any failure
/// — the idempotency pivot for apply_batch retries.
Result<ServeResponse> SendRequestOnce(const Endpoint& endpoint,
                                      const ServeRequest& request,
                                      const ClientOptions& options = {},
                                      bool* request_sent = nullptr);

/// Legacy single-shot entry point over a Unix socket path.
Result<ServeResponse> SendRequest(const std::string& socket_path,
                                  const ServeRequest& request,
                                  const ClientOptions& options = {});

}  // namespace ocdd::serve

#endif  // OCDD_SERVE_CLIENT_H_
