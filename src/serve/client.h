#ifndef OCDD_SERVE_CLIENT_H_
#define OCDD_SERVE_CLIENT_H_

#include <string>

#include "common/result.h"
#include "serve/protocol.h"

namespace ocdd::serve {

struct ClientOptions {
  /// Connect attempts (the daemon may still be binding its socket when a
  /// client races it at startup) and the delay between them.
  int connect_attempts = 40;
  double connect_retry_seconds = 0.05;
  /// Socket read/write timeout for the exchange itself; 0 = none.
  double io_timeout_seconds = 30.0;
  FrameLimits frame_limits;
};

/// Performs one request/response exchange with an `ocdd serve` daemon:
/// connect (with startup retry), send one request frame, read one response
/// frame. The response payload is untrusted — framing and status vocabulary
/// are validated before anything is returned.
Result<ServeResponse> SendRequest(const std::string& socket_path,
                                  const ServeRequest& request,
                                  const ClientOptions& options = {});

}  // namespace ocdd::serve

#endif  // OCDD_SERVE_CLIENT_H_
