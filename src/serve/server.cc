#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "datagen/registry.h"
#include "engine/supervisor.h"
#include "relation/coded_relation.h"
#include "relation/csv.h"

namespace ocdd::serve {

namespace {

using report::JsonValue;

std::string HexKey(const CacheKey& key) {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx-%016llx",
                static_cast<unsigned long long>(key.fingerprint),
                static_cast<unsigned long long>(key.digest));
  return buf;
}

/// Loads and dictionary-encodes a request's source, mirroring the CLI's
/// source resolution (CSV path vs built-in dataset). Strict ingest: a serve
/// request has no --on-bad-row escape hatch, dirty CSV is an error answer.
Result<std::uint64_t> SourceFingerprint(const ServeRequest& request) {
  rel::Relation relation;
  const std::string& src = request.source;
  const bool is_csv =
      src.size() > 4 && src.substr(src.size() - 4) == ".csv";
  if (is_csv) {
    OCDD_ASSIGN_OR_RETURN(rel::CsvRead read,
                          rel::ReadCsvFileWithReport(src, {}));
    relation = std::move(read.relation);
  } else {
    OCDD_ASSIGN_OR_RETURN(
        relation, datagen::MakeDataset(src, request.rows, request.seed));
  }
  return rel::CodedRelation::Encode(relation).Fingerprint();
}

JsonValue CountersJson(const ServerCounters& c) {
  std::map<std::string, JsonValue> rej;
  rej["draining"] = JsonValue::Number(static_cast<double>(c.rejected_draining));
  rej["bad_request"] =
      JsonValue::Number(static_cast<double>(c.rejected_bad_request));
  rej["bad_frame"] =
      JsonValue::Number(static_cast<double>(c.rejected_bad_frame));
  rej["queue_full"] =
      JsonValue::Number(static_cast<double>(c.rejected_queue_full));
  rej["tenant_limit"] =
      JsonValue::Number(static_cast<double>(c.rejected_tenant_limit));
  rej["memory_watermark"] =
      JsonValue::Number(static_cast<double>(c.rejected_memory_watermark));
  rej["connection_limit"] =
      JsonValue::Number(static_cast<double>(c.rejected_connection_limit));
  rej["disk_degraded"] =
      JsonValue::Number(static_cast<double>(c.rejected_disk_degraded));

  std::map<std::string, JsonValue> m;
  m["connections"] = JsonValue::Number(static_cast<double>(c.connections));
  m["accept_errors"] =
      JsonValue::Number(static_cast<double>(c.accept_errors));
  m["cache_persist_ok"] =
      JsonValue::Number(static_cast<double>(c.cache_persist_ok));
  m["cache_persist_failed"] =
      JsonValue::Number(static_cast<double>(c.cache_persist_failed));
  m["admitted"] = JsonValue::Number(static_cast<double>(c.admitted));
  m["rejected"] = JsonValue::Object(std::move(rej));
  m["slowloris_evicted"] =
      JsonValue::Number(static_cast<double>(c.slowloris_evicted));
  m["idle_reaped"] = JsonValue::Number(static_cast<double>(c.idle_reaped));
  m["completed_ok"] = JsonValue::Number(static_cast<double>(c.completed_ok));
  m["completed_timeout"] =
      JsonValue::Number(static_cast<double>(c.completed_timeout));
  m["completed_error"] =
      JsonValue::Number(static_cast<double>(c.completed_error));
  m["retries"] = JsonValue::Number(static_cast<double>(c.retries));
  m["worker_crashes"] =
      JsonValue::Number(static_cast<double>(c.worker_crashes));
  m["drain_interrupted"] =
      JsonValue::Number(static_cast<double>(c.drain_interrupted));
  return JsonValue::Object(std::move(m));
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      tenants_(std::move(options_.tenants)),
      cache_(options_.cache_capacity_bytes),
      // The probe exercises whichever disk the daemon persists to; with no
      // durable paths configured the monitor is inert (nothing reports
      // failures into it).
      disk_(!options_.cache_dir.empty() ? options_.cache_dir
                                        : options_.checkpoint_root,
            options_.disk_failure_threshold,
            std::chrono::milliseconds(static_cast<long long>(
                options_.disk_probe_interval_seconds * 1000.0))) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_pipe_[0] >= 0) ::close(stop_pipe_[0]);
  if (stop_pipe_[1] >= 0) ::close(stop_pipe_[1]);
}

Status Server::Start() {
  if (!options_.listen_address.empty()) {
    OCDD_ASSIGN_OR_RETURN(endpoint_, ParseEndpoint(options_.listen_address));
  } else if (!options_.socket_path.empty()) {
    endpoint_.kind = Endpoint::Kind::kUnix;
    endpoint_.path = options_.socket_path;
  } else {
    return Status::InvalidArgument(
        "serve: no endpoint (need a socket path or --listen)");
  }

  if (::pipe(stop_pipe_) != 0) {
    return Status::Internal("serve: pipe() failed");
  }
  OCDD_ASSIGN_OR_RETURN(BoundListener bound, ListenOn(endpoint_));
  listen_fd_ = bound.fd;
  endpoint_ = bound.endpoint;  // TCP port 0 → the kernel-assigned port

  if (!options_.cache_dir.empty() && cache_.enabled()) {
    SnapshotStore store(options_.cache_dir, "serve_cache");
    cache_.Load(store);
  }
  return Status::OK();
}

void Server::RequestStop() {
  // Only async-signal-safe calls here: the CLI invokes this from its
  // SIGTERM/SIGINT handler.
  char byte = 1;
  ssize_t ignored = ::write(stop_pipe_[1], &byte, 1);
  (void)ignored;
}

Status Server::Run() {
  if (listen_fd_ < 0) {
    return Status::Internal("serve: Run() before Start()");
  }
  for (std::size_t i = 0; i < options_.num_executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  maintenance_ = std::thread([this] { MaintenanceLoop(); });

  AcceptLoop();

  // --- Graceful drain -----------------------------------------------------
  draining_.store(true);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (endpoint_.kind == Endpoint::Kind::kUnix) {
    ::unlink(endpoint_.path.c_str());
  }

  // Reader threads first: each is time-bounded (frame deadline + socket
  // write timeout) and either answers inline — seeing draining_, a typed
  // reject — or pushes onto the queue. Waiting here means the queue flush
  // below sees every straggler, so no admitted fd is ever abandoned.
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }

  // Queued-but-not-running requests get a typed reject: "every admitted
  // request terminates with a result, a typed reject, or a typed timeout".
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (!queue_.empty()) {
      Pending pending = std::move(queue_.front());
      queue_.pop_front();
      committed_memory_ -= pending.quota.budgets.memory_bytes;
      ++counters_.rejected_draining;
      lock.unlock();
      tenants_.Release(pending.request.tenant, /*completed=*/false);
      ServeResponse resp;
      resp.id = pending.request.id;
      resp.status = "rejected";
      resp.reject_reason = "draining";
      SendResponse(pending.fd, resp);
      lock.lock();
    }
  }
  queue_cv_.notify_all();

  // In-flight workers get the grace period to finish on their own, then the
  // interrupt flag flips and RunWorkerProcess SIGINTs them (they drain to a
  // checkpoint and emit partial JSON).
  const auto grace_end =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(options_.drain_grace_seconds);
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (running_ > 0 && std::chrono::steady_clock::now() < grace_end) {
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      lock.lock();
    }
    if (running_ > 0) interrupt_workers_.store(true);
  }
  for (std::thread& t : executors_) t.join();
  executors_.clear();

  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    maint_stop_ = true;
  }
  maint_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();

  // Final persist is attempted even when degraded — it is the last chance,
  // and if the disk came back since the last probe this is what saves the
  // cache. A failure here is the monitor's and the log's to report.
  PersistCache();
  return Status::OK();
}

void Server::MaintenanceLoop() {
  const bool periodic = options_.cache_persist_interval_seconds > 0.0;
  const auto persist_every = std::chrono::duration<double>(
      options_.cache_persist_interval_seconds);
  auto last_persist = std::chrono::steady_clock::now();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(maint_mu_);
      maint_cv_.wait_for(lock, std::chrono::milliseconds(20),
                         [this] { return maint_stop_; });
      if (maint_stop_) return;
    }
    if (disk_.ProbeDue() && disk_.Probe()) {
      // Recovered: catch up on the persistence suspended while degraded.
      std::fprintf(stderr, "serve: disk recovered, resuming persistence\n");
      last_persist = std::chrono::steady_clock::now();
      PersistCache();
      continue;
    }
    if (periodic && !disk_.degraded() &&
        std::chrono::steady_clock::now() - last_persist >= persist_every) {
      last_persist = std::chrono::steady_clock::now();
      PersistCache();
    }
  }
}

void Server::PersistCache() {
  if (options_.cache_dir.empty() || !cache_.enabled()) return;
  SnapshotStore store(options_.cache_dir, "serve_cache");
  Status saved = cache_.Save(store);
  if (saved.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.cache_persist_ok;
    }
    disk_.ReportSuccess();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.cache_persist_failed;
  }
  if (disk_.ReportFailure(saved.message())) {
    std::fprintf(stderr,
                 "serve: disk degraded (%s); serving from memory, "
                 "persistence suspended\n",
                 saved.message().c_str());
  } else {
    std::fprintf(stderr, "serve: cache persist failed: %s\n",
                 saved.message().c_str());
  }
}

void Server::AcceptLoop() {
  // accept() failure backoff, doubled per consecutive failure up to the cap.
  // EMFILE/ENFILE (fd exhaustion) would otherwise busy-spin this loop at
  // 100% CPU: the listen fd stays readable until the backlog is drained,
  // which a daemon out of descriptors cannot do. Backing off yields the CPU
  // and gives in-flight connections time to close and return fds.
  int backoff_ms = 0;  // reset on a successful accept, doubled on failure
  constexpr int kBackoffStartMs = 5;
  constexpr int kBackoffCapMs = 200;
  for (;;) {
    if (backoff_ms > 0) {
      // Sleep on the stop pipe only, so SIGTERM stays prompt even with the
      // listen fd permanently readable.
      pollfd stop = {stop_pipe_[0], POLLIN, 0};
      int src = ::poll(&stop, 1, backoff_ms);
      if (src < 0 && errno != EINTR) return;
      if (src > 0 && stop.revents != 0) return;  // RequestStop
    }
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // RequestStop
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      std::uint64_t errors;
      {
        std::lock_guard<std::mutex> lock(mu_);
        errors = ++counters_.accept_errors;
      }
      if (errors == 1) {
        std::fprintf(stderr, "serve: accept failed (%s); backing off\n",
                     std::strerror(errno));
      }
      backoff_ms = backoff_ms == 0
                       ? kBackoffStartMs
                       : std::min(backoff_ms * 2, kBackoffCapMs);
      continue;
    }
    backoff_ms = 0;
    SetIoDeadline(fd, options_.io_timeout_seconds);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.connections;
    }

    // Connection cap: reserved before the reader thread spawns so a flood
    // can never hold more than max_connections sockets + threads. The shed
    // path answers inline — the reject frame is tiny, so the send lands in
    // the socket buffer without blocking the accept loop.
    bool over_cap = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (options_.max_connections != 0 &&
          active_connections_ >= options_.max_connections) {
        over_cap = true;
      } else {
        ++active_connections_;
      }
    }
    if (over_cap) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.rejected_connection_limit;
      }
      ServeResponse resp;
      resp.status = "rejected";
      resp.reject_reason = "connection_limit";
      SendResponse(fd, resp);
      continue;
    }
    // Detached, but accounted: drain waits for active_connections_ == 0,
    // and every reader is time-bounded, so the wait terminates.
    std::thread(&Server::ConnectionThread, this, fd).detach();
  }
}

void Server::ConnectionThread(int fd) {
  HandleConnection(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    --active_connections_;
  }
  conn_cv_.notify_all();
}

void Server::HandleConnection(int fd) {
  // Read exactly one request frame, bounded in size by FrameLimits, per
  // read by the socket timeout, and in total by the frame deadline (the
  // slowloris guard). Torn frames, bad magic, oversized lengths and CRC
  // mismatches all land here as typed rejects.
  std::string payload;
  FrameError frame_error = FrameError::kNone;
  bool got_bytes = false;
  const IoStatus read_status =
      ReadFrame(fd, options_.frame_limits, options_.frame_deadline_seconds,
                &payload, &frame_error, &got_bytes);

  if (read_status != IoStatus::kOk) {
    if (!got_bytes) {
      // Idle reaper: the peer connected and said nothing until the deadline
      // (or hung up). Nobody is waiting for an answer; just close.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.idle_reaped;
      }
      ::close(fd);
      return;
    }
    ServeResponse resp;
    resp.status = "rejected";
    if (frame_error != FrameError::kNone) {
      resp.reject_reason =
          std::string("bad_frame:") + FrameErrorName(frame_error);
    } else {
      resp.reject_reason = "torn_frame";
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.rejected_bad_frame;
      if (read_status == IoStatus::kTimeout) ++counters_.slowloris_evicted;
    }
    SendResponse(fd, resp);
    return;
  }

  Result<ServeRequest> parsed =
      ParseRequest(payload, options_.request_limits);
  if (!parsed.ok()) {
    ServeResponse resp;
    resp.status = "rejected";
    resp.reject_reason = "bad_request";
    resp.error = parsed.status().message();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.rejected_bad_request;
    }
    SendResponse(fd, resp);
    return;
  }
  ServeRequest request = std::move(*parsed);

  if (request.kind == "ping") {
    ServeResponse resp;
    resp.id = request.id;
    resp.status = "ok";
    SendResponse(fd, resp);
    return;
  }
  if (request.kind == "stats") {
    ServeResponse resp;
    resp.id = request.id;
    resp.status = "ok";
    resp.have_report = true;
    resp.report = StatsJson();
    SendResponse(fd, resp);
    return;
  }

  // kind == "run": admission control. Checks are ordered cheapest-first;
  // each reject is typed so clients can tell shed load (retry later) from
  // their own errors (don't retry).
  const TenantQuota quota = tenants_.QuotaFor(request.tenant);
  auto reject = [&](const char* reason,
                    std::uint64_t ServerCounters::*counter) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++(counters_.*counter);
    }
    ServeResponse resp;
    resp.id = request.id;
    resp.status = "rejected";
    resp.reject_reason = reason;
    SendResponse(fd, resp);
  };

  if (draining_.load()) {
    reject("draining", &ServerCounters::rejected_draining);
    return;
  }
  if (request.kind == "apply_batch" && disk_.degraded()) {
    // Batch application *needs* durable state — its whole output is a new
    // warm-state generation on disk. Unlike run requests (served from
    // memory, checkpoints merely suspended), it is shed, typed, while the
    // disk is down.
    reject("disk_degraded", &ServerCounters::rejected_disk_degraded);
    return;
  }
  if (!tenants_.TryAdmit(request.tenant)) {
    reject("tenant_limit", &ServerCounters::rejected_tenant_limit);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.size() >= options_.queue_capacity) {
      lock.unlock();
      tenants_.Release(request.tenant, /*completed=*/false);
      reject("queue_full", &ServerCounters::rejected_queue_full);
      return;
    }
    const std::size_t mem = quota.budgets.memory_bytes;
    if (options_.memory_watermark_bytes != 0 &&
        committed_memory_ + mem > options_.memory_watermark_bytes) {
      lock.unlock();
      tenants_.Release(request.tenant, /*completed=*/false);
      reject("memory_watermark", &ServerCounters::rejected_memory_watermark);
      return;
    }
    committed_memory_ += mem;
    ++counters_.admitted;
    queue_.push_back(Pending{fd, std::move(request), quota});
  }
  queue_cv_.notify_one();
}

void Server::ExecutorLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load();
      });
      if (queue_.empty()) {
        if (draining_.load()) return;
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    ServeResponse resp = Execute(pending);
    FinishRequest(pending, resp);
  }
}

void Server::FinishRequest(const Pending& pending,
                           const ServeResponse& response) {
  // Bookkeeping strictly before the response bytes leave: a client that
  // sees its answer and immediately asks for stats must observe this
  // request as finished.
  tenants_.Release(pending.request.tenant, /*completed=*/true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    committed_memory_ -= pending.quota.budgets.memory_bytes;
    --running_;
    if (response.status == "ok") {
      ++counters_.completed_ok;
    } else if (response.status == "timeout") {
      ++counters_.completed_timeout;
    } else {
      ++counters_.completed_error;
    }
  }
  SendResponse(pending.fd, response);
}

ServeResponse Server::Execute(const Pending& pending) {
  const ServeRequest& request = pending.request;
  ServeResponse resp;
  resp.id = request.id;

  // Incremental maintenance: never cached (it mutates state) and requires a
  // stateful daemon — the warm state lives under the checkpoint root.
  if (request.kind == "apply_batch") {
    if (options_.checkpoint_root.empty() ||
        options_.batch_worker_argv_prefix.empty()) {
      resp.status = "error";
      resp.error =
          "apply_batch requires a stateful daemon (--checkpoint-root)";
      return resp;
    }
    return RunBatchWorker(pending);
  }

  // Loading the source in-process both validates it early (the hardened
  // ingest boundary runs here, before any worker is spawned) and yields the
  // content fingerprint the cache is keyed by.
  Result<std::uint64_t> fingerprint = SourceFingerprint(request);
  if (!fingerprint.ok()) {
    resp.status = "error";
    resp.error = "source: " + fingerprint.status().message();
    return resp;
  }
  const CacheKey key{*fingerprint, RequestDigest(request)};

  const bool cacheable = request.use_cache && cache_.enabled();
  resp.cache = cacheable ? "miss" : "off";
  if (cacheable) {
    std::string cached;
    if (cache_.Get(key, &cached)) {
      Result<JsonValue> doc = report::ParseJson(cached);
      if (doc.ok()) {
        resp.status = "ok";
        resp.cache = "hit";
        resp.have_report = true;
        resp.report = std::move(*doc);
        return resp;
      }
      // An unparseable cache entry cannot happen through Put (entries are
      // serialized reports), but a corrupt snapshot that still passed CRC
      // is conceivable; treat it as a miss.
    }
  }

  return RunWorker(pending, *fingerprint, key);
}

ServeResponse Server::RunWorker(const Pending& pending,
                                std::uint64_t /*fingerprint*/,
                                const CacheKey& key) {
  const ServeRequest& request = pending.request;
  ServeResponse resp;
  resp.id = request.id;
  resp.cache = request.use_cache && cache_.enabled() ? "miss" : "off";

  std::vector<std::string> args = options_.worker_argv_prefix;
  args.push_back(request.source);
  args.push_back("--algo");
  args.push_back(request.algo);
  args.push_back("--json");
  if (request.rows != 0) {
    args.push_back("--rows");
    args.push_back(std::to_string(request.rows));
  }
  args.push_back("--seed");
  args.push_back(std::to_string(request.seed));
  if (request.max_level != 0) {
    args.push_back("--max-level");
    args.push_back(std::to_string(request.max_level));
  }
  for (std::string& flag : pending.quota.budgets.ToCliFlags()) {
    args.push_back(std::move(flag));
  }
  // Degraded disk: run the worker without a checkpoint dir rather than let
  // it die on ENOSPC mid-run. The request still completes from memory; it
  // just loses crash-resume. Captured once so the retry loop below stays
  // consistent even if health flips mid-request.
  const bool checkpointing =
      !options_.checkpoint_root.empty() && !disk_.degraded();
  if (checkpointing) {
    args.push_back("--checkpoint");
    args.push_back(options_.checkpoint_root + "/" + HexKey(key));
  }

  engine::WorkerRunOptions run_options;
  run_options.timeout_seconds = options_.request_timeout_seconds;
  run_options.interrupt = &interrupt_workers_;

  const int max_attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    resp.attempts = attempt;
    std::vector<std::string> attempt_args = args;
    if (checkpointing && attempt > 1) attempt_args.push_back("--resume");

    engine::WorkerOutcome outcome =
        engine::RunWorkerProcess(attempt_args, run_options);

    if (outcome.spawn_failed) {
      resp.status = "error";
      resp.error = "worker spawn failed";
      return resp;
    }

    bool json_valid = false;
    bool completed = false;
    std::string stop_reason;
    JsonValue doc;
    Result<JsonValue> parsed = report::ParseJson(outcome.stdout_text);
    if (parsed.ok() && parsed->kind() == JsonValue::Kind::kObject) {
      json_valid = true;
      doc = std::move(*parsed);
      completed = doc["completed"].bool_value();
      stop_reason = doc["stop_reason"].string_value();
    }

    if (outcome.timed_out) {
      // The serve-side backstop fired: a typed timeout, with the partial
      // report attached when the worker drained in time.
      resp.status = "timeout";
      if (json_valid) {
        resp.have_report = true;
        resp.report = std::move(doc);
      }
      return resp;
    }
    if (outcome.interrupted) {
      // Drain interrupt: a partial report is still an answer; without one
      // the request ends as a typed error. Either way it terminates.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.drain_interrupted;
      }
      if (json_valid) {
        resp.status = "ok";
        resp.have_report = true;
        resp.report = std::move(doc);
      } else {
        resp.status = "error";
        resp.error = "interrupted by daemon drain";
      }
      return resp;
    }

    const engine::ChildVerdict verdict = engine::ClassifyChild(
        outcome.exit_code, outcome.term_signal, json_valid, completed,
        stop_reason);
    switch (verdict) {
      case engine::ChildVerdict::kCompleted:
      case engine::ChildVerdict::kRetryableStop:
      case engine::ChildVerdict::kStructuralStop: {
        // A clean report — complete or stopped-with-reason — is the answer.
        // Budget stops are the tenant's own quota doing its job, not a
        // serve fault, so they are not retried here.
        resp.status = "ok";
        resp.have_report = true;
        resp.report = std::move(doc);
        if (completed && request.use_cache && cache_.enabled()) {
          cache_.Put(key, outcome.stdout_text);
        }
        return resp;
      }
      case engine::ChildVerdict::kCrash: {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++counters_.worker_crashes;
          if (attempt < max_attempts) ++counters_.retries;
        }
        if (attempt == max_attempts) {
          resp.status = "error";
          resp.error = "worker crashed (signal " +
                       std::to_string(outcome.term_signal) + ") on all " +
                       std::to_string(max_attempts) + " attempts";
          return resp;
        }
        // Bounded exponential backoff before the retry; the drain
        // interrupt shortcuts the sleep so SIGTERM stays prompt.
        double delay = options_.backoff_base_seconds;
        for (int i = 1; i < attempt; ++i) delay *= 2.0;
        if (delay > options_.backoff_cap_seconds) {
          delay = options_.backoff_cap_seconds;
        }
        const auto wake = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(delay);
        while (std::chrono::steady_clock::now() < wake &&
               !interrupt_workers_.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        continue;
      }
      case engine::ChildVerdict::kChildError: {
        resp.status = "error";
        resp.error =
            "worker exited with code " + std::to_string(outcome.exit_code);
        return resp;
      }
      case engine::ChildVerdict::kNoReport: {
        resp.status = "error";
        resp.error = "worker produced no parseable JSON report";
        return resp;
      }
    }
  }
  // Unreachable: every verdict above returns or continues within bounds.
  resp.status = "error";
  resp.error = "retry loop exhausted";
  return resp;
}

ServeResponse Server::RunBatchWorker(const Pending& pending) {
  const ServeRequest& request = pending.request;
  ServeResponse resp;
  resp.id = request.id;
  resp.cache = "off";

  // Warm state is scoped per tenant: two tenants using the same state name
  // never share (or clobber) each other's sessions. The name itself was
  // validated at the protocol boundary ([A-Za-z0-9._-], no leading dot).
  const std::string state_dir = options_.checkpoint_root + "/incremental/" +
                                request.tenant + "/" + request.state;

  std::vector<std::string> args = options_.batch_worker_argv_prefix;
  if (!request.batch.empty()) args.push_back(request.batch);
  args.push_back("--state");
  args.push_back(state_dir);
  if (!request.source.empty()) {
    args.push_back("--base");
    args.push_back(request.source);
    args.push_back("--seed");
    args.push_back(std::to_string(request.seed));
    if (request.rows != 0) {
      args.push_back("--rows");
      args.push_back(std::to_string(request.rows));
    }
  }
  if (request.max_level != 0) {
    args.push_back("--max-level");
    args.push_back(std::to_string(request.max_level));
  }
  args.push_back("--json");
  for (std::string& flag : pending.quota.budgets.ToCliFlags()) {
    args.push_back(std::move(flag));
  }

  engine::WorkerRunOptions run_options;
  run_options.timeout_seconds = options_.request_timeout_seconds;
  run_options.interrupt = &interrupt_workers_;

  // Exactly one attempt: a batch application is not idempotent from the
  // outside (a crash *after* the new warm generation landed but before the
  // report was read would re-apply the batch on retry). The warm-state
  // store's atomic generation writes make the single attempt all-or-nothing
  // at every crash point; the client consults `batch_seq` and replays.
  resp.attempts = 1;
  engine::WorkerOutcome outcome = engine::RunWorkerProcess(args, run_options);

  if (outcome.spawn_failed) {
    resp.status = "error";
    resp.error = "worker spawn failed";
    return resp;
  }

  bool json_valid = false;
  JsonValue doc;
  Result<JsonValue> parsed = report::ParseJson(outcome.stdout_text);
  if (parsed.ok() && parsed->kind() == JsonValue::Kind::kObject) {
    json_valid = true;
    doc = std::move(*parsed);
  }

  if (outcome.timed_out) {
    resp.status = "timeout";
    if (json_valid) {
      resp.have_report = true;
      resp.report = std::move(doc);
    }
    return resp;
  }
  if (outcome.interrupted) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.drain_interrupted;
    }
    resp.status = "error";
    resp.error = "interrupted by daemon drain";
    return resp;
  }
  if (outcome.term_signal != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.worker_crashes;
    resp.status = "error";
    resp.error =
        "worker crashed (signal " + std::to_string(outcome.term_signal) + ")";
    return resp;
  }
  if (outcome.exit_code != 0) {
    resp.status = "error";
    resp.error =
        "worker exited with code " + std::to_string(outcome.exit_code);
    return resp;
  }
  if (!json_valid) {
    resp.status = "error";
    resp.error = "worker produced no parseable JSON report";
    return resp;
  }
  resp.status = "ok";
  resp.have_report = true;
  resp.report = std::move(doc);
  return resp;
}

void Server::SendResponse(int fd, ServeResponse response) {
  // Every response carries the disk-health flag: clients learn the answer
  // they just got was served from memory with persistence suspended.
  response.disk_degraded = disk_.degraded();
  // Best-effort: the client may already be gone; the daemon never treats a
  // dead peer as its own failure. WriteFull loops on EINTR/short writes
  // with MSG_NOSIGNAL, so a hung-up peer surfaces as an error, not SIGPIPE.
  WriteFull(fd, EncodeFrame(SerializeResponse(response)));
  ::close(fd);
}

report::JsonValue Server::StatsJson() const {
  std::map<std::string, JsonValue> m;
  {
    std::lock_guard<std::mutex> lock(mu_);
    m["counters"] = CountersJson(counters_);
    m["queued"] = JsonValue::Number(static_cast<double>(queue_.size()));
    m["running"] = JsonValue::Number(static_cast<double>(running_));
    m["committed_memory_bytes"] =
        JsonValue::Number(static_cast<double>(committed_memory_));
  }
  m["draining"] = JsonValue::Bool(draining_.load());

  std::map<std::string, JsonValue> dj;
  dj["health"] = JsonValue::String(DiskHealthName(disk_.health()));
  dj["degraded"] = JsonValue::Bool(disk_.degraded());
  dj["consecutive_failures"] =
      JsonValue::Number(static_cast<double>(disk_.consecutive_failures()));
  dj["degraded_entered"] =
      JsonValue::Number(static_cast<double>(disk_.degraded_entered()));
  dj["recovered"] = JsonValue::Number(static_cast<double>(disk_.recovered()));
  dj["probes_attempted"] =
      JsonValue::Number(static_cast<double>(disk_.probes_attempted()));
  const std::string last_failure = disk_.last_failure();
  if (!last_failure.empty()) {
    dj["last_failure"] = JsonValue::String(last_failure);
  }
  m["disk"] = JsonValue::Object(std::move(dj));

  const CacheStats cache = cache_.Stats();
  std::map<std::string, JsonValue> cj;
  cj["hits"] = JsonValue::Number(static_cast<double>(cache.hits));
  cj["misses"] = JsonValue::Number(static_cast<double>(cache.misses));
  cj["insertions"] = JsonValue::Number(static_cast<double>(cache.insertions));
  cj["evictions"] = JsonValue::Number(static_cast<double>(cache.evictions));
  cj["bytes"] = JsonValue::Number(static_cast<double>(cache.bytes));
  cj["entries"] = JsonValue::Number(static_cast<double>(cache.entries));
  cj["load_corrupt_skipped"] =
      JsonValue::Number(static_cast<double>(cache.load_corrupt_skipped));
  cj["load_failed"] = JsonValue::Bool(cache.load_failed);
  m["cache"] = JsonValue::Object(std::move(cj));

  std::map<std::string, JsonValue> tj;
  for (const auto& [tenant, stats] : tenants_.Snapshot()) {
    std::map<std::string, JsonValue> t;
    t["in_flight"] = JsonValue::Number(static_cast<double>(stats.in_flight));
    t["admitted"] = JsonValue::Number(static_cast<double>(stats.admitted));
    t["rejected_limit"] =
        JsonValue::Number(static_cast<double>(stats.rejected_limit));
    t["completed"] = JsonValue::Number(static_cast<double>(stats.completed));
    tj[tenant] = JsonValue::Object(std::move(t));
  }
  m["tenants"] = JsonValue::Object(std::move(tj));
  return JsonValue::Object(std::move(m));
}

}  // namespace ocdd::serve
