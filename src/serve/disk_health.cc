#include "serve/disk_health.h"

#include <unistd.h>

#include <utility>

#include "common/io_env.h"

namespace ocdd {

const char* DiskHealthName(DiskHealth health) {
  switch (health) {
    case DiskHealth::kHealthy:
      return "healthy";
    case DiskHealth::kDegraded:
      return "degraded";
  }
  return "unknown";
}

DiskHealthMonitor::DiskHealthMonitor(std::string probe_dir,
                                     int failure_threshold,
                                     std::chrono::milliseconds probe_interval)
    : probe_dir_(std::move(probe_dir)),
      failure_threshold_(failure_threshold < 1 ? 1 : failure_threshold),
      probe_interval_(probe_interval) {}

bool DiskHealthMonitor::ReportFailure(const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  if (health_ == DiskHealth::kDegraded) return false;
  if (consecutive_failures_ <
      static_cast<std::uint64_t>(failure_threshold_)) {
    return false;
  }
  health_ = DiskHealth::kDegraded;
  ++degraded_entered_;
  last_failure_ = detail;
  return true;
}

bool DiskHealthMonitor::ReportSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (health_ != DiskHealth::kDegraded) return false;
  return RecoverLocked();
}

DiskHealth DiskHealthMonitor::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

bool DiskHealthMonitor::ProbeDue() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (health_ != DiskHealth::kDegraded || probe_dir_.empty()) return false;
  return std::chrono::steady_clock::now() - last_probe_ >= probe_interval_;
}

bool DiskHealthMonitor::Probe() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (health_ != DiskHealth::kDegraded || probe_dir_.empty()) return false;
    last_probe_ = std::chrono::steady_clock::now();
    ++probes_attempted_;
  }
  // The probe exercises the same failure surface as a snapshot write:
  // directory creation, open, write, fsync — all through io_env so tests
  // can hold the disk down or let it recover by arming "disk_probe.*".
  IoEnv& env = IoEnv::Get();
  const std::string path =
      probe_dir_ + "/.ocdd-disk-probe." + std::to_string(::getpid());
  Status probe = IoEnsureDir(env, "disk_probe", probe_dir_);
  if (probe.ok()) {
    static const char kPayload[] = "ocdd disk probe\n";
    probe = IoWriteFileSynced(env, "disk_probe", path, kPayload,
                              sizeof(kPayload) - 1);
    // Best effort: a probe file left behind is reported by fsck, not fatal.
    env.Unlink("disk_probe.unlink", path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!probe.ok()) return false;
  consecutive_failures_ = 0;
  return RecoverLocked();
}

bool DiskHealthMonitor::RecoverLocked() {
  health_ = DiskHealth::kHealthy;
  last_failure_.clear();
  ++recovered_;
  return true;
}

std::uint64_t DiskHealthMonitor::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

std::uint64_t DiskHealthMonitor::degraded_entered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_entered_;
}

std::uint64_t DiskHealthMonitor::recovered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_;
}

std::uint64_t DiskHealthMonitor::probes_attempted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probes_attempted_;
}

std::string DiskHealthMonitor::last_failure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_failure_;
}

}  // namespace ocdd
