#ifndef OCDD_COMMON_STRING_UTIL_H_
#define OCDD_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ocdd {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view s);

/// Strict parse of a whole string as a signed 64-bit integer
/// (optional sign, decimal digits, no surrounding whitespace).
std::optional<std::int64_t> ParseInt64(std::string_view s);

/// Strict parse of a whole string as a double. Rejects empty strings,
/// trailing garbage, hex floats, and "inf"/"nan" spellings.
std::optional<double> ParseDouble(std::string_view s);

}  // namespace ocdd

#endif  // OCDD_COMMON_STRING_UTIL_H_
