#ifndef OCDD_COMMON_SNAPSHOT_H_
#define OCDD_COMMON_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace ocdd {

class FaultInjector;

/// Crash-safe snapshot persistence for long discovery runs (see
/// docs/checkpointing.md).
///
/// A *snapshot* is a small set of named binary sections (frontier, emitted
/// claims, counters) encoded into one file with a versioned header, a CRC32
/// per section, and a whole-file CRC trailer. A `SnapshotStore` manages a
/// directory of numbered *generations* of such files for one run: every
/// write goes to a temp file, is fsynced, and only then renamed into place,
/// so a crash at any instant leaves either the previous generation intact or
/// both the previous generation and a complete new one. Readers walk
/// generations newest-first and transparently fall back past torn or
/// corrupted files to the newest generation that validates.

// ---------------------------------------------------------------------------
// Byte-stream codec (little-endian, fixed width)
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `len` bytes.
std::uint32_t Crc32(const void* data, std::size_t len);

/// Appends fixed-width little-endian primitives to a byte string. The
/// algorithm state serializers (ocd_discover.cc, fastod.cc, tane.cc) are
/// built on this: snapshots must be bit-stable across platforms so a run can
/// resume on a different machine.
class ByteWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }
  /// u32 length prefix + raw bytes.
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  /// u32 count prefix + one u32 per element.
  void U32Vec(const std::vector<std::uint32_t>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (std::uint32_t x : v) U32(x);
  }
  /// Like U32Vec but narrowing from size_t ids (column ids, attr indices).
  void IdVec(const std::vector<std::size_t>& v) {
    U32(static_cast<std::uint32_t>(v.size()));
    for (std::size_t x : v) U32(static_cast<std::uint32_t>(x));
  }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a byte string. Any read past the end latches
/// `ok() == false` and returns zero values; callers validate once at the end
/// instead of checking every read.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  std::uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t U32() {
    if (!Need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t U64() {
    if (!Need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  /// `n` raw bytes. The bound check runs against the *remaining* input
  /// before anything is allocated, so an adversarial length prefix (e.g.
  /// 0xFFFFFFFF in a corrupt snapshot) is rejected without ever requesting
  /// a multi-GB buffer.
  std::string Bytes(std::size_t n) {
    if (!Need(n)) return {};
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  std::string Str() {
    std::uint32_t len = U32();
    return Bytes(len);
  }
  std::vector<std::uint32_t> U32Vec() {
    std::uint32_t count = U32();
    std::vector<std::uint32_t> v;
    // Reject before reserve(): count is untrusted until the remaining
    // bytes prove it plausible.
    if (!Need(static_cast<std::size_t>(count) * 4)) return v;
    v.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) v.push_back(U32());
    return v;
  }
  std::vector<std::size_t> IdVec() {
    std::vector<std::size_t> out;
    for (std::uint32_t x : U32Vec()) out.push_back(x);
    return out;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  /// Bytes left to read (0 once a read has failed).
  std::size_t remaining() const { return ok_ ? bytes_.size() - pos_ : 0; }
  /// Current read position in the underlying byte string.
  std::size_t pos() const { return pos_; }

 private:
  bool Need(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Snapshot container (sections + CRCs)
// ---------------------------------------------------------------------------

/// Assembles named sections into one encoded snapshot image.
class SnapshotBuilder {
 public:
  void AddSection(std::string name, std::string payload) {
    sections_.emplace_back(std::move(name), std::move(payload));
  }

  /// Full file image: header, sections with per-section CRC32, whole-file
  /// CRC trailer.
  std::string Encode() const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// A decoded, CRC-validated snapshot image.
class SnapshotView {
 public:
  /// Validates the magic, every section CRC, and the file CRC trailer.
  /// Truncated (torn) files and bit flips both fail here with ParseError.
  static Result<SnapshotView> Decode(const std::string& bytes);

  /// Section payload, or nullptr when absent.
  const std::string* Find(const std::string& name) const;

  std::vector<std::string> SectionNames() const;

 private:
  std::map<std::string, std::string> sections_;
};

// ---------------------------------------------------------------------------
// Generation store
// ---------------------------------------------------------------------------

/// A successfully loaded snapshot plus its provenance.
struct LoadedSnapshot {
  std::uint64_t generation = 0;
  /// Newer generations that failed validation and were skipped on the way
  /// to this one (torn writes, bit flips, truncation).
  std::size_t corrupt_skipped = 0;
  SnapshotView view;
};

/// Manages `<dir>/<name>.<generation>.snap` files with the atomic write
/// protocol: encode → temp file → fsync → rename → fsync(dir) → verify →
/// prune. One store per (checkpoint dir, algorithm) pair; generation numbers
/// increase monotonically across process restarts (the next generation is
/// derived from the files on disk).
///
/// Fault-injection points (armed through the injector attached with
/// `set_fault_injector`, any action arms them — the *point name* selects the
/// simulated fault):
///   * `snapshot.bit_flip`          — flips one payload bit after the CRCs
///                                    are computed (written file is corrupt);
///   * `snapshot.torn_write`        — persists only a prefix of the image,
///                                    simulating a power cut mid-write;
///   * `snapshot.crash_before_rename` — abandons the write after the temp
///                                    file is durable but before the rename.
/// All three leave the previous generation untouched; `Load()` must recover
/// it (tests/checkpoint_test.cc holds the matrix).
class SnapshotStore {
 public:
  SnapshotStore(std::string dir, std::string name)
      : dir_(std::move(dir)), name_(std::move(name)) {}

  /// Not owned; nullptr disables the snapshot fault points.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Writes `encoded` (a SnapshotBuilder::Encode image) as the next
  /// generation. On success the new file has been read back and validated,
  /// and generations older than the newest `keep` are pruned. On failure the
  /// directory still holds the previous generations.
  Result<std::uint64_t> Write(const std::string& encoded,
                              std::size_t keep = 2);

  /// Loads the newest generation that validates; `corrupt_skipped` counts
  /// newer generations that did not. NotFound when the directory holds no
  /// valid snapshot at all (including when it does not exist).
  Result<LoadedSnapshot> Load() const;

  /// Generation numbers present on disk (unvalidated), ascending.
  std::vector<std::uint64_t> Generations() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(std::uint64_t generation) const;

  std::string dir_;
  std::string name_;
  FaultInjector* injector_ = nullptr;
};

// ---------------------------------------------------------------------------
// Checkpoint plumbing shared by the discovery algorithms
// ---------------------------------------------------------------------------

/// Per-run checkpoint settings, carried inside each algorithm's options
/// struct. The cadence (every K checks / T seconds) lives on the RunContext
/// (`set_checkpoint_cadence`), which the algorithms consult at level
/// boundaries.
struct CheckpointConfig {
  /// Directory for snapshot generations; empty disables checkpointing.
  std::string dir;
  /// Attempt to restore the newest valid generation before starting.
  bool resume = false;
  /// Snapshot generations kept on disk (the current one plus fallbacks).
  std::size_t keep_generations = 2;

  bool enabled() const { return !dir.empty(); }
};

/// What checkpointing did during one run; embedded in result structs.
struct CheckpointStats {
  bool enabled = false;
  /// A snapshot generation was restored and the run continued from it.
  bool resumed = false;
  std::uint64_t resumed_generation = 0;
  std::uint64_t snapshots_written = 0;
  /// Corrupt generations skipped during resume (recovered via fallback).
  std::uint64_t corrupt_skipped = 0;
  /// Non-fatal checkpoint trouble (failed write, fingerprint mismatch, no
  /// snapshot to resume). The run itself proceeds; supervised restarts and
  /// the CLI surface this.
  std::string warning;
};

}  // namespace ocdd

#endif  // OCDD_COMMON_SNAPSHOT_H_
