#include "common/ingest_error.h"

#include <cctype>
#include <cstdio>

namespace ocdd {

const char* IngestErrorCodeName(IngestErrorCode code) {
  switch (code) {
    case IngestErrorCode::kNone:
      return "none";
    case IngestErrorCode::kEmbeddedNul:
      return "embedded_nul";
    case IngestErrorCode::kUnterminatedQuote:
      return "unterminated_quote";
    case IngestErrorCode::kRaggedRow:
      return "ragged_row";
    case IngestErrorCode::kFieldTooLarge:
      return "field_too_large";
    case IngestErrorCode::kRecordTooLarge:
      return "record_too_large";
    case IngestErrorCode::kTooManyColumns:
      return "too_many_columns";
    case IngestErrorCode::kTooManyRows:
      return "too_many_rows";
    case IngestErrorCode::kEmptyInput:
      return "empty_input";
    case IngestErrorCode::kBadMagic:
      return "bad_magic";
    case IngestErrorCode::kBadLengthPrefix:
      return "bad_length_prefix";
    case IngestErrorCode::kTruncated:
      return "truncated";
    case IngestErrorCode::kCrcMismatch:
      return "crc_mismatch";
    case IngestErrorCode::kTrailingBytes:
      return "trailing_bytes";
    case IngestErrorCode::kMalformedSyntax:
      return "malformed_syntax";
    case IngestErrorCode::kNestingTooDeep:
      return "nesting_too_deep";
    case IngestErrorCode::kValueOutOfRange:
      return "value_out_of_range";
    case IngestErrorCode::kInputTooLarge:
      return "input_too_large";
  }
  return "unknown";
}

std::string SanitizeExcerpt(const std::string& raw, std::size_t max_bytes) {
  std::string out;
  out.reserve(raw.size() < max_bytes ? raw.size() : max_bytes);
  std::size_t used = 0;
  for (char c : raw) {
    if (used >= max_bytes) {
      out += "...";
      break;
    }
    unsigned char u = static_cast<unsigned char>(c);
    if (u >= 0x20 && u < 0x7F && c != '\\') {
      out.push_back(c);
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\t') {
      out += "\\t";
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x", static_cast<unsigned>(u));
      out += buf;
    }
    ++used;
  }
  return out;
}

std::string IngestError::ToString() const {
  std::string out = "ingest error [";
  out += IngestErrorCodeName(code);
  out += "] at byte ";
  out += std::to_string(byte_offset);
  if (row != 0) {
    out += " (row ";
    out += std::to_string(row);
    if (column != 0) {
      out += ", col ";
      out += std::to_string(column);
    }
    out += ")";
  }
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  if (!excerpt.empty()) {
    out += "; excerpt \"";
    out += excerpt;
    out += '"';
  }
  return out;
}

Status IngestError::ToStatus() const { return Status::ParseError(ToString()); }

std::string IngestCounts::ToString() const {
  std::string out;
  for (const auto& [name, n] : counts_) {
    if (!out.empty()) out += ',';
    out += name;
    out += '=';
    out += std::to_string(n);
  }
  return out;
}

}  // namespace ocdd
