#include "common/prof.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace ocdd::prof {

namespace {

constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kNumPhases);

std::uint64_t Now() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// One thread's counters. Relaxed atomics: the owning thread adds, the
/// snapshot thread reads; no ordering between counters is needed.
struct Slab {
  std::atomic<std::uint64_t> cycles[kNumPhases];
  std::atomic<std::uint64_t> bytes[kNumPhases];
  std::atomic<std::uint64_t> calls[kNumPhases];
  std::atomic<std::uint64_t> alloc_bytes{0};
  std::atomic<std::uint64_t> alloc_calls{0};

  Slab() {
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      cycles[p].store(0, std::memory_order_relaxed);
      bytes[p].store(0, std::memory_order_relaxed);
      calls[p].store(0, std::memory_order_relaxed);
    }
  }

  void Zero() {
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      cycles[p].store(0, std::memory_order_relaxed);
      bytes[p].store(0, std::memory_order_relaxed);
      calls[p].store(0, std::memory_order_relaxed);
    }
    alloc_bytes.store(0, std::memory_order_relaxed);
    alloc_calls.store(0, std::memory_order_relaxed);
  }

  void FoldInto(Slab* into) const {
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      into->cycles[p].fetch_add(cycles[p].load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
      into->bytes[p].fetch_add(bytes[p].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
      into->calls[p].fetch_add(calls[p].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    }
    into->alloc_bytes.fetch_add(alloc_bytes.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
    into->alloc_calls.fetch_add(alloc_calls.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<Slab*> live;
  Slab retired;  // folded-in slabs of exited threads
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

/// Registers on first use, folds into `retired` and returns the slab to a
/// freelist on thread exit so long-running servers don't leak one slab per
/// short-lived worker thread.
struct TlsSlab {
  Slab* slab;

  TlsSlab() {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    slab = new Slab();
    reg.live.push_back(slab);
  }

  ~TlsSlab() {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    slab->FoldInto(&reg.retired);
    for (std::size_t i = 0; i < reg.live.size(); ++i) {
      if (reg.live[i] == slab) {
        reg.live.erase(reg.live.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    delete slab;
  }
};

Slab& TlsCounters() {
  thread_local TlsSlab tls;
  return *tls.slab;
}

/// -1 unresolved, 0 disabled, 1 enabled. Resolved from OCDD_PROFILE on the
/// first probe unless SetEnabled ran first.
std::atomic<int> g_enabled{-1};

/// One-time TSC frequency calibration against the steady clock.
double CyclesPerSecond() {
  static const double hz = [] {
    auto wall0 = std::chrono::steady_clock::now();
    std::uint64_t t0 = Now();
    // ~2ms busy calibration window: short enough to be invisible at
    // report time, long enough for a stable estimate.
    for (;;) {
      auto wall1 = std::chrono::steady_clock::now();
      if (wall1 - wall0 >= std::chrono::milliseconds(2)) {
        std::uint64_t t1 = Now();
        double secs = std::chrono::duration<double>(wall1 - wall0).count();
        return secs > 0 ? static_cast<double>(t1 - t0) / secs : 1e9;
      }
    }
  }();
  return hz;
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kEncode: return "encode";
    case Phase::kPlan: return "partition.plan";
    case Phase::kRefine: return "partition.refine";
    case Phase::kPublish: return "partition.publish";
    case Phase::kCheckFill: return "check.fill";
    case Phase::kCheckScan: return "check.scan";
    case Phase::kSortIndex: return "check.sort_index";
    case Phase::kSortCheck: return "check.sort_walk";
    case Phase::kGenerate: return "generate";
    case Phase::kCheckpoint: return "checkpoint";
    case Phase::kNumPhases: break;
  }
  return "unknown";
}

bool Enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  const char* env = std::getenv("OCDD_PROFILE");
  bool on = env != nullptr && *env != '\0' && *env != '0';
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void Reset() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (Slab* s : reg.live) s->Zero();
  reg.retired.Zero();
}

void AddBytes(Phase phase, std::uint64_t bytes) {
  if (!Enabled()) return;
  TlsCounters().bytes[static_cast<std::size_t>(phase)].fetch_add(
      bytes, std::memory_order_relaxed);
}

void AddAlloc(std::uint64_t bytes) {
  if (!Enabled()) return;
  Slab& s = TlsCounters();
  s.alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
  s.alloc_calls.fetch_add(1, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Phase phase)
    : phase_(phase), armed_(Enabled()), start_(armed_ ? Now() : 0) {}

ScopedTimer::~ScopedTimer() {
  if (!armed_) return;
  std::uint64_t elapsed = Now() - start_;
  Slab& s = TlsCounters();
  std::size_t p = static_cast<std::size_t>(phase_);
  s.cycles[p].fetch_add(elapsed, std::memory_order_relaxed);
  s.calls[p].fetch_add(1, std::memory_order_relaxed);
}

Report Snapshot() {
  Report out;
  out.enabled = Enabled();
  out.cycles_per_second = CyclesPerSecond();
  Slab sum;
  {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (const Slab* s : reg.live) s->FoldInto(&sum);
    reg.retired.FoldInto(&sum);
  }
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    std::uint64_t calls = sum.calls[p].load(std::memory_order_relaxed);
    std::uint64_t bytes = sum.bytes[p].load(std::memory_order_relaxed);
    if (calls == 0 && bytes == 0) continue;
    PhaseStats stats;
    stats.name = PhaseName(static_cast<Phase>(p));
    stats.cycles = sum.cycles[p].load(std::memory_order_relaxed);
    stats.seconds = out.cycles_per_second > 0
                        ? static_cast<double>(stats.cycles) /
                              out.cycles_per_second
                        : 0.0;
    stats.bytes = bytes;
    stats.calls = calls;
    out.phases.push_back(stats);
  }
  out.alloc_bytes = sum.alloc_bytes.load(std::memory_order_relaxed);
  out.alloc_calls = sum.alloc_calls.load(std::memory_order_relaxed);
  return out;
}

std::string ToJson(const Report& report) {
  char buf[160];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf), "\"cycles_per_second\":%.0f,",
                report.cycles_per_second);
  out += buf;
  out += "\"phases\":[";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    const PhaseStats& p = report.phases[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"cycles\":%llu,\"seconds\":%.6f,"
        "\"bytes\":%llu,\"calls\":%llu}",
        i == 0 ? "" : ",", p.name, static_cast<unsigned long long>(p.cycles),
        p.seconds, static_cast<unsigned long long>(p.bytes),
        static_cast<unsigned long long>(p.calls));
    out += buf;
  }
  out += "],";
  std::snprintf(buf, sizeof(buf), "\"alloc\":{\"bytes\":%llu,\"calls\":%llu}",
                static_cast<unsigned long long>(report.alloc_bytes),
                static_cast<unsigned long long>(report.alloc_calls));
  out += buf;
  out += "}";
  return out;
}

}  // namespace ocdd::prof
