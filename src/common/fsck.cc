#include "common/fsck.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/io_env.h"
#include "common/snapshot.h"
#include "common/status.h"

namespace ocdd {

namespace {

constexpr char kQuarantineDirName[] = "fsck-quarantine";

/// Parses `<store>.<digits>.snap`; false for anything else.
bool ParseSnapName(const std::string& fname, std::string* store,
                   std::uint64_t* generation) {
  constexpr char kSuffix[] = ".snap";
  constexpr std::size_t kSuffixLen = 5;
  if (fname.size() <= kSuffixLen ||
      fname.compare(fname.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return false;
  }
  const std::string stem = fname.substr(0, fname.size() - kSuffixLen);
  const std::size_t dot = stem.find_last_of('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == stem.size()) {
    return false;
  }
  const std::string digits = stem.substr(dot + 1);
  if (digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *store = stem.substr(0, dot);
  *generation = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

bool ParseTmpName(const std::string& fname, std::string* store) {
  constexpr char kSuffix[] = ".tmp";
  constexpr std::size_t kSuffixLen = 4;
  if (fname.size() <= kSuffixLen ||
      fname.compare(fname.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return false;
  }
  *store = fname.substr(0, fname.size() - kSuffixLen);
  return true;
}

void ScanDir(const std::string& dir, const FsckOptions& options,
             FsckReport* report) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    report->warnings.push_back("cannot open directory: " + dir);
    return;
  }
  ++report->dirs_scanned;
  std::vector<std::string> subdirs;
  IoEnv& env = IoEnv::Get();
  // Stores seen in *this* directory; generation rollups stay per-dir
  // because two request-key subdirectories may reuse one store name.
  std::map<std::string, FsckStore> stores;

  while (dirent* entry = ::readdir(d)) {
    const std::string fname = entry->d_name;
    if (fname == "." || fname == ".." || fname == kQuarantineDirName) {
      continue;
    }
    const std::string path = dir + "/" + fname;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
      report->warnings.push_back("cannot stat: " + path);
      continue;
    }
    if (S_ISDIR(st.st_mode)) {
      if (options.recursive) subdirs.push_back(path);
      continue;
    }
    if (!S_ISREG(st.st_mode)) continue;

    FsckFile file;
    file.path = path;
    file.size_bytes = static_cast<std::size_t>(st.st_size);

    std::uint64_t generation = 0;
    std::string store;
    if (ParseSnapName(fname, &store, &generation)) {
      file.store = store;
      file.generation = generation;
      Result<std::string> bytes = IoReadFileAll(env, "fsck", path);
      Status decode_status =
          bytes.ok() ? SnapshotView::Decode(*bytes).status() : bytes.status();
      FsckStore& rollup = stores[store];
      rollup.dir = dir;
      rollup.name = store;
      if (decode_status.ok()) {
        file.status = FsckFileStatus::kValid;
        ++report->valid_files;
        ++rollup.valid;
        rollup.newest_valid_generation =
            std::max(rollup.newest_valid_generation, generation);
      } else {
        file.status = FsckFileStatus::kCorrupt;
        file.detail = decode_status.message();
        ++report->corrupt_files;
        ++rollup.corrupt;
        if (options.repair) {
          const std::string qdir = dir + "/" + kQuarantineDirName;
          Status made = IoEnsureDir(env, "fsck.quarantine", qdir);
          if (made.ok() &&
              env.Rename("fsck.quarantine.rename", path,
                         qdir + "/" + fname) == 0) {
            file.repair = "quarantined";
            ++report->repaired_files;
          } else {
            Status why = made.ok()
                             ? IoErrorStatus("rename", qdir + "/" + fname)
                             : made;
            file.repair = "quarantine failed: " + why.message();
            report->warnings.push_back(file.repair + " (" + path + ")");
          }
        }
      }
    } else if (ParseTmpName(fname, &store)) {
      file.store = store;
      file.status = FsckFileStatus::kOrphanTmp;
      ++report->orphan_tmp_files;
      if (options.repair) {
        if (env.Unlink("fsck.reap", path) == 0) {
          file.repair = "reaped";
          ++report->repaired_files;
        } else {
          file.repair = "reap failed: " + IoErrorStatus("unlink", path).message();
          report->warnings.push_back(file.repair);
        }
      }
    } else {
      continue;  // not a snapshot-store artifact; none of fsck's business
    }
    report->files.push_back(std::move(file));
  }
  ::closedir(d);

  for (auto& [name, rollup] : stores) {
    report->stores.push_back(std::move(rollup));
  }
  std::sort(subdirs.begin(), subdirs.end());
  for (const std::string& sub : subdirs) ScanDir(sub, options, report);
}

std::string JsonEscapeLocal(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

const char* FsckFileStatusName(FsckFileStatus status) {
  switch (status) {
    case FsckFileStatus::kValid:
      return "valid";
    case FsckFileStatus::kCorrupt:
      return "corrupt";
    case FsckFileStatus::kOrphanTmp:
      return "orphan_tmp";
  }
  return "unknown";
}

Result<FsckReport> FsckDirectory(const std::string& root,
                                 const FsckOptions& options) {
  // The root must at least open — a typo'd path should be an error, not a
  // clean report over nothing.
  DIR* probe = ::opendir(root.c_str());
  if (probe == nullptr) {
    return Status::NotFound("fsck: cannot open directory: " + root);
  }
  ::closedir(probe);

  FsckReport report;
  report.root = root;
  ScanDir(root, options, &report);

  // Deterministic output: files sorted by path, stores by (dir, name).
  std::sort(report.files.begin(), report.files.end(),
            [](const FsckFile& a, const FsckFile& b) { return a.path < b.path; });
  std::sort(report.stores.begin(), report.stores.end(),
            [](const FsckStore& a, const FsckStore& b) {
              return a.dir != b.dir ? a.dir < b.dir : a.name < b.name;
            });
  return report;
}

std::string FsckReportText(const FsckReport& report) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "# fsck %s: %zu dirs, %zu valid, %zu corrupt, %zu orphan "
                "tmp, %zu repaired\n",
                report.root.c_str(), report.dirs_scanned, report.valid_files,
                report.corrupt_files, report.orphan_tmp_files,
                report.repaired_files);
  out += line;
  for (const FsckStore& store : report.stores) {
    std::snprintf(line, sizeof(line),
                  "store %s/%s: %zu valid, %zu corrupt, newest valid "
                  "generation %llu\n",
                  store.dir.c_str(), store.name.c_str(), store.valid,
                  store.corrupt,
                  static_cast<unsigned long long>(
                      store.newest_valid_generation));
    out += line;
  }
  for (const FsckFile& file : report.files) {
    if (file.status == FsckFileStatus::kValid) continue;
    std::snprintf(line, sizeof(line), "%s %s%s%s%s%s\n",
                  FsckFileStatusName(file.status), file.path.c_str(),
                  file.detail.empty() ? "" : ": ", file.detail.c_str(),
                  file.repair.empty() ? "" : " -> ", file.repair.c_str());
    out += line;
  }
  for (const std::string& warning : report.warnings) {
    out += "# warning: " + warning + "\n";
  }
  return out;
}

std::string FsckReportJson(const FsckReport& report) {
  std::string out = "{\"command\":\"fsck\"";
  out += ",\"root\":\"" + JsonEscapeLocal(report.root) + "\"";
  out += ",\"dirs_scanned\":" + std::to_string(report.dirs_scanned);
  out += ",\"valid_files\":" + std::to_string(report.valid_files);
  out += ",\"corrupt_files\":" + std::to_string(report.corrupt_files);
  out += ",\"orphan_tmp_files\":" + std::to_string(report.orphan_tmp_files);
  out += ",\"repaired_files\":" + std::to_string(report.repaired_files);
  out += ",\"clean\":" + std::string(report.clean() ? "true" : "false");
  out += ",\"stores\":[";
  for (std::size_t i = 0; i < report.stores.size(); ++i) {
    const FsckStore& store = report.stores[i];
    if (i > 0) out += ",";
    out += "{\"dir\":\"" + JsonEscapeLocal(store.dir) + "\"";
    out += ",\"name\":\"" + JsonEscapeLocal(store.name) + "\"";
    out += ",\"valid\":" + std::to_string(store.valid);
    out += ",\"corrupt\":" + std::to_string(store.corrupt);
    out += ",\"newest_valid_generation\":" +
           std::to_string(store.newest_valid_generation) + "}";
  }
  out += "],\"files\":[";
  bool first = true;
  for (const FsckFile& file : report.files) {
    if (file.status == FsckFileStatus::kValid) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"path\":\"" + JsonEscapeLocal(file.path) + "\"";
    out += ",\"status\":\"" + std::string(FsckFileStatusName(file.status)) +
           "\"";
    if (file.generation != 0) {
      out += ",\"generation\":" + std::to_string(file.generation);
    }
    if (!file.detail.empty()) {
      out += ",\"detail\":\"" + JsonEscapeLocal(file.detail) + "\"";
    }
    if (!file.repair.empty()) {
      out += ",\"repair\":\"" + JsonEscapeLocal(file.repair) + "\"";
    }
    out += "}";
  }
  out += "],\"warnings\":[";
  for (std::size_t i = 0; i < report.warnings.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscapeLocal(report.warnings[i]) + "\"";
  }
  out += "]}";
  return out;
}

}  // namespace ocdd
