#include "common/fault_injection.h"

#include <algorithm>

namespace ocdd {

void FaultInjector::Arm(const std::string& point, FaultAction action,
                        std::uint64_t after_hits) {
  std::lock_guard<std::mutex> lock(mu_);
  Arming arming;
  arming.action = action;
  std::uint64_t seen = 0;
  auto it = hits_.find(point);
  if (it != hits_.end()) seen = it->second;
  arming.fire_at = seen + (after_hits == 0 ? 1 : after_hits);
  armed_[point] = arming;
}

FaultAction FaultInjector::Poll(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t count = ++hits_[point];
  auto it = armed_.find(point);
  if (it == armed_.end()) return FaultAction::kNone;
  if (count < it->second.fire_at) return FaultAction::kNone;
  FaultAction action = it->second.action;
  armed_.erase(it);  // one-shot
  return action;
}

std::uint64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

std::vector<std::string> FaultInjector::SeenPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(hits_.size());
  for (const auto& [name, count] : hits_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  hits_.clear();
}

}  // namespace ocdd
