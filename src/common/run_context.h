#ifndef OCDD_COMMON_RUN_CONTEXT_H_
#define OCDD_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ocdd {

class FaultInjector;
class RunContext;

/// A portable bundle of the three RunContext budgets — the unit in which
/// callers hand out quotas. One value serves both deployment shapes: applied
/// directly to a RunContext for an in-process run (`ApplyTo`), or rendered as
/// the equivalent `ocdd` CLI flags for a worker child process (`ToCliFlags`),
/// so a tenant quota in the serve daemon and a `--max-checks` flag on the
/// command line are the same object (docs/serving.md).
struct RunBudgets {
  /// Wall-clock limit in seconds; 0 = unlimited.
  double time_limit_seconds = 0.0;
  /// Candidate-check budget; 0 = unlimited.
  std::uint64_t max_checks = 0;
  /// Byte-accounted memory budget; 0 = unlimited.
  std::size_t memory_bytes = 0;

  bool unlimited() const {
    return time_limit_seconds <= 0.0 && max_checks == 0 && memory_bytes == 0;
  }

  /// Arms every non-zero budget on `context` (zero dimensions untouched).
  void ApplyTo(RunContext& context) const;

  /// The equivalent CLI flags (`--time-limit S --max-checks N
  /// --memory-limit MIB`), omitting unlimited dimensions. Memory rounds up
  /// to whole MiB — the flag's unit.
  std::vector<std::string> ToCliFlags() const;
};

/// Why a discovery run stopped before exhausting its search space.
///
/// Every algorithm result struct carries a `StopReason` next to its
/// `completed` flag; `kNone` means the run was not stopped (it either
/// completed, or a structural cap like `max_lhs_size` truncated it without
/// going through the RunContext).
enum class StopReason {
  kNone = 0,
  kDeadline,       ///< the wall-clock deadline passed
  kCheckBudget,    ///< the candidate-check budget was spent
  kMemoryBudget,   ///< the byte-accounted memory budget was exceeded
  kCancelled,      ///< Cancel() was called (signal handler, other thread)
  kFaultInjected,  ///< a fault-injection point fired (or a check threw)
  kLevelCap,       ///< a max-level / max-candidates structural cap tripped
};

/// Stable lower_snake_case name for `reason` (e.g. "check_budget"), used by
/// the JSON report schema and the CLI.
const char* StopReasonName(StopReason reason);

/// Where a stopped run was when it stopped — enough for the supervisor to
/// decide restart-vs-give-up and for triage ("died at level 7 with 40k
/// candidates in flight"). Embedded in every algorithm result struct and
/// emitted under "stop_state" in the JSON reports.
struct StopState {
  /// Candidate checks consumed when the run unwound.
  std::uint64_t checks = 0;
  /// Lattice/tree level the run was working on (0 = before level loop).
  std::size_t level = 0;
  /// Candidates/nodes in the frontier of that level.
  std::size_t frontier_size = 0;
  /// Rows the ingest layer rejected (skipped or quarantined) before the run
  /// started. Algorithms never touch this; the CLI stamps it after loading a
  /// CSV source so stopped-run triage can see "the data was already short".
  std::uint64_t ingest_rejected = 0;
};

/// Shared run-control handle for every discovery algorithm — the single
/// implementation of the budget/cancellation semantics that used to be
/// hand-rolled per algorithm.
///
/// A RunContext carries:
///  * a monotonic **deadline** (`set_time_limit_seconds` / `set_deadline`),
///  * a **candidate-check budget** in units of individual validity checks
///    (OCD single checks, OD checks, FD error comparisons, UCC uniqueness
///    probes — whatever the algorithm counts in its `num_checks`),
///  * a byte-accounted **memory budget** (`ChargeMemory`/`ReleaseMemory`,
///    charged by algorithms for their dominant allocations: candidate
///    frontiers and per-level partition sets),
///  * an atomic **cancellation flag** — `Cancel()` is async-signal-safe and
///    callable from any thread or signal handler,
///  * an optional **fault injector** (see fault_injection.h).
///
/// The first stop condition observed wins: `stop_reason()` is latched once
/// and never overwritten, so a run that hits its deadline while a SIGINT
/// races in reports exactly one reason.
///
/// Thread-safety: all methods are safe to call concurrently *during* a run.
/// Configuration (`set_*`) must happen before the run starts; `Reset()` must
/// not race with a run.
class RunContext {
 public:
  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // ---- configuration (before the run) ----

  /// Arms the deadline `seconds` from now; <= 0 disarms it.
  void set_time_limit_seconds(double seconds);

  /// Arms an absolute monotonic deadline.
  void set_deadline(std::chrono::steady_clock::time_point deadline);

  /// Total candidate checks allowed; 0 = unlimited.
  void set_check_budget(std::uint64_t checks);
  std::uint64_t check_budget() const {
    return check_budget_.load(std::memory_order_relaxed);
  }

  /// Byte budget for `ChargeMemory`; 0 = unlimited.
  void set_memory_budget(std::size_t bytes);
  std::size_t memory_budget() const {
    return memory_budget_.load(std::memory_order_relaxed);
  }

  /// Attaches a fault injector (not owned); nullptr detaches.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Arms the checkpoint cadence: `CheckpointDue()` turns true after
  /// `every_checks` further checks or `every_seconds` elapsed wall-clock
  /// time, whichever comes first (0 disables that dimension; both 0 means
  /// every call to `CheckpointDue()` reports true, i.e. checkpoint at every
  /// opportunity). Algorithms consult this at safe boundaries (end of a
  /// lattice level) and call `MarkCheckpointed()` after a successful write.
  void set_checkpoint_cadence(std::uint64_t every_checks,
                              double every_seconds);

  // ---- cooperative cancellation ----

  /// Requests a cooperative stop with reason `kCancelled`. Only touches an
  /// atomic flag, hence safe from signal handlers.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Latches `reason` as the stop reason unless one is already set: the
  /// first reason wins, later calls never overwrite it (concurrent deadline
  /// + SIGINT surface exactly one reason). Returns true when this call did
  /// the latching, false when another reason was already in place (or
  /// `reason` is `kNone`, which is a no-op).
  bool RequestStop(StopReason reason);

  // ---- hot-path API (called inside algorithm loops) ----

  /// Evaluates every stop condition, latching the first one observed.
  /// Returns true when the run should unwind.
  bool ShouldStop();

  /// Accounts `n` candidate checks, then evaluates `ShouldStop()`.
  bool CountCheck(std::uint64_t n = 1);

  /// Accounts an allocation of `bytes`. Returns false — and latches
  /// `kMemoryBudget` — when the charge would exceed the budget (the charge
  /// is then *not* recorded, mirroring a failed allocation).
  bool ChargeMemory(std::size_t bytes);

  /// Returns previously charged bytes to the budget.
  void ReleaseMemory(std::size_t bytes);

  /// Fault-injection hook: a no-op without an injector; otherwise may latch
  /// a stop, simulate allocation failure, or throw FaultInjectedError.
  void AtInjectionPoint(const char* point);

  // ---- checkpoint cadence (consulted at level boundaries) ----

  /// True when a snapshot should be taken at the next safe boundary. Always
  /// true when checkpointing runs without a configured cadence.
  bool CheckpointDue() const;

  /// Restarts the cadence clock after a successful snapshot write.
  void MarkCheckpointed();

  // ---- observers ----

  bool stop_requested() const {
    return stop_reason_.load(std::memory_order_relaxed) !=
               static_cast<int>(StopReason::kNone) ||
           cancelled_.load(std::memory_order_relaxed);
  }
  StopReason stop_reason() const {
    return static_cast<StopReason>(
        stop_reason_.load(std::memory_order_relaxed));
  }
  std::uint64_t checks() const {
    return checks_.load(std::memory_order_relaxed);
  }
  std::size_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }
  std::size_t peak_memory() const {
    return memory_peak_.load(std::memory_order_relaxed);
  }

  /// Clears latched stop state and counters (budgets and the injector stay)
  /// so the context can drive another run. Must not race with a run.
  void Reset();

 private:
  std::atomic<int> stop_reason_{static_cast<int>(StopReason::kNone)};
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> checks_{0};
  std::atomic<std::uint64_t> check_budget_{0};
  std::atomic<std::size_t> memory_used_{0};
  std::atomic<std::size_t> memory_peak_{0};
  std::atomic<std::size_t> memory_budget_{0};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
  std::atomic<std::uint64_t> checkpoint_every_checks_{0};
  std::atomic<std::int64_t> checkpoint_every_ns_{0};
  std::atomic<std::uint64_t> checkpoint_checks_mark_{0};
  std::atomic<std::int64_t> checkpoint_time_mark_ns_{0};
  FaultInjector* injector_ = nullptr;
};

}  // namespace ocdd

#endif  // OCDD_COMMON_RUN_CONTEXT_H_
