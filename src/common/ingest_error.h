#ifndef OCDD_COMMON_INGEST_ERROR_H_
#define OCDD_COMMON_INGEST_ERROR_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace ocdd {

/// Why a slice of untrusted input bytes was rejected at one of the ingest
/// boundaries (CSV reader, snapshot codec, JSON report reader, claim
/// parser). Every rejection that crosses a public API carries one of these
/// codes so that callers — the quarantining CSV ingest in particular — can
/// count, report, and triage malformed input per failure mode instead of
/// pattern-matching free-text messages.
enum class IngestErrorCode {
  kNone = 0,
  // CSV / text records
  kEmbeddedNul,        ///< NUL byte in text input (binary fed to a text reader)
  kUnterminatedQuote,  ///< quoted field never closed before end of input
  kRaggedRow,          ///< record width differs from the header width
  kFieldTooLarge,      ///< one field exceeds CsvLimits::max_field_bytes
  kRecordTooLarge,     ///< one record exceeds CsvLimits::max_record_bytes
  kTooManyColumns,     ///< record exceeds CsvLimits::max_columns fields
  kTooManyRows,        ///< input exceeds CsvLimits::max_rows records
  kEmptyInput,         ///< no records at all (header missing)
  // Binary framing (snapshot codec and friends)
  kBadMagic,           ///< leading/trailing magic bytes are wrong
  kBadLengthPrefix,    ///< a length prefix exceeds the remaining bytes
  kTruncated,          ///< input ends inside a fixed-width read
  kCrcMismatch,        ///< checksum validation failed
  kTrailingBytes,      ///< well-formed prefix followed by garbage
  // Structured text (JSON reports, claim lines)
  kMalformedSyntax,    ///< tokenizer/grammar-level rejection
  kNestingTooDeep,     ///< recursion/nesting guard tripped
  kValueOutOfRange,    ///< a parsed value violates a declared bound
  kInputTooLarge,      ///< whole input exceeds the declared size limit
};

/// Stable lower_snake_case name for `code` (e.g. "ragged_row"); used in the
/// JSON report schema, quarantine summaries, and error messages.
const char* IngestErrorCodeName(IngestErrorCode code);

/// One structured ingest rejection: what went wrong, where (byte offset
/// into the input, 1-based row/column when the input is record-shaped), and
/// a short sanitized excerpt of the offending bytes.
struct IngestError {
  IngestErrorCode code = IngestErrorCode::kNone;
  /// Byte offset into the original input where the problem was detected.
  std::uint64_t byte_offset = 0;
  /// 1-based record number (counting the header); 0 when not record-shaped.
  std::uint64_t row = 0;
  /// 1-based field number within the record; 0 when unknown/not applicable.
  std::uint64_t column = 0;
  /// Human-readable specifics ("row has 5 fields, expected 3").
  std::string detail;
  /// Sanitized raw bytes around the failure (non-printables escaped,
  /// truncated to a few dozen chars) — enough to eyeball the problem
  /// without opening the quarantine file.
  std::string excerpt;

  /// "ingest error [ragged_row] at byte 17 (row 3, col 2): ...; excerpt ...".
  std::string ToString() const;

  /// The Status every ingest boundary returns for this rejection:
  /// ParseError carrying `ToString()`.
  Status ToStatus() const;
};

/// Escapes non-printable bytes (`\xNN`) and truncates to `max_bytes`,
/// appending an ellipsis — safe to embed in logs and JSON no matter what
/// the input contained.
std::string SanitizeExcerpt(const std::string& raw, std::size_t max_bytes = 48);

/// Per-code rejection counters, keyed by the stable code name so the
/// rendering order (and the JSON member order) is deterministic.
class IngestCounts {
 public:
  void Add(IngestErrorCode code, std::uint64_t n = 1) {
    counts_[IngestErrorCodeName(code)] += n;
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (const auto& [name, n] : counts_) t += n;
    return t;
  }
  bool empty() const { return counts_.empty(); }
  const std::map<std::string, std::uint64_t>& by_code() const {
    return counts_;
  }
  /// Count for one stable code name (0 when the code never occurred).
  std::uint64_t count(const std::string& code_name) const {
    auto it = counts_.find(code_name);
    return it == counts_.end() ? 0 : it->second;
  }

  /// "ragged_row=3,embedded_nul=1" (empty string when no rejections).
  std::string ToString() const;

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace ocdd

#endif  // OCDD_COMMON_INGEST_ERROR_H_
