#ifndef OCDD_COMMON_SIMD_DISPATCH_H_
#define OCDD_COMMON_SIMD_DISPATCH_H_

namespace ocdd::simd {

/// Which implementation of the vectorizable check kernels is active.
///
/// Every SIMD kernel in the tree ships with a bit-identical scalar
/// implementation; the backend only selects *how* the same answer is
/// computed. Selection happens once (cpuid + the `OCDD_SIMD` environment
/// variable) and is cached; `Refresh()` re-evaluates — the QA harness uses
/// it to force the scalar fallback mid-process and cross-check closures.
///
/// `OCDD_SIMD` values: `off` / `scalar` force the scalar fallback, `avx2`
/// requests AVX2 (silently degrading to scalar when the CPU lacks it, so a
/// forced-AVX2 CI pass can run anywhere), anything else / unset = auto.
enum class Backend : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// The cached active backend (first call resolves env + cpuid).
Backend Active();

/// True when the CPU supports AVX2 (independent of the env override).
bool CpuHasAvx2();

/// Re-resolves the backend from the environment and cpuid. Thread-safe;
/// intended for tests and the QA scalar-fallback stage, not for flipping
/// backends mid-check (kernels read the backend once per call).
void Refresh();

/// Test-only override; sticks until `Refresh()`. Forcing kAvx2 on a CPU
/// without AVX2 is ignored (scalar stays active).
void ForceBackendForTest(Backend backend);

const char* BackendName(Backend backend);

}  // namespace ocdd::simd

#endif  // OCDD_COMMON_SIMD_DISPATCH_H_
