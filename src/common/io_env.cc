#include "common/io_env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/status.h"

namespace ocdd {

namespace {

/// Errno a simulated fault sets for each kind (kShortWrite sets none).
int FaultErrno(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kEnospc:
      return ENOSPC;
    case IoFaultKind::kEio:
    case IoFaultKind::kCrash:
      return EIO;
    case IoFaultKind::kEmfile:
      return EMFILE;
    case IoFaultKind::kNone:
    case IoFaultKind::kShortWrite:
      break;
  }
  return EIO;
}

std::uint64_t NextRng(std::uint64_t* state) {
  // splitmix64 — cheap, seedable, good enough for fault-rate sampling.
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

const char* IoFaultKindName(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kNone:
      return "none";
    case IoFaultKind::kEnospc:
      return "enospc";
    case IoFaultKind::kEio:
      return "eio";
    case IoFaultKind::kEmfile:
      return "emfile";
    case IoFaultKind::kShortWrite:
      return "short";
    case IoFaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

const char* IoOpKindName(IoOp::Kind kind) {
  switch (kind) {
    case IoOp::Kind::kOpenTrunc:
      return "open_trunc";
    case IoOp::Kind::kWrite:
      return "write";
    case IoOp::Kind::kRename:
      return "rename";
    case IoOp::Kind::kUnlink:
      return "unlink";
    case IoOp::Kind::kMkdir:
      return "mkdir";
  }
  return "unknown";
}

bool IoFaultSpec::Matches(const char* site) const {
  if (site_pattern == "*") return true;
  const std::size_t n = site_pattern.size();
  if (n > 0 && site_pattern[n - 1] == '*') {
    return std::strncmp(site, site_pattern.c_str(), n - 1) == 0;
  }
  return site_pattern == site;
}

Result<std::vector<IoFaultSpec>> ParseIoFaultSpecs(const std::string& text) {
  std::vector<IoFaultSpec> specs;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::string entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      if (pos > text.size()) break;
      continue;
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("io fault spec '" + entry +
                                     "' missing site=kind");
    }
    IoFaultSpec spec;
    spec.site_pattern = entry.substr(0, eq);
    std::string kind = entry.substr(eq + 1);
    // Optional trigger suffix: '#N' (one-shot on the Nth call) or '@RATE'.
    const std::size_t hash = kind.find('#');
    const std::size_t at = kind.find('@');
    if (hash != std::string::npos) {
      spec.after_n = std::strtoull(kind.c_str() + hash + 1, nullptr, 10);
      if (spec.after_n == 0) {
        return Status::InvalidArgument("io fault spec '" + entry +
                                       "': #N must be >= 1");
      }
      kind = kind.substr(0, hash);
    } else if (at != std::string::npos) {
      spec.rate = std::atof(kind.c_str() + at + 1);
      if (spec.rate < 0.0 || spec.rate > 1.0) {
        return Status::InvalidArgument("io fault spec '" + entry +
                                       "': @RATE must be in [0,1]");
      }
      kind = kind.substr(0, at);
    }
    if (kind == "enospc") {
      spec.kind = IoFaultKind::kEnospc;
    } else if (kind == "eio") {
      spec.kind = IoFaultKind::kEio;
    } else if (kind == "emfile") {
      spec.kind = IoFaultKind::kEmfile;
    } else if (kind == "short") {
      spec.kind = IoFaultKind::kShortWrite;
    } else if (kind == "crash") {
      spec.kind = IoFaultKind::kCrash;
    } else {
      return Status::InvalidArgument(
          "io fault spec '" + entry +
          "': unknown kind (enospc, eio, emfile, short, crash)");
    }
    specs.push_back(std::move(spec));
    if (comma == text.size()) break;
  }
  return specs;
}

IoEnv& IoEnv::Get() {
  static IoEnv* env = [] {
    auto* e = new IoEnv();
    if (const char* spec = std::getenv("OCDD_IO_FAULTS")) {
      // Arm faults for the whole process, e.g. the nightly sweep running
      // `OCDD_IO_FAULTS='snapshot.*=enospc' ocdd serve ...`. A malformed
      // spec is a hard startup error: silently running *without* the faults
      // the operator asked for would invalidate the sweep.
      Status armed = e->ArmFaultString(spec);
      if (!armed.ok()) {
        std::fprintf(stderr, "OCDD_IO_FAULTS: %s\n",
                     armed.ToString().c_str());
        std::abort();
      }
      if (const char* seed = std::getenv("OCDD_IO_FAULT_SEED")) {
        e->SeedFaultRng(std::strtoull(seed, nullptr, 10));
      }
    }
    return e;
  }();
  return *env;
}

void IoEnv::ArmFault(IoFaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.push_back(std::move(spec));
  spec_hits_.push_back(0);
}

Status IoEnv::ArmFaultString(const std::string& text) {
  OCDD_ASSIGN_OR_RETURN(std::vector<IoFaultSpec> specs,
                        ParseIoFaultSpecs(text));
  std::lock_guard<std::mutex> lock(mu_);
  for (IoFaultSpec& spec : specs) {
    faults_.push_back(std::move(spec));
    spec_hits_.push_back(0);
  }
  return Status::OK();
}

void IoEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_.clear();
  spec_hits_.clear();
  crashed_ = false;
}

void IoEnv::SeedFaultRng(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = seed ^ 0x9e3779b97f4a7c15ull;
}

bool IoEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

IoFaultKind IoEnv::PollLocked(const char* site) {
  ++site_hits_[site];
  if (crashed_) {
    ++site_faults_[site];
    return IoFaultKind::kCrash;
  }
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const IoFaultSpec& spec = faults_[i];
    if (!spec.Matches(site)) continue;
    const std::uint64_t hit = ++spec_hits_[i];
    bool fire = false;
    if (spec.after_n != 0) {
      fire = hit == spec.after_n;
    } else if (spec.rate >= 0.0) {
      const double u =
          static_cast<double>(NextRng(&rng_state_) >> 11) * 0x1.0p-53;
      fire = u < spec.rate;
    } else {
      fire = true;
    }
    if (!fire) continue;
    ++site_faults_[site];
    if (spec.kind == IoFaultKind::kCrash) crashed_ = true;
    return spec.kind;
  }
  return IoFaultKind::kNone;
}

IoFaultKind IoEnv::Poll(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  return PollLocked(site);
}

void IoEnv::Record(IoOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  if (logging_) op_log_.push_back(std::move(op));
}

void IoEnv::StartOpLog() {
  std::lock_guard<std::mutex> lock(mu_);
  logging_ = true;
  op_log_.clear();
}

std::vector<IoOp> IoEnv::TakeOpLog() {
  std::lock_guard<std::mutex> lock(mu_);
  logging_ = false;
  return std::move(op_log_);
}

std::vector<std::string> IoEnv::SeenSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> sites;
  sites.reserve(site_hits_.size());
  for (const auto& [site, hits] : site_hits_) sites.push_back(site);
  std::sort(sites.begin(), sites.end());
  return sites;
}

IoEnvStats IoEnv::StatsFor(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  IoEnvStats stats;
  auto hit = site_hits_.find(site);
  if (hit != site_hits_.end()) stats.ops = hit->second;
  auto fault = site_faults_.find(site);
  if (fault != site_faults_.end()) stats.faults_fired = fault->second;
  return stats;
}

std::uint64_t IoEnv::TotalFaultsFired() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [site, count] : site_faults_) total += count;
  return total;
}

int IoEnv::Open(const char* site, const std::string& path, int flags,
                mode_t mode) {
  const IoFaultKind fault = Poll(site);
  if (fault != IoFaultKind::kNone && fault != IoFaultKind::kShortWrite) {
    errno = FaultErrno(fault);
    return -1;
  }
  const int fd = ::open(path.c_str(), flags, mode);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    fd_paths_[fd] = path;
    if (logging_ && (flags & O_TRUNC) != 0 && (flags & O_CREAT) != 0) {
      op_log_.push_back({IoOp::Kind::kOpenTrunc, site, path, {}, {}});
    }
  }
  return fd;
}

ssize_t IoEnv::Write(const char* site, int fd, const void* buf,
                     std::size_t len) {
  const IoFaultKind fault = Poll(site);
  if (fault == IoFaultKind::kShortWrite && len > 1) {
    // Persist only half: the caller's write loop retries the rest, so a
    // single short fault is absorbed; a 100%-rate arming starves the loop
    // down to 1-byte writes but still terminates.
    len /= 2;
  } else if (fault != IoFaultKind::kNone) {
    errno = FaultErrno(fault);
    return -1;
  }
  const ssize_t n = ::write(fd, buf, len);
  if (n > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (logging_) {
      auto it = fd_paths_.find(fd);
      op_log_.push_back({IoOp::Kind::kWrite, site,
                         it == fd_paths_.end() ? std::string() : it->second,
                         {},
                         std::string(static_cast<const char*>(buf),
                                     static_cast<std::size_t>(n))});
    }
  }
  return n;
}

ssize_t IoEnv::Read(const char* site, int fd, void* buf, std::size_t len) {
  const IoFaultKind fault = Poll(site);
  if (fault != IoFaultKind::kNone && fault != IoFaultKind::kShortWrite) {
    errno = FaultErrno(fault);
    return -1;
  }
  return ::read(fd, buf, len);
}

int IoEnv::Fsync(const char* site, int fd) {
  const IoFaultKind fault = Poll(site);
  if (fault != IoFaultKind::kNone && fault != IoFaultKind::kShortWrite) {
    errno = FaultErrno(fault);
    return -1;
  }
  return ::fsync(fd);
}

int IoEnv::Close(const char* site, int fd) {
  // Close is never blocked by injected faults on the *descriptor* — leaking
  // fds under a fault sweep would turn simulated ENOSPC into real EMFILE —
  // but a close-site fault still *reports* failure after the real close, the
  // NFS-style "close() surfaces the async write error" case.
  const IoFaultKind fault = Poll(site);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_paths_.erase(fd);
  }
  const int rc = ::close(fd);
  if (fault != IoFaultKind::kNone && fault != IoFaultKind::kShortWrite) {
    errno = FaultErrno(fault);
    return -1;
  }
  return rc;
}

int IoEnv::Rename(const char* site, const std::string& from,
                  const std::string& to) {
  const IoFaultKind fault = Poll(site);
  if (fault != IoFaultKind::kNone && fault != IoFaultKind::kShortWrite) {
    errno = FaultErrno(fault);
    return -1;
  }
  const int rc = ::rename(from.c_str(), to.c_str());
  if (rc == 0) Record({IoOp::Kind::kRename, site, from, to, {}});
  return rc;
}

int IoEnv::Unlink(const char* site, const std::string& path) {
  const IoFaultKind fault = Poll(site);
  if (fault != IoFaultKind::kNone && fault != IoFaultKind::kShortWrite) {
    errno = FaultErrno(fault);
    return -1;
  }
  const int rc = ::unlink(path.c_str());
  if (rc == 0) Record({IoOp::Kind::kUnlink, site, path, {}, {}});
  return rc;
}

int IoEnv::Mkdir(const char* site, const std::string& path, mode_t mode) {
  const IoFaultKind fault = Poll(site);
  if (fault != IoFaultKind::kNone && fault != IoFaultKind::kShortWrite) {
    errno = FaultErrno(fault);
    return -1;
  }
  const int rc = ::mkdir(path.c_str(), mode);
  if (rc == 0) Record({IoOp::Kind::kMkdir, site, path, {}, {}});
  return rc;
}

// ---------------------------------------------------------------------------
// Op-log replay
// ---------------------------------------------------------------------------

namespace {

Result<std::string> RemapPath(const std::string& path,
                              const std::string& from_root,
                              const std::string& to_root) {
  if (path.compare(0, from_root.size(), from_root) != 0) {
    return Status::InvalidArgument("op path '" + path + "' outside root '" +
                                   from_root + "'");
  }
  return to_root + path.substr(from_root.size());
}

Status ReplayWrite(const std::string& path, const std::string& data,
                   bool truncate) {
  int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return IoErrorStatus("replay open", path);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = IoErrorStatus("replay write", path);
      ::close(fd);
      return s;
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

Status ReplayOpLog(const std::vector<IoOp>& ops, std::size_t count,
                   bool tear_last, const std::string& from_root,
                   const std::string& to_root) {
  if (count > ops.size()) {
    return Status::OutOfRange("replay count exceeds op log size");
  }
  for (std::size_t i = 0; i < count; ++i) {
    const IoOp& op = ops[i];
    const bool torn = tear_last && i + 1 == count;
    switch (op.kind) {
      case IoOp::Kind::kOpenTrunc: {
        // Truncation takes effect the instant the open lands; a torn open
        // is indistinguishable from a complete one.
        OCDD_ASSIGN_OR_RETURN(std::string path,
                              RemapPath(op.path, from_root, to_root));
        OCDD_RETURN_IF_ERROR(ReplayWrite(path, "", /*truncate=*/true));
        break;
      }
      case IoOp::Kind::kWrite: {
        OCDD_ASSIGN_OR_RETURN(std::string path,
                              RemapPath(op.path, from_root, to_root));
        const std::string data =
            torn ? op.data.substr(0, op.data.size() / 2) : op.data;
        OCDD_RETURN_IF_ERROR(ReplayWrite(path, data, /*truncate=*/false));
        break;
      }
      case IoOp::Kind::kRename: {
        if (torn) break;  // crash strictly before the atomic rename
        OCDD_ASSIGN_OR_RETURN(std::string from,
                              RemapPath(op.path, from_root, to_root));
        OCDD_ASSIGN_OR_RETURN(std::string to,
                              RemapPath(op.path2, from_root, to_root));
        if (::rename(from.c_str(), to.c_str()) != 0) {
          return IoErrorStatus("replay rename", to);
        }
        break;
      }
      case IoOp::Kind::kUnlink: {
        if (torn) break;
        OCDD_ASSIGN_OR_RETURN(std::string path,
                              RemapPath(op.path, from_root, to_root));
        if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
          return IoErrorStatus("replay unlink", path);
        }
        break;
      }
      case IoOp::Kind::kMkdir: {
        if (torn) break;
        OCDD_ASSIGN_OR_RETURN(std::string path,
                              RemapPath(op.path, from_root, to_root));
        if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
          return IoErrorStatus("replay mkdir", path);
        }
        break;
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Typed errors + shared helpers
// ---------------------------------------------------------------------------

Status IoErrorStatus(const char* op, const std::string& path) {
  const int err = errno;
  const std::string msg = std::string("io ") + op + " failed for " + path +
                          ": " + std::strerror(err);
  // Exhaustion (space or descriptors) is operational and typically
  // transient — a degraded-mode trigger — while EIO and friends point at
  // the media or a bug.
  if (err == ENOSPC || err == EDQUOT || err == EMFILE || err == ENFILE) {
    return Status::ResourceExhausted(msg);
  }
  return Status::Internal(msg);
}

Status IoWriteFileSynced(IoEnv& env, const char* site_prefix,
                         const std::string& path, const char* bytes,
                         std::size_t len) {
  const std::string prefix = site_prefix;
  const int fd = env.Open((prefix + ".open").c_str(), path,
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoErrorStatus("open", path);
  const std::string write_site = prefix + ".write";
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n =
        env.Write(write_site.c_str(), fd, bytes + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = IoErrorStatus("write", path);
      env.Close((prefix + ".close").c_str(), fd);
      return s;
    }
    off += static_cast<std::size_t>(n);
  }
  if (env.Fsync((prefix + ".fsync").c_str(), fd) != 0) {
    Status s = IoErrorStatus("fsync", path);
    env.Close((prefix + ".close").c_str(), fd);
    return s;
  }
  if (env.Close((prefix + ".close").c_str(), fd) != 0) {
    return IoErrorStatus("close", path);
  }
  return Status::OK();
}

Result<std::string> IoReadFileAll(IoEnv& env, const char* site_prefix,
                                  const std::string& path) {
  const std::string prefix = site_prefix;
  const int fd = env.Open((prefix + ".open").c_str(), path, O_RDONLY, 0);
  if (fd < 0) return IoErrorStatus("open", path);
  const std::string read_site = prefix + ".read";
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = env.Read(read_site.c_str(), fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = IoErrorStatus("read", path);
      env.Close((prefix + ".close").c_str(), fd);
      return s;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  env.Close((prefix + ".close").c_str(), fd);
  return out;
}

Status IoSyncDir(IoEnv& env, const char* site_prefix, const std::string& dir) {
  const std::string prefix = site_prefix;
  const int fd = env.Open((prefix + ".open_dir").c_str(), dir,
                          O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) return IoErrorStatus("open dir", dir);
  if (env.Fsync((prefix + ".fsync_dir").c_str(), fd) != 0) {
    Status s = IoErrorStatus("fsync dir", dir);
    env.Close((prefix + ".close_dir").c_str(), fd);
    return s;
  }
  env.Close((prefix + ".close_dir").c_str(), fd);
  return Status::OK();
}

Status IoEnsureDir(IoEnv& env, const char* site_prefix,
                   const std::string& dir) {
  const std::string prefix = site_prefix;
  if (env.Mkdir((prefix + ".mkdir").c_str(), dir, 0755) == 0) {
    // The new directory entry lives in the *parent*; without fsyncing the
    // parent a power loss can forget the whole directory — taking every
    // carefully synced file inside it along.
    std::string parent = dir;
    const std::size_t slash = parent.find_last_of('/');
    parent = slash == std::string::npos ? std::string(".")
             : slash == 0               ? std::string("/")
                                        : parent.substr(0, slash);
    OCDD_RETURN_IF_ERROR(IoSyncDir(env, site_prefix, parent));
    return Status::OK();
  }
  if (errno == EEXIST) return Status::OK();
  return IoErrorStatus("mkdir", dir);
}

}  // namespace ocdd
