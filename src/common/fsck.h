#ifndef OCDD_COMMON_FSCK_H_
#define OCDD_COMMON_FSCK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace ocdd {

/// Offline integrity scrubber for snapshot-store directories — checkpoint
/// dirs, the serve cache dir, a daemon's whole checkpoint root, incremental
/// warm-state dirs. Surfaced as `ocdd fsck DIR [--repair]`
/// (docs/robustness.md, "ocdd fsck").
///
/// A store directory holds `<name>.<generation>.snap` files written by
/// SnapshotStore plus, transiently, `<name>.tmp` in-flight images. After a
/// crash the directory may contain torn or corrupt generations (which
/// readers already skip at load time) and orphaned tmp files (which nothing
/// ever cleans). Fsck makes that state visible and, with repair enabled,
/// safe: corrupt generations are quarantined (renamed into
/// `<dir>/fsck-quarantine/`, preserving the bytes for forensics) so the
/// newest *valid* generation is what every future Load resolves, and orphan
/// tmp files are reaped.

/// Verdict for one scanned snapshot file.
enum class FsckFileStatus {
  kValid,      ///< decoded and CRC-validated end to end
  kCorrupt,    ///< unreadable, torn, or CRC/structure violation
  kOrphanTmp,  ///< a `<name>.tmp` left behind by an interrupted write
};

const char* FsckFileStatusName(FsckFileStatus status);

struct FsckFile {
  std::string path;
  /// Store name parsed from the file name (empty for unparseable names).
  std::string store;
  std::uint64_t generation = 0;
  std::size_t size_bytes = 0;
  FsckFileStatus status = FsckFileStatus::kValid;
  /// Decode failure detail for corrupt files.
  std::string detail;
  /// What repair did: empty, "quarantined", "reaped", or an error note.
  std::string repair;
};

/// Per-store rollup within one directory.
struct FsckStore {
  std::string dir;
  std::string name;
  std::size_t valid = 0;
  std::size_t corrupt = 0;
  /// Newest generation that validates (0 = none) — what Load() resolves
  /// once the corrupt ones are quarantined.
  std::uint64_t newest_valid_generation = 0;
};

struct FsckOptions {
  /// Quarantine corrupt generations and reap orphan tmp files.
  bool repair = false;
  /// Descend into subdirectories (checkpoint roots nest one store dir per
  /// request key / warm state).
  bool recursive = true;
};

struct FsckReport {
  std::string root;
  std::size_t dirs_scanned = 0;
  std::vector<FsckFile> files;
  std::vector<FsckStore> stores;
  std::size_t valid_files = 0;
  std::size_t corrupt_files = 0;
  std::size_t orphan_tmp_files = 0;
  std::size_t repaired_files = 0;
  /// Non-fatal trouble during the scan (unreadable subdir, failed rename).
  std::vector<std::string> warnings;

  /// Nothing corrupt and no orphans (or repair handled all of them).
  bool clean() const {
    return corrupt_files == 0 && orphan_tmp_files == 0;
  }
};

/// Scrubs `root`: every snapshot file is read fully and decoded (magic,
/// per-section CRCs, file CRC trailer), tmp files are flagged as orphans,
/// and with `options.repair` the directory is left in a state where every
/// remaining `.snap` file validates. The scan itself never modifies
/// anything unless repair is set. Fails only when `root` cannot be opened.
Result<FsckReport> FsckDirectory(const std::string& root,
                                 const FsckOptions& options = {});

/// Renders a human-readable summary (the non-JSON CLI output).
std::string FsckReportText(const FsckReport& report);

/// Renders the report as a JSON document (the `--json` CLI output).
std::string FsckReportJson(const FsckReport& report);

}  // namespace ocdd

#endif  // OCDD_COMMON_FSCK_H_
