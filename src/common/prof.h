#ifndef OCDD_COMMON_PROF_H_
#define OCDD_COMMON_PROF_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ocdd::prof {

/// Lightweight in-process cycle/byte profiler for the discovery hot path,
/// in the spirit of ddprof's always-compiled scoped instrumentation: a
/// fixed set of phases, thread-local counter slabs (no locks on the hot
/// path), TSC-based scoped timers, and explicit byte/allocation counters
/// at the few sites that matter.
///
/// Cost model: when disabled (the default) every probe is one relaxed
/// atomic load and a predictable branch. When enabled, a scope costs two
/// `rdtsc` reads plus a handful of relaxed adds — cheap enough to leave in
/// per-candidate-check granularity, far too expensive for per-row use (so
/// kernels report bytes per *call*, never per element).
///
/// Enablement: `SetEnabled(true)` (the CLI `--profile` flag, benches), or
/// the `OCDD_PROFILE=1` environment variable, consulted once at the first
/// probe. Counters are process-global; callers that want a per-run report
/// `Reset()` before and `Snapshot()` after the run.
///
/// Thread-safety: counters are per-thread slabs registered in a global
/// list; `Snapshot()` sums them with relaxed atomics, so concurrent
/// probes never block and never race. A thread that exits folds its slab
/// into a retired accumulator first, so no samples are lost.

/// The instrumented phases. Keep in sync with `PhaseName`.
enum class Phase : std::uint8_t {
  kEncode = 0,     // dictionary encoding / narrow-mirror builds
  kPlan,           // per-level partition planning (sequential)
  kRefine,         // partition refinement kernels
  kPublish,        // partition cache publish (shrink + budget + insert)
  kCheckFill,      // extremes fill pass of the partition checks
  kCheckScan,      // extremes group scan (split/swap classification)
  kSortIndex,      // row-index sorts of the sort-based checker
  kSortCheck,      // adjacent-pair walks of the sort-based checker
  kGenerate,       // candidate emission + next-level generation
  kCheckpoint,     // snapshot encode/write
  kNumPhases,
};

const char* PhaseName(Phase phase);

bool Enabled();
void SetEnabled(bool enabled);

/// Zeroes every counter (live slabs and the retired accumulator).
void Reset();

/// Adds `bytes` of data traffic to a phase (call-granular, not per row).
void AddBytes(Phase phase, std::uint64_t bytes);

/// Explicit allocation hook: the few sites that materialize long-lived
/// buffers (partition publish, snapshot blobs) report them here so the
/// report shows where the bytes went without a global operator-new hook.
void AddAlloc(std::uint64_t bytes);

/// RAII scoped timer attributing elapsed TSC cycles (and one call) to a
/// phase. Nesting is allowed; each scope charges its own wall span, so
/// nested phases double-count against their parents by design (the report
/// is a where-does-time-go breakdown, not a strict tree).
class ScopedTimer {
 public:
  explicit ScopedTimer(Phase phase);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Phase phase_;
  bool armed_;
  std::uint64_t start_;
};

struct PhaseStats {
  const char* name = "";
  std::uint64_t cycles = 0;
  double seconds = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t calls = 0;
};

struct Report {
  bool enabled = false;
  /// Calibrated TSC frequency used to convert cycles to seconds.
  double cycles_per_second = 0.0;
  /// Phases with at least one call, in enum order.
  std::vector<PhaseStats> phases;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_calls = 0;

  bool empty() const { return phases.empty() && alloc_calls == 0; }
};

/// Sums every thread's counters. Cheap enough to call repeatedly.
Report Snapshot();

/// `{"cycles_per_second":...,"phases":[{"name":...,"cycles":...,
///   "seconds":...,"bytes":...,"calls":...},...],
///   "alloc":{"bytes":...,"calls":...}}`
std::string ToJson(const Report& report);

}  // namespace ocdd::prof

#endif  // OCDD_COMMON_PROF_H_
