#include "common/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ocdd::simd {

namespace {

constexpr int kUnresolved = -1;

std::atomic<int> g_backend{kUnresolved};

Backend Resolve() {
  bool has_avx2 = CpuHasAvx2();
  const char* env = std::getenv("OCDD_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0) {
      return Backend::kScalar;
    }
    if (std::strcmp(env, "avx2") == 0) {
      return has_avx2 ? Backend::kAvx2 : Backend::kScalar;
    }
  }
  return has_avx2 ? Backend::kAvx2 : Backend::kScalar;
}

}  // namespace

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Backend Active() {
  int cached = g_backend.load(std::memory_order_acquire);
  if (cached != kUnresolved) return static_cast<Backend>(cached);
  Backend resolved = Resolve();
  // Several threads may race the first resolution; they all compute the
  // same value, so a plain store is fine.
  g_backend.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

void Refresh() {
  g_backend.store(static_cast<int>(Resolve()), std::memory_order_release);
}

void ForceBackendForTest(Backend backend) {
  if (backend == Backend::kAvx2 && !CpuHasAvx2()) return;
  g_backend.store(static_cast<int>(backend), std::memory_order_release);
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace ocdd::simd
