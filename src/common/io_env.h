#ifndef OCDD_COMMON_IO_ENV_H_
#define OCDD_COMMON_IO_ENV_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace ocdd {

/// Injectable I/O environment for every durable-write path in the tree
/// (docs/robustness.md, "Disk faults").
///
/// All code that persists state — the snapshot store (and through it the
/// serve result cache, incremental warm state, and checkpoint stores), the
/// CSV quarantine writer, report/repro writers — issues its syscalls through
/// the process-global `IoEnv` instead of calling open/write/fsync/... raw.
/// Each call names its *site* (e.g. `"snapshot.write"`, `"quarantine.open"`):
/// a stable fault-point identifier that tests and the nightly disk-fault
/// sweep arm with simulated failures (ENOSPC, EIO, EMFILE, short writes,
/// fsync failure, crash-after-N-ops) without touching the real filesystem's
/// behavior for anyone else.
///
/// The wrappers are syscall-shaped: they return what the syscall returns and
/// report failures through `errno`, so call sites keep ordinary POSIX error
/// handling and injected faults are indistinguishable from real ones.
/// `IoErrorStatus` maps a failed call to a typed Status (`ResourceExhausted`
/// for out-of-space/out-of-descriptors, `Internal` otherwise) with a
/// machine-greppable `io <op> failed` prefix.
///
/// The environment can also record an *op log* of every mutating operation
/// (`StartOpLog`/`TakeOpLog`), and `ReplayOpLog` can materialize any prefix
/// of such a log into a fresh directory with the final operation torn —
/// the crash-consistency harness replays every prefix and asserts recovery
/// (tests/crash_consistency_test.cc).

// ---------------------------------------------------------------------------
// Fault vocabulary
// ---------------------------------------------------------------------------

/// Simulated failure modes for an armed fault point.
enum class IoFaultKind {
  kNone = 0,
  kEnospc,      ///< fail with ENOSPC (disk full)
  kEio,         ///< fail with EIO (media error; on fsync sites: fsync failure)
  kEmfile,      ///< fail with EMFILE (fd exhaustion)
  kShortWrite,  ///< write() persists only half the requested bytes
  kCrash,       ///< latch the env as crashed: this and every later op fails
};

const char* IoFaultKindName(IoFaultKind kind);

/// One armed fault: which sites it matches, what it does, and when it fires.
struct IoFaultSpec {
  /// Site pattern: exact name, or a prefix ending in '*' ("snapshot.*"),
  /// or "*" alone for every site.
  std::string site_pattern;
  IoFaultKind kind = IoFaultKind::kNone;
  /// Fires on the Nth matching call (1 = next). 0 = every matching call.
  std::uint64_t after_n = 0;
  /// Fires each matching call with this probability (seeded); < 0 disables
  /// rate mode. Mutually exclusive with after_n.
  double rate = -1.0;

  bool Matches(const char* site) const;
};

/// Parses a comma-separated fault spec string, the `OCDD_IO_FAULTS`
/// environment-variable grammar used by the nightly disk-fault sweep:
///
///   spec     := entry (',' entry)*
///   entry    := site '=' kind trigger?
///   kind     := 'enospc' | 'eio' | 'emfile' | 'short' | 'crash'
///   trigger  := '#' N        (one-shot, fires on the Nth matching call)
///             | '@' RATE     (probabilistic, RATE in [0,1])
///
/// Examples: "snapshot.*=enospc", "*=eio@0.05", "snapshot.rename=crash#3".
Result<std::vector<IoFaultSpec>> ParseIoFaultSpecs(const std::string& text);

// ---------------------------------------------------------------------------
// Op log (crash-consistency replay)
// ---------------------------------------------------------------------------

/// One recorded mutating operation.
struct IoOp {
  enum class Kind {
    kOpenTrunc,  ///< open with O_CREAT|O_TRUNC (file now exists, empty)
    kWrite,      ///< append `data` to the file (stores route writes forward)
    kRename,     ///< path -> path2
    kUnlink,
    kMkdir,
  };
  Kind kind;
  std::string site;
  std::string path;
  std::string path2;  ///< rename target
  std::string data;   ///< written bytes (kWrite)
};

const char* IoOpKindName(IoOp::Kind kind);

/// Materializes `ops[0..count)` into the filesystem, remapping every path
/// from `from_root` to `to_root`. With `tear_last`, the final op is applied
/// torn: a write persists only half its bytes, a rename/unlink/mkdir is
/// dropped (crash before the op took effect), an open-trunc still truncates.
/// `to_root` must exist; replay is for tests and fsck tooling, it bypasses
/// fault injection.
Status ReplayOpLog(const std::vector<IoOp>& ops, std::size_t count,
                   bool tear_last, const std::string& from_root,
                   const std::string& to_root);

// ---------------------------------------------------------------------------
// The environment
// ---------------------------------------------------------------------------

/// Per-fault-point counters, for tests and the sweep harness.
struct IoEnvStats {
  std::uint64_t ops = 0;
  std::uint64_t faults_fired = 0;
};

class IoEnv {
 public:
  IoEnv() = default;
  IoEnv(const IoEnv&) = delete;
  IoEnv& operator=(const IoEnv&) = delete;

  /// The process-global environment every durable-write path uses. Faults
  /// armed here (or via OCDD_IO_FAULTS, read once on first access) apply
  /// process-wide; tests clear them with `ClearFaults`.
  static IoEnv& Get();

  // --- syscall-shaped wrappers (set errno on failure) ---------------------

  int Open(const char* site, const std::string& path, int flags, mode_t mode);
  ssize_t Write(const char* site, int fd, const void* buf, std::size_t len);
  ssize_t Read(const char* site, int fd, void* buf, std::size_t len);
  int Fsync(const char* site, int fd);
  int Close(const char* site, int fd);
  int Rename(const char* site, const std::string& from, const std::string& to);
  int Unlink(const char* site, const std::string& path);
  int Mkdir(const char* site, const std::string& path, mode_t mode);

  // --- fault arming -------------------------------------------------------

  void ArmFault(IoFaultSpec spec);
  /// Parses and arms a whole spec string (see ParseIoFaultSpecs).
  Status ArmFaultString(const std::string& text);
  void ClearFaults();
  /// Seed for `@rate` probabilistic faults (deterministic sweeps).
  void SeedFaultRng(std::uint64_t seed);
  /// True once a kCrash fault fired; every subsequent op fails with EIO
  /// until ClearFaults.
  bool crashed() const;

  // --- introspection ------------------------------------------------------

  /// Every site name seen so far, sorted — the sweep harness enumerates the
  /// injection surface from a clean recording run.
  std::vector<std::string> SeenSites() const;
  IoEnvStats StatsFor(const std::string& site) const;
  std::uint64_t TotalFaultsFired() const;

  // --- op log -------------------------------------------------------------

  void StartOpLog();
  /// Stops recording and returns the log.
  std::vector<IoOp> TakeOpLog();

 private:
  /// Returns the fault to apply at `site` (kNone for a clean pass) and
  /// counts the hit.
  IoFaultKind PollLocked(const char* site);
  IoFaultKind Poll(const char* site);
  void Record(IoOp op);

  mutable std::mutex mu_;
  std::vector<IoFaultSpec> faults_;
  std::unordered_map<std::string, std::uint64_t> site_hits_;
  std::unordered_map<std::string, std::uint64_t> site_faults_;
  /// Matching-call counters per armed spec (parallel to faults_).
  std::vector<std::uint64_t> spec_hits_;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  bool crashed_ = false;
  bool logging_ = false;
  std::vector<IoOp> op_log_;
  /// fd -> path, for attributing Write/Fsync/Close ops in the log.
  std::unordered_map<int, std::string> fd_paths_;
};

// ---------------------------------------------------------------------------
// Typed errors + shared durable-write helpers
// ---------------------------------------------------------------------------

/// Typed status for a failed I/O call at `site`: ENOSPC/EDQUOT/EMFILE/ENFILE
/// map to ResourceExhausted, everything else to Internal. The message is
/// `io <op> failed for <path>: <strerror>` — every swallowed-write audit
/// finding routes through this (satellite: typed IoError statuses).
Status IoErrorStatus(const char* op, const std::string& path);

/// Durably writes `len` bytes to `path` via `env` (open O_TRUNC, write loop,
/// fsync, close), naming each call `<site_prefix>.open/.write/.fsync/.close`.
Status IoWriteFileSynced(IoEnv& env, const char* site_prefix,
                         const std::string& path, const char* bytes,
                         std::size_t len);

/// Reads the whole file (sites `<site_prefix>.open/.read`).
Result<std::string> IoReadFileAll(IoEnv& env, const char* site_prefix,
                                  const std::string& path);

/// Fsyncs a directory so renames/creates inside it are durable.
Status IoSyncDir(IoEnv& env, const char* site_prefix, const std::string& dir);

/// mkdir -p one level with a durable parent (fsyncs the parent directory so
/// power loss cannot forget the new directory entry). EEXIST is success.
Status IoEnsureDir(IoEnv& env, const char* site_prefix,
                   const std::string& dir);

}  // namespace ocdd

#endif  // OCDD_COMMON_IO_ENV_H_
