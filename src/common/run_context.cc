#include "common/run_context.h"

#include <string>

#include "common/fault_injection.h"

namespace ocdd {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCheckBudget:
      return "check_budget";
    case StopReason::kMemoryBudget:
      return "memory_budget";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kFaultInjected:
      return "fault_injected";
    case StopReason::kLevelCap:
      return "level_cap";
  }
  return "unknown";
}

void RunContext::set_time_limit_seconds(double seconds) {
  if (seconds <= 0.0) {
    has_deadline_.store(false, std::memory_order_relaxed);
    return;
  }
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
  has_deadline_.store(true, std::memory_order_release);
}

void RunContext::set_deadline(std::chrono::steady_clock::time_point deadline) {
  deadline_ = deadline;
  has_deadline_.store(true, std::memory_order_release);
}

void RunContext::set_check_budget(std::uint64_t checks) {
  check_budget_.store(checks, std::memory_order_relaxed);
}

void RunContext::set_memory_budget(std::size_t bytes) {
  memory_budget_.store(bytes, std::memory_order_relaxed);
}

void RunContext::RequestStop(StopReason reason) {
  if (reason == StopReason::kNone) return;
  int expected = static_cast<int>(StopReason::kNone);
  stop_reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                       std::memory_order_relaxed);
}

bool RunContext::ShouldStop() {
  if (stop_reason_.load(std::memory_order_relaxed) !=
      static_cast<int>(StopReason::kNone)) {
    return true;
  }
  if (cancelled_.load(std::memory_order_relaxed)) {
    RequestStop(StopReason::kCancelled);
    return true;
  }
  std::uint64_t budget = check_budget_.load(std::memory_order_relaxed);
  if (budget != 0 && checks_.load(std::memory_order_relaxed) >= budget) {
    RequestStop(StopReason::kCheckBudget);
    return true;
  }
  if (has_deadline_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= deadline_) {
    RequestStop(StopReason::kDeadline);
    return true;
  }
  return false;
}

bool RunContext::CountCheck(std::uint64_t n) {
  checks_.fetch_add(n, std::memory_order_relaxed);
  return ShouldStop();
}

bool RunContext::ChargeMemory(std::size_t bytes) {
  std::size_t budget = memory_budget_.load(std::memory_order_relaxed);
  std::size_t used =
      memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget != 0 && used > budget) {
    memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
    RequestStop(StopReason::kMemoryBudget);
    return false;
  }
  std::size_t peak = memory_peak_.load(std::memory_order_relaxed);
  while (used > peak &&
         !memory_peak_.compare_exchange_weak(peak, used,
                                             std::memory_order_relaxed)) {
  }
  return true;
}

void RunContext::ReleaseMemory(std::size_t bytes) {
  memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void RunContext::AtInjectionPoint(const char* point) {
  if (injector_ == nullptr) return;
  switch (injector_->Poll(point)) {
    case FaultAction::kNone:
      return;
    case FaultAction::kCancel:
      RequestStop(StopReason::kFaultInjected);
      return;
    case FaultAction::kAllocFailure:
      RequestStop(StopReason::kMemoryBudget);
      return;
    case FaultAction::kThrow:
      throw FaultInjectedError(std::string("fault injected at ") + point);
  }
}

void RunContext::Reset() {
  stop_reason_.store(static_cast<int>(StopReason::kNone),
                     std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  checks_.store(0, std::memory_order_relaxed);
  memory_used_.store(0, std::memory_order_relaxed);
  memory_peak_.store(0, std::memory_order_relaxed);
}

}  // namespace ocdd
