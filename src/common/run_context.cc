#include "common/run_context.h"

#include <cstdio>
#include <string>

#include "common/fault_injection.h"

namespace ocdd {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCheckBudget:
      return "check_budget";
    case StopReason::kMemoryBudget:
      return "memory_budget";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kFaultInjected:
      return "fault_injected";
    case StopReason::kLevelCap:
      return "level_cap";
  }
  return "unknown";
}

void RunBudgets::ApplyTo(RunContext& context) const {
  if (time_limit_seconds > 0.0) {
    context.set_time_limit_seconds(time_limit_seconds);
  }
  if (max_checks != 0) context.set_check_budget(max_checks);
  if (memory_bytes != 0) context.set_memory_budget(memory_bytes);
}

std::vector<std::string> RunBudgets::ToCliFlags() const {
  std::vector<std::string> flags;
  if (time_limit_seconds > 0.0) {
    // %.6g keeps sub-second limits exact without trailing-zero noise.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", time_limit_seconds);
    flags.push_back("--time-limit");
    flags.push_back(buf);
  }
  if (max_checks != 0) {
    flags.push_back("--max-checks");
    flags.push_back(std::to_string(max_checks));
  }
  if (memory_bytes != 0) {
    const std::size_t mib = (memory_bytes + (1u << 20) - 1) >> 20;
    flags.push_back("--memory-limit");
    flags.push_back(std::to_string(mib));
  }
  return flags;
}

void RunContext::set_time_limit_seconds(double seconds) {
  if (seconds <= 0.0) {
    has_deadline_.store(false, std::memory_order_relaxed);
    return;
  }
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
  has_deadline_.store(true, std::memory_order_release);
}

void RunContext::set_deadline(std::chrono::steady_clock::time_point deadline) {
  deadline_ = deadline;
  has_deadline_.store(true, std::memory_order_release);
}

void RunContext::set_check_budget(std::uint64_t checks) {
  check_budget_.store(checks, std::memory_order_relaxed);
}

void RunContext::set_memory_budget(std::size_t bytes) {
  memory_budget_.store(bytes, std::memory_order_relaxed);
}

bool RunContext::RequestStop(StopReason reason) {
  if (reason == StopReason::kNone) return false;
  int expected = static_cast<int>(StopReason::kNone);
  // compare_exchange is the whole precedence contract: exactly one caller
  // transitions kNone -> reason; every later caller (even with a different
  // reason) loses the race and must not overwrite.
  return stop_reason_.compare_exchange_strong(expected,
                                              static_cast<int>(reason),
                                              std::memory_order_relaxed);
}

bool RunContext::ShouldStop() {
  if (stop_reason_.load(std::memory_order_relaxed) !=
      static_cast<int>(StopReason::kNone)) {
    return true;
  }
  if (cancelled_.load(std::memory_order_relaxed)) {
    RequestStop(StopReason::kCancelled);
    return true;
  }
  std::uint64_t budget = check_budget_.load(std::memory_order_relaxed);
  if (budget != 0 && checks_.load(std::memory_order_relaxed) >= budget) {
    RequestStop(StopReason::kCheckBudget);
    return true;
  }
  if (has_deadline_.load(std::memory_order_acquire) &&
      std::chrono::steady_clock::now() >= deadline_) {
    RequestStop(StopReason::kDeadline);
    return true;
  }
  return false;
}

bool RunContext::CountCheck(std::uint64_t n) {
  checks_.fetch_add(n, std::memory_order_relaxed);
  return ShouldStop();
}

bool RunContext::ChargeMemory(std::size_t bytes) {
  std::size_t budget = memory_budget_.load(std::memory_order_relaxed);
  std::size_t used =
      memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget != 0 && used > budget) {
    memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
    RequestStop(StopReason::kMemoryBudget);
    return false;
  }
  std::size_t peak = memory_peak_.load(std::memory_order_relaxed);
  while (used > peak &&
         !memory_peak_.compare_exchange_weak(peak, used,
                                             std::memory_order_relaxed)) {
  }
  return true;
}

void RunContext::ReleaseMemory(std::size_t bytes) {
  memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void RunContext::AtInjectionPoint(const char* point) {
  if (injector_ == nullptr) return;
  switch (injector_->Poll(point)) {
    case FaultAction::kNone:
      return;
    case FaultAction::kCancel:
      RequestStop(StopReason::kFaultInjected);
      return;
    case FaultAction::kAllocFailure:
      RequestStop(StopReason::kMemoryBudget);
      return;
    case FaultAction::kThrow:
      throw FaultInjectedError(std::string("fault injected at ") + point);
  }
}

void RunContext::set_checkpoint_cadence(std::uint64_t every_checks,
                                        double every_seconds) {
  checkpoint_every_checks_.store(every_checks, std::memory_order_relaxed);
  std::int64_t ns = 0;
  if (every_seconds > 0.0) {
    ns = static_cast<std::int64_t>(every_seconds * 1e9);
  }
  checkpoint_every_ns_.store(ns, std::memory_order_relaxed);
  MarkCheckpointed();
}

bool RunContext::CheckpointDue() const {
  const std::uint64_t every_checks =
      checkpoint_every_checks_.load(std::memory_order_relaxed);
  const std::int64_t every_ns =
      checkpoint_every_ns_.load(std::memory_order_relaxed);
  if (every_checks == 0 && every_ns == 0) return true;
  if (every_checks != 0) {
    const std::uint64_t since =
        checks_.load(std::memory_order_relaxed) -
        checkpoint_checks_mark_.load(std::memory_order_relaxed);
    if (since >= every_checks) return true;
  }
  if (every_ns != 0) {
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count();
    if (now_ns - checkpoint_time_mark_ns_.load(std::memory_order_relaxed) >=
        every_ns) {
      return true;
    }
  }
  return false;
}

void RunContext::MarkCheckpointed() {
  checkpoint_checks_mark_.store(checks_.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
  checkpoint_time_mark_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
}

void RunContext::Reset() {
  stop_reason_.store(static_cast<int>(StopReason::kNone),
                     std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  checks_.store(0, std::memory_order_relaxed);
  memory_used_.store(0, std::memory_order_relaxed);
  memory_peak_.store(0, std::memory_order_relaxed);
  MarkCheckpointed();
}

}  // namespace ocdd
