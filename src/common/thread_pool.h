#ifndef OCDD_COMMON_THREAD_POOL_H_
#define OCDD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace ocdd {

/// A fixed-size worker pool with a shared FIFO task queue.
///
/// The pool powers the parallel OCDDISCOVER driver (paper §4.2.2): each level
/// of the candidate tree is sharded into tasks, submitted with `Submit()`,
/// and the driver synchronizes the level barrier with `WaitIdle()`.
///
/// Fault containment: a task that throws does not take the process down.
/// The worker catches the exception, records the first failure as a Status,
/// and keeps serving the queue; `WaitIdle()` (and `ParallelFor()`) return
/// that Status so the caller can unwind cooperatively.
///
/// Thread-safety: `Submit()` and `WaitIdle()` may be called from any thread;
/// `Shutdown()` (also run by the destructor) drains outstanding work and
/// joins the workers. Submitting after shutdown is a no-op that returns an
/// error instead of undefined behavior.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Calls `Shutdown()`.
  ~ThreadPool();

  /// Drains outstanding work, then joins the workers. Idempotent; after it
  /// returns, `Submit` rejects new work.
  void Shutdown();

  /// Enqueues `task` for execution. Returns an error (and drops the task)
  /// when the pool has shut down. Tasks may throw: the first exception is
  /// captured and surfaced by `WaitIdle()`.
  Status Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing. Returns the
  /// first task failure recorded since the previous `WaitIdle()` (and clears
  /// it), or OK.
  Status WaitIdle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n) across the pool and waits for all
  /// of them. `fn` must be safe to invoke concurrently. Returns the first
  /// failure thrown by any invocation (remaining indices may be skipped
  /// after a failure), or OK.
  ///
  /// Morsel scheduling: the range is pre-split into one contiguous span per
  /// worker, and each worker claims cache-friendly morsels of `grain`
  /// indices from *its own* span's cursor — an uncontended atomic add, with
  /// no shared cursor in the common case. A worker that drains its span
  /// steals morsels from the span with the most work remaining, so a
  /// straggler index (one expensive candidate check) cannot serialize the
  /// level barrier the way a coarse static block could. `grain == 0` picks
  /// a size that keeps every worker fed without making steals too chatty.
  ///
  /// Ranges of at most one morsel run inline on the calling thread — the
  /// queue round-trip plus wakeup costs more than the work itself (the
  /// driver's last BFS levels are often a handful of candidates).
  /// Exceptions from inline execution are converted to the same Status a
  /// worker would record.
  Status ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                     std::size_t grain = 0);

 private:
  void WorkerLoop();
  void RecordFailureLocked(Status status);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool shutdown_ = false;
  Status first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace ocdd

#endif  // OCDD_COMMON_THREAD_POOL_H_
