#ifndef OCDD_COMMON_THREAD_POOL_H_
#define OCDD_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ocdd {

/// A fixed-size worker pool with a shared FIFO task queue.
///
/// The pool powers the parallel OCDDISCOVER driver (paper §4.2.2): each level
/// of the candidate tree is sharded into tasks, submitted with `Submit()`,
/// and the driver synchronizes the level barrier with `WaitIdle()`.
///
/// Thread-safety: `Submit()` and `WaitIdle()` may be called from any thread;
/// the destructor joins all workers after draining the queue.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  /// Enqueues `task` for execution. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void WaitIdle();

  std::size_t num_threads() const { return workers_.size(); }

  /// Runs `fn(i)` for every i in [0, n) across the pool and waits for all
  /// of them. `fn` must be safe to invoke concurrently.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ocdd

#endif  // OCDD_COMMON_THREAD_POOL_H_
