#include "common/snapshot.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>

#include "common/fault_injection.h"
#include "common/ingest_error.h"
#include "common/io_env.h"
#include "common/status.h"

namespace ocdd {
namespace {

// File layout (all integers little-endian):
//   8 bytes  magic "OCDDSNP1" (the trailing digit is the format version)
//   u32      section count
//   per section:
//     u32    name length, then name bytes
//     u64    payload length
//     u32    CRC32 of the payload
//     bytes  payload
//   u32      CRC32 of everything above
//   8 bytes  end magic "OCDDSNPE"
// The end magic makes truncation detectable even before CRC checking; the
// per-section CRCs localize corruption, and the file CRC catches damage in
// the framing itself.
constexpr char kMagic[] = "OCDDSNP1";
constexpr char kEndMagic[] = "OCDDSNPE";
constexpr std::size_t kMagicLen = 8;

const std::uint32_t* Crc32Table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

// Every durable operation below routes through the process-global IoEnv
// under the "snapshot.*" fault-point namespace — the serve result cache,
// incremental warm state, and checkpoint stores all persist through
// SnapshotStore, so arming these sites covers every durability path at once
// (docs/robustness.md, "Disk faults").

// Durably writes `bytes` to `path` (open, write, fsync, close).
Status WriteFileSynced(const std::string& path, const char* bytes,
                       std::size_t len) {
  return IoWriteFileSynced(IoEnv::Get(), "snapshot", path, bytes, len);
}

// Fsyncs the directory itself so the rename is durable.
Status SyncDir(const std::string& dir) {
  return IoSyncDir(IoEnv::Get(), "snapshot", dir);
}

Result<std::string> ReadFileAll(const std::string& path) {
  return IoReadFileAll(IoEnv::Get(), "snapshot", path);
}

Status EnsureDir(const std::string& dir) {
  return IoEnsureDir(IoEnv::Get(), "snapshot", dir);
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len) {
  const std::uint32_t* table = Crc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string SnapshotBuilder::Encode() const {
  std::string body(kMagic, kMagicLen);
  {
    ByteWriter w;
    w.U32(static_cast<std::uint32_t>(sections_.size()));
    body += w.Take();
  }
  for (const auto& [name, payload] : sections_) {
    ByteWriter w;
    w.Str(name);
    w.U64(payload.size());
    w.U32(Crc32(payload.data(), payload.size()));
    body += w.Take();
    body += payload;
  }
  ByteWriter trailer;
  trailer.U32(Crc32(body.data(), body.size()));
  body += trailer.Take();
  body.append(kEndMagic, kMagicLen);
  return body;
}

Result<SnapshotView> SnapshotView::Decode(const std::string& bytes) {
  constexpr std::size_t kTrailerLen = 4 + kMagicLen;
  if (bytes.size() < kMagicLen + 4 + kTrailerLen) {
    return Status::ParseError("snapshot truncated");
  }
  if (bytes.compare(0, kMagicLen, kMagic, kMagicLen) != 0) {
    return Status::ParseError("snapshot bad magic");
  }
  if (bytes.compare(bytes.size() - kMagicLen, kMagicLen, kEndMagic,
                    kMagicLen) != 0) {
    return Status::ParseError("snapshot torn (missing end magic)");
  }
  const std::size_t body_len = bytes.size() - kTrailerLen;
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(bytes[body_len + i]))
                  << (8 * i);
  }
  if (Crc32(bytes.data(), body_len) != stored_crc) {
    return Status::ParseError("snapshot file CRC mismatch");
  }

  std::string body = bytes.substr(kMagicLen, body_len - kMagicLen);
  ByteReader r(body);
  std::uint32_t count = r.U32();
  // A section header is at least 16 bytes (name length + payload length +
  // CRC); an implausible count is rejected before the loop allocates
  // anything on its behalf.
  if (static_cast<std::uint64_t>(count) * 16 > r.remaining()) {
    return Status::ParseError("snapshot section count " +
                              std::to_string(count) +
                              " exceeds remaining bytes");
  }
  SnapshotView view;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = r.Str();
    std::uint64_t payload_len = r.U64();
    std::uint32_t section_crc = r.U32();
    if (!r.ok()) return Status::ParseError("snapshot section header damaged");
    // Validate the untrusted length against the remaining bytes *before*
    // allocating: a corrupt generation must not be able to request a
    // multi-GB buffer just by carrying a huge length prefix.
    if (payload_len > r.remaining()) {
      return Status::ParseError(
          "snapshot section '" + SanitizeExcerpt(name, 32) + "' length " +
          std::to_string(payload_len) + " exceeds remaining " +
          std::to_string(r.remaining()) + " bytes");
    }
    std::string payload = r.Bytes(static_cast<std::size_t>(payload_len));
    if (!r.ok()) return Status::ParseError("snapshot section truncated");
    if (Crc32(payload.data(), payload.size()) != section_crc) {
      return Status::ParseError("snapshot section '" + name +
                                "' CRC mismatch");
    }
    view.sections_[std::move(name)] = std::move(payload);
  }
  if (!r.AtEnd()) return Status::ParseError("snapshot trailing bytes");
  return view;
}

const std::string* SnapshotView::Find(const std::string& name) const {
  auto it = sections_.find(name);
  return it == sections_.end() ? nullptr : &it->second;
}

std::vector<std::string> SnapshotView::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, payload] : sections_) names.push_back(name);
  return names;
}

std::string SnapshotStore::PathFor(std::uint64_t generation) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(generation));
  return dir_ + "/" + name_ + "." + buf + ".snap";
}

std::vector<std::uint64_t> SnapshotStore::Generations() const {
  std::vector<std::uint64_t> gens;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return gens;
  const std::string prefix = name_ + ".";
  const std::string suffix = ".snap";
  while (dirent* entry = ::readdir(d)) {
    std::string fname = entry->d_name;
    if (fname.size() <= prefix.size() + suffix.size()) continue;
    if (fname.compare(0, prefix.size(), prefix) != 0) continue;
    if (fname.compare(fname.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    std::string digits = fname.substr(
        prefix.size(), fname.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    gens.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  ::closedir(d);
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  return gens;
}

Result<std::uint64_t> SnapshotStore::Write(const std::string& encoded,
                                           std::size_t keep) {
  OCDD_RETURN_IF_ERROR(EnsureDir(dir_));
  std::vector<std::uint64_t> gens = Generations();
  const std::uint64_t generation = gens.empty() ? 1 : gens.back() + 1;

  // The fault points model distinct failure instants; the *point name*
  // selects the mode, any armed action fires it.
  std::string bytes = encoded;
  bool torn = false;
  if (injector_ != nullptr) {
    if (injector_->Poll("snapshot.bit_flip") != FaultAction::kNone &&
        !bytes.empty()) {
      // Flip a bit in the middle of the image, after all CRCs were computed.
      bytes[bytes.size() / 2] ^= 0x10;
    }
    if (injector_->Poll("snapshot.torn_write") != FaultAction::kNone) {
      torn = true;
    }
  }

  const std::string tmp_path = dir_ + "/" + name_ + ".tmp";
  const std::size_t write_len = torn ? bytes.size() / 2 : bytes.size();
  OCDD_RETURN_IF_ERROR(WriteFileSynced(tmp_path, bytes.data(), write_len));

  if (injector_ != nullptr &&
      injector_->Poll("snapshot.crash_before_rename") != FaultAction::kNone) {
    // Simulated crash: the temp file is durable but never became a
    // generation. A real crash would leave exactly this state.
    return Status::Internal(
        "snapshot fault injected: crash before rename (tmp left at " +
        tmp_path + ")");
  }

  const std::string final_path = PathFor(generation);
  if (IoEnv::Get().Rename("snapshot.rename", tmp_path, final_path) != 0) {
    return IoErrorStatus("rename", final_path);
  }
  OCDD_RETURN_IF_ERROR(SyncDir(dir_));

  // Read-back verification: only a snapshot that validates from disk counts
  // as written, and only then may older generations be pruned. A torn or
  // bit-flipped file fails here and the previous generations survive.
  OCDD_ASSIGN_OR_RETURN(std::string reread, ReadFileAll(final_path));
  OCDD_ASSIGN_OR_RETURN(SnapshotView view, SnapshotView::Decode(reread));
  (void)view;

  gens.push_back(generation);
  if (keep < 1) keep = 1;
  while (gens.size() > keep) {
    // Prune failures are deliberately ignored: an undeleted old generation
    // costs disk, not correctness, and `ocdd fsck` reports strays.
    IoEnv::Get().Unlink("snapshot.prune", PathFor(gens.front()));
    gens.erase(gens.begin());
  }
  return generation;
}

Result<LoadedSnapshot> SnapshotStore::Load() const {
  std::vector<std::uint64_t> gens = Generations();
  LoadedSnapshot loaded;
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    Result<std::string> bytes = ReadFileAll(PathFor(*it));
    if (bytes.ok()) {
      Result<SnapshotView> view = SnapshotView::Decode(bytes.value());
      if (view.ok()) {
        loaded.generation = *it;
        loaded.view = std::move(view).value();
        return loaded;
      }
    }
    ++loaded.corrupt_skipped;
  }
  return Status::NotFound("no valid snapshot generation in " + dir_ +
                          " (skipped " +
                          std::to_string(loaded.corrupt_skipped) +
                          " corrupt)");
}

}  // namespace ocdd
