#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace ocdd {

std::string_view StripAsciiWhitespace(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<std::int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  if (*begin == '+') ++begin;  // from_chars rejects a leading '+'
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  if (s.empty()) return std::nullopt;
  // Reject spellings strtod would accept but which are not plain decimal
  // numbers in data files (inf, nan, hex floats).
  for (char c : s) {
    bool plain = (c >= '0' && c <= '9') || c == '+' || c == '-' ||
                 c == '.' || c == 'e' || c == 'E';
    if (!plain) return std::nullopt;
  }
  std::string buf(s);  // strtod needs NUL termination
  char* endptr = nullptr;
  double value = std::strtod(buf.c_str(), &endptr);
  if (endptr != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

}  // namespace ocdd
