#ifndef OCDD_COMMON_RESULT_H_
#define OCDD_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace ocdd {

/// A value-or-error holder, in the spirit of `absl::StatusOr<T>` /
/// `std::expected<T, Status>`.
///
/// A `Result<T>` always holds either a `T` (then `ok()` is true) or a
/// non-OK `Status`. Accessing the value of an error result is a programming
/// bug and asserts in debug builds.
///
///   Result<Relation> r = ReadCsv(path);
///   if (!r.ok()) return r.status();
///   Relation rel = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, mirrors StatusOr ergonomics).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` is a caller bug and is
  /// converted into an Internal error to preserve the invariant.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK when holding a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates the error of a `Result` expression, otherwise binds its value.
///
///   OCDD_ASSIGN_OR_RETURN(Relation rel, ReadCsv(path));
#define OCDD_ASSIGN_OR_RETURN(decl, expr)           \
  OCDD_ASSIGN_OR_RETURN_IMPL_(                      \
      OCDD_RESULT_CONCAT_(_ocdd_result_, __LINE__), decl, expr)

#define OCDD_RESULT_CONCAT_INNER_(a, b) a##b
#define OCDD_RESULT_CONCAT_(a, b) OCDD_RESULT_CONCAT_INNER_(a, b)
#define OCDD_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  decl = std::move(tmp).value()

}  // namespace ocdd

#endif  // OCDD_COMMON_RESULT_H_
