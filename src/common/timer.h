#ifndef OCDD_COMMON_TIMER_H_
#define OCDD_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ocdd {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
///
/// The timer starts at construction; `Restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction/restart, in whole milliseconds.
  std::int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ocdd

#endif  // OCDD_COMMON_TIMER_H_
