#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace ocdd {

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Static chunking: one contiguous range per worker keeps per-task overhead
  // negligible for the fine-grained candidate checks this pool is used for.
  std::size_t chunks = std::min(n, workers_.size());
  std::atomic<std::size_t> next{0};
  for (std::size_t c = 0; c < chunks; ++c) {
    Submit([&next, n, &fn] {
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Only reachable when shutting down.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ocdd
