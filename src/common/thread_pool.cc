#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <utility>

namespace ocdd {

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::ResourceExhausted("ThreadPool::Submit after Shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return Status::OK();
}

Status ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  Status out = std::move(first_error_);
  first_error_ = Status::OK();
  return out;
}

namespace {

/// One worker's share of a ParallelFor range. Cache-line aligned so the
/// owner's morsel claims never false-share with a neighbor's cursor.
struct alignas(64) ForSpan {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

}  // namespace

Status ThreadPool::ParallelFor(std::size_t n,
                               const std::function<void(std::size_t)>& fn,
                               std::size_t grain) {
  if (n == 0) return Status::OK();
  const std::size_t workers = workers_.size();
  std::size_t morsel = grain;
  if (morsel == 0) {
    // ~16 morsels per worker: local claims are uncontended atomic adds, so
    // morsels only need to be coarse enough that *steals* stay rare.
    morsel = std::max<std::size_t>(
        1, std::min<std::size_t>(256, n / (16 * workers)));
  }

  if (n <= morsel) {
    // Below one morsel: the queue mutex + worker wakeup + idle barrier cost
    // more than the work; run on the caller, with worker-equivalent
    // exception-to-Status containment.
    try {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      return Status::Internal("task threw a non-std exception");
    }
    return Status::OK();
  }

  std::size_t chunks = std::min(workers, (n + morsel - 1) / morsel);
  std::vector<ForSpan> spans(chunks);
  std::size_t base = n / chunks;
  std::size_t rem = n % chunks;
  std::size_t cursor = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t size = base + (c < rem ? 1 : 0);
    spans[c].next.store(cursor, std::memory_order_relaxed);
    spans[c].end = cursor + size;
    cursor += size;
  }

  std::atomic<bool> failed{false};
  bool submit_failed = false;
  for (std::size_t c = 0; c < chunks; ++c) {
    Status submitted = Submit([&spans, &failed, &fn, morsel, chunks, c] {
      // Claims one morsel from a span; false when the span is dry. An
      // over-claimed cursor (past `end`) is harmless — remaining-work scans
      // clamp it to zero.
      auto claim = [&](ForSpan& s) -> bool {
        std::size_t begin = s.next.fetch_add(morsel, std::memory_order_relaxed);
        if (begin >= s.end) return false;
        std::size_t end = std::min(begin + morsel, s.end);
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          // The rest of this morsel (and any unclaimed work) is skipped,
          // per the "remaining indices may be skipped" contract.
          failed.store(true, std::memory_order_relaxed);
          throw;  // recorded by the worker wrapper
        }
        return true;
      };
      // Drain the local span, then steal from whichever span has the most
      // left — the best chance the victim's owner is a straggler.
      while (!failed.load(std::memory_order_relaxed) && claim(spans[c])) {
      }
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        std::size_t best = chunks;
        std::size_t best_rem = 0;
        for (std::size_t s = 0; s < chunks; ++s) {
          std::size_t pos = spans[s].next.load(std::memory_order_relaxed);
          std::size_t left = spans[s].end - std::min(pos, spans[s].end);
          if (left > best_rem) {
            best_rem = left;
            best = s;
          }
        }
        if (best == chunks) return;
        claim(spans[best]);
      }
    });
    if (!submitted.ok()) {
      // Tasks already submitted reference the stack state above: drain them
      // before unwinding.
      failed.store(true, std::memory_order_relaxed);
      submit_failed = true;
      break;
    }
  }
  Status status = WaitIdle();
  if (submit_failed && status.ok()) {
    return Status::ResourceExhausted("ThreadPool::ParallelFor after Shutdown");
  }
  return status;
}

void ThreadPool::RecordFailureLocked(Status status) {
  if (first_error_.ok()) first_error_ = std::move(status);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Only reachable when shutting down.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    Status failure = Status::OK();
    try {
      task();
    } catch (const std::exception& e) {
      failure = Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      failure = Status::Internal("task threw a non-std exception");
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!failure.ok()) RecordFailureLocked(std::move(failure));
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ocdd
