#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <utility>

namespace ocdd {

ThreadPool::ThreadPool(std::size_t num_threads) {
  std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::ResourceExhausted("ThreadPool::Submit after Shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return Status::OK();
}

Status ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  Status out = std::move(first_error_);
  first_error_ = Status::OK();
  return out;
}

Status ThreadPool::ParallelFor(std::size_t n,
                               const std::function<void(std::size_t)>& fn) {
  if (n == 0) return Status::OK();
  // Aim for ~4 blocks per worker: each worker claims a contiguous block of
  // indices with one atomic add, so the per-index cost is a plain loop
  // iteration while stragglers can still steal up to 3 extra blocks.
  std::size_t target_blocks = std::max<std::size_t>(1, 4 * workers_.size());
  std::size_t block = std::max<std::size_t>(1, (n + target_blocks - 1) / target_blocks);
  std::size_t num_blocks = (n + block - 1) / block;
  std::size_t chunks = std::min(num_blocks, workers_.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  for (std::size_t c = 0; c < chunks; ++c) {
    Status submitted = Submit([&next, &failed, n, block, &fn] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        std::size_t begin = next.fetch_add(block, std::memory_order_relaxed);
        if (begin >= n) return;
        std::size_t end = std::min(begin + block, n);
        try {
          for (std::size_t i = begin; i < end; ++i) fn(i);
        } catch (...) {
          // The rest of this block (and any unclaimed blocks) are skipped,
          // per the "remaining indices may be skipped" contract.
          failed.store(true, std::memory_order_relaxed);
          throw;  // recorded by the worker wrapper
        }
      }
    });
    if (!submitted.ok()) return submitted;
  }
  return WaitIdle();
}

void ThreadPool::RecordFailureLocked(Status status) {
  if (first_error_.ok()) first_error_ = std::move(status);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // Only reachable when shutting down.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    Status failure = Status::OK();
    try {
      task();
    } catch (const std::exception& e) {
      failure = Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      failure = Status::Internal("task threw a non-std exception");
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!failure.ok()) RecordFailureLocked(std::move(failure));
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace ocdd
