#ifndef OCDD_COMMON_STATUS_H_
#define OCDD_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace ocdd {

/// Error category for a failed operation.
///
/// The library does not throw exceptions across public API boundaries;
/// fallible operations return a `Status` (or a `Result<T>`, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kResourceExhausted,
  kParseError,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value carrying a code and a message.
///
/// `Status` is cheap to copy in the success case (no allocation) and carries
/// a descriptive message otherwise. Typical use:
///
///   Status s = DoThing();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A `kOk` code with
  /// a non-empty message is allowed but discouraged.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK status from the current function.
#define OCDD_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::ocdd::Status _ocdd_status = (expr);         \
    if (!_ocdd_status.ok()) return _ocdd_status;  \
  } while (false)

}  // namespace ocdd

#endif  // OCDD_COMMON_STATUS_H_
