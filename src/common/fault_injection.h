#ifndef OCDD_COMMON_FAULT_INJECTION_H_
#define OCDD_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace ocdd {

/// What an armed injection point does when it fires.
enum class FaultAction {
  kNone = 0,        ///< not armed / already fired
  kCancel,          ///< cooperative stop, as if `RunContext::Cancel()` raced in
  kAllocFailure,    ///< simulated allocation failure → memory-budget stop
  kThrow,           ///< throws FaultInjectedError from the injection point
};

/// The exception `FaultAction::kThrow` raises. Algorithms treat it like any
/// other exception escaping their check machinery: the run stops, the partial
/// result is returned with `StopReason::kFaultInjected`.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Test-only fault harness, compiled in always and enabled by attaching an
/// instance to a `RunContext`. Each discovery algorithm names the interesting
/// spots in its check loop (`"tane.check"`, `"ocd.generate"`, ...) and calls
/// `RunContext::AtInjectionPoint(name)` there; with no injector attached that
/// call is a single null-pointer test.
///
/// An arming is one-shot: the `after_hits`-th hit of the point fires the
/// action and disarms it. Hit counters keep counting either way, so tests can
/// discover how often a point is reached before choosing where to strike.
///
/// Thread-safe: `Poll` may be called from pool workers.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `point` to fire `action` on its `after_hits`-th hit from now
  /// (1 = the very next hit). Re-arming a point replaces the old arming.
  void Arm(const std::string& point, FaultAction action,
           std::uint64_t after_hits = 1);

  /// Counts a hit of `point`; returns the action to perform (usually kNone).
  FaultAction Poll(const char* point);

  /// Total hits of `point` so far (0 for never-reached points).
  std::uint64_t hits(const std::string& point) const;

  /// Every point name seen by `Poll`, sorted — lets tests enumerate the
  /// injection surface of an algorithm after a dry run.
  std::vector<std::string> SeenPoints() const;

  /// Clears hit counters and armings.
  void Reset();

 private:
  struct Arming {
    FaultAction action = FaultAction::kNone;
    std::uint64_t fire_at = 0;  ///< absolute hit count that triggers
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Arming> armed_;
  std::unordered_map<std::string, std::uint64_t> hits_;
};

}  // namespace ocdd

#endif  // OCDD_COMMON_FAULT_INJECTION_H_
