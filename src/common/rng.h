#ifndef OCDD_COMMON_RNG_H_
#define OCDD_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace ocdd {

/// Deterministic, seedable pseudo-random generator (splitmix64 core).
///
/// All dataset generators and sampling procedures in this repository are
/// driven by `Rng` so that every experiment is bit-reproducible from its
/// seed. splitmix64 is statistically strong enough for data synthesis and
/// has a trivially portable implementation (no libstdc++ distribution
/// differences across platforms).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t Uniform(std::uint64_t bound) {
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-like skewed index in [0, n): rank r has weight 1/(r+1)^s.
  /// Used by generators to produce realistic low-cardinality hot values.
  std::size_t Zipf(std::size_t n, double s);

  /// Returns `k` distinct indices sampled uniformly from [0, n) in random
  /// order (partial Fisher-Yates). Requires k <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
};

inline std::size_t Rng::Zipf(std::size_t n, double s) {
  // Inverse-CDF over the (small) support; generators call this with n in the
  // tens or hundreds, so the linear scan is fine.
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
  }
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    if (u <= acc) return r;
  }
  return n - 1;
}

inline std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                              std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + Uniform(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace ocdd

#endif  // OCDD_COMMON_RNG_H_
