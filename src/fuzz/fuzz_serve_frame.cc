// libFuzzer entry point for the `ocdd serve` wire-protocol boundary. Built
// only with -DOCDD_FUZZ=ON under Clang (-fsanitize=fuzzer,address); see
// docs/fuzzing.md and tools/run_fuzz.sh.

#include <cstddef>
#include <cstdint>

#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return ocdd::fuzz::RunServeFrameTarget(data, size);
}
