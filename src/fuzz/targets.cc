#include "fuzz/targets.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/snapshot.h"
#include "fuzz/fuzz_input.h"
#include "qa/claim_parser.h"
#include "qa/claims.h"
#include "relation/batch.h"
#include "relation/csv.h"
#include "report/json_reader.h"
#include "serve/protocol.h"

namespace ocdd::fuzz {

namespace {

/// Invariant check that crashes loudly (not an assert: it must fire in
/// Release builds, which is what both fuzzers and fuzz-lite run).
void Check(bool cond, const char* what) {
  if (cond) return;
  std::fprintf(stderr, "fuzz target invariant violated: %s\n", what);
  std::abort();
}

std::string Join(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace

int RunCsvTarget(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  rel::CsvOptions opts;
  switch (in.TakeChoice(3)) {
    case 0:
      opts.on_bad_row = rel::BadRowPolicy::kFail;
      break;
    case 1:
      opts.on_bad_row = rel::BadRowPolicy::kSkip;
      break;
    default:
      opts.on_bad_row = rel::BadRowPolicy::kQuarantine;
      break;
  }
  opts.has_header = in.TakeBool();
  opts.separator = in.TakeBool() ? ';' : ',';
  if (in.TakeBool()) {
    // Tight limits so the limit-rejection paths get fuzzed too.
    opts.limits.max_field_bytes = 16;
    opts.limits.max_record_bytes = 64;
    opts.limits.max_columns = 4;
  }
  const std::string text = in.TakeRest();

  auto read = rel::ReadCsvWithReport(text, opts);
  if (!read.ok()) return 0;
  const rel::CsvIngestReport& report = read->report;
  Check(report.rows_ingested == read->relation.num_rows(),
        "csv: ingested row count != relation rows");
  Check(report.records_total == report.rows_ingested + report.rows_rejected,
        "csv: records_total != ingested + rejected");
  Check(report.rejected_by_code.total() == report.rows_rejected,
        "csv: per-code counts don't sum to rows_rejected");
  if (opts.on_bad_row == rel::BadRowPolicy::kFail) {
    Check(report.clean(), "csv: kFail accepted input with rejections");
  }
  if (opts.on_bad_row == rel::BadRowPolicy::kQuarantine) {
    Check(report.quarantined_rows.size() == report.rows_rejected,
          "csv: quarantined rows != rows_rejected");
  }
  // Whatever was accepted must survive a write/read round-trip.
  auto again = rel::ReadCsvString(rel::WriteCsvString(read->relation));
  Check(again.ok(), "csv: accepted relation fails to re-read");
  Check(again->num_rows() == read->relation.num_rows(),
        "csv: round-trip changed the row count");
  return 0;
}

int RunSnapshotTarget(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  auto view = SnapshotView::Decode(bytes);
  if (view.ok()) {
    // Anything Decode accepts must re-encode and decode to the same
    // sections.
    SnapshotBuilder b;
    for (const std::string& name : view->SectionNames()) {
      b.AddSection(name, *view->Find(name));
    }
    auto again = SnapshotView::Decode(b.Encode());
    Check(again.ok(), "snapshot: re-encoded image fails to decode");
    Check(again->SectionNames() == view->SectionNames(),
          "snapshot: round-trip changed the section set");
  }
  // Sweep the primitive codec too: interleaved reads over raw bytes must
  // never run past the buffer, whatever the embedded length prefixes claim.
  ByteReader r(bytes);
  FuzzInput plan(data, size);
  for (int i = 0; i < 16 && r.ok(); ++i) {
    switch (plan.TakeChoice(6)) {
      case 0:
        r.U8();
        break;
      case 1:
        r.U32();
        break;
      case 2:
        r.U64();
        break;
      case 3:
        Check(r.Str().size() <= bytes.size(), "bytereader: oversized string");
        break;
      case 4:
        Check(r.U32Vec().size() * 4 <= bytes.size(),
              "bytereader: oversized vector");
        break;
      default:
        r.Bytes(plan.TakeByte());
        break;
    }
    Check(r.pos() <= bytes.size(), "bytereader: position ran past the end");
  }
  return 0;
}

int RunJsonReportTarget(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto value = report::ParseJson(text);
  if (!value.ok()) return 0;
  // Canonical serialization must be a fixed point.
  const std::string canonical = report::SerializeJson(*value);
  auto again = report::ParseJson(canonical);
  Check(again.ok(), "json: canonical form fails to re-parse");
  Check(report::SerializeJson(*again) == canonical,
        "json: canonical serialization is not a fixed point");
  // Diffing a document against itself reports no changes (or a structured
  // error for non-report shapes — never a crash).
  auto diff = report::DiffReports(*value, *value);
  if (diff.ok()) {
    Check(diff->empty(), "json: self-diff reported differences");
  }
  return 0;
}

int RunServeFrameTarget(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  serve::FrameLimits limits;
  if (in.TakeBool()) limits.max_payload_bytes = 64;  // exercise kOversized
  const std::size_t chunk = in.TakeByte() + 1;
  const std::string stream = in.TakeRest();

  // Decode the same byte stream twice — whole-buffer and in small chunks.
  // The framing must be oblivious to read() boundaries: same frames, same
  // typed error, in the same order.
  std::vector<std::string> whole_frames;
  serve::FrameError whole_error = serve::FrameError::kNone;
  {
    serve::FrameDecoder dec(limits);
    dec.Feed(stream);
    std::string payload;
    serve::FrameError err;
    for (;;) {
      auto ev = dec.Next(&payload, &err);
      if (ev == serve::FrameDecoder::Event::kFrame) {
        whole_frames.push_back(payload);
        continue;
      }
      if (ev == serve::FrameDecoder::Event::kError) whole_error = err;
      break;
    }
  }
  {
    serve::FrameDecoder dec(limits);
    std::vector<std::string> frames;
    serve::FrameError error = serve::FrameError::kNone;
    std::string payload;
    serve::FrameError err;
    std::size_t off = 0;
    bool dead = false;
    while (off < stream.size() && !dead) {
      std::size_t n = std::min(chunk, stream.size() - off);
      dec.Feed(stream.data() + off, n);
      off += n;
      for (;;) {
        auto ev = dec.Next(&payload, &err);
        if (ev == serve::FrameDecoder::Event::kFrame) {
          frames.push_back(payload);
          continue;
        }
        if (ev == serve::FrameDecoder::Event::kError) {
          error = err;
          dead = true;
        }
        break;
      }
    }
    Check(frames == whole_frames, "serve: chunked decode frames differ");
    Check(error == whole_error, "serve: chunked decode error differs");
  }

  // Whatever framed is an untrusted payload: parse it both ways. Accepted
  // requests/responses must round-trip through the canonical serialization.
  for (const std::string& payload : whole_frames) {
    auto request = serve::ParseRequest(payload);
    if (request.ok()) {
      const std::string canonical = serve::SerializeRequest(*request);
      auto again = serve::ParseRequest(canonical);
      Check(again.ok(), "serve: canonical request fails to re-parse");
      Check(serve::SerializeRequest(*again) == canonical,
            "serve: request serialization is not a fixed point");
      Check(serve::RequestDigest(*again) == serve::RequestDigest(*request),
            "serve: request digest unstable across round-trip");
    }
    auto response = serve::ParseResponse(payload);
    if (response.ok()) {
      const std::string canonical = serve::SerializeResponse(*response);
      auto again = serve::ParseResponse(canonical);
      Check(again.ok(), "serve: canonical response fails to re-parse");
      Check(serve::SerializeResponse(*again) == canonical,
            "serve: response serialization is not a fixed point");
    }
  }

  // Encode of any byte string must decode back to exactly that payload.
  const std::string reframed = serve::EncodeFrame(stream.substr(
      0, std::min<std::size_t>(stream.size(), limits.max_payload_bytes)));
  serve::FrameDecoder dec(limits);
  dec.Feed(reframed);
  std::string payload;
  serve::FrameError err;
  Check(dec.Next(&payload, &err) == serve::FrameDecoder::Event::kFrame,
        "serve: EncodeFrame output fails to decode");
  Check(payload.size() <= limits.max_payload_bytes,
        "serve: decoded payload exceeds the limit");
  return 0;
}

int RunBatchTarget(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);

  rel::BatchParseOptions opts;
  switch (in.TakeChoice(3)) {
    case 0:
      opts.on_bad_row = rel::BadRowPolicy::kFail;
      break;
    case 1:
      opts.on_bad_row = rel::BadRowPolicy::kSkip;
      break;
    default:
      opts.on_bad_row = rel::BadRowPolicy::kQuarantine;
      break;
  }
  if (in.TakeBool()) {
    // Tight limits so the limit-rejection paths get fuzzed too.
    opts.limits.max_line_bytes = 24;
    opts.limits.max_ops = 8;
  }

  // A fuzz-chosen target schema: typed cell parsing differs per column
  // type, so sweep homogeneous and mixed shapes.
  rel::Schema schema;
  switch (in.TakeChoice(3)) {
    case 0:
      schema.AddAttribute({"a", rel::DataType::kInt});
      schema.AddAttribute({"b", rel::DataType::kInt});
      schema.AddAttribute({"c", rel::DataType::kInt});
      break;
    case 1:
      schema.AddAttribute({"i", rel::DataType::kInt});
      schema.AddAttribute({"d", rel::DataType::kDouble});
      schema.AddAttribute({"s", rel::DataType::kString});
      break;
    default:
      schema.AddAttribute({"s", rel::DataType::kString});
      break;
  }
  const std::string text = in.TakeRest();

  auto parsed = rel::ParseBatchText(text, schema, opts);
  if (!parsed.ok()) return 0;
  const rel::BatchIngestReport& report = parsed->report;
  const rel::RowBatch& batch = parsed->batch;

  Check(report.records_total == report.ops_parsed + report.rows_rejected,
        "batch: records_total != parsed + rejected");
  Check(report.rejected_by_code.total() == report.rows_rejected,
        "batch: per-code counts don't sum to rows_rejected");
  if (opts.on_bad_row == rel::BadRowPolicy::kFail) {
    Check(report.clean(), "batch: kFail accepted input with rejections");
  }
  if (opts.on_bad_row == rel::BadRowPolicy::kQuarantine) {
    Check(report.quarantined_rows.size() == report.rows_rejected,
          "batch: quarantined rows != rows_rejected");
  }
  // Duplicate delete lines collapse, so num_ops may undershoot ops_parsed
  // but never exceed it.
  Check(batch.num_ops() <= report.ops_parsed,
        "batch: more ops than parsed lines");
  Check(std::is_sorted(batch.deletes.begin(), batch.deletes.end()),
        "batch: deletes not sorted");
  Check(std::adjacent_find(batch.deletes.begin(), batch.deletes.end()) ==
            batch.deletes.end(),
        "batch: duplicate delete indices survived parsing");
  for (const auto& row : batch.appends) {
    Check(row.size() == schema.num_columns(),
          "batch: append row width != schema width");
  }

  // Whatever parsed must survive a write/parse round-trip, and the
  // canonical rendering must be a fixed point.
  const std::string canonical = rel::WriteBatchText(batch, schema);
  auto again = rel::ParseBatchText(canonical, schema);
  Check(again.ok(), "batch: canonical rendering fails to re-parse");
  Check(again->report.clean(), "batch: canonical rendering has rejections");
  Check(rel::WriteBatchText(again->batch, schema) == canonical,
        "batch: write/parse is not a fixed point");

  // Apply against a small relation of the schema: out-of-range deletes are
  // typed errors, accepted applications obey the row-count identity.
  rel::Relation::Builder builder(schema);
  std::vector<rel::Value> row;
  for (std::size_t c = 0; c < schema.num_columns(); ++c) {
    switch (schema.attribute(c).type) {
      case rel::DataType::kInt:
        row.push_back(rel::Value::Int(static_cast<std::int64_t>(c)));
        break;
      case rel::DataType::kDouble:
        row.push_back(rel::Value::Double(0.5));
        break;
      case rel::DataType::kString:
        row.push_back(rel::Value::String("x"));
        break;
    }
  }
  for (int r = 0; r < 3; ++r) (void)builder.AddRow(row);
  rel::Relation base = std::move(builder).Build();
  auto applied = rel::ApplyBatch(base, batch);
  if (applied.ok()) {
    Check(applied->num_rows() ==
              base.num_rows() - batch.deletes.size() + batch.appends.size(),
          "batch: applied row count breaks the delete/append identity");
  }
  return 0;
}

int RunClaimsTarget(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto claims = qa::ParseClaimLines(text);
  if (!claims.ok()) return 0;
  // Render() of a parsed set must re-parse to the same rendering.
  const std::string rendered = Join(claims->Render());
  auto again = qa::ParseClaimLines(rendered);
  Check(again.ok(), "claims: rendered claims fail to re-parse");
  Check(Join(again->Render()) == rendered,
        "claims: render/parse is not a fixed point");
  return 0;
}

}  // namespace ocdd::fuzz
