#include "fuzz/targets.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/snapshot.h"
#include "fuzz/fuzz_input.h"
#include "qa/claim_parser.h"
#include "qa/claims.h"
#include "relation/csv.h"
#include "report/json_reader.h"

namespace ocdd::fuzz {

namespace {

/// Invariant check that crashes loudly (not an assert: it must fire in
/// Release builds, which is what both fuzzers and fuzz-lite run).
void Check(bool cond, const char* what) {
  if (cond) return;
  std::fprintf(stderr, "fuzz target invariant violated: %s\n", what);
  std::abort();
}

std::string Join(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace

int RunCsvTarget(const std::uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  rel::CsvOptions opts;
  switch (in.TakeChoice(3)) {
    case 0:
      opts.on_bad_row = rel::BadRowPolicy::kFail;
      break;
    case 1:
      opts.on_bad_row = rel::BadRowPolicy::kSkip;
      break;
    default:
      opts.on_bad_row = rel::BadRowPolicy::kQuarantine;
      break;
  }
  opts.has_header = in.TakeBool();
  opts.separator = in.TakeBool() ? ';' : ',';
  if (in.TakeBool()) {
    // Tight limits so the limit-rejection paths get fuzzed too.
    opts.limits.max_field_bytes = 16;
    opts.limits.max_record_bytes = 64;
    opts.limits.max_columns = 4;
  }
  const std::string text = in.TakeRest();

  auto read = rel::ReadCsvWithReport(text, opts);
  if (!read.ok()) return 0;
  const rel::CsvIngestReport& report = read->report;
  Check(report.rows_ingested == read->relation.num_rows(),
        "csv: ingested row count != relation rows");
  Check(report.records_total == report.rows_ingested + report.rows_rejected,
        "csv: records_total != ingested + rejected");
  Check(report.rejected_by_code.total() == report.rows_rejected,
        "csv: per-code counts don't sum to rows_rejected");
  if (opts.on_bad_row == rel::BadRowPolicy::kFail) {
    Check(report.clean(), "csv: kFail accepted input with rejections");
  }
  if (opts.on_bad_row == rel::BadRowPolicy::kQuarantine) {
    Check(report.quarantined_rows.size() == report.rows_rejected,
          "csv: quarantined rows != rows_rejected");
  }
  // Whatever was accepted must survive a write/read round-trip.
  auto again = rel::ReadCsvString(rel::WriteCsvString(read->relation));
  Check(again.ok(), "csv: accepted relation fails to re-read");
  Check(again->num_rows() == read->relation.num_rows(),
        "csv: round-trip changed the row count");
  return 0;
}

int RunSnapshotTarget(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  auto view = SnapshotView::Decode(bytes);
  if (view.ok()) {
    // Anything Decode accepts must re-encode and decode to the same
    // sections.
    SnapshotBuilder b;
    for (const std::string& name : view->SectionNames()) {
      b.AddSection(name, *view->Find(name));
    }
    auto again = SnapshotView::Decode(b.Encode());
    Check(again.ok(), "snapshot: re-encoded image fails to decode");
    Check(again->SectionNames() == view->SectionNames(),
          "snapshot: round-trip changed the section set");
  }
  // Sweep the primitive codec too: interleaved reads over raw bytes must
  // never run past the buffer, whatever the embedded length prefixes claim.
  ByteReader r(bytes);
  FuzzInput plan(data, size);
  for (int i = 0; i < 16 && r.ok(); ++i) {
    switch (plan.TakeChoice(6)) {
      case 0:
        r.U8();
        break;
      case 1:
        r.U32();
        break;
      case 2:
        r.U64();
        break;
      case 3:
        Check(r.Str().size() <= bytes.size(), "bytereader: oversized string");
        break;
      case 4:
        Check(r.U32Vec().size() * 4 <= bytes.size(),
              "bytereader: oversized vector");
        break;
      default:
        r.Bytes(plan.TakeByte());
        break;
    }
    Check(r.pos() <= bytes.size(), "bytereader: position ran past the end");
  }
  return 0;
}

int RunJsonReportTarget(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto value = report::ParseJson(text);
  if (!value.ok()) return 0;
  // Canonical serialization must be a fixed point.
  const std::string canonical = report::SerializeJson(*value);
  auto again = report::ParseJson(canonical);
  Check(again.ok(), "json: canonical form fails to re-parse");
  Check(report::SerializeJson(*again) == canonical,
        "json: canonical serialization is not a fixed point");
  // Diffing a document against itself reports no changes (or a structured
  // error for non-report shapes — never a crash).
  auto diff = report::DiffReports(*value, *value);
  if (diff.ok()) {
    Check(diff->empty(), "json: self-diff reported differences");
  }
  return 0;
}

int RunClaimsTarget(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto claims = qa::ParseClaimLines(text);
  if (!claims.ok()) return 0;
  // Render() of a parsed set must re-parse to the same rendering.
  const std::string rendered = Join(claims->Render());
  auto again = qa::ParseClaimLines(rendered);
  Check(again.ok(), "claims: rendered claims fail to re-parse");
  Check(Join(again->Render()) == rendered,
        "claims: render/parse is not a fixed point");
  return 0;
}

}  // namespace ocdd::fuzz
