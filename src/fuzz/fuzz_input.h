#ifndef OCDD_FUZZ_FUZZ_INPUT_H_
#define OCDD_FUZZ_FUZZ_INPUT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ocdd::fuzz {

/// Slices a fuzzer's raw byte buffer into typed pieces. The convention
/// shared by all our targets: a few leading bytes select options (policy,
/// separator, limit preset), the remainder is the untrusted document fed to
/// the parser under test. Every accessor degrades to a default instead of
/// reading past the end, so a 0-byte input exercises the defaults.
class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }

  /// Next byte, or 0 when exhausted.
  std::uint8_t TakeByte() {
    if (pos_ >= size_) return 0;
    return data_[pos_++];
  }

  /// Next byte reduced to [0, n); n must be > 0.
  std::uint8_t TakeChoice(std::uint8_t n) { return TakeByte() % n; }

  bool TakeBool() { return (TakeByte() & 1) != 0; }

  /// Everything not yet consumed, as the document to parse.
  std::string TakeRest() {
    std::string out(reinterpret_cast<const char*>(data_ + pos_),
                    size_ - pos_);
    pos_ = size_;
    return out;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace ocdd::fuzz

#endif  // OCDD_FUZZ_FUZZ_INPUT_H_
