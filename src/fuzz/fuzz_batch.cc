// libFuzzer entry point for the batch wire-format boundary (incremental
// maintenance, docs/incremental.md). Built only with -DOCDD_FUZZ=ON under
// Clang (-fsanitize=fuzzer,address); see docs/fuzzing.md and
// tools/run_fuzz.sh.

#include <cstddef>
#include <cstdint>

#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return ocdd::fuzz::RunBatchTarget(data, size);
}
