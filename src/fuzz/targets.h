#ifndef OCDD_FUZZ_TARGETS_H_
#define OCDD_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>

namespace ocdd::fuzz {

/// The untrusted-byte boundaries, as plain functions over a raw byte
/// buffer. Each one drives a deserializer plus the invariants that must
/// hold on whatever it accepts (round-trips, count accounting), aborting
/// the process on a violation — under libFuzzer/ASan that is a reported
/// crash, under the fuzz-lite corpus replay a test failure.
///
/// The same functions back both harnesses: the libFuzzer entry points in
/// fuzz_*.cc (built only with -DOCDD_FUZZ=ON under Clang) and the
/// compiler-agnostic tests/fuzz_lite_test.cc corpus replay that keeps these
/// paths in tier-1 on every build. All return 0 (the libFuzzer convention
/// for "input processed").
int RunCsvTarget(const std::uint8_t* data, std::size_t size);
int RunSnapshotTarget(const std::uint8_t* data, std::size_t size);
int RunJsonReportTarget(const std::uint8_t* data, std::size_t size);
int RunClaimsTarget(const std::uint8_t* data, std::size_t size);
/// The `ocdd serve` wire boundary: frame decoding (incremental and
/// whole-buffer must agree), request/response payload parsing, and
/// round-trip stability of whatever is accepted.
int RunServeFrameTarget(const std::uint8_t* data, std::size_t size);
/// The batch wire format behind incremental maintenance
/// (docs/incremental.md): ParseBatchText under every bad-row policy and a
/// fuzz-chosen schema, the ingest accounting identities, the
/// WriteBatchText round-trip fixed point, and a crash-free ApplyBatch of
/// whatever parsed against a small relation of that schema.
int RunBatchTarget(const std::uint8_t* data, std::size_t size);

}  // namespace ocdd::fuzz

#endif  // OCDD_FUZZ_TARGETS_H_
