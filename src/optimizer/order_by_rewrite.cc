#include "optimizer/order_by_rewrite.h"

#include <algorithm>
#include <deque>
#include <set>

namespace ocdd::opt {

const char* RewriteReasonName(RewriteReason r) {
  switch (r) {
    case RewriteReason::kKept:
      return "kept";
    case RewriteReason::kDuplicate:
      return "duplicate";
    case RewriteReason::kConstant:
      return "constant";
    case RewriteReason::kOrderedByPrefix:
      return "ordered-by-prefix";
  }
  return "unknown";
}

void OdKnowledgeBase::AddOd(const od::OrderDependency& od) {
  ods_.push_back(od);
}

void OdKnowledgeBase::AddOcd(const od::OrderCompatibility& ocd) {
  AttributeList xy = ocd.lhs.Concat(ocd.rhs);
  AttributeList yx = ocd.rhs.Concat(ocd.lhs);
  ods_.push_back(od::OrderDependency{xy, yx});
  ods_.push_back(od::OrderDependency{yx, xy});
}

void OdKnowledgeBase::AddEquivalenceClass(const std::vector<ColumnId>& cls) {
  if (cls.size() >= 2) classes_.push_back(cls);
}

void OdKnowledgeBase::AddConstant(ColumnId c) { constants_.push_back(c); }

ColumnId OdKnowledgeBase::Rep(ColumnId c) const {
  for (const std::vector<ColumnId>& cls : classes_) {
    for (ColumnId member : cls) {
      if (member == c) return cls.front();
    }
  }
  return c;
}

AttributeList OdKnowledgeBase::RepList(const AttributeList& l) const {
  std::vector<ColumnId> out;
  out.reserve(l.size());
  for (std::size_t i = 0; i < l.size(); ++i) out.push_back(Rep(l[i]));
  return AttributeList(std::move(out)).Normalized();
}

bool OdKnowledgeBase::Orders(const AttributeList& lhs,
                             const AttributeList& rhs) const {
  // Constants are ordered by anything; strip them from the goal first.
  std::vector<ColumnId> goal_attrs;
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    ColumnId r = Rep(rhs[i]);
    if (std::find(constants_.begin(), constants_.end(), rhs[i]) !=
        constants_.end()) {
      continue;
    }
    goal_attrs.push_back(r);
  }
  AttributeList goal = AttributeList(std::move(goal_attrs)).Normalized();
  if (goal.empty()) return true;
  AttributeList start = RepList(lhs);

  // BFS over attribute lists. Edges out of node N:
  //  * every proper prefix of N            (Reflexivity: N → prefix)
  //  * RHS of any stored OD whose LHS is a prefix of N
  //    (N → LHS by reflexivity, LHS → RHS stored, transitivity chains).
  std::set<AttributeList> visited;
  std::deque<AttributeList> frontier;
  auto push = [&](const AttributeList& n) {
    if (visited.insert(n).second) frontier.push_back(n);
  };
  push(start);
  while (!frontier.empty()) {
    AttributeList node = std::move(frontier.front());
    frontier.pop_front();
    if (node.HasPrefix(goal)) return true;
    for (std::size_t len = 1; len < node.size(); ++len) {
      push(AttributeList(std::vector<ColumnId>(node.ids().begin(),
                                               node.ids().begin() + len)));
    }
    for (const od::OrderDependency& od : ods_) {
      AttributeList od_lhs = RepList(od.lhs);
      if (node.HasPrefix(od_lhs)) push(RepList(od.rhs));
    }
  }
  return false;
}

RewriteResult OdKnowledgeBase::SimplifyOrderBy(
    const std::vector<ColumnId>& clause) const {
  RewriteResult result;
  for (ColumnId c : clause) {
    RewriteStep step;
    step.column = c;
    if (std::find(result.columns.begin(), result.columns.end(), c) !=
        result.columns.end()) {
      step.reason = RewriteReason::kDuplicate;
    } else if (std::find(constants_.begin(), constants_.end(), c) !=
               constants_.end()) {
      step.reason = RewriteReason::kConstant;
    } else if (!result.columns.empty() &&
               Orders(AttributeList(result.columns), AttributeList{c})) {
      step.reason = RewriteReason::kOrderedByPrefix;
      step.justification = AttributeList(result.columns).ToString() +
                           " -> [" + std::to_string(c) + "]";
    } else {
      step.reason = RewriteReason::kKept;
      result.columns.push_back(c);
    }
    result.steps.push_back(std::move(step));
  }
  return result;
}

}  // namespace ocdd::opt
