#ifndef OCDD_OPTIMIZER_ORDER_BY_REWRITE_H_
#define OCDD_OPTIMIZER_ORDER_BY_REWRITE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "od/attribute_list.h"
#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::opt {

using od::AttributeList;
using rel::ColumnId;

/// Why a column was kept in or dropped from an ORDER BY clause.
enum class RewriteReason {
  kKept,             ///< contributes ordering information
  kDuplicate,        ///< already appears earlier in the clause
  kConstant,         ///< constant column — ordered by anything
  kOrderedByPrefix,  ///< the kept prefix already orders this column
};

const char* RewriteReasonName(RewriteReason r);

/// One per input ORDER BY column, in clause order.
struct RewriteStep {
  ColumnId column = 0;
  RewriteReason reason = RewriteReason::kKept;
  /// For kOrderedByPrefix: a rendering of the derivation (diagnostics).
  std::string justification;
};

struct RewriteResult {
  /// The simplified clause (a subsequence of the input).
  std::vector<ColumnId> columns;
  std::vector<RewriteStep> steps;
};

/// A knowledge base of discovered dependencies used to rewrite SQL
/// `ORDER BY` clauses — the paper's §1 application: given
/// `income → bracket` and `income ↔ tax`,
/// `ORDER BY income, bracket, tax` simplifies to `ORDER BY income`.
///
/// `Orders()` is a *sound but incomplete* derivation procedure (general OD
/// inference is co-NP-complete [7]): it searches the graph whose nodes are
/// attribute lists and whose edges are (i) list → each of its prefixes
/// (Reflexivity) and (ii) stored ODs applied to any node they prefix
/// (Reflexivity + Transitivity). Equivalence classes are handled by
/// rewriting every attribute to its class representative first.
class OdKnowledgeBase {
 public:
  /// Registers a discovered OD `lhs → rhs`.
  void AddOd(const od::OrderDependency& od);

  /// Registers an OCD `X ~ Y` as its defining pair of ODs
  /// (`XY → YX`, `YX → XY`).
  void AddOcd(const od::OrderCompatibility& ocd);

  /// Declares the columns of `cls` mutually order-equivalent
  /// (e.g. from column reduction); the first member is the representative.
  void AddEquivalenceClass(const std::vector<ColumnId>& cls);

  /// Declares `c` constant (ordered by everything).
  void AddConstant(ColumnId c);

  /// True when the knowledge base can derive that sorting by `lhs` implies
  /// the data is sorted by `rhs`.
  bool Orders(const AttributeList& lhs, const AttributeList& rhs) const;

  /// Left-to-right clause simplification: a column is dropped when it is a
  /// duplicate, constant, or already ordered by the kept prefix.
  RewriteResult SimplifyOrderBy(const std::vector<ColumnId>& clause) const;

 private:
  ColumnId Rep(ColumnId c) const;
  AttributeList RepList(const AttributeList& l) const;

  std::vector<od::OrderDependency> ods_;
  std::vector<std::vector<ColumnId>> classes_;
  std::vector<ColumnId> constants_;
};

}  // namespace ocdd::opt

#endif  // OCDD_OPTIMIZER_ORDER_BY_REWRITE_H_
