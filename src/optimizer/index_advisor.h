#ifndef OCDD_OPTIMIZER_INDEX_ADVISOR_H_
#define OCDD_OPTIMIZER_INDEX_ADVISOR_H_

#include <cstddef>
#include <vector>

#include "optimizer/order_by_rewrite.h"

namespace ocdd::opt {

/// One recommended composite index.
struct IndexRecommendation {
  /// Key columns of the composite index, in order.
  std::vector<ColumnId> columns;
  /// Indices (into the input workload) of the ORDER BY clauses this index
  /// satisfies — including via discovered order dependencies.
  std::vector<std::size_t> serves;

  friend bool operator==(const IndexRecommendation& a,
                         const IndexRecommendation& b) {
    return a.columns == b.columns && a.serves == b.serves;
  }
};

/// Index selection driven by order dependencies — the second §1 application
/// ("order dependencies can be exploited ... for selecting indexes").
///
/// Given a workload of ORDER BY clauses, the advisor:
///  1. simplifies each clause with the knowledge base (dropping columns the
///     kept prefix already orders);
///  2. greedily keeps one index per group of clauses that order each other:
///     longer simplified clauses are considered first, and a clause whose
///     ordering an already-kept index derives (`kb.Orders(index, clause)`)
///     is served by that index instead of getting its own.
///
/// The result is deterministic; it is a greedy cover, not a provably
/// minimum one (minimum index selection is NP-hard already without ODs).
std::vector<IndexRecommendation> AdviseIndexes(
    const OdKnowledgeBase& kb,
    const std::vector<std::vector<ColumnId>>& workload);

}  // namespace ocdd::opt

#endif  // OCDD_OPTIMIZER_INDEX_ADVISOR_H_
