#include "optimizer/index_advisor.h"

#include <algorithm>
#include <numeric>

namespace ocdd::opt {

std::vector<IndexRecommendation> AdviseIndexes(
    const OdKnowledgeBase& kb,
    const std::vector<std::vector<ColumnId>>& workload) {
  // 1. Simplify every clause.
  std::vector<std::vector<ColumnId>> simplified;
  simplified.reserve(workload.size());
  for (const std::vector<ColumnId>& clause : workload) {
    simplified.push_back(kb.SimplifyOrderBy(clause).columns);
  }

  // 2. Consider clauses longest-first (ties broken by column ids, then by
  //    workload position) so broad indexes get kept before narrow ones.
  std::vector<std::size_t> order(workload.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (simplified[a].size() != simplified[b].size()) {
                       return simplified[a].size() > simplified[b].size();
                     }
                     return simplified[a] < simplified[b];
                   });

  std::vector<IndexRecommendation> kept;
  for (std::size_t w : order) {
    const std::vector<ColumnId>& clause = simplified[w];
    if (clause.empty()) {
      // Fully redundant clause (all constants/duplicates): any index — or
      // none — serves it; attach to the first kept index if one exists.
      if (!kept.empty()) kept.front().serves.push_back(w);
      continue;
    }
    bool served = false;
    for (IndexRecommendation& idx : kept) {
      if (kb.Orders(AttributeList(idx.columns), AttributeList(clause))) {
        idx.serves.push_back(w);
        served = true;
        break;
      }
    }
    if (!served) {
      kept.push_back(IndexRecommendation{clause, {w}});
    }
  }

  for (IndexRecommendation& idx : kept) {
    std::sort(idx.serves.begin(), idx.serves.end());
  }
  std::sort(kept.begin(), kept.end(),
            [](const IndexRecommendation& a, const IndexRecommendation& b) {
              return a.columns < b.columns;
            });
  return kept;
}

}  // namespace ocdd::opt
