#ifndef OCDD_ALGO_PARTITION_STRIPPED_PARTITION_H_
#define OCDD_ALGO_PARTITION_STRIPPED_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relation/coded_relation.h"

namespace ocdd::algo {

/// A stripped partition π̂(X): the equivalence classes of rows agreeing on
/// an attribute set X, with singleton classes removed (TANE [9]).
///
/// Stripped partitions support the two checks the set-lattice algorithms
/// (TANE, FASTOD) need:
///  * FD `X → A` holds iff `error()` of π(X) equals that of π(X ∪ {A});
///  * swap checks only need classes with ≥ 2 rows, which is exactly what a
///    stripped partition retains.
class StrippedPartition {
 public:
  StrippedPartition() = default;

  /// Partition by a single column's codes.
  static StrippedPartition ForColumn(const rel::CodedRelation& relation,
                                     rel::ColumnId column);

  /// Partition of the empty attribute set: one class with all rows (unless
  /// the relation has < 2 rows, in which case it is empty).
  static StrippedPartition ForEmptySet(std::size_t num_rows);

  /// Product π(X ∪ Y) from π(X) and π(Y) — the standard TANE probe-table
  /// refinement, O(stripped rows).
  static StrippedPartition Product(const StrippedPartition& a,
                                   const StrippedPartition& b,
                                   std::size_t num_rows);

  std::size_t num_classes() const { return classes_.size(); }

  /// Σ |class| over stripped classes.
  std::size_t num_stripped_rows() const { return stripped_rows_; }

  /// e(π) = num_stripped_rows() − num_classes(); FD `X → A` holds iff
  /// e(π(X)) == e(π(X ∪ {A})).
  std::size_t error() const { return stripped_rows_ - classes_.size(); }

  const std::vector<std::vector<std::uint32_t>>& classes() const {
    return classes_;
  }

  /// Heap-inclusive footprint estimate, the unit the RunContext memory
  /// budget is charged in by the set-lattice algorithms.
  std::size_t MemoryBytes() const {
    std::size_t bytes =
        sizeof(StrippedPartition) +
        classes_.capacity() * sizeof(std::vector<std::uint32_t>);
    for (const std::vector<std::uint32_t>& cls : classes_) {
      bytes += cls.capacity() * sizeof(std::uint32_t);
    }
    return bytes;
  }

 private:
  std::vector<std::vector<std::uint32_t>> classes_;
  std::size_t stripped_rows_ = 0;
};

}  // namespace ocdd::algo

#endif  // OCDD_ALGO_PARTITION_STRIPPED_PARTITION_H_
