#include "algo/partition/stripped_partition.h"

#include <algorithm>

namespace ocdd::algo {

StrippedPartition StrippedPartition::ForColumn(
    const rel::CodedRelation& relation, rel::ColumnId column) {
  const std::vector<std::int32_t>& codes = relation.column(column).codes;
  std::int32_t num_codes = relation.column(column).num_distinct;

  // Codes are dense ranks in [0, num_distinct); bucket directly.
  std::vector<std::vector<std::uint32_t>> buckets(
      static_cast<std::size_t>(std::max<std::int32_t>(num_codes, 0)));
  for (std::uint32_t row = 0; row < codes.size(); ++row) {
    std::size_t code = static_cast<std::size_t>(codes[row]);
    if (code >= buckets.size()) buckets.resize(code + 1);
    buckets[code].push_back(row);
  }

  StrippedPartition out;
  for (std::vector<std::uint32_t>& cls : buckets) {
    if (cls.size() >= 2) {
      out.stripped_rows_ += cls.size();
      out.classes_.push_back(std::move(cls));
    }
  }
  return out;
}

StrippedPartition StrippedPartition::ForEmptySet(std::size_t num_rows) {
  StrippedPartition out;
  if (num_rows >= 2) {
    std::vector<std::uint32_t> all(num_rows);
    for (std::size_t i = 0; i < num_rows; ++i) {
      all[i] = static_cast<std::uint32_t>(i);
    }
    out.stripped_rows_ = num_rows;
    out.classes_.push_back(std::move(all));
  }
  return out;
}

StrippedPartition StrippedPartition::Product(const StrippedPartition& a,
                                             const StrippedPartition& b,
                                             std::size_t num_rows) {
  // TANE's probe-table product: label rows by their class in `a`, then split
  // each class of `a` by the class structure of `b`.
  constexpr std::int32_t kNoClass = -1;
  std::vector<std::int32_t> class_of(num_rows, kNoClass);
  for (std::size_t i = 0; i < a.classes_.size(); ++i) {
    for (std::uint32_t row : a.classes_[i]) {
      class_of[row] = static_cast<std::int32_t>(i);
    }
  }

  // For each class of `b`, group its rows by their `a`-class; groups of ≥ 2
  // rows form classes of the product.
  StrippedPartition out;
  std::vector<std::vector<std::uint32_t>> splits(a.classes_.size());
  std::vector<std::size_t> touched;
  for (const std::vector<std::uint32_t>& cls_b : b.classes_) {
    touched.clear();
    for (std::uint32_t row : cls_b) {
      std::int32_t ca = class_of[row];
      if (ca == kNoClass) continue;  // row is a singleton in `a`
      std::size_t idx = static_cast<std::size_t>(ca);
      if (splits[idx].empty()) touched.push_back(idx);
      splits[idx].push_back(row);
    }
    for (std::size_t idx : touched) {
      if (splits[idx].size() >= 2) {
        out.stripped_rows_ += splits[idx].size();
        out.classes_.push_back(std::move(splits[idx]));
      }
      splits[idx].clear();
    }
  }
  return out;
}

}  // namespace ocdd::algo
