#include "algo/fastod/fastod.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "algo/attr_set.h"
#include "algo/partition/stripped_partition.h"
#include "common/fault_injection.h"
#include "common/snapshot.h"
#include "common/timer.h"
#include "od/dependency_set.h"

namespace ocdd::algo {

namespace {

struct Pair {
  std::size_t a;  ///< a < b
  std::size_t b;

  friend bool operator==(const Pair& x, const Pair& y) {
    return x.a == y.a && x.b == y.b;
  }
  friend bool operator<(const Pair& x, const Pair& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
};

struct Node {
  AttrSet set;
  StrippedPartition partition;
  AttrSet cc;                      ///< constancy candidates (TANE's C⁺)
  std::vector<Pair> swap_pairs;    ///< active pairs, context = set \ {a,b}
  std::vector<Pair> falsified;     ///< pairs whose check found a swap
};

struct SwapOutcome {
  bool swap = false;
  bool a_varies = false;  ///< some context class holds ≥ 2 distinct a-values
  bool b_varies = false;
};

/// Checks order compatibility of columns `a`, `b` within every class of the
/// context partition. A *swap* is a same-class pair of rows with
/// `a` strictly increasing and `b` strictly decreasing.
SwapOutcome CheckSwap(const rel::CodedRelation& relation,
                      const StrippedPartition& context, std::size_t a,
                      std::size_t b) {
  SwapOutcome out;
  const std::vector<std::int32_t>& ca = relation.column(a).codes;
  const std::vector<std::int32_t>& cb = relation.column(b).codes;

  std::vector<std::pair<std::int32_t, std::int32_t>> vals;
  for (const std::vector<std::uint32_t>& cls : context.classes()) {
    vals.clear();
    vals.reserve(cls.size());
    for (std::uint32_t row : cls) vals.emplace_back(ca[row], cb[row]);
    std::sort(vals.begin(), vals.end());

    if (vals.front().first != vals.back().first) out.a_varies = true;

    // Walk a-groups; track the max b seen in earlier groups.
    bool have_prev = false;
    std::int32_t prev_max_b = 0;
    std::size_t i = 0;
    while (i < vals.size()) {
      std::size_t j = i + 1;
      std::int32_t group_min_b = vals[i].second;
      std::int32_t group_max_b = vals[i].second;
      while (j < vals.size() && vals[j].first == vals[i].first) {
        group_max_b = std::max(group_max_b, vals[j].second);
        ++j;
      }
      if (group_min_b != group_max_b) out.b_varies = true;
      if (have_prev) {
        if (prev_max_b != group_min_b) out.b_varies = true;
        if (prev_max_b > group_min_b) {
          out.swap = true;
        }
      }
      prev_max_b = have_prev ? std::max(prev_max_b, group_max_b) : group_max_b;
      have_prev = true;
      i = j;
    }
    if (out.swap && out.a_varies && out.b_varies) return out;  // early exit
  }
  return out;
}

}  // namespace

FastodResult DiscoverFastod(const rel::CodedRelation& relation,
                            const FastodOptions& options) {
  WallTimer timer;
  FastodResult result;
  std::size_t n = relation.num_columns();
  std::size_t m = relation.num_rows();
  if (n == 0 || n > AttrSet::kMaxAttrs) {
    result.completed = n == 0;
    return result;
  }

  const AttrSet universe = AttrSet::FullUniverse(n);

  RunContext local_ctx;
  RunContext* ctx =
      options.run_context != nullptr ? options.run_context : &local_ctx;
  if (options.max_checks != 0) ctx->set_check_budget(options.max_checks);
  if (options.time_limit_seconds > 0.0) {
    ctx->set_time_limit_seconds(options.time_limit_seconds);
  }

  // Partition history for the two preceding levels.
  std::unordered_map<AttrSet, StrippedPartition, AttrSetHash> hist_prev1;
  std::unordered_map<AttrSet, StrippedPartition, AttrSetHash> hist_prev2;

  std::vector<Node> level;
  std::size_t level_bytes = 0;
  std::size_t ell = 1;
  bool aborted = false;
  StopReason cap_reason = StopReason::kNone;

  CheckpointStats& ck = result.checkpoint_stats;
  ck.enabled = options.checkpoint.enabled();
  std::unique_ptr<SnapshotStore> snap;
  const std::uint64_t fingerprint = ck.enabled ? relation.Fingerprint() : 0;
  if (ck.enabled) {
    snap = std::make_unique<SnapshotStore>(options.checkpoint.dir, "fastod");
    snap->set_fault_injector(ctx->fault_injector());
  }

  // Partitions are not persisted; any set's stripped partition can be
  // refolded from its attributes, so snapshots carry only the lattice sets.
  auto partition_for = [&](const AttrSet& s) {
    std::vector<std::size_t> attrs = s.ToVector();
    if (attrs.empty()) return StrippedPartition::ForEmptySet(m);
    StrippedPartition p = StrippedPartition::ForColumn(relation, attrs[0]);
    for (std::size_t i = 1; i < attrs.size(); ++i) {
      p = StrippedPartition::Product(
          p, StrippedPartition::ForColumn(relation, attrs[i]), m);
    }
    return p;
  };

  auto encode_state = [&](bool completed_flag) {
    SnapshotBuilder b;
    ByteWriter meta;
    meta.U32(1);  // state format version
    meta.U64(fingerprint);
    meta.U64(ell);
    meta.U64(result.num_checks);
    meta.U8(completed_flag ? 1 : 0);
    b.AddSection("meta", meta.Take());
    ByteWriter fr;
    fr.U32(static_cast<std::uint32_t>(level.size()));
    for (const Node& node : level) {
      fr.U64(node.set.lo);
      fr.U64(node.set.hi);
      fr.U64(node.cc.lo);
      fr.U64(node.cc.hi);
      fr.U32(static_cast<std::uint32_t>(node.swap_pairs.size()));
      for (const Pair& p : node.swap_pairs) {
        fr.U32(static_cast<std::uint32_t>(p.a));
        fr.U32(static_cast<std::uint32_t>(p.b));
      }
      fr.U32(static_cast<std::uint32_t>(node.falsified.size()));
      for (const Pair& p : node.falsified) {
        fr.U32(static_cast<std::uint32_t>(p.a));
        fr.U32(static_cast<std::uint32_t>(p.b));
      }
    }
    b.AddSection("frontier", fr.Take());
    ByteWriter hw;
    for (const auto* hist : {&hist_prev1, &hist_prev2}) {
      hw.U32(static_cast<std::uint32_t>(hist->size()));
      for (const auto& [set, part] : *hist) {
        hw.U64(set.lo);
        hw.U64(set.hi);
      }
    }
    b.AddSection("hist", hw.Take());
    ByteWriter ow;
    ow.U32(static_cast<std::uint32_t>(result.ods.size()));
    for (const od::CanonicalOd& dep : result.ods) {
      ow.U8(dep.kind == od::CanonicalOd::Kind::kConstancy ? 0 : 1);
      ow.IdVec(dep.context);
      ow.U32(static_cast<std::uint32_t>(dep.left));
      ow.U32(static_cast<std::uint32_t>(dep.right));
    }
    b.AddSection("ods", ow.Take());
    return b.Encode();
  };

  auto write_snapshot = [&](const std::string& blob) {
    Result<std::uint64_t> gen =
        snap->Write(blob, options.checkpoint.keep_generations);
    if (gen.ok()) {
      ++ck.snapshots_written;
      ctx->MarkCheckpointed();
      return true;
    }
    ck.warning = gen.status().message();
    return false;
  };

  auto decode_state = [&](const SnapshotView& view) {
    const std::string* meta_s = view.Find("meta");
    const std::string* fr_s = view.Find("frontier");
    const std::string* hist_s = view.Find("hist");
    const std::string* ods_s = view.Find("ods");
    if (meta_s == nullptr || fr_s == nullptr || hist_s == nullptr ||
        ods_s == nullptr) {
      ck.warning = "resume skipped: snapshot missing sections";
      return false;
    }
    ByteReader meta(*meta_s);
    if (meta.U32() != 1) {
      ck.warning = "resume skipped: unknown snapshot state version";
      return false;
    }
    if (meta.U64() != fingerprint) {
      ck.warning = "resume skipped: snapshot is for a different relation";
      return false;
    }
    std::uint64_t s_ell = meta.U64();
    std::uint64_t s_checks = meta.U64();
    meta.U8();  // completed flag; an empty frontier says the same thing
    if (!meta.ok()) {
      ck.warning = "resume skipped: snapshot meta damaged";
      return false;
    }
    ByteReader fr(*fr_s);
    std::uint32_t count = fr.U32();
    std::vector<Node> restored;
    restored.reserve(count);
    for (std::uint32_t i = 0; i < count && fr.ok(); ++i) {
      Node node;
      node.set.lo = fr.U64();
      node.set.hi = fr.U64();
      node.cc.lo = fr.U64();
      node.cc.hi = fr.U64();
      std::uint32_t num_pairs = fr.U32();
      for (std::uint32_t p = 0; p < num_pairs && fr.ok(); ++p) {
        std::size_t a = fr.U32();
        std::size_t b = fr.U32();
        node.swap_pairs.push_back(Pair{a, b});
      }
      std::uint32_t num_falsified = fr.U32();
      for (std::uint32_t p = 0; p < num_falsified && fr.ok(); ++p) {
        std::size_t a = fr.U32();
        std::size_t b = fr.U32();
        node.falsified.push_back(Pair{a, b});
      }
      restored.push_back(std::move(node));
    }
    if (!fr.ok()) {
      ck.warning = "resume skipped: snapshot frontier damaged";
      return false;
    }
    ByteReader hr(*hist_s);
    std::vector<AttrSet> hist1_sets;
    std::vector<AttrSet> hist2_sets;
    for (auto* sets : {&hist1_sets, &hist2_sets}) {
      std::uint32_t num = hr.U32();
      for (std::uint32_t i = 0; i < num && hr.ok(); ++i) {
        AttrSet s;
        s.lo = hr.U64();
        s.hi = hr.U64();
        sets->push_back(s);
      }
    }
    if (!hr.ok()) {
      ck.warning = "resume skipped: snapshot history damaged";
      return false;
    }
    ByteReader orr(*ods_s);
    std::uint32_t num_ods = orr.U32();
    std::vector<od::CanonicalOd> restored_ods;
    restored_ods.reserve(num_ods);
    for (std::uint32_t i = 0; i < num_ods && orr.ok(); ++i) {
      od::CanonicalOd dep;
      dep.kind = orr.U8() == 0 ? od::CanonicalOd::Kind::kConstancy
                               : od::CanonicalOd::Kind::kOrderCompatible;
      dep.context = orr.IdVec();
      dep.left = orr.U32();
      dep.right = orr.U32();
      restored_ods.push_back(std::move(dep));
    }
    if (!orr.ok()) {
      ck.warning = "resume skipped: snapshot ods damaged";
      return false;
    }
    // Commit: refold the frontier/history partitions and adopt the state.
    for (Node& node : restored) {
      node.partition = partition_for(node.set);
      std::size_t bytes = node.partition.MemoryBytes();
      if (!ctx->ChargeMemory(bytes)) {
        aborted = true;
        break;
      }
      level_bytes += bytes;
    }
    for (const AttrSet& s : hist1_sets) hist_prev1.emplace(s, partition_for(s));
    for (const AttrSet& s : hist2_sets) hist_prev2.emplace(s, partition_for(s));
    level = std::move(restored);
    ell = static_cast<std::size_t>(s_ell);
    result.num_checks = s_checks;
    result.ods = std::move(restored_ods);
    return true;
  };

  bool resumed = false;
  if (ck.enabled && options.checkpoint.resume) {
    Result<LoadedSnapshot> loaded = snap->Load();
    if (loaded.ok()) {
      ck.corrupt_skipped = loaded->corrupt_skipped;
      if (decode_state(loaded->view)) {
        resumed = true;
        ck.resumed = true;
        ck.resumed_generation = loaded->generation;
      }
    } else {
      ck.warning = "resume skipped: " + loaded.status().message();
    }
  }

  if (!resumed) {
    hist_prev1.emplace(AttrSet{}, StrippedPartition::ForEmptySet(m));
    // Level 1.
    level.reserve(n);
    for (std::size_t a = 0; a < n && !aborted; ++a) {
      Node node;
      node.set = AttrSet::Single(a);
      node.partition = StrippedPartition::ForColumn(relation, a);
      node.cc = universe;
      std::size_t bytes = node.partition.MemoryBytes();
      if (!ctx->ChargeMemory(bytes)) {
        aborted = true;
        break;
      }
      level_bytes += bytes;
      level.push_back(std::move(node));
    }
  }

  std::string pending_blob;
  bool pending_written = true;
  try {
  while (!level.empty() && !aborted) {
    if (snap) {
      pending_blob = encode_state(false);
      pending_written = false;
      if (ctx->CheckpointDue()) {
        pending_written = write_snapshot(pending_blob);
      }
    }
    ctx->AtInjectionPoint("fastod.level");
    if (options.max_level != 0 && ell > options.max_level) {
      aborted = true;
      cap_reason = StopReason::kLevelCap;
      break;
    }

    // --- constancy (FD) candidates, exactly TANE ---
    for (Node& node : level) {
      if (ctx->ShouldStop()) {
        aborted = true;
        break;
      }
      for (std::size_t a : node.set.Intersect(node.cc).ToVector()) {
        AttrSet lhs = node.set.WithoutAttr(a);
        auto it = hist_prev1.find(lhs);
        if (it == hist_prev1.end()) continue;
        ctx->AtInjectionPoint("fastod.fd_check");
        ++result.num_checks;
        ctx->CountCheck(1);
        if (it->second.error() == node.partition.error()) {
          od::CanonicalOd fd;
          fd.kind = od::CanonicalOd::Kind::kConstancy;
          for (std::size_t b : lhs.ToVector()) {
            fd.context.push_back(b);
          }
          fd.right = a;
          result.ods.push_back(std::move(fd));
          node.cc.Remove(a);
          node.cc = node.cc.Without(universe.Without(node.set));
        }
      }
    }
    if (aborted) break;

    // --- swap candidates ---
    for (Node& node : level) {
      if (ctx->ShouldStop()) {
        aborted = true;
        break;
      }
      for (const Pair& pair : node.swap_pairs) {
        AttrSet context_set =
            node.set.WithoutAttr(pair.a).WithoutAttr(pair.b);
        const StrippedPartition* context = nullptr;
        auto it = hist_prev2.find(context_set);
        if (it != hist_prev2.end()) context = &it->second;
        if (context == nullptr) continue;
        ctx->AtInjectionPoint("fastod.swap_check");
        ++result.num_checks;
        ctx->CountCheck(1);
        SwapOutcome outcome = CheckSwap(relation, *context, pair.a, pair.b);
        if (outcome.swap) {
          node.falsified.push_back(pair);
        } else if (outcome.a_varies && outcome.b_varies) {
          // Valid and not implied by a constancy OD over this context.
          od::CanonicalOd dep;
          dep.kind = od::CanonicalOd::Kind::kOrderCompatible;
          for (std::size_t c : context_set.ToVector()) {
            dep.context.push_back(c);
          }
          dep.left = pair.a;
          dep.right = pair.b;
          result.ods.push_back(std::move(dep));
        }
        // Valid-but-trivial pairs (a or b constant per class): the
        // constancy OD implies compatibility here and in every larger
        // context — neither emitted nor propagated.
      }
    }
    if (aborted) break;

    // --- prune nodes with nothing left to contribute ---
    std::vector<Node> kept;
    kept.reserve(level.size());
    for (Node& node : level) {
      if (!node.cc.empty() || !node.falsified.empty()) {
        kept.push_back(std::move(node));
      }
    }
    level = std::move(kept);

    // --- generate level ℓ+1 ---
    std::unordered_map<AttrSet, std::size_t, AttrSetHash> index;
    for (std::size_t i = 0; i < level.size(); ++i) {
      index.emplace(level[i].set, i);
    }
    hist_prev2 = std::move(hist_prev1);
    hist_prev1.clear();
    for (const Node& node : level) {
      hist_prev1.emplace(node.set, node.partition);
    }

    std::map<std::vector<std::size_t>, std::vector<std::size_t>> blocks;
    for (std::size_t i = 0; i < level.size(); ++i) {
      std::vector<std::size_t> attrs = level[i].set.ToVector();
      attrs.pop_back();
      blocks[attrs].push_back(i);
    }

    std::vector<Node> next;
    std::size_t next_bytes = 0;
    for (const auto& [prefix, members] : blocks) {
      if (aborted) break;
      for (std::size_t i = 0; i < members.size() && !aborted; ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (ctx->ShouldStop()) {
            aborted = true;
            break;
          }
          const Node& x1 = level[members[i]];
          const Node& x2 = level[members[j]];
          AttrSet y = x1.set.Union(x2.set);

          bool all_present = true;
          AttrSet cc = universe;
          for (std::size_t c : y.ToVector()) {
            auto it = index.find(y.WithoutAttr(c));
            if (it == index.end()) {
              all_present = false;
              break;
            }
            cc = cc.Intersect(level[it->second].cc);
          }
          if (!all_present) continue;

          // A pair {a,b} is active in Y iff every immediate sub-node
          // swap-falsified it (valid pairs were pruned as implied).
          std::vector<Pair> pairs;
          if (ell >= 2) {
            std::vector<std::size_t> attrs = y.ToVector();
            for (std::size_t pi = 0; pi < attrs.size(); ++pi) {
              for (std::size_t pj = pi + 1; pj < attrs.size(); ++pj) {
                Pair pair{attrs[pi], attrs[pj]};
                bool active = true;
                for (std::size_t c : attrs) {
                  if (c == pair.a || c == pair.b) continue;
                  const Node& sub = level[index.at(y.WithoutAttr(c))];
                  if (std::find(sub.falsified.begin(), sub.falsified.end(),
                                pair) == sub.falsified.end()) {
                    active = false;
                    break;
                  }
                }
                if (active) pairs.push_back(pair);
              }
            }
          } else {
            // ell == 1: level-2 nodes get their single initial pair.
            std::vector<std::size_t> attrs = y.ToVector();
            pairs.push_back(Pair{attrs[0], attrs[1]});
          }

          if (cc.empty() && pairs.empty()) continue;
          ctx->AtInjectionPoint("fastod.generate");
          Node node;
          node.set = y;
          node.partition =
              StrippedPartition::Product(x1.partition, x2.partition, m);
          node.cc = cc;
          node.swap_pairs = std::move(pairs);
          std::size_t bytes = node.partition.MemoryBytes();
          if (!ctx->ChargeMemory(bytes)) {
            aborted = true;
            break;
          }
          next_bytes += bytes;
          next.push_back(std::move(node));
        }
      }
    }
    if (aborted) break;
    level = std::move(next);
    ctx->ReleaseMemory(level_bytes);
    level_bytes = next_bytes;
    ++ell;
  }
  } catch (const FaultInjectedError&) {
    ctx->RequestStop(StopReason::kFaultInjected);
    aborted = true;
  }
  ctx->ReleaseMemory(level_bytes);

  aborted = aborted || ctx->stop_requested();

  // Drain-to-checkpoint (see ocd_discover.cc for the protocol).
  if (snap) {
    if (aborted) {
      if (!pending_written && !pending_blob.empty()) {
        write_snapshot(pending_blob);
      }
    } else {
      level.clear();
      write_snapshot(encode_state(true));
    }
  }

  result.stop_state.checks = result.num_checks;
  result.stop_state.level = ell;
  result.stop_state.frontier_size = level.size();

  od::SortUnique(result.ods);
  for (const od::CanonicalOd& dep : result.ods) {
    if (dep.kind == od::CanonicalOd::Kind::kConstancy) {
      ++result.num_constancy;
    } else {
      ++result.num_compatible;
    }
  }
  result.completed = !aborted;
  result.stop_reason = ctx->stop_reason() != StopReason::kNone
                           ? ctx->stop_reason()
                           : cap_reason;
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ocdd::algo
