#ifndef OCDD_ALGO_FASTOD_FASTOD_H_
#define OCDD_ALGO_FASTOD_FASTOD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/run_context.h"
#include "common/snapshot.h"
#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::algo {

struct FastodOptions {
  /// Injectable run control (deadline, budgets, cancellation, fault
  /// injection); nullptr = private context from the knobs below.
  RunContext* run_context = nullptr;

  std::uint64_t max_checks = 0;     ///< 0 = unlimited
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  std::size_t max_level = 0;        ///< cap on |X| (0 = unlimited)

  /// Crash-safe checkpointing at lattice-level boundaries (the natural
  /// snapshot point of the level-wise traversal); see docs/checkpointing.md.
  /// Stripped partitions are not persisted — they are recomputed from the
  /// serialized attribute sets on resume.
  CheckpointConfig checkpoint;
};

struct FastodResult {
  /// Canonical set-based ODs: constancy (`X: [] ↦ A`, ≡ the FD `X → A`)
  /// and order compatibility (`X: A ~ B`), sorted.
  std::vector<od::CanonicalOd> ods;

  std::size_t num_constancy = 0;  ///< the `|Fd|` column of Table 6
  std::size_t num_compatible = 0;
  std::uint64_t num_checks = 0;
  bool completed = true;
  StopReason stop_reason = StopReason::kNone;  ///< kNone when completed
  /// Where the run was when it stopped (meaningful when `!completed`).
  StopState stop_state;
  /// What checkpointing did (zero-initialized when disabled).
  CheckpointStats checkpoint_stats;
  double elapsed_seconds = 0.0;
};

/// Reimplementation of FASTOD (Szlichta et al. [7]): complete OD discovery
/// via the set-based canonical form, level-wise over the attribute-set
/// lattice with stripped partitions. Worst case O(2ⁿ) in the number of
/// attributes — versus OCDDISCOVER's factorial — which is the complexity
/// trade-off Table 6 probes on real data.
///
/// Candidates per node X (|X| = ℓ):
///  * constancy `X\A : [] ↦ A` for `A ∈ X ∩ C_c(X)` — exactly TANE's
///    minimal-FD machinery;
///  * swap `X\{A,B} : A ~ B` for pairs that were swap-falsified in every
///    immediate sub-context (a pair valid in a smaller context is implied
///    in all larger ones and therefore pruned; a pair whose context
///    functionally determines A or B is implied by that constancy OD and
///    neither emitted nor propagated).
///
/// Note: the paper (§5.2.2) reports that the *original authors'* FASTOD
/// binary emits spurious ODs (e.g. on the NUMBERS dataset). This
/// implementation is correct — the NUMBERS regression test pins down the
/// sound output.
FastodResult DiscoverFastod(const rel::CodedRelation& relation,
                            const FastodOptions& options = {});

}  // namespace ocdd::algo

#endif  // OCDD_ALGO_FASTOD_FASTOD_H_
