#include "algo/fastod/fastod_bid.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "algo/attr_set.h"
#include "algo/partition/stripped_partition.h"
#include "common/fault_injection.h"
#include "common/timer.h"
#include "od/dependency_set.h"

namespace ocdd::algo {

std::string BidCanonicalOd::ToString(
    const rel::CodedRelation& relation) const {
  std::string out = "{";
  for (std::size_t i = 0; i < context.size(); ++i) {
    if (i > 0) out += ",";
    out += relation.column_name(context[i]);
  }
  out += "}: ";
  switch (kind) {
    case Kind::kConstancy:
      out += "[] -> " + relation.column_name(right);
      break;
    case Kind::kConcordant:
      out += relation.column_name(left) + "+ ~ " +
             relation.column_name(right) + "+";
      break;
    case Kind::kAntiConcordant:
      out += relation.column_name(left) + "+ ~ " +
             relation.column_name(right) + "-";
      break;
  }
  return out;
}

namespace {

struct BidPair {
  std::size_t a;  ///< a < b
  std::size_t b;
  bool anti;      ///< false: A↑ ~ B↑, true: A↑ ~ B↓

  friend bool operator==(const BidPair& x, const BidPair& y) {
    return x.a == y.a && x.b == y.b && x.anti == y.anti;
  }
};

struct Node {
  AttrSet set;
  StrippedPartition partition;
  AttrSet cc;
  std::vector<BidPair> swap_pairs;
  std::vector<BidPair> falsified;
};

struct SwapOutcome {
  bool swap = false;
  bool a_varies = false;
  bool b_varies = false;
};

/// Polarity-aware swap check within each context class.
/// Concordant violation: a strictly ↑ while b strictly ↓.
/// Anti-concordant violation: a strictly ↑ while b strictly ↑.
SwapOutcome CheckSwapBid(const rel::CodedRelation& relation,
                         const StrippedPartition& context, std::size_t a,
                         std::size_t b, bool anti) {
  SwapOutcome out;
  const std::vector<std::int32_t>& ca = relation.column(a).codes;
  const std::vector<std::int32_t>& cb = relation.column(b).codes;

  std::vector<std::pair<std::int32_t, std::int32_t>> vals;
  for (const std::vector<std::uint32_t>& cls : context.classes()) {
    vals.clear();
    vals.reserve(cls.size());
    for (std::uint32_t row : cls) vals.emplace_back(ca[row], cb[row]);
    std::sort(vals.begin(), vals.end());

    if (vals.front().first != vals.back().first) out.a_varies = true;

    bool have_prev = false;
    std::int32_t prev_max_b = 0;
    std::int32_t prev_min_b = 0;
    std::size_t i = 0;
    while (i < vals.size()) {
      std::size_t j = i + 1;
      std::int32_t group_min_b = vals[i].second;
      std::int32_t group_max_b = vals[i].second;
      while (j < vals.size() && vals[j].first == vals[i].first) {
        group_max_b = std::max(group_max_b, vals[j].second);
        ++j;
      }
      if (group_min_b != group_max_b) out.b_varies = true;
      if (have_prev) {
        if (prev_max_b != group_min_b) out.b_varies = true;
        if (!anti && prev_max_b > group_min_b) out.swap = true;
        if (anti && prev_min_b < group_max_b) out.swap = true;
      }
      if (have_prev) {
        prev_max_b = std::max(prev_max_b, group_max_b);
        prev_min_b = std::min(prev_min_b, group_min_b);
      } else {
        prev_max_b = group_max_b;
        prev_min_b = group_min_b;
      }
      have_prev = true;
      i = j;
    }
    if (out.swap && out.a_varies && out.b_varies) return out;
  }
  return out;
}

}  // namespace

FastodBidResult DiscoverFastodBid(const rel::CodedRelation& relation,
                                  const FastodBidOptions& options) {
  WallTimer timer;
  FastodBidResult result;
  std::size_t n = relation.num_columns();
  std::size_t m = relation.num_rows();
  if (n == 0 || n > AttrSet::kMaxAttrs) {
    result.completed = n == 0;
    return result;
  }

  const AttrSet universe = AttrSet::FullUniverse(n);

  RunContext local_ctx;
  RunContext* ctx =
      options.run_context != nullptr ? options.run_context : &local_ctx;
  if (options.max_checks != 0) ctx->set_check_budget(options.max_checks);
  if (options.time_limit_seconds > 0.0) {
    ctx->set_time_limit_seconds(options.time_limit_seconds);
  }

  std::unordered_map<AttrSet, StrippedPartition, AttrSetHash> hist_prev1;
  std::unordered_map<AttrSet, StrippedPartition, AttrSetHash> hist_prev2;
  hist_prev1.emplace(AttrSet{}, StrippedPartition::ForEmptySet(m));

  std::vector<Node> level;
  std::size_t level_bytes = 0;
  bool aborted = false;
  StopReason cap_reason = StopReason::kNone;
  level.reserve(n);
  for (std::size_t a = 0; a < n && !aborted; ++a) {
    Node node;
    node.set = AttrSet::Single(a);
    node.partition = StrippedPartition::ForColumn(relation, a);
    node.cc = universe;
    std::size_t bytes = node.partition.MemoryBytes();
    if (!ctx->ChargeMemory(bytes)) {
      aborted = true;
      break;
    }
    level_bytes += bytes;
    level.push_back(std::move(node));
  }

  std::size_t ell = 1;
  try {
  while (!level.empty() && !aborted) {
    ctx->AtInjectionPoint("fastod_bid.level");
    if (options.max_level != 0 && ell > options.max_level) {
      aborted = true;
      cap_reason = StopReason::kLevelCap;
      break;
    }

    // Constancy (FD) candidates — identical to TANE / FASTOD.
    for (Node& node : level) {
      if (ctx->ShouldStop()) {
        aborted = true;
        break;
      }
      for (std::size_t a : node.set.Intersect(node.cc).ToVector()) {
        AttrSet lhs = node.set.WithoutAttr(a);
        auto it = hist_prev1.find(lhs);
        if (it == hist_prev1.end()) continue;
        ctx->AtInjectionPoint("fastod_bid.fd_check");
        ++result.num_checks;
        ctx->CountCheck(1);
        if (it->second.error() == node.partition.error()) {
          BidCanonicalOd fd;
          fd.kind = BidCanonicalOd::Kind::kConstancy;
          for (std::size_t b : lhs.ToVector()) fd.context.push_back(b);
          fd.right = a;
          result.ods.push_back(std::move(fd));
          node.cc.Remove(a);
          node.cc = node.cc.Without(universe.Without(node.set));
        }
      }
    }
    if (aborted) break;

    // Polarized swap candidates.
    for (Node& node : level) {
      if (ctx->ShouldStop()) {
        aborted = true;
        break;
      }
      for (const BidPair& pair : node.swap_pairs) {
        AttrSet context_set =
            node.set.WithoutAttr(pair.a).WithoutAttr(pair.b);
        auto it = hist_prev2.find(context_set);
        if (it == hist_prev2.end()) continue;
        ctx->AtInjectionPoint("fastod_bid.swap_check");
        ++result.num_checks;
        ctx->CountCheck(1);
        SwapOutcome outcome =
            CheckSwapBid(relation, it->second, pair.a, pair.b, pair.anti);
        if (outcome.swap) {
          node.falsified.push_back(pair);
        } else if (outcome.a_varies && outcome.b_varies) {
          BidCanonicalOd od;
          od.kind = pair.anti ? BidCanonicalOd::Kind::kAntiConcordant
                              : BidCanonicalOd::Kind::kConcordant;
          for (std::size_t c : context_set.ToVector()) {
            od.context.push_back(c);
          }
          od.left = pair.a;
          od.right = pair.b;
          result.ods.push_back(std::move(od));
        }
      }
    }
    if (aborted) break;

    // Prune and generate, as in FASTOD.
    std::vector<Node> kept;
    kept.reserve(level.size());
    for (Node& node : level) {
      if (!node.cc.empty() || !node.falsified.empty()) {
        kept.push_back(std::move(node));
      }
    }
    level = std::move(kept);

    std::unordered_map<AttrSet, std::size_t, AttrSetHash> index;
    for (std::size_t i = 0; i < level.size(); ++i) {
      index.emplace(level[i].set, i);
    }
    hist_prev2 = std::move(hist_prev1);
    hist_prev1.clear();
    for (const Node& node : level) {
      hist_prev1.emplace(node.set, node.partition);
    }

    std::map<std::vector<std::size_t>, std::vector<std::size_t>> blocks;
    for (std::size_t i = 0; i < level.size(); ++i) {
      std::vector<std::size_t> attrs = level[i].set.ToVector();
      attrs.pop_back();
      blocks[attrs].push_back(i);
    }

    std::vector<Node> next;
    std::size_t next_bytes = 0;
    for (const auto& [prefix, members] : blocks) {
      if (aborted) break;
      for (std::size_t i = 0; i < members.size() && !aborted; ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (ctx->ShouldStop()) {
            aborted = true;
            break;
          }
          const Node& x1 = level[members[i]];
          const Node& x2 = level[members[j]];
          AttrSet y = x1.set.Union(x2.set);

          bool all_present = true;
          AttrSet cc = universe;
          for (std::size_t c : y.ToVector()) {
            auto it = index.find(y.WithoutAttr(c));
            if (it == index.end()) {
              all_present = false;
              break;
            }
            cc = cc.Intersect(level[it->second].cc);
          }
          if (!all_present) continue;

          std::vector<BidPair> pairs;
          std::vector<std::size_t> attrs = y.ToVector();
          if (ell >= 2) {
            for (std::size_t pi = 0; pi < attrs.size(); ++pi) {
              for (std::size_t pj = pi + 1; pj < attrs.size(); ++pj) {
                for (bool anti : {false, true}) {
                  BidPair pair{attrs[pi], attrs[pj], anti};
                  bool active = true;
                  for (std::size_t c : attrs) {
                    if (c == pair.a || c == pair.b) continue;
                    const Node& sub = level[index.at(y.WithoutAttr(c))];
                    if (std::find(sub.falsified.begin(),
                                  sub.falsified.end(),
                                  pair) == sub.falsified.end()) {
                      active = false;
                      break;
                    }
                  }
                  if (active) pairs.push_back(pair);
                }
              }
            }
          } else {
            pairs.push_back(BidPair{attrs[0], attrs[1], false});
            pairs.push_back(BidPair{attrs[0], attrs[1], true});
          }

          if (cc.empty() && pairs.empty()) continue;
          ctx->AtInjectionPoint("fastod_bid.generate");
          Node node;
          node.set = y;
          node.partition =
              StrippedPartition::Product(x1.partition, x2.partition, m);
          node.cc = cc;
          node.swap_pairs = std::move(pairs);
          std::size_t bytes = node.partition.MemoryBytes();
          if (!ctx->ChargeMemory(bytes)) {
            aborted = true;
            break;
          }
          next_bytes += bytes;
          next.push_back(std::move(node));
        }
      }
    }
    if (aborted) break;
    level = std::move(next);
    ctx->ReleaseMemory(level_bytes);
    level_bytes = next_bytes;
    ++ell;
  }
  } catch (const FaultInjectedError&) {
    ctx->RequestStop(StopReason::kFaultInjected);
    aborted = true;
  }
  ctx->ReleaseMemory(level_bytes);

  aborted = aborted || ctx->stop_requested();
  od::SortUnique(result.ods);
  for (const BidCanonicalOd& od : result.ods) {
    switch (od.kind) {
      case BidCanonicalOd::Kind::kConstancy:
        ++result.num_constancy;
        break;
      case BidCanonicalOd::Kind::kConcordant:
        ++result.num_concordant;
        break;
      case BidCanonicalOd::Kind::kAntiConcordant:
        ++result.num_anti;
        break;
    }
  }
  result.completed = !aborted;
  result.stop_reason = ctx->stop_reason() != StopReason::kNone
                           ? ctx->stop_reason()
                           : cap_reason;
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ocdd::algo
