#ifndef OCDD_ALGO_FASTOD_FASTOD_BID_H_
#define OCDD_ALGO_FASTOD_FASTOD_BID_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::algo {

/// Bidirectional canonical order dependencies — the extension of FASTOD the
/// paper's related work cites ([?] after [7], i.e. FASTOD-BID): the
/// compatibility form `X: A ~ B` generalizes to per-pair direction
/// polarity, `X: A↑ ~ B↑` (concordant) or `X: A↑ ~ B↓` (anti-concordant).
/// Within every equivalence class of the context X, the two attributes must
/// move together (concordant) or oppositely (anti-concordant).
///
/// Mirror symmetry (`A↓ ~ B↓` ≡ `A↑ ~ B↑`, `A↓ ~ B↑` ≡ `A↑ ~ B↓`) makes two
/// polarities per unordered pair canonical; the left attribute is always
/// ascending.
struct BidCanonicalOd {
  /// Constancy ODs are direction-free and identical to FASTOD's.
  enum class Kind { kConstancy, kConcordant, kAntiConcordant };

  Kind kind = Kind::kConstancy;
  std::vector<rel::ColumnId> context;  ///< sorted, duplicate-free
  rel::ColumnId left = 0;              ///< unused for kConstancy
  rel::ColumnId right = 0;

  std::string ToString(const rel::CodedRelation& relation) const;

  friend bool operator==(const BidCanonicalOd& a, const BidCanonicalOd& b) {
    return a.kind == b.kind && a.context == b.context && a.left == b.left &&
           a.right == b.right;
  }
  friend bool operator<(const BidCanonicalOd& a, const BidCanonicalOd& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.context != b.context) return a.context < b.context;
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  }
};

struct FastodBidOptions {
  /// Injectable run control (deadline, budgets, cancellation, fault
  /// injection); nullptr = private context from the knobs below.
  RunContext* run_context = nullptr;

  std::uint64_t max_checks = 0;     ///< 0 = unlimited
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  std::size_t max_level = 0;        ///< cap on |X| (0 = unlimited)
};

struct FastodBidResult {
  std::vector<BidCanonicalOd> ods;  ///< sorted
  std::size_t num_constancy = 0;
  std::size_t num_concordant = 0;
  std::size_t num_anti = 0;
  std::uint64_t num_checks = 0;
  bool completed = true;
  StopReason stop_reason = StopReason::kNone;  ///< kNone when completed
  double elapsed_seconds = 0.0;
};

/// Level-wise discovery of minimal bidirectional canonical ODs: the FASTOD
/// lattice where each swap-candidate pair carries a polarity. A polarity is
/// emitted in the smallest context where it holds non-trivially and pruned
/// everywhere above; a pair/polarity falsified in every immediate
/// sub-context propagates. Unidirectional FASTOD's output is exactly the
/// constancy + concordant subset of this algorithm's output.
FastodBidResult DiscoverFastodBid(const rel::CodedRelation& relation,
                                  const FastodBidOptions& options = {});

}  // namespace ocdd::algo

#endif  // OCDD_ALGO_FASTOD_FASTOD_BID_H_
