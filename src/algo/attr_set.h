#ifndef OCDD_ALGO_ATTR_SET_H_
#define OCDD_ALGO_ATTR_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relation/coded_relation.h"

namespace ocdd::algo {

/// A set of attribute ids over schemas of up to 128 columns, stored as two
/// 64-bit words. The set-lattice algorithms (TANE, FASTOD) key their levels
/// on this type; 128 bits cover the widest evaluation dataset (FLIGHT_1K,
/// 109 columns).
struct AttrSet {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  static constexpr std::size_t kMaxAttrs = 128;

  static AttrSet Single(std::size_t i) {
    AttrSet s;
    s.Add(i);
    return s;
  }

  static AttrSet FullUniverse(std::size_t n) {
    AttrSet s;
    for (std::size_t i = 0; i < n; ++i) s.Add(i);
    return s;
  }

  void Add(std::size_t i) {
    if (i < 64) {
      lo |= (1ULL << i);
    } else {
      hi |= (1ULL << (i - 64));
    }
  }
  void Remove(std::size_t i) {
    if (i < 64) {
      lo &= ~(1ULL << i);
    } else {
      hi &= ~(1ULL << (i - 64));
    }
  }
  bool Contains(std::size_t i) const {
    if (i < 64) return (lo >> i) & 1;
    return (hi >> (i - 64)) & 1;
  }

  bool empty() const { return lo == 0 && hi == 0; }
  std::size_t Count() const {
    return static_cast<std::size_t>(__builtin_popcountll(lo) +
                                    __builtin_popcountll(hi));
  }

  AttrSet Union(const AttrSet& o) const { return {lo | o.lo, hi | o.hi}; }
  AttrSet Intersect(const AttrSet& o) const { return {lo & o.lo, hi & o.hi}; }
  AttrSet Without(const AttrSet& o) const { return {lo & ~o.lo, hi & ~o.hi}; }
  AttrSet WithoutAttr(std::size_t i) const {
    AttrSet s = *this;
    s.Remove(i);
    return s;
  }
  bool IsSubsetOf(const AttrSet& o) const {
    return (lo & ~o.lo) == 0 && (hi & ~o.hi) == 0;
  }

  /// Member ids in ascending order.
  std::vector<std::size_t> ToVector() const {
    std::vector<std::size_t> out;
    std::uint64_t w = lo;
    while (w != 0) {
      out.push_back(static_cast<std::size_t>(__builtin_ctzll(w)));
      w &= w - 1;
    }
    w = hi;
    while (w != 0) {
      out.push_back(static_cast<std::size_t>(__builtin_ctzll(w)) + 64);
      w &= w - 1;
    }
    return out;
  }

  friend bool operator==(const AttrSet& a, const AttrSet& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator<(const AttrSet& a, const AttrSet& b) {
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.lo < b.lo;
  }
};

struct AttrSetHash {
  std::size_t operator()(const AttrSet& s) const {
    std::uint64_t h = s.lo * 0x9e3779b97f4a7c15ULL;
    h ^= s.hi + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace ocdd::algo

#endif  // OCDD_ALGO_ATTR_SET_H_
