#include "algo/ucc/ucc.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "algo/attr_set.h"
#include "algo/partition/stripped_partition.h"
#include "common/fault_injection.h"
#include "common/timer.h"
#include "od/dependency_set.h"

namespace ocdd::algo {

std::string Ucc::ToString(const rel::CodedRelation& relation) const {
  std::string out = "{";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ",";
    out += relation.column_name(columns[i]);
  }
  out += "}";
  return out;
}

namespace {

struct Node {
  AttrSet set;
  StrippedPartition partition;
};

}  // namespace

UccResult DiscoverUccs(const rel::CodedRelation& relation,
                       const UccOptions& options) {
  WallTimer timer;
  UccResult result;
  std::size_t n = relation.num_columns();
  std::size_t m = relation.num_rows();
  if (n == 0 || n > AttrSet::kMaxAttrs) {
    result.completed = n == 0;
    return result;
  }

  RunContext local_ctx;
  RunContext* ctx =
      options.run_context != nullptr ? options.run_context : &local_ctx;
  if (options.max_checks != 0) ctx->set_check_budget(options.max_checks);
  if (options.time_limit_seconds > 0.0) {
    ctx->set_time_limit_seconds(options.time_limit_seconds);
  }

  std::vector<Node> level;
  std::size_t level_bytes = 0;
  bool aborted = false;
  StopReason cap_reason = StopReason::kNone;
  level.reserve(n);
  for (std::size_t a = 0; a < n && !aborted; ++a) {
    Node node;
    node.set = AttrSet::Single(a);
    node.partition = StrippedPartition::ForColumn(relation, a);
    std::size_t bytes = node.partition.MemoryBytes();
    if (!ctx->ChargeMemory(bytes)) {
      aborted = true;
      break;
    }
    level_bytes += bytes;
    level.push_back(std::move(node));
  }

  std::size_t size = 1;
  try {
  while (!level.empty() && !aborted) {
    ctx->AtInjectionPoint("ucc.level");
    if (options.max_size != 0 && size > options.max_size) {
      aborted = true;
      cap_reason = StopReason::kLevelCap;
      break;
    }

    // Emit unique nodes (minimal by construction), keep the rest.
    std::vector<Node> survivors;
    survivors.reserve(level.size());
    for (Node& node : level) {
      if (ctx->ShouldStop()) {
        aborted = true;
        break;
      }
      ctx->AtInjectionPoint("ucc.check");
      ++result.num_checks;
      ctx->CountCheck(1);
      if (node.partition.error() == 0) {
        // No stripped class has ≥ 2 rows agreeing on the set: unique.
        Ucc ucc;
        for (std::size_t c : node.set.ToVector()) ucc.columns.push_back(c);
        result.uccs.push_back(std::move(ucc));
      } else {
        survivors.push_back(std::move(node));
      }
    }
    if (aborted) break;
    level = std::move(survivors);

    // Prefix-block join over the non-unique nodes; requiring every
    // immediate subset to be present (i.e. non-unique) enforces minimality.
    std::unordered_map<AttrSet, std::size_t, AttrSetHash> index;
    for (std::size_t i = 0; i < level.size(); ++i) {
      index.emplace(level[i].set, i);
    }
    std::map<std::vector<std::size_t>, std::vector<std::size_t>> blocks;
    for (std::size_t i = 0; i < level.size(); ++i) {
      std::vector<std::size_t> attrs = level[i].set.ToVector();
      attrs.pop_back();
      blocks[attrs].push_back(i);
    }
    std::vector<Node> next;
    std::size_t next_bytes = 0;
    for (const auto& [prefix, members] : blocks) {
      if (aborted) break;
      for (std::size_t i = 0; i < members.size() && !aborted; ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (ctx->ShouldStop()) {
            aborted = true;
            break;
          }
          const Node& x1 = level[members[i]];
          const Node& x2 = level[members[j]];
          AttrSet y = x1.set.Union(x2.set);
          bool all_present = true;
          for (std::size_t c : y.ToVector()) {
            if (index.find(y.WithoutAttr(c)) == index.end()) {
              all_present = false;
              break;
            }
          }
          if (!all_present) continue;
          ctx->AtInjectionPoint("ucc.generate");
          Node node;
          node.set = y;
          node.partition =
              StrippedPartition::Product(x1.partition, x2.partition, m);
          std::size_t bytes = node.partition.MemoryBytes();
          if (!ctx->ChargeMemory(bytes)) {
            aborted = true;
            break;
          }
          next_bytes += bytes;
          next.push_back(std::move(node));
        }
      }
    }
    if (aborted) break;
    level = std::move(next);
    ctx->ReleaseMemory(level_bytes);
    level_bytes = next_bytes;
    ++size;
  }
  } catch (const FaultInjectedError&) {
    ctx->RequestStop(StopReason::kFaultInjected);
    aborted = true;
  }
  ctx->ReleaseMemory(level_bytes);

  aborted = aborted || ctx->stop_requested();
  od::SortUnique(result.uccs);
  result.completed = !aborted;
  result.stop_reason = ctx->stop_reason() != StopReason::kNone
                           ? ctx->stop_reason()
                           : cap_reason;
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<Ucc> RankKeyCandidates(const rel::CodedRelation& relation,
                                   const UccResult& result) {
  std::vector<std::pair<double, Ucc>> scored;
  scored.reserve(result.uccs.size());
  for (const Ucc& ucc : result.uccs) {
    double entropy = 0.0;
    for (rel::ColumnId c : ucc.columns) {
      entropy += relation.ColumnEntropy(c);
    }
    scored.emplace_back(entropy, ucc);
  }
  // Compactness first (a primary key wants few columns), then diversity:
  // among equally small keys, the most entropic columns order the most data.
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.second.columns.size() != b.second.columns.size()) {
                return a.second.columns.size() < b.second.columns.size();
              }
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<Ucc> out;
  out.reserve(scored.size());
  for (auto& [score, ucc] : scored) out.push_back(std::move(ucc));
  return out;
}

}  // namespace ocdd::algo
