#ifndef OCDD_ALGO_UCC_UCC_H_
#define OCDD_ALGO_UCC_UCC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "relation/coded_relation.h"

namespace ocdd::algo {

/// Unique column combinations — the profiling primitive §5.4 pairs with
/// order dependencies: "detection of unique column combinations is usually
/// performed to find primary key candidates that may be also interesting
/// candidates from the point of view of ordering and query optimization."
///
/// A column set X is *unique* when no two rows agree on all of X; a
/// *minimal* UCC has no unique proper subset. Minimal UCCs are the primary
/// key candidates.
struct Ucc {
  std::vector<rel::ColumnId> columns;  ///< sorted, duplicate-free

  std::string ToString(const rel::CodedRelation& relation) const;

  friend bool operator==(const Ucc& a, const Ucc& b) {
    return a.columns == b.columns;
  }
  friend bool operator<(const Ucc& a, const Ucc& b) {
    return a.columns < b.columns;
  }
};

struct UccOptions {
  /// Injectable run control (deadline, budgets, cancellation, fault
  /// injection); nullptr = private context from the knobs below.
  RunContext* run_context = nullptr;

  std::uint64_t max_checks = 0;     ///< 0 = unlimited
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  std::size_t max_size = 0;         ///< cap on |X| (0 = unlimited)
};

struct UccResult {
  std::vector<Ucc> uccs;  ///< minimal UCCs, sorted
  std::uint64_t num_checks = 0;
  bool completed = true;
  StopReason stop_reason = StopReason::kNone;  ///< kNone when completed
  double elapsed_seconds = 0.0;
};

/// Level-wise minimal-UCC discovery over stripped partitions: a set is
/// unique iff its stripped partition is empty; unique nodes are emitted and
/// pruned (their supersets are unique but not minimal), non-unique nodes
/// grow via the prefix-block join with the all-subsets-present condition —
/// which guarantees minimality of everything emitted.
UccResult DiscoverUccs(const rel::CodedRelation& relation,
                       const UccOptions& options = {});

/// §5.4's suggested synthesis: the minimal UCCs ranked as primary-key
/// candidates — compact keys first (fewest columns), diversity (total
/// column entropy, descending) as the tie-break.
std::vector<Ucc> RankKeyCandidates(const rel::CodedRelation& relation,
                                   const UccResult& result);

}  // namespace ocdd::algo

#endif  // OCDD_ALGO_UCC_UCC_H_
