#ifndef OCDD_ALGO_INCREMENTAL_INCREMENTAL_H_
#define OCDD_ALGO_INCREMENTAL_INCREMENTAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/run_context.h"
#include "common/snapshot.h"
#include "core/ocd_discover.h"
#include "od/attribute_list.h"
#include "relation/batch.h"
#include "relation/coded_relation.h"
#include "relation/relation.h"

namespace ocdd::algo {

/// Incremental / streaming OD maintenance (docs/incremental.md).
///
/// An `IncrementalSession` owns a materialized relation plus warm discovery
/// state — the outcome of every candidate the last walk visited, violation
/// witnesses for the invalid ones, and per-list sorted row permutations —
/// and applies append/delete `RowBatch`es to it. Each batch triggers one
/// OCDDISCOVER walk over the merged relation in which a `CandidateCheckHook`
/// serves every candidate whose outcome the warm state can *prove* is
/// unchanged, so only candidates the batch can perturb pay a data pass:
///
///  - A cached-invalid candidate (or false OD bit) stays invalid under
///    appends for free, and under deletes when its recorded violation
///    witness (a swap pair, or a split pair) survives the batch.
///  - A cached-valid candidate stays valid under deletes for free; under
///    appends an O(batch) counting argument over the list's sorted old-row
///    permutation decides whether any new row introduces a swap (or breaks
///    an embedded OD) against the old rows, plus an O(batch log batch)
///    sweep for new-row/new-row pairs.
///
/// The result of the walk is therefore *identical* to a from-scratch run on
/// the materialized relation — the hook only short-circuits checks whose
/// outcome is provably what the data pass would compute. That is the
/// equivalence contract the `ocdd qa` incremental stage enforces.
struct IncrementalOptions {
  /// Worker threads for the cache-miss check phase of each walk.
  std::size_t num_threads = 1;

  /// Cap on the candidate tree level (0 = unlimited); must match the
  /// from-scratch oracle's cap for equivalence comparisons.
  std::size_t max_level = 0;

  /// Cache-miss candidates are checked with the sorted-partition pipeline
  /// (core/list_partition.h) under this byte budget.
  bool use_sorted_partitions = true;
  std::size_t max_partition_cache_bytes = 1ULL << 30;

  /// Byte budget for the warm per-list sorted-permutation cache that powers
  /// the append counting fast path. A list that does not fit simply misses
  /// the hook and is recomputed against the data — never an error.
  std::size_t max_perm_cache_bytes = 512ULL << 20;

  /// Warm-state persistence root (empty = in-memory session only). One
  /// snapshot generation is written per batch boundary.
  std::string state_dir;
  std::size_t keep_generations = 2;
};

/// What one `ApplyBatch` did.
struct BatchApplyStats {
  /// Monotone batch counter; batch k produced warm-state generation k.
  std::uint64_t batch_seq = 0;
  std::size_t deletes = 0;
  std::size_t appends = 0;
  /// Rows in the materialized relation after the batch.
  std::size_t num_rows = 0;
  /// The walk over the merged relation. `hook_served` / `hook_recomputed`
  /// say how much of it the warm state paid for; `completed == false` means
  /// a budget stopped the walk (the warm state is then a sound partial
  /// cache and the claims are a prefix).
  core::OcdDiscoverResult result;
  double seconds = 0.0;
  bool snapshot_written = false;
  std::string warning;
};

/// Sentinel row id: "no witness recorded" (entry must be recomputed when a
/// delete could have flipped the bit it guards).
inline constexpr std::uint32_t kNoWitnessRow = 0xffffffffu;

/// A pair of rows witnessing a violation, in current-relation row ids.
struct WitnessPair {
  std::uint32_t a = kNoWitnessRow;
  std::uint32_t b = kNoWitnessRow;
  bool known() const { return a != kNoWitnessRow && b != kNoWitnessRow; }
};

/// One candidate's warm outcome. The OD bits are meaningful only when
/// `ocd_valid` (§4.2.1). Witness semantics: `swap_w` holds a swap pair when
/// `!ocd_valid`; `split_xy`/`split_yx` hold an equal-X/different-Y split
/// pair when the corresponding OD bit is false at a valid OCD node.
struct CandidateWarmth {
  bool ocd_valid = false;
  bool od_xy = false;
  bool od_yx = false;
  WitnessPair swap_w;
  WitnessPair split_xy;
  WitnessPair split_yx;
};

class IncrementalSession {
 public:
  /// Empty session; use `Start` or `Open`.
  IncrementalSession() = default;
  IncrementalSession(IncrementalSession&&) = default;
  IncrementalSession& operator=(IncrementalSession&&) = default;

  /// Builds a session from scratch over `base`: one full discovery walk
  /// (every candidate recomputed), witness extraction, and — when
  /// `options.state_dir` is set — the first warm-state snapshot.
  /// `ctx` carries budgets/cancellation for the walk (may be nullptr).
  static Result<IncrementalSession> Start(rel::Relation base,
                                          const IncrementalOptions& options,
                                          RunContext* ctx = nullptr);

  /// Restores a session from `options.state_dir`. Torn or corrupt newest
  /// generations fall back to the previous generation (the caller sees the
  /// `batch_seq` regression and replays); when *no* generation is usable
  /// and `base_loader` is provided, the session degrades to a from-scratch
  /// `Start` over the loaded base relation with `open_warning()` set —
  /// degradation is never an error unless the base also fails to load.
  static Result<IncrementalSession> Open(
      const IncrementalOptions& options,
      const std::function<Result<rel::Relation>()>& base_loader,
      RunContext* ctx = nullptr);

  /// Applies one batch: materializes the merged relation, runs the
  /// hook-accelerated walk, commits the new warm state, and writes a
  /// snapshot generation. All-or-nothing on validation errors (bad delete
  /// indices, mistyped appends): the session is unchanged. `ctx` carries
  /// the walk's budgets; a budget stop commits sound partial state.
  Result<BatchApplyStats> ApplyBatch(const rel::RowBatch& batch,
                                     RunContext* ctx = nullptr);

  const rel::Relation& relation() const { return relation_; }
  const rel::CodedRelation& coded() const { return coded_; }
  const core::OcdDiscoverResult& last_result() const { return last_; }
  std::uint64_t batch_seq() const { return batch_seq_; }
  /// Set when `Open` degraded (corrupt state → from-scratch bootstrap).
  const std::string& open_warning() const { return open_warning_; }
  /// True when `Open` restored warm state (false after degradation).
  bool resumed() const { return resumed_; }
  /// Bytes currently held by the per-list permutation cache.
  std::size_t perm_cache_bytes() const { return perm_bytes_; }

  /// A candidate key: the two sides of `X ~ Y`.
  struct CandKey {
    od::AttributeList x;
    od::AttributeList y;
    friend bool operator==(const CandKey& a, const CandKey& b) {
      return a.x == b.x && a.y == b.y;
    }
  };
  struct CandKeyHash {
    std::size_t operator()(const CandKey& c) const {
      od::AttributeListHash h;
      return h(c.x) * 1000003ULL ^ h(c.y);
    }
  };
  using OutcomeMap = std::unordered_map<CandKey, CandidateWarmth, CandKeyHash>;

  /// Warm outcomes of every candidate the last walk visited (test hook).
  const OutcomeMap& outcomes() const { return outcomes_; }

 private:
  friend struct SessionOps;

  IncrementalOptions options_;
  rel::Relation relation_;
  rel::CodedRelation coded_;
  core::OcdDiscoverResult last_;
  std::uint64_t batch_seq_ = 0;
  std::unique_ptr<SnapshotStore> store_;
  std::string open_warning_;
  bool resumed_ = false;
  OutcomeMap outcomes_;

  /// One cached sorted permutation. `rows` is a full permutation of the
  /// relation-prefix [0, rows.size()) — order-preserving delete remaps and
  /// end-appended rows both keep a prefix a prefix — in the row ids of
  /// delete-epoch `epoch`. Entries are brought current *lazily on access*
  /// (replay remaps from the log, then fold missing tail rows in); eagerly
  /// maintaining every cached perm on every batch costs more than the walk
  /// it accelerates.
  struct PermEntry {
    std::vector<std::uint32_t> rows;
    std::uint64_t epoch = 0;
  };
  std::unordered_map<od::AttributeList, PermEntry, od::AttributeListHash>
      perms_;
  std::size_t perm_bytes_ = 0;

  /// Delete epoch: bumped once per batch that deletes rows. `remap_log_[e]`
  /// maps epoch-e row ids to epoch-(e+1) ids (`kNoWitnessRow` = deleted);
  /// entries are dropped once no cached perm is that far behind.
  std::uint64_t delete_epoch_ = 0;
  std::map<std::uint64_t, std::vector<std::uint32_t>> remap_log_;
  /// Memo of remap compositions `epoch e → delete_epoch_`, so a batch that
  /// touches thousands of equally-stale perms replays each in ONE pass
  /// instead of one pass per missed epoch. Invalidated on every epoch bump.
  std::map<std::uint64_t, std::vector<std::uint32_t>> composed_remaps_;
};

/// The oracle the incremental result must match: a from-scratch walk over
/// `relation` with the same knobs a session walk uses. Claims (ods/ocds)
/// must compare equal element-wise after both runs complete.
core::OcdDiscoverResult DiscoverFromScratch(const rel::Relation& relation,
                                            const IncrementalOptions& options,
                                            RunContext* ctx = nullptr);

}  // namespace ocdd::algo

#endif  // OCDD_ALGO_INCREMENTAL_INCREMENTAL_H_
