#include "algo/incremental/incremental.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/timer.h"

namespace ocdd::algo {

namespace {

using od::AttributeList;
using od::AttributeListHash;

/// Lexicographic three-way comparison of two rows under an attribute list,
/// on dictionary codes. Encoding is order-preserving with the library's
/// NULL semantics (NULL = NULL, NULLS FIRST) baked into the code space, so
/// this is exactly the comparison the walk's own checks make — and it costs
/// one int32 compare per column instead of a boxed Value comparison, which
/// is what keeps the warm-state bookkeeping (perm builds, witness scans,
/// append merges) cheap relative to the walk it accelerates.
int CompareUnder(const rel::CodedRelation& r, const AttributeList& list,
                 std::uint32_t a, std::uint32_t b) {
  for (rel::ColumnId c : list.ids()) {
    const std::int32_t ca = r.code(a, c), cb = r.code(b, c);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  return 0;
}

/// Sorted permutation of rows [0, n) under `list`, by LSD radix over the
/// list's columns: one stable counting sort per column, least-significant
/// (last) column first. Codes are dense ranks in [0, num_distinct), so each
/// pass is O(n + d) array writes — roughly the cost of two linear scans,
/// where a comparison sort pays n log n multi-column compares. This is what
/// makes cold perm-cache misses (first batch after bootstrap or reopen)
/// cheap enough to absorb mid-walk.
std::vector<std::uint32_t> BuildPerm(const rel::CodedRelation& r,
                                     const AttributeList& list,
                                     std::size_t n) {
  std::vector<std::uint32_t> perm(n), tmp(n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::vector<std::uint32_t> cnt;
  const auto& ids = list.ids();
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    const rel::CodedColumn& col = r.column(*it);
    cnt.assign(static_cast<std::size_t>(col.num_distinct) + 1, 0u);
    for (std::size_t row = 0; row < n; ++row) {
      ++cnt[static_cast<std::size_t>(col.codes[row]) + 1];
    }
    for (std::size_t k = 1; k < cnt.size(); ++k) cnt[k] += cnt[k - 1];
    for (std::uint32_t row : perm) {
      tmp[cnt[static_cast<std::size_t>(col.codes[row])]++] = row;
    }
    perm.swap(tmp);
  }
  return perm;
}

/// Scans a permutation sorted under X for a split pair: two adjacent rows
/// equal under X but different under Y. Exists whenever the OCD holds and
/// the OD X → Y does not (the only remaining violation is a split).
WitnessPair FindSplit(const rel::CodedRelation& r, const AttributeList& x,
                      const AttributeList& y,
                      const std::vector<std::uint32_t>& perm) {
  for (std::size_t k = 1; k < perm.size(); ++k) {
    if (CompareUnder(r, x, perm[k - 1], perm[k]) == 0 &&
        CompareUnder(r, y, perm[k - 1], perm[k]) != 0) {
      return WitnessPair{perm[k - 1], perm[k]};
    }
  }
  return WitnessPair{};
}

/// Scans a permutation sorted under X for a swap pair (Theorem 4.1): rows
/// s, t with s strictly below t under X and t strictly below s under Y.
/// Exists whenever the OCD does not hold. One pass with the running max-Y
/// row over all strictly lower X-groups.
WitnessPair FindSwap(const rel::CodedRelation& r, const AttributeList& x,
                     const AttributeList& y,
                     const std::vector<std::uint32_t>& perm) {
  bool have_best = false, have_pending = false;
  std::uint32_t best = 0, pending = 0;
  for (std::size_t k = 0; k < perm.size(); ++k) {
    std::uint32_t t = perm[k];
    if (k > 0 && CompareUnder(r, x, perm[k - 1], t) != 0) {
      if (have_pending &&
          (!have_best || CompareUnder(r, y, pending, best) > 0)) {
        best = pending;
        have_best = true;
      }
      have_pending = false;
    }
    if (have_best && CompareUnder(r, y, best, t) > 0) {
      return WitnessPair{best, t};
    }
    if (!have_pending || CompareUnder(r, y, t, pending) > 0) {
      pending = t;
      have_pending = true;
    }
  }
  return WitnessPair{};
}

/// Everything the append fast path needs about one attribute list for one
/// batch: per appended row, how many surviving old rows sit strictly below
/// (`cnt_lt`) and not above (`cnt_le`) it under the list; plus the appended
/// rows' own sorted order and dense ranks under the list.
struct ListDelta {
  bool ok = false;
  std::vector<std::uint32_t> cnt_lt;
  std::vector<std::uint32_t> cnt_le;
  std::vector<std::uint32_t> order;  // append positions sorted under the list
  std::vector<std::uint32_t> rank;   // dense rank per append position
};

/// Append counting argument (see docs/incremental.md §fast-paths).
///
/// Old rows are swap-free under (X, Y), so the Y-values of the rows in the
/// lowest k X-groups are exactly the k smallest old Y-values. A new row t
/// then swaps with some old row iff fewer old rows are Y-≤ t than are
/// X-< t (pigeonhole, exact both ways), or symmetrically with X and Y
/// exchanged. New/new pairs are swept in X-order against the running max
/// Y-rank of strictly lower X-groups.
bool AppendKeepsOcd(const ListDelta& dx, const ListDelta& dy, std::size_t b) {
  for (std::size_t i = 0; i < b; ++i) {
    if (dy.cnt_le[i] < dx.cnt_lt[i] || dx.cnt_le[i] < dy.cnt_lt[i]) {
      return false;
    }
  }
  bool have_done = false;
  std::uint32_t max_done = 0;     // max Y-rank over strictly lower X-groups
  bool have_pending = false;
  std::uint32_t max_pending = 0;  // max Y-rank within the current X-group
  for (std::size_t k = 0; k < b; ++k) {
    std::uint32_t p = dx.order[k];
    if (k > 0 && dx.rank[p] != dx.rank[dx.order[k - 1]]) {
      if (have_pending && (!have_done || max_pending > max_done)) {
        max_done = max_pending;
        have_done = true;
      }
      have_pending = false;
    }
    if (have_done && dy.rank[p] < max_done) return false;
    if (!have_pending || dy.rank[p] > max_pending) {
      max_pending = dy.rank[p];
      have_pending = true;
    }
  }
  return true;
}

/// OD stability under appends, assuming the OD X → Y held before the batch
/// and `AppendKeepsOcd` already accepted the batch. A new row joining an
/// existing X-group (cnt_le > cnt_lt) must carry exactly the group's Y
/// constant: with A old rows strictly X-below the group, that constant is
/// the (A+1)-th smallest old Y-value, so the row matches iff at most A old
/// rows are strictly Y-below it and at least A+1 are Y-≤ it. New X-groups
/// only need internal Y-constancy (split check over the appended rows).
bool AppendKeepsOd(const ListDelta& dx, const ListDelta& dy, std::size_t b) {
  for (std::size_t i = 0; i < b; ++i) {
    if (dx.cnt_le[i] > dx.cnt_lt[i]) {
      std::uint32_t a = dx.cnt_lt[i];
      if (!(dy.cnt_lt[i] <= a && dy.cnt_le[i] >= a + 1)) return false;
    }
  }
  for (std::size_t k = 1; k < b; ++k) {
    std::uint32_t p = dx.order[k], q = dx.order[k - 1];
    if (dx.rank[p] == dx.rank[q] && dy.rank[p] != dy.rank[q]) return false;
  }
  return true;
}

std::uint64_t DoubleBits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double BitsDouble(std::uint64_t u) {
  double d = 0;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

constexpr char kStateName[] = "incremental";
constexpr std::uint32_t kStateVersion = 1;

}  // namespace

/// Private-member access for the free-standing machinery below.
struct SessionOps {
  using CandKey = IncrementalSession::CandKey;
  using OutcomeMap = IncrementalSession::OutcomeMap;

  /// How many delete epochs a cached perm may lag before PrunePerms drops
  /// it instead of keeping its remaps alive. Replaying one epoch is a
  /// single O(n) int pass (~40× cheaper than a rebuild), so the lag cap is
  /// generous — it exists to bound the remap log, not to save replay time.
  /// Delete-only streams in particular never touch the append-path perms,
  /// which therefore age one epoch per batch without being refreshed.
  static constexpr std::uint64_t kMaxEpochLag = 16;

  /// Folds current-relation rows [perm.size(), n) into a sorted prefix
  /// permutation: sort the fresh tail, then place each fresh id by binary
  /// search with chunked copies between placements. O(b log n + n) with
  /// memcpy-speed data movement, vs O(n) comparisons for an element-wise
  /// merge.
  static void FoldTail(const rel::CodedRelation& coded,
                       const AttributeList& list, std::size_t n,
                       std::vector<std::uint32_t>* perm) {
    const std::size_t old = perm->size();
    std::vector<std::uint32_t> fresh(n - old);
    std::iota(fresh.begin(), fresh.end(), static_cast<std::uint32_t>(old));
    auto below = [&](std::uint32_t a, std::uint32_t b) {
      return CompareUnder(coded, list, a, b) < 0;
    };
    std::sort(fresh.begin(), fresh.end(), below);
    std::vector<std::uint32_t> out(n);
    std::size_t i = 0, o = 0;
    for (std::uint32_t id : fresh) {
      const std::size_t pos = static_cast<std::size_t>(
          std::lower_bound(perm->begin() + static_cast<std::ptrdiff_t>(i),
                           perm->end(), id, below) -
          perm->begin());
      std::copy(perm->begin() + static_cast<std::ptrdiff_t>(i),
                perm->begin() + static_cast<std::ptrdiff_t>(pos),
                out.begin() + static_cast<std::ptrdiff_t>(o));
      o += pos - i;
      i = pos;
      out[o++] = id;
    }
    std::copy(perm->begin() + static_cast<std::ptrdiff_t>(i), perm->end(),
              out.begin() + static_cast<std::ptrdiff_t>(o));
    *perm = std::move(out);
  }

  /// Returns the remap composition `from → delete_epoch_` (memoized in
  /// `composed_remaps_`), or nullptr when the log no longer reaches back to
  /// `from`. Composing once per distinct staleness costs O(epochs · n);
  /// every perm at that staleness then catches up in a single pass.
  static const std::vector<std::uint32_t>* GetComposedRemap(
      IncrementalSession& s, std::uint64_t from) {
    auto hit = s.composed_remaps_.find(from);
    if (hit != s.composed_remaps_.end()) return &hit->second;
    auto base = s.remap_log_.find(from);
    if (base == s.remap_log_.end()) return nullptr;
    std::vector<std::uint32_t> out = base->second;
    for (std::uint64_t e = from + 1; e < s.delete_epoch_; ++e) {
      auto next = s.remap_log_.find(e);
      if (next == s.remap_log_.end()) return nullptr;
      for (std::uint32_t& v : out) {
        if (v != kNoWitnessRow) v = next->second[v];
      }
    }
    auto [pos, _] = s.composed_remaps_.emplace(from, std::move(out));
    return &pos->second;
  }

  /// Returns the cached permutation for `list` over rows [0, n) of the
  /// *current* relation, bringing a stale entry current first (replay the
  /// delete remaps it missed, fold the row tail it has not seen) or
  /// building it fresh under the byte budget; nullptr when over budget
  /// (callers fall back to a data-backed check — never an error).
  static const std::vector<std::uint32_t>* GetPerm(IncrementalSession& s,
                                                   const AttributeList& list,
                                                   std::size_t n) {
    auto it = s.perms_.find(list);
    if (it != s.perms_.end()) {
      IncrementalSession::PermEntry& e = it->second;
      bool usable = true;
      if (e.epoch < s.delete_epoch_) {
        const std::vector<std::uint32_t>* rm =
            GetComposedRemap(s, e.epoch);
        if (rm == nullptr) {
          usable = false;  // log truncated under it: rebuild from scratch
        } else {
          std::size_t kept = 0;
          for (std::uint32_t r : e.rows) {
            const std::uint32_t nr = (*rm)[r];
            if (nr != kNoWitnessRow) e.rows[kept++] = nr;
          }
          s.perm_bytes_ -= (e.rows.size() - kept) * sizeof(std::uint32_t);
          e.rows.resize(kept);
          e.epoch = s.delete_epoch_;
        }
      }
      // A current entry always covers a prefix of [0, n); covering more
      // would mean the caller's row count and the session disagree.
      if (usable && e.rows.size() > n) usable = false;
      if (usable) {
        if (e.rows.size() < n) {
          const std::size_t bytes =
              (n - e.rows.size()) * sizeof(std::uint32_t);
          if (s.options_.max_perm_cache_bytes != 0 &&
              s.perm_bytes_ + bytes > s.options_.max_perm_cache_bytes) {
            return nullptr;
          }
          FoldTail(s.coded_, list, n, &e.rows);
          s.perm_bytes_ += bytes;
        }
        return &e.rows;
      }
      s.perm_bytes_ -= e.rows.size() * sizeof(std::uint32_t);
      s.perms_.erase(it);
    }
    const std::size_t bytes = n * sizeof(std::uint32_t);
    if (s.options_.max_perm_cache_bytes != 0 &&
        s.perm_bytes_ + bytes > s.options_.max_perm_cache_bytes) {
      return nullptr;
    }
    s.perm_bytes_ += bytes;
    auto [pos, _] = s.perms_.emplace(
        list, IncrementalSession::PermEntry{BuildPerm(s.coded_, list, n),
                                            s.delete_epoch_});
    return &pos->second.rows;
  }

  /// Drops cached permutations whose list no candidate references anymore
  /// or that lag too many delete epochs behind, then garbage-collects the
  /// remap log down to the oldest epoch a surviving perm still needs.
  static void PrunePerms(IncrementalSession& s) {
    std::unordered_set<AttributeList, AttributeListHash> live;
    for (const auto& [key, w] : s.outcomes_) {
      live.insert(key.x);
      live.insert(key.y);
    }
    std::uint64_t oldest = s.delete_epoch_;
    for (auto it = s.perms_.begin(); it != s.perms_.end();) {
      const bool lagging =
          it->second.epoch + kMaxEpochLag < s.delete_epoch_;
      if (lagging || live.count(it->first) == 0) {
        s.perm_bytes_ -= it->second.rows.size() * sizeof(std::uint32_t);
        it = s.perms_.erase(it);
      } else {
        oldest = std::min(oldest, it->second.epoch);
        ++it;
      }
    }
    s.remap_log_.erase(s.remap_log_.begin(),
                       s.remap_log_.lower_bound(oldest));
  }

  /// Extracts violation witnesses for every warm entry that needs one but
  /// has none (fresh observations, counting-path flips). Without a witness
  /// an entry cannot be served across a delete batch; with one, service is
  /// O(1).
  ///
  /// Jobs are grouped by the list whose sorted permutation drives the scan,
  /// so each list is sorted once per repair pass. The permutations are
  /// deliberately NOT inserted into the perm cache: most lists repaired
  /// here (every invalid candidate's LHS at bootstrap) are never consulted
  /// by the append fast path, and caching them evicts the delta perms that
  /// path actually needs — a cached perm that already exists is refreshed
  /// and reused, everything else is built transiently and dropped.
  static void RepairWitnesses(IncrementalSession& s) {
    const std::size_t n = s.coded_.num_rows();
    // kind 0: swap scan (perm under x); 1: split x→y (perm under x);
    // 2: split y→x (perm under y).
    struct Job {
      const CandKey* key;
      CandidateWarmth* w;
      int kind;
    };
    std::unordered_map<AttributeList, std::vector<Job>, AttributeListHash>
        work;
    for (auto& [key, w] : s.outcomes_) {
      if (!w.ocd_valid) {
        if (!w.swap_w.known()) work[key.x].push_back({&key, &w, 0});
        continue;
      }
      if (!w.od_xy && !w.split_xy.known()) {
        work[key.x].push_back({&key, &w, 1});
      }
      if (!w.od_yx && !w.split_yx.known()) {
        work[key.y].push_back({&key, &w, 2});
      }
    }
    std::vector<std::uint32_t> transient;
    for (auto& [list, jobs] : work) {
      const std::vector<std::uint32_t>* perm = nullptr;
      if (s.perms_.count(list) != 0) perm = GetPerm(s, list, n);
      if (perm == nullptr) {
        transient = BuildPerm(s.coded_, list, n);
        perm = &transient;
      }
      for (const Job& job : jobs) {
        switch (job.kind) {
          case 0:
            job.w->swap_w = FindSwap(s.coded_, job.key->x, job.key->y, *perm);
            break;
          case 1:
            job.w->split_xy =
                FindSplit(s.coded_, job.key->x, job.key->y, *perm);
            break;
          default:
            job.w->split_yx =
                FindSplit(s.coded_, job.key->y, job.key->x, *perm);
            break;
        }
      }
    }
  }

  static core::OcdDiscoverOptions WalkOptions(const IncrementalSession& s,
                                              RunContext* ctx,
                                              core::CandidateCheckHook* hook) {
    core::OcdDiscoverOptions w;
    w.run_context = ctx;
    w.num_threads = s.options_.num_threads;
    w.max_level = s.options_.max_level;
    w.use_sorted_partitions = s.options_.use_sorted_partitions;
    w.max_partition_cache_bytes = s.options_.max_partition_cache_bytes;
    w.check_hook = hook;
    return w;
  }

  static std::string EncodeState(const IncrementalSession& s);
  static Status DecodeState(const SnapshotView& view, IncrementalSession& s);

  static bool WriteState(IncrementalSession& s, RunContext* ctx,
                         std::string* warning) {
    if (!s.store_) return false;
    s.store_->set_fault_injector(ctx != nullptr ? ctx->fault_injector()
                                                : nullptr);
    Result<std::uint64_t> gen =
        s.store_->Write(EncodeState(s), s.options_.keep_generations);
    if (!gen.ok()) {
      *warning = "warm-state snapshot not written: " + gen.status().message();
      return false;
    }
    return true;
  }
};

namespace {

/// Start-time hook: serves nothing, records every data-backed outcome so
/// the first batch already has a full warm cache.
struct RecordingHook : core::CandidateCheckHook {
  SessionOps::OutcomeMap* map = nullptr;

  bool Lookup(const AttributeList&, const AttributeList&,
              core::CandidateOutcome*) override {
    return false;
  }
  void Observe(const AttributeList& x, const AttributeList& y,
               const core::CandidateOutcome& o) override {
    CandidateWarmth w;
    w.ocd_valid = o.ocd_valid;
    w.od_xy = o.od_xy;
    w.od_yx = o.od_yx;
    (*map)[SessionOps::CandKey{x, y}] = w;
  }
};

/// Batch-walk hook: the incremental core. Serves candidates whose outcome
/// the warm state proves, collects the next warm map as it goes.
struct WarmHook : core::CandidateCheckHook {
  IncrementalSession* session = nullptr;
  /// Coded merged relation (the walk's own input); all delta comparisons
  /// run on its codes.
  const rel::CodedRelation* coded = nullptr;
  const SessionOps::OutcomeMap* old_map = nullptr;
  /// Old row id → merged row id; kNoWitnessRow for deleted rows. Identity
  /// (empty vector) when the batch has no deletes.
  std::vector<std::uint32_t> remap;
  std::size_t survivors = 0;  // old rows surviving the batch
  std::size_t appended = 0;   // rows appended by the batch

  SessionOps::OutcomeMap next;
  std::unordered_map<AttributeList, ListDelta, AttributeListHash> deltas;

  const ListDelta* GetDelta(const AttributeList& list) {
    auto it = deltas.find(list);
    if (it != deltas.end()) return it->second.ok ? &it->second : nullptr;
    ListDelta& d = deltas[list];
    if (appended == 0) {
      d.ok = true;
      return &d;
    }
    const std::vector<std::uint32_t>* perm =
        SessionOps::GetPerm(*session, list, survivors);
    if (perm == nullptr) return nullptr;  // over budget: candidates miss
    d.cnt_lt.resize(appended);
    d.cnt_le.resize(appended);
    auto below = [&](std::uint32_t a, std::uint32_t b) {
      return CompareUnder(*coded, list, a, b) < 0;
    };
    for (std::size_t i = 0; i < appended; ++i) {
      std::uint32_t id = static_cast<std::uint32_t>(survivors + i);
      d.cnt_lt[i] = static_cast<std::uint32_t>(
          std::lower_bound(perm->begin(), perm->end(), id, below) -
          perm->begin());
      d.cnt_le[i] = static_cast<std::uint32_t>(
          std::upper_bound(perm->begin(), perm->end(), id, below) -
          perm->begin());
    }
    d.order.resize(appended);
    std::iota(d.order.begin(), d.order.end(), 0u);
    std::sort(d.order.begin(), d.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return below(static_cast<std::uint32_t>(survivors + a),
                             static_cast<std::uint32_t>(survivors + b));
              });
    d.rank.resize(appended);
    std::uint32_t r = 0;
    for (std::size_t k = 0; k < appended; ++k) {
      if (k > 0 &&
          CompareUnder(*coded, list,
                       static_cast<std::uint32_t>(survivors + d.order[k - 1]),
                       static_cast<std::uint32_t>(survivors + d.order[k])) !=
              0) {
        ++r;
      }
      d.rank[d.order[k]] = r;
    }
    d.ok = true;
    return &d;
  }

  /// Remaps one witness through the delete set; false = witness row gone
  /// (or never known), the bit it guards is no longer provable.
  bool KeepWitness(WitnessPair* w) const {
    if (!w->known()) return false;
    if (remap.empty()) return true;  // no deletes: ids unchanged
    std::uint32_t na = remap[w->a], nb = remap[w->b];
    if (na == kNoWitnessRow || nb == kNoWitnessRow) return false;
    *w = WitnessPair{na, nb};
    return true;
  }

  bool Lookup(const AttributeList& x, const AttributeList& y,
              core::CandidateOutcome* out) override {
    CandidateWarmth w;
    auto it = old_map->find(SessionOps::CandKey{x, y});
    if (it != old_map->end()) {
      w = it->second;
    } else {
      // The walk can visit the candidate with its sides in the other role
      // when the reduced universe changed; the mirrored outcome is exact
      // (a swap is symmetric, the ODs exchange).
      auto mit = old_map->find(SessionOps::CandKey{y, x});
      if (mit == old_map->end()) return false;
      const CandidateWarmth& m = mit->second;
      w.ocd_valid = m.ocd_valid;
      w.od_xy = m.od_yx;
      w.od_yx = m.od_xy;
      w.swap_w = m.swap_w;
      w.split_xy = m.split_yx;
      w.split_yx = m.split_xy;
    }

    const bool has_deletes = !remap.empty();
    // Delete phase: true bits survive deletion for free; false bits need a
    // surviving witness or the entry misses.
    if (!w.ocd_valid) {
      if (has_deletes && !KeepWitness(&w.swap_w)) return false;
    } else {
      if (has_deletes) {
        if (!w.od_xy && !KeepWitness(&w.split_xy)) return false;
        if (!w.od_yx && !KeepWitness(&w.split_yx)) return false;
      }
    }

    // Append phase: false bits stay false (the witness rows are still
    // there); true bits go through the counting argument.
    if (appended > 0 && w.ocd_valid) {
      const ListDelta* dx = GetDelta(x);
      const ListDelta* dy = GetDelta(y);
      if (dx == nullptr || dy == nullptr) return false;
      if (!AppendKeepsOcd(*dx, *dy, appended)) {
        w = CandidateWarmth{};  // all false, witnesses unknown (repaired later)
      } else {
        if (w.od_xy && !AppendKeepsOd(*dx, *dy, appended)) {
          w.od_xy = false;
          w.split_xy = WitnessPair{};
        }
        if (w.od_yx && !AppendKeepsOd(*dy, *dx, appended)) {
          w.od_yx = false;
          w.split_yx = WitnessPair{};
        }
      }
    }

    out->ocd_valid = w.ocd_valid;
    out->od_xy = w.od_xy;
    out->od_yx = w.od_yx;
    next[SessionOps::CandKey{x, y}] = w;
    return true;
  }

  void Observe(const AttributeList& x, const AttributeList& y,
               const core::CandidateOutcome& o) override {
    CandidateWarmth w;
    w.ocd_valid = o.ocd_valid;
    w.od_xy = o.od_xy;
    w.od_yx = o.od_yx;
    next[SessionOps::CandKey{x, y}] = w;
  }
};

}  // namespace

core::OcdDiscoverResult DiscoverFromScratch(const rel::Relation& relation,
                                            const IncrementalOptions& options,
                                            RunContext* ctx) {
  rel::CodedRelation coded = rel::CodedRelation::Encode(relation);
  core::OcdDiscoverOptions w;
  w.run_context = ctx;
  w.num_threads = options.num_threads;
  w.max_level = options.max_level;
  w.use_sorted_partitions = options.use_sorted_partitions;
  w.max_partition_cache_bytes = options.max_partition_cache_bytes;
  return core::DiscoverOcds(coded, w);
}

Result<IncrementalSession> IncrementalSession::Start(
    rel::Relation base, const IncrementalOptions& options, RunContext* ctx) {
  IncrementalSession s;
  s.options_ = options;
  s.relation_ = std::move(base);
  s.coded_ = rel::CodedRelation::Encode(s.relation_);

  RecordingHook hook;
  hook.map = &s.outcomes_;
  s.last_ = core::DiscoverOcds(s.coded_,
                               SessionOps::WalkOptions(s, ctx, &hook));
  SessionOps::RepairWitnesses(s);

  if (!options.state_dir.empty()) {
    // Deep state paths (e.g. <root>/incremental/<tenant>/<state>) are
    // created here; SnapshotStore itself only makes the leaf.
    std::error_code ec;
    std::filesystem::create_directories(options.state_dir, ec);
    s.store_ = std::make_unique<SnapshotStore>(options.state_dir, kStateName);
    std::string warning;
    SessionOps::WriteState(s, ctx, &warning);
    if (!warning.empty()) s.open_warning_ = warning;
  }
  return s;
}

Result<IncrementalSession> IncrementalSession::Open(
    const IncrementalOptions& options,
    const std::function<Result<rel::Relation>()>& base_loader,
    RunContext* ctx) {
  std::string why;
  if (!options.state_dir.empty()) {
    auto store = std::make_unique<SnapshotStore>(options.state_dir,
                                                 kStateName);
    Result<LoadedSnapshot> loaded = store->Load();
    if (loaded.ok()) {
      IncrementalSession s;
      s.options_ = options;
      Status st = SessionOps::DecodeState(loaded->view, s);
      if (st.ok()) {
        s.store_ = std::move(store);
        s.resumed_ = true;
        if (loaded->corrupt_skipped > 0) {
          s.open_warning_ = "skipped " +
                            std::to_string(loaded->corrupt_skipped) +
                            " corrupt warm-state generation(s)";
        }
        return s;
      }
      why = st.message();
    } else {
      why = loaded.status().message();
    }
  } else {
    why = "no state_dir configured";
  }

  // Degradation: no usable warm state — bootstrap from the base source
  // rather than failing (docs/incremental.md §degradation).
  if (!base_loader) {
    return Status::NotFound("no usable warm state (" + why +
                            ") and no base source to fall back to");
  }
  Result<rel::Relation> base = base_loader();
  if (!base.ok()) {
    return Status::NotFound("no usable warm state (" + why +
                            ") and the base source failed to load: " +
                            base.status().message());
  }
  Result<IncrementalSession> s = Start(std::move(base).value(), options, ctx);
  if (s.ok()) {
    s->open_warning_ = "warm state unusable (" + why +
                       "); rebuilt from scratch from the base source";
  }
  return s;
}

Result<BatchApplyStats> IncrementalSession::ApplyBatch(
    const rel::RowBatch& batch, RunContext* ctx) {
  WallTimer timer;
  Result<rel::Relation> merged_r = rel::ApplyBatch(relation_, batch);
  if (!merged_r.ok()) return merged_r.status();
  rel::Relation merged = std::move(merged_r).value();

  const std::size_t old_rows = relation_.num_rows();
  const std::size_t survivors = old_rows - batch.deletes.size();

  WarmHook hook;
  hook.session = this;
  hook.old_map = &outcomes_;
  hook.survivors = survivors;
  hook.appended = batch.appends.size();
  if (!batch.deletes.empty()) {
    hook.remap.assign(old_rows, kNoWitnessRow);
    std::size_t next_delete = 0, out = 0;
    for (std::size_t r = 0; r < old_rows; ++r) {
      if (next_delete < batch.deletes.size() &&
          batch.deletes[next_delete] == r) {
        ++next_delete;
        continue;
      }
      hook.remap[r] = static_cast<std::uint32_t>(out++);
    }
    // Cached permutations are NOT filtered here: the remap is logged and
    // each perm catches up lazily on its next access (GetPerm), so a batch
    // pays only for the lists it actually consults.
    remap_log_[delete_epoch_] = hook.remap;
    ++delete_epoch_;
    composed_remaps_.clear();
  }

  rel::CodedRelation coded = rel::CodedRelation::Encode(merged);

  // `relation_`/`coded_` must describe the merged data while the hook runs:
  // perm builds and comparisons go through them. Commit them first; on this
  // path nothing below can fail.
  relation_ = std::move(merged);
  coded_ = std::move(coded);
  hook.coded = &coded_;

  last_ = core::DiscoverOcds(coded_, SessionOps::WalkOptions(*this, ctx,
                                                             &hook));
  outcomes_ = std::move(hook.next);
  ++batch_seq_;

  // Appended rows are likewise folded into each permutation lazily, on the
  // perm's next access — see SessionOps::FoldTail.
  SessionOps::PrunePerms(*this);
  SessionOps::RepairWitnesses(*this);

  BatchApplyStats stats;
  stats.batch_seq = batch_seq_;
  stats.deletes = batch.deletes.size();
  stats.appends = batch.appends.size();
  stats.num_rows = relation_.num_rows();
  stats.result = last_;
  stats.snapshot_written = SessionOps::WriteState(*this, ctx, &stats.warning);
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

// ---------------------------------------------------------------------------
// Warm-state snapshot codec (docs/incremental.md §warm-state-format).
// Sections: meta (version, batch_seq, fingerprint, shape, completed flag),
// schema (names + types), rows (typed binary values + null flags — not CSV,
// so types cannot drift on reload), claims (ods/ocds of the last walk),
// stats (walk counters), outcomes (candidate bits + witnesses).
// ---------------------------------------------------------------------------

std::string SessionOps::EncodeState(const IncrementalSession& s) {
  SnapshotBuilder b;

  ByteWriter meta;
  meta.U32(kStateVersion);
  meta.U64(s.batch_seq_);
  meta.U64(s.coded_.Fingerprint());
  meta.U64(s.relation_.num_rows());
  meta.U32(static_cast<std::uint32_t>(s.relation_.num_columns()));
  meta.U8(s.last_.completed ? 1 : 0);
  b.AddSection("meta", meta.Take());

  ByteWriter sc;
  sc.U32(static_cast<std::uint32_t>(s.relation_.num_columns()));
  for (std::size_t c = 0; c < s.relation_.num_columns(); ++c) {
    const rel::Attribute& a = s.relation_.schema().attribute(c);
    sc.Str(a.name);
    sc.U8(static_cast<std::uint8_t>(a.type));
  }
  b.AddSection("schema", sc.Take());

  ByteWriter rows;
  const std::size_t m = s.relation_.num_rows();
  for (std::size_t c = 0; c < s.relation_.num_columns(); ++c) {
    const rel::Column& col = s.relation_.column(c);
    for (std::size_t r = 0; r < m; ++r) {
      if (col.is_null(r)) {
        rows.U8(0);
        continue;
      }
      rows.U8(1);
      switch (col.type()) {
        case rel::DataType::kInt:
          rows.U64(static_cast<std::uint64_t>(col.int_at(r)));
          break;
        case rel::DataType::kDouble:
          rows.U64(DoubleBits(col.double_at(r)));
          break;
        case rel::DataType::kString:
          rows.Str(col.string_at(r));
          break;
      }
    }
  }
  b.AddSection("rows", rows.Take());

  ByteWriter cl;
  cl.U32(static_cast<std::uint32_t>(s.last_.ods.size()));
  for (const od::OrderDependency& d : s.last_.ods) {
    cl.IdVec(d.lhs.ids());
    cl.IdVec(d.rhs.ids());
  }
  cl.U32(static_cast<std::uint32_t>(s.last_.ocds.size()));
  for (const od::OrderCompatibility& d : s.last_.ocds) {
    cl.IdVec(d.lhs.ids());
    cl.IdVec(d.rhs.ids());
  }
  b.AddSection("claims", cl.Take());

  ByteWriter st;
  st.U64(s.last_.num_checks);
  st.U64(s.last_.candidates_generated);
  st.U64(s.last_.levels_completed);
  st.U64(s.last_.hook_served);
  st.U64(s.last_.hook_recomputed);
  b.AddSection("stats", st.Take());

  ByteWriter oc;
  oc.U32(static_cast<std::uint32_t>(s.outcomes_.size()));
  for (const auto& [key, w] : s.outcomes_) {
    oc.IdVec(key.x.ids());
    oc.IdVec(key.y.ids());
    oc.U8(static_cast<std::uint8_t>((w.ocd_valid ? 1 : 0) |
                                    (w.od_xy ? 2 : 0) | (w.od_yx ? 4 : 0)));
    oc.U32(w.swap_w.a);
    oc.U32(w.swap_w.b);
    oc.U32(w.split_xy.a);
    oc.U32(w.split_xy.b);
    oc.U32(w.split_yx.a);
    oc.U32(w.split_yx.b);
  }
  b.AddSection("outcomes", oc.Take());

  return b.Encode();
}

Status SessionOps::DecodeState(const SnapshotView& view,
                               IncrementalSession& s) {
  const std::string* meta_s = view.Find("meta");
  const std::string* sc_s = view.Find("schema");
  const std::string* rows_s = view.Find("rows");
  const std::string* cl_s = view.Find("claims");
  const std::string* st_s = view.Find("stats");
  const std::string* oc_s = view.Find("outcomes");
  if (meta_s == nullptr || sc_s == nullptr || rows_s == nullptr ||
      cl_s == nullptr || st_s == nullptr || oc_s == nullptr) {
    return Status::ParseError("warm state: missing sections");
  }

  ByteReader meta(*meta_s);
  if (meta.U32() != kStateVersion) {
    return Status::ParseError("warm state: unknown version");
  }
  std::uint64_t batch_seq = meta.U64();
  std::uint64_t fingerprint = meta.U64();
  std::uint64_t num_rows = meta.U64();
  std::uint32_t num_cols = meta.U32();
  bool completed = meta.U8() != 0;
  if (!meta.ok()) return Status::ParseError("warm state: meta damaged");

  ByteReader sc(*sc_s);
  if (sc.U32() != num_cols) {
    return Status::ParseError("warm state: schema/meta width mismatch");
  }
  rel::Schema schema;
  for (std::uint32_t c = 0; c < num_cols && sc.ok(); ++c) {
    std::string name = sc.Str();
    std::uint8_t type = sc.U8();
    if (type > static_cast<std::uint8_t>(rel::DataType::kString)) {
      return Status::ParseError("warm state: bad column type");
    }
    schema.AddAttribute(
        rel::Attribute{std::move(name), static_cast<rel::DataType>(type)});
  }
  if (!sc.ok()) return Status::ParseError("warm state: schema damaged");

  ByteReader rows(*rows_s);
  std::vector<rel::Column> columns;
  columns.reserve(num_cols);
  for (std::uint32_t c = 0; c < num_cols; ++c) {
    rel::DataType type = schema.attribute(c).type;
    rel::Column col(type);
    for (std::uint64_t r = 0; r < num_rows && rows.ok(); ++r) {
      if (rows.U8() == 0) {
        col.Append(rel::Value::Null());
        continue;
      }
      switch (type) {
        case rel::DataType::kInt:
          col.Append(rel::Value::Int(static_cast<std::int64_t>(rows.U64())));
          break;
        case rel::DataType::kDouble:
          col.Append(rel::Value::Double(BitsDouble(rows.U64())));
          break;
        case rel::DataType::kString:
          col.Append(rel::Value::String(rows.Str()));
          break;
      }
    }
    columns.push_back(std::move(col));
  }
  if (!rows.ok()) return Status::ParseError("warm state: rows damaged");
  Result<rel::Relation> relation =
      rel::Relation::FromColumns(std::move(schema), std::move(columns));
  if (!relation.ok()) {
    return Status::ParseError("warm state: relation rebuild failed: " +
                              relation.status().message());
  }

  rel::CodedRelation coded = rel::CodedRelation::Encode(relation.value());
  if (coded.Fingerprint() != fingerprint) {
    return Status::ParseError("warm state: fingerprint mismatch");
  }

  ByteReader cl(*cl_s);
  core::OcdDiscoverResult last;
  std::uint32_t num_ods = cl.U32();
  for (std::uint32_t i = 0; i < num_ods && cl.ok(); ++i) {
    AttributeList lhs(cl.IdVec());
    AttributeList rhs(cl.IdVec());
    last.ods.push_back(od::OrderDependency{std::move(lhs), std::move(rhs)});
  }
  std::uint32_t num_ocds = cl.U32();
  for (std::uint32_t i = 0; i < num_ocds && cl.ok(); ++i) {
    AttributeList lhs(cl.IdVec());
    AttributeList rhs(cl.IdVec());
    last.ocds.push_back(
        od::OrderCompatibility{std::move(lhs), std::move(rhs)});
  }
  if (!cl.ok()) return Status::ParseError("warm state: claims damaged");

  ByteReader st(*st_s);
  last.num_checks = st.U64();
  last.candidates_generated = st.U64();
  last.levels_completed = static_cast<std::size_t>(st.U64());
  last.hook_served = st.U64();
  last.hook_recomputed = st.U64();
  last.completed = completed;
  if (!st.ok()) return Status::ParseError("warm state: stats damaged");

  ByteReader oc(*oc_s);
  OutcomeMap outcomes;
  std::uint32_t num_entries = oc.U32();
  for (std::uint32_t i = 0; i < num_entries && oc.ok(); ++i) {
    CandKey key{AttributeList(oc.IdVec()), AttributeList(oc.IdVec())};
    std::uint8_t bits = oc.U8();
    CandidateWarmth w;
    w.ocd_valid = (bits & 1) != 0;
    w.od_xy = (bits & 2) != 0;
    w.od_yx = (bits & 4) != 0;
    w.swap_w = WitnessPair{oc.U32(), oc.U32()};
    w.split_xy = WitnessPair{oc.U32(), oc.U32()};
    w.split_yx = WitnessPair{oc.U32(), oc.U32()};
    // A witness must point into the relation; damaged ids degrade to
    // "unknown" rather than out-of-bounds reads later.
    auto clamp = [&](WitnessPair* p) {
      if (p->known() && (p->a >= num_rows || p->b >= num_rows)) {
        *p = WitnessPair{};
      }
    };
    clamp(&w.swap_w);
    clamp(&w.split_xy);
    clamp(&w.split_yx);
    outcomes[std::move(key)] = w;
  }
  if (!oc.ok()) return Status::ParseError("warm state: outcomes damaged");

  s.relation_ = std::move(relation).value();
  s.coded_ = std::move(coded);
  s.last_ = std::move(last);
  s.batch_seq_ = batch_seq;
  s.outcomes_ = std::move(outcomes);
  return Status::OK();
}

}  // namespace ocdd::algo
