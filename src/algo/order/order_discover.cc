#include "algo/order/order_discover.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "core/checker.h"
#include "core/list_partition.h"
#include "od/dependency_set.h"

namespace ocdd::algo {

namespace {

using core::OdCheckOutcome;
using core::OrderChecker;
using od::AttributeList;
using od::AttributeListHash;

struct Candidate {
  AttributeList lhs;
  AttributeList rhs;

  friend bool operator==(const Candidate& a, const Candidate& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
};

struct CandidateHash {
  std::size_t operator()(const Candidate& c) const {
    AttributeListHash h;
    return h(c.lhs) * 1000003ULL ^ h(c.rhs);
  }
};

}  // namespace

namespace {

/// Frontier memory unit charged to the RunContext budget.
std::size_t CandidateBytes(const Candidate& c) {
  return sizeof(Candidate) +
         (c.lhs.size() + c.rhs.size()) * sizeof(rel::ColumnId);
}

}  // namespace

OrderDiscoverResult DiscoverOrderDependencies(
    const rel::CodedRelation& relation, const OrderDiscoverOptions& options) {
  WallTimer timer;
  OrderDiscoverResult result;
  OrderChecker checker(relation);

  RunContext local_ctx;
  RunContext* ctx =
      options.run_context != nullptr ? options.run_context : &local_ctx;
  if (options.max_checks != 0) ctx->set_check_budget(options.max_checks);
  if (options.time_limit_seconds > 0.0) {
    ctx->set_time_limit_seconds(options.time_limit_seconds);
  }

  // Sorted-partition cache (only populated when the option is set): each
  // list's rank vector derives from its prefix's by one refinement.
  std::unordered_map<AttributeList, core::ListPartition, AttributeListHash>
      part_cache;
  std::size_t cache_bytes = 0;
  std::uint64_t part_checks = 0;
  std::function<const core::ListPartition*(const AttributeList&)> ensure =
      [&](const AttributeList& list) -> const core::ListPartition* {
    auto it = part_cache.find(list);
    if (it != part_cache.end()) return &it->second;
    core::ListPartition part;
    if (list.size() == 1) {
      part = core::ListPartition::ForColumn(relation, list[0]);
    } else {
      AttributeList prefix(std::vector<rel::ColumnId>(
          list.ids().begin(), list.ids().end() - 1));
      const core::ListPartition* parent = ensure(prefix);
      if (parent == nullptr) return nullptr;
      part = parent->Refine(relation, list[list.size() - 1]);
    }
    std::size_t bytes = part.MemoryBytes();
    if (options.max_partition_cache_bytes != 0 &&
        cache_bytes + bytes > options.max_partition_cache_bytes) {
      return nullptr;
    }
    cache_bytes += bytes;
    auto [pos, inserted] = part_cache.emplace(list, std::move(part));
    (void)inserted;
    return &pos->second;
  };

  std::size_t n = relation.num_columns();

  // Level 2: every ordered pair (A, B), A ≠ B — direction matters for ODs.
  std::vector<Candidate> level;
  std::size_t level_bytes = 0;
  bool aborted = false;
  StopReason cap_reason = StopReason::kNone;
  for (rel::ColumnId a = 0; a < n && !aborted; ++a) {
    for (rel::ColumnId b = 0; b < n; ++b) {
      if (a == b) continue;
      Candidate c{AttributeList{a}, AttributeList{b}};
      std::size_t bytes = CandidateBytes(c);
      if (!ctx->ChargeMemory(bytes)) {
        aborted = true;
        break;
      }
      level_bytes += bytes;
      level.push_back(std::move(c));
    }
  }
  result.candidates_generated += level.size();

  std::size_t current_level = 2;
  try {
    while (!level.empty() && !aborted) {
      ctx->AtInjectionPoint("order.level");
      if (options.max_level != 0 && current_level > options.max_level) {
        aborted = true;
        cap_reason = StopReason::kLevelCap;
        break;
      }
      std::vector<Candidate> next;
      std::size_t next_bytes = 0;
      std::unordered_set<Candidate, CandidateHash> seen;
      for (const Candidate& c : level) {
        if (ctx->ShouldStop()) {
          aborted = true;
          break;
        }
        ctx->AtInjectionPoint("order.check");
        // Full classification: a swap must be detected even when a split
        // occurs first, because only swaps prune the subtree.
        OdCheckOutcome outcome;
        const core::ListPartition* pl = nullptr;
        const core::ListPartition* pr = nullptr;
        if (options.use_sorted_partitions) {
          pl = ensure(c.lhs);
          pr = ensure(c.rhs);
        }
        ctx->CountCheck(1);
        if (pl != nullptr && pr != nullptr) {
          outcome = core::ListPartition::CheckOd(*pl, *pr);
          ++part_checks;
        } else {
          outcome = checker.CheckOd(c.lhs, c.rhs, /*early_exit=*/false);
        }
        if (outcome.valid()) {
          ctx->AtInjectionPoint("order.generate");
          result.ods.push_back(od::OrderDependency{c.lhs, c.rhs});
          // Extend RHS only: X → YA is not implied by X → Y, but XA → Y is.
          for (rel::ColumnId a = 0; a < n; ++a) {
            if (c.lhs.Contains(a) || c.rhs.Contains(a)) continue;
            Candidate child{c.lhs, c.rhs.WithAppended(a)};
            if (seen.count(child) != 0) continue;
            std::size_t bytes = CandidateBytes(child);
            if (!ctx->ChargeMemory(bytes)) {
              aborted = true;
              break;
            }
            next_bytes += bytes;
            seen.insert(child);
            next.push_back(std::move(child));
          }
        } else if (!outcome.has_swap) {
          // Split only: extending the RHS can never repair a split,
          // extending the LHS can.
          for (rel::ColumnId a = 0; a < n; ++a) {
            if (c.lhs.Contains(a) || c.rhs.Contains(a)) continue;
            Candidate child{c.lhs.WithAppended(a), c.rhs};
            if (seen.count(child) != 0) continue;
            std::size_t bytes = CandidateBytes(child);
            if (!ctx->ChargeMemory(bytes)) {
              aborted = true;
              break;
            }
            next_bytes += bytes;
            seen.insert(child);
            next.push_back(std::move(child));
          }
        }
        // Swap: prune the whole subtree.
        if (aborted) break;
      }
      result.candidates_generated += next.size();
      level = std::move(next);
      ctx->ReleaseMemory(level_bytes);
      level_bytes = next_bytes;
      ++current_level;
    }
  } catch (const FaultInjectedError&) {
    ctx->RequestStop(StopReason::kFaultInjected);
    aborted = true;
  }
  ctx->ReleaseMemory(level_bytes);

  aborted = aborted || ctx->stop_requested();
  od::SortUnique(result.ods);
  result.num_checks = checker.stats().TotalChecks() + part_checks;
  result.stop_state.checks = result.num_checks;
  result.stop_state.level = current_level;
  result.stop_state.frontier_size = level.size();
  result.completed = !aborted;
  result.stop_reason = ctx->stop_reason() != StopReason::kNone
                           ? ctx->stop_reason()
                           : cap_reason;
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ocdd::algo
