#ifndef OCDD_ALGO_ORDER_ORDER_DISCOVER_H_
#define OCDD_ALGO_ORDER_ORDER_DISCOVER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/run_context.h"
#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::algo {

/// Budgets for an ORDER run (mirroring OcdDiscoverOptions).
struct OrderDiscoverOptions {
  /// Injectable run control (deadline, budgets, cancellation, fault
  /// injection); nullptr = private context from the knobs below.
  RunContext* run_context = nullptr;

  std::uint64_t max_checks = 0;        ///< 0 = unlimited
  double time_limit_seconds = 0.0;     ///< 0 = unlimited
  std::size_t max_level = 0;           ///< cap on |X|+|Y| (0 = unlimited)

  /// Check candidates with cached sorted partitions (the original ORDER's
  /// own checking scheme — see core/list_partition.h) instead of per-
  /// candidate sorts. Identical results; bounded memory with sort fallback.
  bool use_sorted_partitions = false;
  std::size_t max_partition_cache_bytes = 1ULL << 30;  // 1 GiB
};

struct OrderDiscoverResult {
  /// Minimal ODs with disjoint, duplicate-free sides, sorted. By
  /// construction this algorithm cannot discover repeated-attribute
  /// dependencies such as `AB → B` — the incompleteness the paper
  /// demonstrates with the YES dataset (§5.2.1).
  std::vector<od::OrderDependency> ods;

  std::uint64_t num_checks = 0;
  std::uint64_t candidates_generated = 0;
  bool completed = true;
  StopReason stop_reason = StopReason::kNone;  ///< kNone when completed
  /// Where the run was when it stopped (meaningful when `!completed`).
  StopState stop_state;
  double elapsed_seconds = 0.0;
};

/// Reimplementation of the ORDER baseline (Langer & Naumann [10]): a
/// level-wise, bottom-up traversal of the lattice of (LHS, RHS) list pairs
/// with split/swap-based pruning:
///
///  * a *valid* candidate `X → Y` is emitted; only its RHS is extended
///    (LHS extensions `XA → Y` are derivable, hence non-minimal);
///  * a candidate falsified only by *splits* extends its LHS (appending to
///    the RHS can never repair a split);
///  * a candidate falsified by a *swap* is pruned entirely (a strict
///    prefix inversion survives any extension of either side).
///
/// Candidates keep both sides disjoint and duplicate-free, matching ORDER's
/// "completely non-trivial" candidate space.
OrderDiscoverResult DiscoverOrderDependencies(
    const rel::CodedRelation& relation, const OrderDiscoverOptions& options = {});

}  // namespace ocdd::algo

#endif  // OCDD_ALGO_ORDER_ORDER_DISCOVER_H_
