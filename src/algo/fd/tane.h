#ifndef OCDD_ALGO_FD_TANE_H_
#define OCDD_ALGO_FD_TANE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/run_context.h"
#include "common/snapshot.h"
#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::algo {

struct TaneOptions {
  /// Injectable run control (deadline, budgets, cancellation, fault
  /// injection); nullptr = private context from the knobs below.
  RunContext* run_context = nullptr;

  std::uint64_t max_checks = 0;     ///< 0 = unlimited
  double time_limit_seconds = 0.0;  ///< 0 = unlimited
  std::size_t max_lhs_size = 0;     ///< cap on |LHS| (0 = unlimited)

  /// Crash-safe checkpointing at lattice-level boundaries; see
  /// docs/checkpointing.md. Partitions are refolded on resume; the
  /// previous level survives as its (set, error) pairs only.
  CheckpointConfig checkpoint;
};

struct TaneResult {
  /// Minimal, non-trivial functional dependencies `X → A`, sorted.
  std::vector<od::FunctionalDependency> fds;
  std::uint64_t num_checks = 0;
  bool completed = true;
  StopReason stop_reason = StopReason::kNone;  ///< kNone when completed
  /// Where the run was when it stopped (meaningful when `!completed`).
  StopState stop_state;
  /// What checkpointing did (zero-initialized when disabled).
  CheckpointStats checkpoint_stats;
  double elapsed_seconds = 0.0;
};

/// TANE [9]: level-wise minimal-FD discovery over the attribute-set lattice
/// with stripped partitions. Stands in for the paper's fastFDs reference
/// (`|Fd|` column of Table 6) — both produce the complete set of minimal
/// FDs, which is all the evaluation uses.
///
/// Candidate-RHS sets C⁺(X) enforce minimality exactly as in the original
/// algorithm; nodes whose C⁺ empties are removed from the lattice. (The
/// original's superkey early-exit is omitted: keys are instead exhausted by
/// the regular candidate mechanism — same output, slightly more checks.)
TaneResult DiscoverFds(const rel::CodedRelation& relation,
                       const TaneOptions& options = {});

}  // namespace ocdd::algo

#endif  // OCDD_ALGO_FD_TANE_H_
