#include "algo/fd/tane.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "algo/attr_set.h"
#include "algo/partition/stripped_partition.h"
#include "common/fault_injection.h"
#include "common/snapshot.h"
#include "common/timer.h"
#include "od/dependency_set.h"

namespace ocdd::algo {

namespace {

struct Node {
  AttrSet set;
  StrippedPartition partition;
  AttrSet cplus;  ///< TANE's C⁺(X): still-possible RHS attributes
};

}  // namespace

TaneResult DiscoverFds(const rel::CodedRelation& relation,
                       const TaneOptions& options) {
  WallTimer timer;
  TaneResult result;
  std::size_t n = relation.num_columns();
  std::size_t m = relation.num_rows();
  if (n == 0 || n > AttrSet::kMaxAttrs) {
    result.completed = n == 0;
    return result;
  }

  RunContext local_ctx;
  RunContext* ctx =
      options.run_context != nullptr ? options.run_context : &local_ctx;
  if (options.max_checks != 0) ctx->set_check_budget(options.max_checks);
  if (options.time_limit_seconds > 0.0) {
    ctx->set_time_limit_seconds(options.time_limit_seconds);
  }

  const AttrSet universe = AttrSet::FullUniverse(n);
  const std::size_t empty_error = m >= 2 ? m - 1 : 0;  // e(π(∅))

  std::vector<Node> level;
  std::size_t level_bytes = 0;
  bool aborted = false;

  // Errors of the previous level's partitions, for the e(X\A) lookups.
  std::unordered_map<AttrSet, std::size_t, AttrSetHash> prev_errors;

  std::size_t lhs_size = 0;  // |X\A| at the current level

  CheckpointStats& ck = result.checkpoint_stats;
  ck.enabled = options.checkpoint.enabled();
  std::unique_ptr<SnapshotStore> snap;
  const std::uint64_t fingerprint = ck.enabled ? relation.Fingerprint() : 0;
  if (ck.enabled) {
    snap = std::make_unique<SnapshotStore>(options.checkpoint.dir, "tane");
    snap->set_fault_injector(ctx->fault_injector());
  }

  auto partition_for = [&](const AttrSet& s) {
    std::vector<std::size_t> attrs = s.ToVector();
    if (attrs.empty()) return StrippedPartition::ForEmptySet(m);
    StrippedPartition p = StrippedPartition::ForColumn(relation, attrs[0]);
    for (std::size_t i = 1; i < attrs.size(); ++i) {
      p = StrippedPartition::Product(
          p, StrippedPartition::ForColumn(relation, attrs[i]), m);
    }
    return p;
  };

  auto encode_state = [&](bool completed_flag) {
    SnapshotBuilder b;
    ByteWriter meta;
    meta.U32(1);  // state format version
    meta.U64(fingerprint);
    meta.U64(lhs_size);
    meta.U64(result.num_checks);
    meta.U8(completed_flag ? 1 : 0);
    b.AddSection("meta", meta.Take());
    ByteWriter fr;
    fr.U32(static_cast<std::uint32_t>(level.size()));
    for (const Node& node : level) {
      fr.U64(node.set.lo);
      fr.U64(node.set.hi);
      fr.U64(node.cplus.lo);
      fr.U64(node.cplus.hi);
    }
    b.AddSection("frontier", fr.Take());
    ByteWriter er;
    er.U32(static_cast<std::uint32_t>(prev_errors.size()));
    for (const auto& [set, error] : prev_errors) {
      er.U64(set.lo);
      er.U64(set.hi);
      er.U64(error);
    }
    b.AddSection("errors", er.Take());
    ByteWriter fw;
    fw.U32(static_cast<std::uint32_t>(result.fds.size()));
    for (const od::FunctionalDependency& fd : result.fds) {
      fw.IdVec(fd.lhs);
      fw.U32(static_cast<std::uint32_t>(fd.rhs));
    }
    b.AddSection("fds", fw.Take());
    return b.Encode();
  };

  auto write_snapshot = [&](const std::string& blob) {
    Result<std::uint64_t> gen =
        snap->Write(blob, options.checkpoint.keep_generations);
    if (gen.ok()) {
      ++ck.snapshots_written;
      ctx->MarkCheckpointed();
      return true;
    }
    ck.warning = gen.status().message();
    return false;
  };

  auto decode_state = [&](const SnapshotView& view) {
    const std::string* meta_s = view.Find("meta");
    const std::string* fr_s = view.Find("frontier");
    const std::string* err_s = view.Find("errors");
    const std::string* fds_s = view.Find("fds");
    if (meta_s == nullptr || fr_s == nullptr || err_s == nullptr ||
        fds_s == nullptr) {
      ck.warning = "resume skipped: snapshot missing sections";
      return false;
    }
    ByteReader meta(*meta_s);
    if (meta.U32() != 1) {
      ck.warning = "resume skipped: unknown snapshot state version";
      return false;
    }
    if (meta.U64() != fingerprint) {
      ck.warning = "resume skipped: snapshot is for a different relation";
      return false;
    }
    std::uint64_t s_lhs_size = meta.U64();
    std::uint64_t s_checks = meta.U64();
    meta.U8();  // completed flag; an empty frontier says the same thing
    if (!meta.ok()) {
      ck.warning = "resume skipped: snapshot meta damaged";
      return false;
    }
    ByteReader fr(*fr_s);
    std::uint32_t count = fr.U32();
    std::vector<Node> restored;
    restored.reserve(count);
    for (std::uint32_t i = 0; i < count && fr.ok(); ++i) {
      Node node;
      node.set.lo = fr.U64();
      node.set.hi = fr.U64();
      node.cplus.lo = fr.U64();
      node.cplus.hi = fr.U64();
      restored.push_back(std::move(node));
    }
    if (!fr.ok()) {
      ck.warning = "resume skipped: snapshot frontier damaged";
      return false;
    }
    ByteReader er(*err_s);
    std::uint32_t num_errors = er.U32();
    std::unordered_map<AttrSet, std::size_t, AttrSetHash> restored_errors;
    for (std::uint32_t i = 0; i < num_errors && er.ok(); ++i) {
      AttrSet s;
      s.lo = er.U64();
      s.hi = er.U64();
      restored_errors.emplace(s, static_cast<std::size_t>(er.U64()));
    }
    if (!er.ok()) {
      ck.warning = "resume skipped: snapshot errors damaged";
      return false;
    }
    ByteReader fre(*fds_s);
    std::uint32_t num_fds = fre.U32();
    std::vector<od::FunctionalDependency> restored_fds;
    restored_fds.reserve(num_fds);
    for (std::uint32_t i = 0; i < num_fds && fre.ok(); ++i) {
      od::FunctionalDependency fd;
      fd.lhs = fre.IdVec();
      fd.rhs = fre.U32();
      restored_fds.push_back(std::move(fd));
    }
    if (!fre.ok()) {
      ck.warning = "resume skipped: snapshot fds damaged";
      return false;
    }
    // Commit: refold the frontier partitions and adopt the state.
    for (Node& node : restored) {
      node.partition = partition_for(node.set);
      std::size_t bytes = node.partition.MemoryBytes();
      if (!ctx->ChargeMemory(bytes)) {
        aborted = true;
        break;
      }
      level_bytes += bytes;
    }
    level = std::move(restored);
    prev_errors = std::move(restored_errors);
    lhs_size = static_cast<std::size_t>(s_lhs_size);
    result.num_checks = s_checks;
    result.fds = std::move(restored_fds);
    return true;
  };

  bool resumed = false;
  if (ck.enabled && options.checkpoint.resume) {
    Result<LoadedSnapshot> loaded = snap->Load();
    if (loaded.ok()) {
      ck.corrupt_skipped = loaded->corrupt_skipped;
      if (decode_state(loaded->view)) {
        resumed = true;
        ck.resumed = true;
        ck.resumed_generation = loaded->generation;
      }
    } else {
      ck.warning = "resume skipped: " + loaded.status().message();
    }
  }

  if (!resumed) {
    // Level 1.
    level.reserve(n);
    for (std::size_t a = 0; a < n && !aborted; ++a) {
      Node node;
      node.set = AttrSet::Single(a);
      node.partition = StrippedPartition::ForColumn(relation, a);
      node.cplus = universe;
      std::size_t bytes = node.partition.MemoryBytes();
      if (!ctx->ChargeMemory(bytes)) {
        aborted = true;
        break;
      }
      level_bytes += bytes;
      level.push_back(std::move(node));
    }
    prev_errors.emplace(AttrSet{}, empty_error);
  }

  std::string pending_blob;
  bool pending_written = true;
  try {
    while (!level.empty() && !aborted) {
      if (snap) {
        pending_blob = encode_state(false);
        pending_written = false;
        if (ctx->CheckpointDue()) {
          pending_written = write_snapshot(pending_blob);
        }
      }
      ctx->AtInjectionPoint("tane.level");
      if (options.max_lhs_size != 0 && lhs_size > options.max_lhs_size) break;

      // --- compute dependencies ---
      for (Node& node : level) {
        if (ctx->ShouldStop()) {
          aborted = true;
          break;
        }
        for (std::size_t a : node.set.Intersect(node.cplus).ToVector()) {
          AttrSet lhs = node.set.WithoutAttr(a);
          auto it = prev_errors.find(lhs);
          if (it == prev_errors.end()) continue;  // subset was pruned
          ctx->AtInjectionPoint("tane.check");
          ++result.num_checks;
          ctx->CountCheck(1);
          if (it->second == node.partition.error()) {
            od::FunctionalDependency fd;
            for (std::size_t b : lhs.ToVector()) fd.lhs.push_back(b);
            fd.rhs = a;
            result.fds.push_back(std::move(fd));
            node.cplus.Remove(a);
            node.cplus = node.cplus.Without(universe.Without(node.set));
          }
        }
      }
      if (aborted) break;

      // --- prune nodes with empty C⁺ ---
      std::vector<Node> kept;
      kept.reserve(level.size());
      for (Node& node : level) {
        if (!node.cplus.empty()) kept.push_back(std::move(node));
      }
      level = std::move(kept);

      // --- generate the next level (prefix-block join) ---
      prev_errors.clear();
      std::unordered_map<AttrSet, std::size_t, AttrSetHash> index;
      for (std::size_t i = 0; i < level.size(); ++i) {
        index.emplace(level[i].set, i);
        prev_errors.emplace(level[i].set, level[i].partition.error());
      }

      std::map<std::vector<std::size_t>, std::vector<std::size_t>> blocks;
      for (std::size_t i = 0; i < level.size(); ++i) {
        std::vector<std::size_t> attrs = level[i].set.ToVector();
        attrs.pop_back();  // prefix = all but the largest attribute
        blocks[attrs].push_back(i);
      }

      std::vector<Node> next;
      std::size_t next_bytes = 0;
      for (const auto& [prefix, members] : blocks) {
        if (aborted) break;
        for (std::size_t i = 0; i < members.size() && !aborted; ++i) {
          for (std::size_t j = i + 1; j < members.size(); ++j) {
            if (ctx->ShouldStop()) {
              aborted = true;
              break;
            }
            const Node& x1 = level[members[i]];
            const Node& x2 = level[members[j]];
            AttrSet y = x1.set.Union(x2.set);
            // All immediate subsets must have survived pruning.
            bool all_present = true;
            AttrSet cplus = universe;
            for (std::size_t c : y.ToVector()) {
              auto it = index.find(y.WithoutAttr(c));
              if (it == index.end()) {
                all_present = false;
                break;
              }
              cplus = cplus.Intersect(level[it->second].cplus);
            }
            if (!all_present || cplus.empty()) continue;
            ctx->AtInjectionPoint("tane.generate");
            Node node;
            node.set = y;
            node.partition =
                StrippedPartition::Product(x1.partition, x2.partition, m);
            node.cplus = cplus;
            std::size_t bytes = node.partition.MemoryBytes();
            if (!ctx->ChargeMemory(bytes)) {
              aborted = true;
              break;
            }
            next_bytes += bytes;
            next.push_back(std::move(node));
          }
        }
      }
      if (aborted) break;
      level = std::move(next);
      ctx->ReleaseMemory(level_bytes);
      level_bytes = next_bytes;
      ++lhs_size;
    }
  } catch (const FaultInjectedError&) {
    ctx->RequestStop(StopReason::kFaultInjected);
    aborted = true;
  }
  ctx->ReleaseMemory(level_bytes);

  aborted = aborted || ctx->stop_requested();

  // Drain-to-checkpoint (see ocd_discover.cc for the protocol).
  if (snap) {
    if (aborted) {
      if (!pending_written && !pending_blob.empty()) {
        write_snapshot(pending_blob);
      }
    } else {
      level.clear();
      write_snapshot(encode_state(true));
    }
  }

  result.stop_state.checks = result.num_checks;
  result.stop_state.level = lhs_size;
  result.stop_state.frontier_size = level.size();

  od::SortUnique(result.fds);
  result.completed = !aborted;
  result.stop_reason = ctx->stop_reason();
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ocdd::algo
