#include "algo/fd/tane.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "algo/attr_set.h"
#include "algo/partition/stripped_partition.h"
#include "common/fault_injection.h"
#include "common/timer.h"
#include "od/dependency_set.h"

namespace ocdd::algo {

namespace {

struct Node {
  AttrSet set;
  StrippedPartition partition;
  AttrSet cplus;  ///< TANE's C⁺(X): still-possible RHS attributes
};

}  // namespace

TaneResult DiscoverFds(const rel::CodedRelation& relation,
                       const TaneOptions& options) {
  WallTimer timer;
  TaneResult result;
  std::size_t n = relation.num_columns();
  std::size_t m = relation.num_rows();
  if (n == 0 || n > AttrSet::kMaxAttrs) {
    result.completed = n == 0;
    return result;
  }

  RunContext local_ctx;
  RunContext* ctx =
      options.run_context != nullptr ? options.run_context : &local_ctx;
  if (options.max_checks != 0) ctx->set_check_budget(options.max_checks);
  if (options.time_limit_seconds > 0.0) {
    ctx->set_time_limit_seconds(options.time_limit_seconds);
  }

  const AttrSet universe = AttrSet::FullUniverse(n);
  const std::size_t empty_error = m >= 2 ? m - 1 : 0;  // e(π(∅))

  // Level 1.
  std::vector<Node> level;
  std::size_t level_bytes = 0;
  bool aborted = false;
  level.reserve(n);
  for (std::size_t a = 0; a < n && !aborted; ++a) {
    Node node;
    node.set = AttrSet::Single(a);
    node.partition = StrippedPartition::ForColumn(relation, a);
    node.cplus = universe;
    std::size_t bytes = node.partition.MemoryBytes();
    if (!ctx->ChargeMemory(bytes)) {
      aborted = true;
      break;
    }
    level_bytes += bytes;
    level.push_back(std::move(node));
  }

  // Errors of the previous level's partitions, for the e(X\A) lookups.
  std::unordered_map<AttrSet, std::size_t, AttrSetHash> prev_errors;
  prev_errors.emplace(AttrSet{}, empty_error);

  std::size_t lhs_size = 0;  // |X\A| at the current level
  try {
    while (!level.empty() && !aborted) {
      ctx->AtInjectionPoint("tane.level");
      if (options.max_lhs_size != 0 && lhs_size > options.max_lhs_size) break;

      // --- compute dependencies ---
      for (Node& node : level) {
        if (ctx->ShouldStop()) {
          aborted = true;
          break;
        }
        for (std::size_t a : node.set.Intersect(node.cplus).ToVector()) {
          AttrSet lhs = node.set.WithoutAttr(a);
          auto it = prev_errors.find(lhs);
          if (it == prev_errors.end()) continue;  // subset was pruned
          ctx->AtInjectionPoint("tane.check");
          ++result.num_checks;
          ctx->CountCheck(1);
          if (it->second == node.partition.error()) {
            od::FunctionalDependency fd;
            for (std::size_t b : lhs.ToVector()) fd.lhs.push_back(b);
            fd.rhs = a;
            result.fds.push_back(std::move(fd));
            node.cplus.Remove(a);
            node.cplus = node.cplus.Without(universe.Without(node.set));
          }
        }
      }
      if (aborted) break;

      // --- prune nodes with empty C⁺ ---
      std::vector<Node> kept;
      kept.reserve(level.size());
      for (Node& node : level) {
        if (!node.cplus.empty()) kept.push_back(std::move(node));
      }
      level = std::move(kept);

      // --- generate the next level (prefix-block join) ---
      prev_errors.clear();
      std::unordered_map<AttrSet, std::size_t, AttrSetHash> index;
      for (std::size_t i = 0; i < level.size(); ++i) {
        index.emplace(level[i].set, i);
        prev_errors.emplace(level[i].set, level[i].partition.error());
      }

      std::map<std::vector<std::size_t>, std::vector<std::size_t>> blocks;
      for (std::size_t i = 0; i < level.size(); ++i) {
        std::vector<std::size_t> attrs = level[i].set.ToVector();
        attrs.pop_back();  // prefix = all but the largest attribute
        blocks[attrs].push_back(i);
      }

      std::vector<Node> next;
      std::size_t next_bytes = 0;
      for (const auto& [prefix, members] : blocks) {
        if (aborted) break;
        for (std::size_t i = 0; i < members.size() && !aborted; ++i) {
          for (std::size_t j = i + 1; j < members.size(); ++j) {
            if (ctx->ShouldStop()) {
              aborted = true;
              break;
            }
            const Node& x1 = level[members[i]];
            const Node& x2 = level[members[j]];
            AttrSet y = x1.set.Union(x2.set);
            // All immediate subsets must have survived pruning.
            bool all_present = true;
            AttrSet cplus = universe;
            for (std::size_t c : y.ToVector()) {
              auto it = index.find(y.WithoutAttr(c));
              if (it == index.end()) {
                all_present = false;
                break;
              }
              cplus = cplus.Intersect(level[it->second].cplus);
            }
            if (!all_present || cplus.empty()) continue;
            ctx->AtInjectionPoint("tane.generate");
            Node node;
            node.set = y;
            node.partition =
                StrippedPartition::Product(x1.partition, x2.partition, m);
            node.cplus = cplus;
            std::size_t bytes = node.partition.MemoryBytes();
            if (!ctx->ChargeMemory(bytes)) {
              aborted = true;
              break;
            }
            next_bytes += bytes;
            next.push_back(std::move(node));
          }
        }
      }
      if (aborted) break;
      level = std::move(next);
      ctx->ReleaseMemory(level_bytes);
      level_bytes = next_bytes;
      ++lhs_size;
    }
  } catch (const FaultInjectedError&) {
    ctx->RequestStop(StopReason::kFaultInjected);
    aborted = true;
  }
  ctx->ReleaseMemory(level_bytes);

  aborted = aborted || ctx->stop_requested();
  od::SortUnique(result.fds);
  result.completed = !aborted;
  result.stop_reason = ctx->stop_reason();
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace ocdd::algo
