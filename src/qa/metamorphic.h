#ifndef OCDD_QA_METAMORPHIC_H_
#define OCDD_QA_METAMORPHIC_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "qa/claims.h"
#include "qa/oracle.h"
#include "relation/relation.h"

namespace ocdd::qa {

/// Closure-preserving relation transforms. Each leaves the set of valid
/// dependencies invariant, so every algorithm must make equivalent claims on
/// the transformed instance:
///  * kRowShuffle — OD/OCD/FD validity quantifies over tuple pairs, never
///    over physical positions;
///  * kRowDuplicate — appending copies of existing tuples adds only
///    reflexive pairs (`p ⪯ q ∧ q ⪯ p` corners);
///  * kColumnPermute — dependencies relabel along the permutation; the
///    closure is isomorphic;
///  * kMonotoneRecode — a strictly increasing recode of a column preserves
///    every `<`/`=` relationship, hence the dense-rank codes verbatim;
///  * kNullBlock — replacing every occurrence of a NULL-free column's
///    minimum value with NULL is invisible under NULL = NULL / NULLS FIRST:
///    the NULLs inherit exactly the dense code the minimum held.
enum class Transform {
  kRowShuffle,
  kRowDuplicate,
  kColumnPermute,
  kMonotoneRecode,
  kNullBlock,
};

inline constexpr std::array<Transform, 5> kAllTransforms = {
    Transform::kRowShuffle,   Transform::kRowDuplicate,
    Transform::kColumnPermute, Transform::kMonotoneRecode,
    Transform::kNullBlock,
};

const char* TransformName(Transform t);

/// Applies `transform` to `base`. Deterministic given the Rng state.
/// `column_perm` (optional out) receives the column permutation used —
/// `perm[i]` is the base column now at position `i`; identity for every
/// transform except kColumnPermute.
rel::Relation ApplyTransform(const rel::Relation& base, Transform transform,
                             Rng& rng,
                             std::vector<rel::ColumnId>* column_perm = nullptr);

/// Runs all algorithms on the transformed instance and asserts claim
/// equivalence against `base_runs`:
///  * identity-code transforms (shuffle, duplicate, recode, NULL block):
///    claim sets must match syntactically, algorithm by algorithm;
///  * kColumnPermute: ORDER / FASTOD / TANE claims must match syntactically
///    after relabeling; OCDDISCOVER is compared by closure equivalence
///    (mutual derivability), because its reduction may elect different
///    class representatives under relabeling.
///
/// Discrepancies carry check = "metamorphic/<transform>".
OracleReport CheckMetamorphic(const rel::Relation& base,
                              const AlgorithmRuns& base_runs,
                              Transform transform, Rng& rng);

}  // namespace ocdd::qa

#endif  // OCDD_QA_METAMORPHIC_H_
