#include "qa/oracle.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "od/brute_force.h"
#include "od/inference.h"
#include "qa/canonical.h"

namespace ocdd::qa {

const char* CorruptionModeName(CorruptionMode mode) {
  switch (mode) {
    case CorruptionMode::kNone:
      return "none";
    case CorruptionMode::kDropOcddiscover:
      return "drop-ocddiscover";
    case CorruptionMode::kInventOrderOd:
      return "invent-order-od";
    case CorruptionMode::kDropFastodCompat:
      return "drop-fastod-compat";
  }
  return "?";
}

std::string CorruptionPoint(CorruptionMode mode) {
  return std::string("qa.corrupt.") + CorruptionModeName(mode);
}

namespace {

/// The engine only materializes normalized lists of length ≤ max_len; facts
/// and queries beyond that are outside its vocabulary and must be skipped,
/// never flagged.
bool Representable(const od::AttributeList& list, std::size_t max_len) {
  return list.Normalized().size() <= max_len;
}

bool RepresentableOd(const od::OrderDependency& od, std::size_t max_len) {
  return Representable(od.lhs, max_len) && Representable(od.rhs, max_len);
}

bool RepresentableOcd(const od::OrderCompatibility& ocd, std::size_t max_len) {
  // ImpliesOcd consults XY ↔ YX; both concatenations normalize to the same
  // length.
  return Representable(ocd.lhs.Concat(ocd.rhs), max_len);
}

/// OCDDISCOVER's *effective* candidate space after column reduction: a
/// disjoint OCD whose sides, with claimed-constant columns dropped and every
/// column mapped to its claimed class representative, still have disjoint
/// sets is enumerated (possibly in expanded form); one whose sides collapse
/// onto a shared representative never is, and its validity (which then
/// hinges on FD facts such as key-ness inside the collapsed class) is not
/// entailed by OCDDISCOVER's claims. See docs/qa.md.
class OcddScope {
 public:
  OcddScope(std::size_t num_columns, const ClaimSet& ocdd)
      : is_constant_(num_columns, false), rep_(num_columns) {
    for (std::size_t c = 0; c < num_columns; ++c) rep_[c] = c;
    for (rel::ColumnId c : ocdd.constant_columns) is_constant_[c] = true;
    for (const auto& cls : ocdd.equivalence_classes) {
      for (rel::ColumnId c : cls) rep_[c] = cls.front();
    }
  }

  bool InScope(const od::AttributeList& x, const od::AttributeList& y) const {
    std::vector<rel::ColumnId> a = Reduced(x);
    std::vector<rel::ColumnId> b = Reduced(y);
    std::vector<rel::ColumnId> both;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(both));
    return both.empty();
  }

 private:
  std::vector<rel::ColumnId> Reduced(const od::AttributeList& list) const {
    std::vector<rel::ColumnId> out;
    for (rel::ColumnId id : list.ids()) {
      if (!is_constant_[id]) out.push_back(rep_[id]);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  std::vector<bool> is_constant_;
  std::vector<rel::ColumnId> rep_;
};

std::vector<rel::ColumnId> SortedContext(const od::CanonicalOd& cod) {
  std::vector<rel::ColumnId> ctx = cod.context;
  std::sort(ctx.begin(), ctx.end());
  return ctx;
}

void ApplyCorruption(const rel::CodedRelation& relation, CorruptionMode mode,
                     std::size_t max_side_len, AlgorithmRuns* runs) {
  switch (mode) {
    case CorruptionMode::kNone:
      return;
    case CorruptionMode::kDropOcddiscover:
      runs->ocdd.ods.clear();
      runs->ocdd.ocds.clear();
      runs->ocdd.constant_columns.clear();
      runs->ocdd.equivalence_classes.clear();
      return;
    case CorruptionMode::kInventOrderOd: {
      std::vector<rel::ColumnId> universe(relation.num_columns());
      for (std::size_t i = 0; i < universe.size(); ++i) universe[i] = i;
      for (const auto& x : od::EnumerateLists(universe, max_side_len)) {
        for (const auto& y : od::EnumerateLists(universe, max_side_len)) {
          if (!x.DisjointWith(y)) continue;
          if (od::BruteForceHoldsOd(relation, x, y)) continue;
          runs->order.ods.push_back(od::OrderDependency{x, y});
          runs->order.SortAll();
          return;
        }
      }
      return;  // every candidate holds — nothing to invent on this instance
    }
    case CorruptionMode::kDropFastodCompat:
      runs->fastod.canonical.erase(
          std::remove_if(runs->fastod.canonical.begin(),
                         runs->fastod.canonical.end(),
                         [](const od::CanonicalOd& cod) {
                           return cod.kind ==
                                  od::CanonicalOd::Kind::kOrderCompatible;
                         }),
          runs->fastod.canonical.end());
      return;
  }
}

}  // namespace

OracleReport CrossCheck(const rel::CodedRelation& relation,
                        const OracleOptions& options) {
  return CrossCheckRuns(relation, RunAllClaims(relation), options);
}

OracleReport CrossCheckRuns(const rel::CodedRelation& relation,
                            AlgorithmRuns runs, const OracleOptions& options) {
  const std::size_t n = relation.num_columns();
  const std::size_t L =
      options.max_list_len != 0 ? options.max_list_len : DefaultMaxListLen(n);
  ApplyCorruption(relation, options.corruption, options.max_side_len, &runs);
  if (options.injector != nullptr) {
    for (CorruptionMode mode :
         {CorruptionMode::kDropOcddiscover, CorruptionMode::kInventOrderOd,
          CorruptionMode::kDropFastodCompat}) {
      if (options.injector->Poll(CorruptionPoint(mode).c_str()) !=
          FaultAction::kNone) {
        ApplyCorruption(relation, mode, options.max_side_len, &runs);
      }
    }
  }

  OracleReport report;
  report.all_completed = runs.AllCompleted();
  auto fail = [&report](const char* check, const char* algorithm,
                        std::string detail) {
    report.discrepancies.push_back(
        Discrepancy{check, algorithm, std::move(detail)});
  };

  // ---- Soundness: every emitted claim re-checked from the definitions.
  // Applies to stopped runs too: a budgeted run may be incomplete, never
  // wrong.
  for (const auto& od : runs.order.ods) {
    ++report.comparisons;
    if (!od::BruteForceHoldsOd(relation, od.lhs, od.rhs)) {
      fail("soundness", "order", od.ToString());
    }
  }
  for (const auto& od : runs.ocdd.ods) {
    ++report.comparisons;
    if (!od::BruteForceHoldsOd(relation, od.lhs, od.rhs)) {
      fail("soundness", "ocddiscover", od.ToString());
    }
  }
  for (const auto& ocd : runs.ocdd.ocds) {
    ++report.comparisons;
    if (!od::BruteForceHoldsOcd(relation, ocd.lhs, ocd.rhs)) {
      fail("soundness", "ocddiscover", ocd.ToString());
    }
  }
  for (rel::ColumnId c : runs.ocdd.constant_columns) {
    ++report.comparisons;
    if (!HoldsConstancy(relation, {}, c)) {
      fail("soundness", "ocddiscover", "CONST [" + std::to_string(c) + "]");
    }
  }
  for (const auto& cls : runs.ocdd.equivalence_classes) {
    od::AttributeList rep{cls.empty() ? 0 : cls.front()};
    for (std::size_t i = 1; i < cls.size(); ++i) {
      od::AttributeList other{cls[i]};
      ++report.comparisons;
      if (!od::BruteForceHoldsOd(relation, rep, other) ||
          !od::BruteForceHoldsOd(relation, other, rep)) {
        fail("soundness", "ocddiscover",
             "EQUIV " + rep.ToString() + "<->" + other.ToString());
      }
    }
  }
  for (const auto& cod : runs.fastod.canonical) {
    std::vector<rel::ColumnId> ctx = SortedContext(cod);
    ++report.comparisons;
    bool holds = cod.kind == od::CanonicalOd::Kind::kConstancy
                     ? HoldsConstancy(relation, ctx, cod.right)
                     : HoldsCompat(relation, ctx, cod.left, cod.right);
    if (!holds) fail("soundness", "fastod", cod.ToString());
  }
  for (const auto& fd : runs.tane.fds) {
    ++report.comparisons;
    if (!od::BruteForceHoldsFd(relation, fd.lhs, fd.rhs)) {
      fail("soundness", "tane", fd.ToString());
    }
  }

  // ---- Closures over each algorithm's claims.
  od::OdInferenceEngine eng_ocdd =
      BuildClosureEngine(n, L, runs.ocdd, &report.skipped);
  od::OdInferenceEngine eng_order =
      BuildClosureEngine(n, L, runs.order, &report.skipped);
  CanonicalClosure fastod_closure(runs.fastod.canonical);
  OcddScope ocdd_scope(n, runs.ocdd);

  // ---- Candidate sweep: completeness, exactness, and mapping-theorem
  // consistency over every side-bounded candidate. Brute force decides each
  // candidate from the definitions; each completed algorithm's closure must
  // agree wherever the candidate lies inside its documented scope.
  std::vector<rel::ColumnId> universe(n);
  for (std::size_t i = 0; i < n; ++i) universe[i] = i;
  const std::vector<od::AttributeList> lists =
      od::EnumerateLists(universe, options.max_side_len);

  for (const auto& x : lists) {
    for (const auto& y : lists) {
      if (x == y) continue;
      const od::OrderDependency cand{x, y};
      const bool valid = od::BruteForceHoldsOd(relation, x, y);

      ++report.comparisons;
      if (SemanticOdViaCanonical(relation, cand) != valid) {
        fail("mapping_theorem", "canonical", cand.ToString());
      }

      if (runs.fastod.completed) {
        // The canonical closure decides every list OD exactly.
        ++report.comparisons;
        if (fastod_closure.ImpliesOd(cand) != valid) {
          fail(valid ? "completeness" : "exactness", "fastod",
               cand.ToString());
        }
      }

      if (!x.DisjointWith(y)) continue;  // list engines: disjoint scope only
      if (!RepresentableOd(cand, L)) {
        report.skipped += 2;
        continue;
      }
      if (runs.order.completed) {
        ++report.comparisons;
        if (eng_order.Implies(cand) != valid) {
          fail(valid ? "completeness" : "exactness", "order", cand.ToString());
        }
      }
      if (runs.ocdd.completed) {
        // OCDDISCOVER is complete for OCDs, not for ODs: a valid OD `X → Y`
        // additionally needs FD facts OCDDISCOVER never claims (the paper
        // factors `X → Y` into `X ~ Y` plus split-freeness). Its closure must
        // therefore never *overclaim* an OD (exactness), while OD
        // completeness is checked on the OCD part in the sweep below.
        ++report.comparisons;
        if (!valid && eng_ocdd.Implies(cand)) {
          fail("exactness", "ocddiscover", cand.ToString());
        }
      }
    }
  }

  for (std::size_t i = 0; i < lists.size(); ++i) {
    for (std::size_t j = i + 1; j < lists.size(); ++j) {
      const od::OrderCompatibility cand{lists[i], lists[j]};
      const bool valid = od::BruteForceHoldsOcd(relation, cand.lhs, cand.rhs);

      ++report.comparisons;
      if (SemanticOcdViaCanonical(relation, cand) != valid) {
        fail("mapping_theorem", "canonical", cand.ToString());
      }

      if (runs.fastod.completed) {
        ++report.comparisons;
        if (fastod_closure.ImpliesOcd(cand) != valid) {
          fail(valid ? "completeness" : "exactness", "fastod",
               cand.ToString());
        }
      }

      if (!cand.lhs.DisjointWith(cand.rhs)) continue;
      if (!RepresentableOcd(cand, L)) {
        ++report.skipped;
        continue;
      }
      if (runs.ocdd.completed) {
        ++report.comparisons;
        bool implied = eng_ocdd.ImpliesOcd(cand);
        if (implied && !valid) {
          fail("exactness", "ocddiscover", cand.ToString());
        } else if (valid && !implied) {
          // Candidates the reduction collapses onto non-disjoint sides are
          // never enumerated; their validity is outside the claim scope.
          if (ocdd_scope.InScope(cand.lhs, cand.rhs)) {
            fail("completeness", "ocddiscover", cand.ToString());
          } else {
            ++report.skipped;
          }
        }
      }
    }
  }

  // ---- Reduction: OCDDISCOVER's column reduction must name exactly the
  // constant columns and group exactly the order-equivalent survivors.
  if (runs.ocdd.completed) {
    std::vector<bool> is_const(n, false);
    for (std::size_t c = 0; c < n; ++c) {
      is_const[c] = HoldsConstancy(relation, {}, c);
      ++report.comparisons;
      bool claimed =
          std::binary_search(runs.ocdd.constant_columns.begin(),
                             runs.ocdd.constant_columns.end(), c);
      if (is_const[c] != claimed) {
        fail("reduction", "ocddiscover",
             std::string(is_const[c] ? "missing" : "spurious") + " CONST [" +
                 std::to_string(c) + "]");
      }
    }
    auto same_class = [&runs](rel::ColumnId a, rel::ColumnId b) {
      for (const auto& cls : runs.ocdd.equivalence_classes) {
        bool has_a = std::find(cls.begin(), cls.end(), a) != cls.end();
        bool has_b = std::find(cls.begin(), cls.end(), b) != cls.end();
        if (has_a || has_b) return has_a && has_b;
      }
      return false;  // both singletons
    };
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        if (is_const[a] || is_const[b]) continue;  // reduced before grouping
        od::AttributeList la{static_cast<rel::ColumnId>(a)};
        od::AttributeList lb{static_cast<rel::ColumnId>(b)};
        bool equiv = od::BruteForceHoldsOd(relation, la, lb) &&
                     od::BruteForceHoldsOd(relation, lb, la);
        ++report.comparisons;
        if (equiv != same_class(a, b)) {
          fail("reduction", "ocddiscover",
               std::string(equiv ? "ungrouped" : "overgrouped") + " EQUIV " +
                   la.ToString() + "<->" + lb.ToString());
        }
      }
    }
  }

  // ---- Differential: each algorithm's claims re-derived from the others'
  // closures, scope permitting.
  if (runs.order.completed && runs.fastod.completed) {
    for (const auto& od : runs.order.ods) {
      ++report.comparisons;
      if (!fastod_closure.ImpliesOd(od)) {
        fail("differential", "order_vs_fastod", od.ToString());
      }
    }
  }
  if (runs.order.completed && runs.ocdd.completed) {
    // A valid OD is a valid OCD plus split-freeness; only the OCD part lies
    // inside OCDDISCOVER's claim scope.
    for (const auto& od : runs.order.ods) {
      od::OrderCompatibility ocd_part{od.lhs, od.rhs};
      if (!RepresentableOcd(ocd_part, L)) {
        ++report.skipped;
        continue;
      }
      ++report.comparisons;
      if (!eng_ocdd.ImpliesOcd(ocd_part)) {
        if (ocdd_scope.InScope(ocd_part.lhs, ocd_part.rhs)) {
          fail("differential", "order_vs_ocddiscover", ocd_part.ToString());
        } else {
          ++report.skipped;
        }
      }
    }
  }
  if (runs.ocdd.completed && runs.fastod.completed) {
    for (const auto& od : runs.ocdd.ods) {
      ++report.comparisons;
      if (!fastod_closure.ImpliesOd(od)) {
        fail("differential", "ocddiscover_vs_fastod", od.ToString());
      }
    }
    for (const auto& ocd : runs.ocdd.ocds) {
      ++report.comparisons;
      if (!fastod_closure.ImpliesOcd(ocd)) {
        fail("differential", "ocddiscover_vs_fastod", ocd.ToString());
      }
    }
  }
  if (runs.ocdd.completed && runs.order.completed) {
    for (const auto& od : runs.ocdd.ods) {
      if (!od.lhs.DisjointWith(od.rhs)) continue;  // outside ORDER's space
      if (!RepresentableOd(od, L)) {
        ++report.skipped;
        continue;
      }
      ++report.comparisons;
      if (!eng_order.Implies(od)) {
        fail("differential", "ocddiscover_vs_order", od.ToString());
      }
    }
  }
  if (runs.fastod.completed && runs.ocdd.completed) {
    // Only empty-context compatibility lands inside OCDDISCOVER's candidate
    // space (context-conditional compatibility has no disjoint list form).
    for (const auto& cod : runs.fastod.canonical) {
      if (cod.kind != od::CanonicalOd::Kind::kOrderCompatible ||
          !cod.context.empty()) {
        continue;
      }
      od::OrderCompatibility ocd{od::AttributeList{cod.left},
                                 od::AttributeList{cod.right}};
      ++report.comparisons;
      if (!eng_ocdd.ImpliesOcd(ocd)) {
        fail("differential", "fastod_vs_ocddiscover", cod.ToString());
      }
    }
  }

  // ---- Constancy vs FDs: the two set-based vocabularies must induce the
  // same closure (syntactic minimality criteria may differ, derivability may
  // not).
  if (runs.tane.completed && runs.fastod.completed) {
    for (const auto& fd : runs.tane.fds) {
      ++report.comparisons;
      if (!fastod_closure.ImpliesConstancy(fd.lhs, fd.rhs)) {
        fail("constancy_vs_fds", "tane_vs_fastod", fd.ToString());
      }
    }
    auto fds_imply = [&runs](const std::vector<rel::ColumnId>& ctx,
                             rel::ColumnId rhs) {
      if (std::binary_search(ctx.begin(), ctx.end(), rhs)) return true;
      for (const auto& fd : runs.tane.fds) {
        if (fd.rhs == rhs && std::includes(ctx.begin(), ctx.end(),
                                           fd.lhs.begin(), fd.lhs.end())) {
          return true;
        }
      }
      return false;
    };
    for (const auto& cod : runs.fastod.canonical) {
      if (cod.kind != od::CanonicalOd::Kind::kConstancy) continue;
      ++report.comparisons;
      if (!fds_imply(SortedContext(cod), cod.right)) {
        fail("constancy_vs_fds", "fastod_vs_tane", cod.ToString());
      }
    }
  }

  return report;
}

}  // namespace ocdd::qa
