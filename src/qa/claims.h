#ifndef OCDD_QA_CLAIMS_H_
#define OCDD_QA_CLAIMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "common/snapshot.h"
#include "od/dependency.h"
#include "od/inference.h"
#include "relation/coded_relation.h"

namespace ocdd::qa {

/// The assertions one discovery algorithm makes about a relation, normalized
/// into a common vocabulary so that the oracle can compare algorithms whose
/// native output formats differ (list OCDs/ODs vs set-based canonical ODs vs
/// FDs). Every collection is sorted and duplicate-free after a runner
/// returns.
struct ClaimSet {
  std::string algorithm;
  bool completed = true;
  StopReason stop_reason = StopReason::kNone;
  std::uint64_t num_checks = 0;

  std::vector<od::OrderDependency> ods;
  std::vector<od::OrderCompatibility> ocds;
  /// OCDDISCOVER's columnsReduction() output.
  std::vector<rel::ColumnId> constant_columns;
  std::vector<std::vector<rel::ColumnId>> equivalence_classes;
  /// FASTOD's native output.
  std::vector<od::CanonicalOd> canonical;
  /// TANE's native output.
  std::vector<od::FunctionalDependency> fds;

  void SortAll();

  /// Stable multi-line rendering (raw column ids) for subset comparisons and
  /// failure reports.
  std::vector<std::string> Render() const;
};

/// Runs one algorithm and captures its claims. `ctx` is optional; when given
/// it is used as the run's RunContext (budgets/faults included), which is how
/// the harness produces deliberately stopped runs. `checkpoint` (optional,
/// checkpointable algorithms only) enables snapshot writes / resume — the
/// resume-equivalence stage stops a checkpointed run mid-lattice, resumes it,
/// and asserts the resumed claims equal an uninterrupted run's.
ClaimSet RunOcddiscoverClaims(const rel::CodedRelation& relation,
                              RunContext* ctx = nullptr,
                              const CheckpointConfig* checkpoint = nullptr);
ClaimSet RunOrderClaims(const rel::CodedRelation& relation,
                        RunContext* ctx = nullptr);
ClaimSet RunFastodClaims(const rel::CodedRelation& relation,
                         RunContext* ctx = nullptr,
                         const CheckpointConfig* checkpoint = nullptr);
ClaimSet RunTaneClaims(const rel::CodedRelation& relation,
                       RunContext* ctx = nullptr,
                       const CheckpointConfig* checkpoint = nullptr);

/// All four differential voices over the same relation.
struct AlgorithmRuns {
  ClaimSet ocdd;
  ClaimSet order;
  ClaimSet fastod;
  ClaimSet tane;

  bool AllCompleted() const {
    return ocdd.completed && order.completed && fastod.completed &&
           tane.completed;
  }
};

AlgorithmRuns RunAllClaims(const rel::CodedRelation& relation);

/// Seeds a J_OD inference engine with every fact a claim set asserts,
/// translated to the list vocabulary:
///  * ODs and OCDs verbatim;
///  * order-equivalence classes as pairwise `[A] ↔ [B]`;
///  * constant columns as `[] ↔ [C]`;
///  * FDs `X ↦ A` as `X' → X'A` for every permutation X' of X;
///  * canonical constancy `ctx : [] ↦ A` like an FD, and canonical
///    compatibility `ctx : A ~ B` as `ctx'A ~ ctx'B` for every permutation
///    ctx' of the context.
///
/// Facts whose lists exceed `max_list_len` are skipped; the count of skipped
/// facts is returned through `skipped` (callers surface it as reduced
/// coverage, not as an error). ComputeClosure() has already been run on the
/// returned engine.
od::OdInferenceEngine BuildClosureEngine(std::size_t num_columns,
                                         std::size_t max_list_len,
                                         const ClaimSet& claims,
                                         std::uint64_t* skipped = nullptr);

/// The engine list-length bound the oracle uses for `num_columns`-wide
/// relations: min(num_columns, 4), except 3 when num_columns > 4 — keeping
/// the materialized lattice small enough that closure stays O(ms).
std::size_t DefaultMaxListLen(std::size_t num_columns);

}  // namespace ocdd::qa

#endif  // OCDD_QA_CLAIMS_H_
