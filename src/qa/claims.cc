#include "qa/claims.h"

#include <algorithm>

#include "algo/fastod/fastod.h"
#include "algo/fd/tane.h"
#include "algo/order/order_discover.h"
#include "core/ocd_discover.h"
#include "od/dependency_set.h"

namespace ocdd::qa {

void ClaimSet::SortAll() {
  od::SortUnique(ods);
  od::SortUnique(ocds);
  od::SortUnique(constant_columns);
  for (auto& cls : equivalence_classes) od::SortUnique(cls);
  od::SortUnique(equivalence_classes);
  od::SortUnique(canonical);
  od::SortUnique(fds);
}

std::vector<std::string> ClaimSet::Render() const {
  std::vector<std::string> out;
  for (const auto& od : ods) out.push_back("OD " + od.ToString());
  for (const auto& ocd : ocds) out.push_back("OCD " + ocd.ToString());
  for (rel::ColumnId c : constant_columns) {
    out.push_back("CONST [" + std::to_string(c) + "]");
  }
  for (const auto& cls : equivalence_classes) {
    std::string s = "EQUIV [";
    for (std::size_t i = 0; i < cls.size(); ++i) {
      if (i > 0) s += ",";
      s += std::to_string(cls[i]);
    }
    out.push_back(s + "]");
  }
  for (const auto& cod : canonical) out.push_back("COD " + cod.ToString());
  for (const auto& fd : fds) out.push_back("FD " + fd.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

ClaimSet RunOcddiscoverClaims(const rel::CodedRelation& relation,
                              RunContext* ctx,
                              const CheckpointConfig* checkpoint) {
  core::OcdDiscoverOptions opts;
  opts.run_context = ctx;
  if (checkpoint != nullptr) opts.checkpoint = *checkpoint;
  core::OcdDiscoverResult r = core::DiscoverOcds(relation, opts);
  ClaimSet claims;
  claims.algorithm = "ocddiscover";
  claims.completed = r.completed;
  claims.stop_reason = r.stop_reason;
  claims.num_checks = r.num_checks;
  claims.ods = r.ods;
  claims.ocds = r.ocds;
  claims.constant_columns = r.reduction.constant_columns;
  claims.equivalence_classes = r.reduction.equivalence_classes;
  claims.SortAll();
  return claims;
}

ClaimSet RunOrderClaims(const rel::CodedRelation& relation, RunContext* ctx) {
  algo::OrderDiscoverOptions opts;
  opts.run_context = ctx;
  algo::OrderDiscoverResult r = algo::DiscoverOrderDependencies(relation, opts);
  ClaimSet claims;
  claims.algorithm = "order";
  claims.completed = r.completed;
  claims.stop_reason = r.stop_reason;
  claims.num_checks = r.num_checks;
  claims.ods = r.ods;
  claims.SortAll();
  return claims;
}

ClaimSet RunFastodClaims(const rel::CodedRelation& relation, RunContext* ctx,
                         const CheckpointConfig* checkpoint) {
  algo::FastodOptions opts;
  opts.run_context = ctx;
  if (checkpoint != nullptr) opts.checkpoint = *checkpoint;
  algo::FastodResult r = algo::DiscoverFastod(relation, opts);
  ClaimSet claims;
  claims.algorithm = "fastod";
  claims.completed = r.completed;
  claims.stop_reason = r.stop_reason;
  claims.num_checks = r.num_checks;
  claims.canonical = r.ods;
  claims.SortAll();
  return claims;
}

ClaimSet RunTaneClaims(const rel::CodedRelation& relation, RunContext* ctx,
                       const CheckpointConfig* checkpoint) {
  algo::TaneOptions opts;
  opts.run_context = ctx;
  if (checkpoint != nullptr) opts.checkpoint = *checkpoint;
  algo::TaneResult r = algo::DiscoverFds(relation, opts);
  ClaimSet claims;
  claims.algorithm = "tane";
  claims.completed = r.completed;
  claims.stop_reason = r.stop_reason;
  claims.num_checks = r.num_checks;
  claims.fds = r.fds;
  claims.SortAll();
  return claims;
}

AlgorithmRuns RunAllClaims(const rel::CodedRelation& relation) {
  AlgorithmRuns runs;
  runs.ocdd = RunOcddiscoverClaims(relation);
  runs.order = RunOrderClaims(relation);
  runs.fastod = RunFastodClaims(relation);
  runs.tane = RunTaneClaims(relation);
  return runs;
}

std::size_t DefaultMaxListLen(std::size_t num_columns) {
  if (num_columns > 4) return 3;
  return std::min<std::size_t>(num_columns, 4);
}

namespace {

/// Every permutation of `set` as an AttributeList (set is small: ≤ 4 ids).
std::vector<od::AttributeList> Permutations(std::vector<rel::ColumnId> set) {
  std::vector<od::AttributeList> out;
  std::sort(set.begin(), set.end());
  do {
    out.push_back(od::AttributeList(set));
  } while (std::next_permutation(set.begin(), set.end()));
  return out;
}

/// Adds `X' → X'A` for every permutation X' of `lhs` — the list form of the
/// FD `lhs ↦ rhs` (ties on the whole of X' are exactly agreement on the set).
void AddFdFacts(od::OdInferenceEngine& engine,
                const std::vector<rel::ColumnId>& lhs, rel::ColumnId rhs,
                std::uint64_t* skipped) {
  if (lhs.empty()) {
    if (!engine.AddEquivalence(od::AttributeList{},
                               od::AttributeList{rhs})) {
      ++*skipped;
    }
    return;
  }
  for (const od::AttributeList& perm : Permutations(lhs)) {
    od::OrderDependency od{perm, perm.WithAppended(rhs)};
    if (!engine.AddOd(od)) ++*skipped;
  }
}

}  // namespace

od::OdInferenceEngine BuildClosureEngine(std::size_t num_columns,
                                         std::size_t max_list_len,
                                         const ClaimSet& claims,
                                         std::uint64_t* skipped_out) {
  std::vector<rel::ColumnId> universe(num_columns);
  for (std::size_t i = 0; i < num_columns; ++i) universe[i] = i;
  od::OdInferenceEngine engine(std::move(universe), max_list_len);

  std::uint64_t skipped = 0;
  for (const auto& od : claims.ods) {
    if (!engine.AddOd(od)) ++skipped;
  }
  for (const auto& ocd : claims.ocds) {
    if (!engine.AddOcd(ocd)) ++skipped;
  }
  for (rel::ColumnId c : claims.constant_columns) {
    if (!engine.AddEquivalence(od::AttributeList{}, od::AttributeList{c})) {
      ++skipped;
    }
  }
  for (const auto& cls : claims.equivalence_classes) {
    for (std::size_t i = 1; i < cls.size(); ++i) {
      if (!engine.AddEquivalence(od::AttributeList{cls[0]},
                                 od::AttributeList{cls[i]})) {
        ++skipped;
      }
    }
  }
  for (const auto& fd : claims.fds) {
    AddFdFacts(engine, fd.lhs, fd.rhs, &skipped);
  }
  for (const auto& cod : claims.canonical) {
    if (cod.kind == od::CanonicalOd::Kind::kConstancy) {
      AddFdFacts(engine, cod.context, cod.right, &skipped);
      continue;
    }
    if (cod.context.empty()) {
      if (!engine.AddOcd(od::OrderCompatibility{
              od::AttributeList{cod.left}, od::AttributeList{cod.right}})) {
        ++skipped;
      }
      continue;
    }
    for (const od::AttributeList& perm : Permutations(cod.context)) {
      od::OrderCompatibility ocd{perm.WithAppended(cod.left),
                                 perm.WithAppended(cod.right)};
      if (!engine.AddOcd(ocd)) ++skipped;
    }
  }

  engine.ComputeClosure();
  if (skipped_out != nullptr) *skipped_out += skipped;
  return engine;
}

}  // namespace ocdd::qa
