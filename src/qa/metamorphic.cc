#include "qa/metamorphic.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "od/inference.h"
#include "relation/coded_relation.h"

namespace ocdd::qa {

const char* TransformName(Transform t) {
  switch (t) {
    case Transform::kRowShuffle:
      return "row_shuffle";
    case Transform::kRowDuplicate:
      return "row_duplicate";
    case Transform::kColumnPermute:
      return "column_permute";
    case Transform::kMonotoneRecode:
      return "monotone_recode";
    case Transform::kNullBlock:
      return "null_block";
  }
  return "?";
}

namespace {

rel::Relation RebuildWithColumn(const rel::Relation& base, rel::ColumnId target,
                                rel::Column replacement) {
  std::vector<rel::Column> columns;
  for (std::size_t c = 0; c < base.num_columns(); ++c) {
    columns.push_back(c == target ? std::move(replacement) : base.column(c));
  }
  return rel::Relation::FromColumns(base.schema(), std::move(columns)).value();
}

rel::Relation MonotoneRecode(const rel::Relation& base, Rng& rng) {
  rel::Relation out = base;
  for (std::size_t c = 0; c < base.num_columns(); ++c) {
    const rel::Column& col = base.column(c);
    if (col.type() != rel::DataType::kInt) continue;
    if (!rng.Bernoulli(0.75)) continue;
    std::int64_t scale = 1 + static_cast<std::int64_t>(rng.Uniform(5));
    std::int64_t shift = rng.UniformInt(-7, 7);
    bool representable = true;
    std::vector<rel::Value> vals;
    vals.reserve(base.num_rows());
    for (std::size_t r = 0; r < base.num_rows(); ++r) {
      if (col.is_null(r)) {
        vals.push_back(rel::Value::Null());
        continue;
      }
      std::int64_t v = col.int_at(r);
      if (std::llabs(v) > (std::int64_t{1} << 40)) {
        representable = false;  // keep the recode overflow-free
        break;
      }
      vals.push_back(rel::Value::Int(v * scale + shift));
    }
    if (!representable) continue;
    out = RebuildWithColumn(
        out, c, rel::Column::FromValues(rel::DataType::kInt, vals));
  }
  return out;
}

rel::Relation NullBlock(const rel::Relation& base, Rng& rng) {
  // Candidates: NULL-free, non-empty columns (any type — the minimum is
  // whatever sorts first).
  std::vector<rel::ColumnId> candidates;
  for (std::size_t c = 0; c < base.num_columns(); ++c) {
    bool has_null = false;
    for (std::size_t r = 0; r < base.num_rows(); ++r) {
      if (base.column(c).is_null(r)) {
        has_null = true;
        break;
      }
    }
    if (!has_null && base.num_rows() > 0) candidates.push_back(c);
  }
  if (candidates.empty()) return base;
  rel::ColumnId target = candidates[rng.Uniform(candidates.size())];

  rel::Value min = base.ValueAt(0, target);
  for (std::size_t r = 1; r < base.num_rows(); ++r) {
    rel::Value v = base.ValueAt(r, target);
    if (v < min) min = v;
  }
  std::vector<rel::Value> vals;
  vals.reserve(base.num_rows());
  for (std::size_t r = 0; r < base.num_rows(); ++r) {
    rel::Value v = base.ValueAt(r, target);
    vals.push_back(v == min ? rel::Value::Null() : v);
  }
  return RebuildWithColumn(
      base, target,
      rel::Column::FromValues(base.column(target).type(), vals));
}

/// Rewrites every column id in `claims` through `new_id` and re-normalizes
/// orderings the relabeling may have disturbed (OCD orientation, canonical
/// compat orientation, sorted contexts/FD sides).
ClaimSet RelabelClaims(const ClaimSet& claims,
                       const std::vector<rel::ColumnId>& new_id) {
  auto map_list = [&new_id](const od::AttributeList& l) {
    std::vector<rel::ColumnId> ids;
    ids.reserve(l.size());
    for (rel::ColumnId id : l.ids()) ids.push_back(new_id[id]);
    return od::AttributeList(std::move(ids));
  };
  ClaimSet out = claims;
  for (auto& od : out.ods) {
    od = od::OrderDependency{map_list(od.lhs), map_list(od.rhs)};
  }
  for (auto& ocd : out.ocds) {
    ocd = od::OrderCompatibility{map_list(ocd.lhs), map_list(ocd.rhs)}
              .Canonical();
  }
  for (auto& c : out.constant_columns) c = new_id[c];
  for (auto& cls : out.equivalence_classes) {
    for (auto& c : cls) c = new_id[c];
  }
  for (auto& cod : out.canonical) {
    for (auto& c : cod.context) c = new_id[c];
    std::sort(cod.context.begin(), cod.context.end());
    cod.right = new_id[cod.right];
    if (cod.kind == od::CanonicalOd::Kind::kOrderCompatible) {
      cod.left = new_id[cod.left];
      if (cod.left > cod.right) std::swap(cod.left, cod.right);
    }
  }
  for (auto& fd : out.fds) {
    for (auto& c : fd.lhs) c = new_id[c];
    std::sort(fd.lhs.begin(), fd.lhs.end());
    fd.rhs = new_id[fd.rhs];
  }
  out.SortAll();
  return out;
}

/// Orients compat canonical ODs left < right so syntactic comparison is
/// independent of the emitter's pair orientation.
void NormalizeCanonicalOrientation(ClaimSet& claims) {
  for (auto& cod : claims.canonical) {
    std::sort(cod.context.begin(), cod.context.end());
    if (cod.kind == od::CanonicalOd::Kind::kOrderCompatible &&
        cod.left > cod.right) {
      std::swap(cod.left, cod.right);
    }
  }
  claims.SortAll();
}

}  // namespace

rel::Relation ApplyTransform(const rel::Relation& base, Transform transform,
                             Rng& rng,
                             std::vector<rel::ColumnId>* column_perm) {
  if (column_perm != nullptr) {
    column_perm->resize(base.num_columns());
    for (std::size_t i = 0; i < base.num_columns(); ++i) {
      (*column_perm)[i] = i;
    }
  }
  switch (transform) {
    case Transform::kRowShuffle: {
      std::vector<std::size_t> rows(base.num_rows());
      for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
      rng.Shuffle(rows);
      return base.SelectRows(rows);
    }
    case Transform::kRowDuplicate: {
      std::vector<std::size_t> rows(base.num_rows());
      for (std::size_t r = 0; r < rows.size(); ++r) rows[r] = r;
      if (!rows.empty()) {
        std::size_t copies = 1 + rng.Uniform(base.num_rows());
        for (std::size_t k = 0; k < copies; ++k) {
          rows.push_back(rng.Uniform(base.num_rows()));
        }
      }
      return base.SelectRows(rows);
    }
    case Transform::kColumnPermute: {
      std::vector<rel::ColumnId> perm(base.num_columns());
      for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
      rng.Shuffle(perm);
      if (column_perm != nullptr) *column_perm = perm;
      return base.ProjectColumns(perm).value();
    }
    case Transform::kMonotoneRecode:
      return MonotoneRecode(base, rng);
    case Transform::kNullBlock:
      return NullBlock(base, rng);
  }
  return base;
}

OracleReport CheckMetamorphic(const rel::Relation& base,
                              const AlgorithmRuns& base_runs,
                              Transform transform, Rng& rng) {
  OracleReport report;
  const std::string check = std::string("metamorphic/") + TransformName(transform);
  auto fail = [&report, &check](const char* algorithm, std::string detail) {
    report.discrepancies.push_back(Discrepancy{check, algorithm,
                                               std::move(detail)});
  };

  std::vector<rel::ColumnId> perm;
  rel::Relation transformed = ApplyTransform(base, transform, rng, &perm);
  rel::CodedRelation coded = rel::CodedRelation::Encode(transformed);
  AlgorithmRuns t_runs = RunAllClaims(coded);

  report.all_completed = base_runs.AllCompleted() && t_runs.AllCompleted();
  if (!report.all_completed) {
    ++report.skipped;  // invariance undefined across stopped runs
    return report;
  }

  // new_id[base column] = its position after the transform.
  std::vector<rel::ColumnId> new_id(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) new_id[perm[i]] = i;

  auto compare_rendered = [&](const char* algorithm, const ClaimSet& expected,
                              const ClaimSet& actual) {
    std::vector<std::string> want = expected.Render();
    std::vector<std::string> got = actual.Render();
    report.comparisons += want.size() + got.size();
    std::vector<std::string> missing;
    std::vector<std::string> spurious;
    std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                        std::back_inserter(missing));
    std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                        std::back_inserter(spurious));
    for (const auto& line : missing) fail(algorithm, "missing " + line);
    for (const auto& line : spurious) fail(algorithm, "spurious " + line);
  };

  if (transform != Transform::kColumnPermute) {
    compare_rendered("ocddiscover", base_runs.ocdd, t_runs.ocdd);
    compare_rendered("order", base_runs.order, t_runs.order);
    ClaimSet want_fastod = base_runs.fastod;
    ClaimSet got_fastod = t_runs.fastod;
    NormalizeCanonicalOrientation(want_fastod);
    NormalizeCanonicalOrientation(got_fastod);
    compare_rendered("fastod", want_fastod, got_fastod);
    compare_rendered("tane", base_runs.tane, t_runs.tane);
    return report;
  }

  // Column permutation: relabel base claims into the new id space first.
  compare_rendered("order", RelabelClaims(base_runs.order, new_id),
                   t_runs.order);
  ClaimSet want_fastod = RelabelClaims(base_runs.fastod, new_id);
  ClaimSet got_fastod = t_runs.fastod;
  NormalizeCanonicalOrientation(got_fastod);
  compare_rendered("fastod", want_fastod, got_fastod);
  compare_rendered("tane", RelabelClaims(base_runs.tane, new_id), t_runs.tane);

  // OCDDISCOVER's reduction may elect different representatives under
  // relabeling, changing the emitted syntax without changing the theory —
  // compare by mutual derivability instead.
  const std::size_t n = base.num_columns();
  const std::size_t L = DefaultMaxListLen(n);
  ClaimSet want_ocdd = RelabelClaims(base_runs.ocdd, new_id);
  od::OdInferenceEngine eng_want =
      BuildClosureEngine(n, L, want_ocdd, &report.skipped);
  od::OdInferenceEngine eng_got =
      BuildClosureEngine(n, L, t_runs.ocdd, &report.skipped);

  auto derivable_from = [&](const ClaimSet& claims,
                            const od::OdInferenceEngine& other,
                            const char* direction) {
    for (const auto& od : claims.ods) {
      if (od.lhs.Normalized().size() > L || od.rhs.Normalized().size() > L) {
        ++report.skipped;
        continue;
      }
      ++report.comparisons;
      if (!other.Implies(od)) {
        fail("ocddiscover", std::string(direction) + " OD " + od.ToString());
      }
    }
    for (const auto& ocd : claims.ocds) {
      if (ocd.lhs.Concat(ocd.rhs).Normalized().size() > L) {
        ++report.skipped;
        continue;
      }
      ++report.comparisons;
      if (!other.ImpliesOcd(ocd)) {
        fail("ocddiscover", std::string(direction) + " OCD " + ocd.ToString());
      }
    }
    for (rel::ColumnId c : claims.constant_columns) {
      ++report.comparisons;
      if (!other.ImpliesEquivalence(od::AttributeList{},
                                    od::AttributeList{c})) {
        fail("ocddiscover",
             std::string(direction) + " CONST [" + std::to_string(c) + "]");
      }
    }
    for (const auto& cls : claims.equivalence_classes) {
      for (std::size_t i = 1; i < cls.size(); ++i) {
        ++report.comparisons;
        if (!other.ImpliesEquivalence(od::AttributeList{cls[0]},
                                      od::AttributeList{cls[i]})) {
          fail("ocddiscover", std::string(direction) + " EQUIV [" +
                                  std::to_string(cls[0]) + "," +
                                  std::to_string(cls[i]) + "]");
        }
      }
    }
  };
  derivable_from(want_ocdd, eng_got, "lost");
  derivable_from(t_runs.ocdd, eng_want, "gained");

  return report;
}

}  // namespace ocdd::qa
