#ifndef OCDD_QA_CLAIM_PARSER_H_
#define OCDD_QA_CLAIM_PARSER_H_

#include <cstddef>
#include <string>

#include "common/ingest_error.h"
#include "common/result.h"
#include "qa/claims.h"

namespace ocdd::qa {

/// Declared limits for `ParseClaimLines` — claim files cross process
/// boundaries (repro seeds, nightly artifacts), so the parser treats its
/// input as untrusted bytes and bounds everything it allocates.
struct ClaimParseLimits {
  std::size_t max_input_bytes = 4u << 20;
  std::size_t max_lines = 100000;
  std::size_t max_line_bytes = 4096;
  /// Max column ids in one attribute list / set.
  std::size_t max_list_len = 256;
  /// Column ids must be < this (a claim about column 4 billion is garbage,
  /// not data).
  std::size_t max_column_id = 1u << 20;
};

/// Parses the stable `ClaimSet::Render()` line vocabulary back into a
/// ClaimSet — the inverse of Render() for the claim kinds it emits:
///
///   OD [1,2] -> [3]
///   OCD [1] ~ [2]
///   CONST [3]
///   EQUIV [1,2,3]
///   COD {1,2}: [] -> 3      (canonical constancy)
///   COD {1}: 2 ~ 3          (canonical compatibility)
///   FD {1,2} -> 3
///
/// Blank lines are skipped; lines starting with '#' are comments (the one
/// form `# algorithm: <name>` sets ClaimSet::algorithm). Any other line is
/// a structured ParseError (IngestError rendering: code, byte offset, line).
/// The result is `SortAll()`-normalized, so Render() of the parsed set
/// round-trips the claim lines exactly.
Result<ClaimSet> ParseClaimLines(const std::string& text,
                                 const ClaimParseLimits& limits = {});

}  // namespace ocdd::qa

#endif  // OCDD_QA_CLAIM_PARSER_H_
