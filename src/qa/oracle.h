#ifndef OCDD_QA_ORACLE_H_
#define OCDD_QA_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "qa/claims.h"
#include "relation/coded_relation.h"

namespace ocdd::qa {

/// Deliberate result corruption, driven by the fault-injection harness: the
/// oracle mutates one algorithm's claims *after* the run and before
/// cross-checking, simulating a buggy implementation end-to-end (detection →
/// shrinking → repro). Each mode is a pure, deterministic function of the
/// relation, so a corruption-triggered failure replays bit-identically.
enum class CorruptionMode {
  kNone = 0,
  /// Drop every OCD and OD claim from OCDDISCOVER (forgotten emissions →
  /// completeness violation).
  kDropOcddiscover,
  /// Append the first semantically-invalid disjoint OD to ORDER's output
  /// (spurious emission → soundness violation, the Errata-note failure
  /// class).
  kInventOrderOd,
  /// Drop every compatibility canonical OD from FASTOD (completeness
  /// violation in the set-based vocabulary).
  kDropFastodCompat,
};

const char* CorruptionModeName(CorruptionMode mode);

/// The fault-injection point the oracle polls for `mode`
/// ("qa.corrupt.<mode-name>"). Arming it on an injector passed through
/// `OracleOptions::injector` triggers the corruption via the shared
/// fault-injection subsystem, same as the algorithms' own points.
std::string CorruptionPoint(CorruptionMode mode);

/// One cross-check failure. `check` is the oracle stage ("soundness",
/// "completeness", "differential", "mapping_theorem", "constancy_vs_fds",
/// "reduction"), `algorithm` the implementation on the hook, `detail` a
/// rendering of the offending dependency.
struct Discrepancy {
  std::string check;
  std::string algorithm;
  std::string detail;

  std::string ToString() const {
    return check + "/" + algorithm + ": " + detail;
  }
};

struct OracleOptions {
  /// Side-length bound of the brute-force ground-truth enumeration.
  std::size_t max_side_len = 2;
  /// Inference-engine list bound; 0 = DefaultMaxListLen(num_columns).
  std::size_t max_list_len = 0;
  CorruptionMode corruption = CorruptionMode::kNone;
  /// Optional injector polled at the `CorruptionPoint` of every mode before
  /// cross-checking; an armed point that fires selects that corruption (in
  /// addition to `corruption` above). Not owned.
  FaultInjector* injector = nullptr;
};

struct OracleReport {
  std::vector<Discrepancy> discrepancies;
  /// Dependency-level comparisons performed across all stages.
  std::uint64_t comparisons = 0;
  /// Facts or checks skipped because a list exceeded the engine bound —
  /// reduced coverage, surfaced so sweeps never silently narrow.
  std::uint64_t skipped = 0;
  /// False when some algorithm failed to complete (its checks are skipped).
  bool all_completed = true;

  bool clean() const { return discrepancies.empty(); }
};

/// Runs brute force, OCDDISCOVER, ORDER, FASTOD, and TANE over `relation`
/// and cross-checks them semantically:
///
///  1. *Soundness* — every emitted dependency holds under the brute-force
///     definitions (Definitions 2.2–2.4 / canonical-OD semantics).
///  2. *Completeness* — every brute-force-valid dependency inside an
///     algorithm's documented candidate space is derivable from that
///     algorithm's claims: J_OD closure (inference engine) for the
///     list-based algorithms, canonical closure for FASTOD.
///  3. *Exactness* — no closure derives a dependency brute force falsifies
///     (an unsound claim or an inference bug would).
///  4. *Differential* — each algorithm's claims are derivable from every
///     other algorithm's closure, scope permitting; FASTOD constancy ODs
///     must equal TANE's minimal FDs exactly.
///  5. *Mapping theorem* — the set-based decision of each candidate agrees
///     with the list-based brute force, validating the translation layer
///     itself.
OracleReport CrossCheck(const rel::CodedRelation& relation,
                        const OracleOptions& options = {});

/// CrossCheck over pre-computed runs (used by metamorphic comparisons to
/// avoid re-running algorithms). Corruption is applied to a copy.
OracleReport CrossCheckRuns(const rel::CodedRelation& relation,
                            AlgorithmRuns runs, const OracleOptions& options);

}  // namespace ocdd::qa

#endif  // OCDD_QA_ORACLE_H_
