#include "qa/canonical.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>

namespace ocdd::qa {

namespace {

using Context = std::vector<rel::ColumnId>;

/// Rows grouped by their code tuple over `context`; the empty context yields
/// one group with every row.
std::vector<std::vector<std::uint32_t>> GroupByContext(
    const rel::CodedRelation& relation, const Context& context) {
  std::map<std::vector<std::int32_t>, std::vector<std::uint32_t>> groups;
  std::size_t m = relation.num_rows();
  std::vector<std::int32_t> key(context.size());
  for (std::uint32_t row = 0; row < m; ++row) {
    for (std::size_t i = 0; i < context.size(); ++i) {
      key[i] = relation.code(row, context[i]);
    }
    groups[key].push_back(row);
  }
  std::vector<std::vector<std::uint32_t>> out;
  out.reserve(groups.size());
  for (auto& [k, rows] : groups) out.push_back(std::move(rows));
  return out;
}

bool SubsetOf(const Context& a, const Context& b) {
  // Both sorted.
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool ContainsId(const Context& ctx, rel::ColumnId id) {
  return std::binary_search(ctx.begin(), ctx.end(), id);
}

Context SortedUnion(const Context& a, const Context& b) {
  Context out = a;
  out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Prefix of `list` as a sorted id set: {list[0], ..., list[n-1]}.
Context PrefixSet(const od::AttributeList& list, std::size_t n) {
  Context out(list.ids().begin(), list.ids().begin() + n);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Shared shape of the two mapping theorems, parameterized over how a
/// canonical OD is decided (emitted-set closure vs semantic re-check).
template <typename ConstancyFn, typename CompatFn>
bool OcdViaCanonical(const od::AttributeList& x, const od::AttributeList& y,
                     const ConstancyFn& constancy, const CompatFn& compat) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < y.size(); ++j) {
      if (x[i] == y[j]) continue;  // trivially compatible with itself
      Context ctx = SortedUnion(PrefixSet(x, i), PrefixSet(y, j));
      if (ContainsId(ctx, x[i]) || ContainsId(ctx, y[j])) continue;
      if (!compat(ctx, x[i], y[j]) && !constancy(ctx, x[i]) &&
          !constancy(ctx, y[j])) {
        return false;
      }
    }
  }
  return true;
}

template <typename ConstancyFn, typename CompatFn>
bool OdViaCanonical(const od::OrderDependency& od, const ConstancyFn& constancy,
                    const CompatFn& compat) {
  od::AttributeList lhs = od.lhs.Normalized();
  od::AttributeList rhs = od.rhs.Normalized();
  Context lhs_set = PrefixSet(lhs, lhs.size());
  for (std::size_t j = 0; j < rhs.size(); ++j) {
    if (ContainsId(lhs_set, rhs[j])) continue;
    if (!constancy(lhs_set, rhs[j])) return false;
  }
  return OcdViaCanonical(lhs, rhs, constancy, compat);
}

}  // namespace

bool HoldsConstancy(const rel::CodedRelation& relation, const Context& context,
                    rel::ColumnId a) {
  for (const auto& rows : GroupByContext(relation, context)) {
    std::int32_t first = relation.code(rows.front(), a);
    for (std::uint32_t row : rows) {
      if (relation.code(row, a) != first) return false;
    }
  }
  return true;
}

bool HoldsCompat(const rel::CodedRelation& relation, const Context& context,
                 rel::ColumnId a, rel::ColumnId b) {
  if (a == b) return true;
  for (const auto& rows : GroupByContext(relation, context)) {
    std::vector<std::pair<std::int32_t, std::int32_t>> vals;
    vals.reserve(rows.size());
    for (std::uint32_t row : rows) {
      vals.emplace_back(relation.code(row, a), relation.code(row, b));
    }
    std::sort(vals.begin(), vals.end());
    // A swap is i < j with a strictly increasing and b strictly decreasing;
    // sorted by (a, b), that is a b-value below the running maximum of
    // earlier (strictly smaller) a-groups.
    bool have_prev = false;
    std::int32_t prev_max_b = 0;
    std::size_t i = 0;
    while (i < vals.size()) {
      std::size_t j = i;
      std::int32_t group_max_b = vals[i].second;
      while (j < vals.size() && vals[j].first == vals[i].first) {
        group_max_b = std::max(group_max_b, vals[j].second);
        ++j;
      }
      if (have_prev && prev_max_b > vals[i].second) return false;
      prev_max_b = have_prev ? std::max(prev_max_b, group_max_b) : group_max_b;
      have_prev = true;
      i = j;
    }
  }
  return true;
}

CanonicalClosure::CanonicalClosure(const std::vector<od::CanonicalOd>& emitted) {
  for (const od::CanonicalOd& cod : emitted) {
    Context ctx = cod.context;
    std::sort(ctx.begin(), ctx.end());
    if (cod.kind == od::CanonicalOd::Kind::kConstancy) {
      constancy_.emplace_back(std::move(ctx), cod.right);
    } else {
      rel::ColumnId lo = std::min(cod.left, cod.right);
      rel::ColumnId hi = std::max(cod.left, cod.right);
      compat_.emplace_back(std::move(ctx), std::make_pair(lo, hi));
    }
  }
}

bool CanonicalClosure::ImpliesConstancy(const Context& context,
                                        rel::ColumnId a) const {
  if (ContainsId(context, a)) return true;
  for (const auto& [ctx, rhs] : constancy_) {
    if (rhs == a && SubsetOf(ctx, context)) return true;
  }
  return false;
}

bool CanonicalClosure::ImpliesCompat(const Context& context, rel::ColumnId a,
                                     rel::ColumnId b) const {
  if (a == b) return true;
  if (ImpliesConstancy(context, a) || ImpliesConstancy(context, b)) {
    return true;
  }
  rel::ColumnId lo = std::min(a, b);
  rel::ColumnId hi = std::max(a, b);
  for (const auto& [ctx, pair] : compat_) {
    if (pair.first == lo && pair.second == hi && SubsetOf(ctx, context)) {
      return true;
    }
  }
  return false;
}

bool CanonicalClosure::ImpliesOd(const od::OrderDependency& od) const {
  return OdViaCanonical(
      od,
      [this](const Context& ctx, rel::ColumnId a) {
        return ImpliesConstancy(ctx, a);
      },
      [this](const Context& ctx, rel::ColumnId a, rel::ColumnId b) {
        return ImpliesCompat(ctx, a, b);
      });
}

bool CanonicalClosure::ImpliesOcd(const od::OrderCompatibility& ocd) const {
  return OcdViaCanonical(
      ocd.lhs.Normalized(), ocd.rhs.Normalized(),
      [this](const Context& ctx, rel::ColumnId a) {
        return ImpliesConstancy(ctx, a);
      },
      [this](const Context& ctx, rel::ColumnId a, rel::ColumnId b) {
        return ImpliesCompat(ctx, a, b);
      });
}

bool SemanticOdViaCanonical(const rel::CodedRelation& relation,
                            const od::OrderDependency& od) {
  return OdViaCanonical(
      od,
      [&relation](const Context& ctx, rel::ColumnId a) {
        return HoldsConstancy(relation, ctx, a);
      },
      [&relation](const Context& ctx, rel::ColumnId a, rel::ColumnId b) {
        return HoldsCompat(relation, ctx, a, b);
      });
}

bool SemanticOcdViaCanonical(const rel::CodedRelation& relation,
                             const od::OrderCompatibility& ocd) {
  return OcdViaCanonical(
      ocd.lhs.Normalized(), ocd.rhs.Normalized(),
      [&relation](const Context& ctx, rel::ColumnId a) {
        return HoldsConstancy(relation, ctx, a);
      },
      [&relation](const Context& ctx, rel::ColumnId a, rel::ColumnId b) {
        return HoldsCompat(relation, ctx, a, b);
      });
}

}  // namespace ocdd::qa
