#include "qa/harness.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "algo/incremental/incremental.h"
#include "common/fault_injection.h"
#include "common/io_env.h"
#include "common/rng.h"
#include "common/simd_dispatch.h"
#include "core/ocd_discover.h"
#include "common/run_context.h"
#include "common/snapshot.h"
#include "engine/supervisor.h"
#include "od/brute_force.h"
#include "qa/canonical.h"
#include "qa/metamorphic.h"
#include "qa/shrinker.h"
#include "relation/batch.h"
#include "relation/csv.h"
#include "report/json_reader.h"
#include "serve/chaos_proxy.h"
#include "serve/client.h"
#include "serve/server.h"

namespace ocdd::qa {

std::uint64_t IterationSeed(std::uint64_t seed, std::uint64_t i) {
  // Iteration 0 is the master seed itself so that `qa --seed S --iters 1`
  // replays a failure reported with iteration seed S exactly.
  if (i == 0) return seed;
  std::uint64_t z = seed + i * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::size_t kMaxDiscrepanciesPerFailure = 20;

void MaybeWriteRepro(const QaOptions& options, QaFailure* failure) {
  if (options.repro_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(options.repro_dir, ec);
  std::string path = options.repro_dir + "/qa_iter" +
                     std::to_string(failure->iteration) + "_seed" +
                     std::to_string(failure->iteration_seed) + ".csv";
  // Through io_env (sites "qa_repro.*"): a failed repro write surfaces as a
  // typed error on the failure record instead of a silently absent file —
  // losing the repro for a failure the harness just caught is itself a
  // reportable fault.
  Status wrote = IoWriteFileSynced(IoEnv::Get(), "qa_repro", path,
                                   failure->csv.data(), failure->csv.size());
  if (wrote.ok()) {
    failure->repro_path = path;
  } else {
    failure->repro_error = wrote.message();
  }
}

QaFailure MakeFailure(std::uint64_t iteration, std::uint64_t iteration_seed,
                      std::string kind, std::vector<Discrepancy> discrepancies,
                      const rel::Relation& relation) {
  QaFailure f;
  f.iteration = iteration;
  f.iteration_seed = iteration_seed;
  f.kind = std::move(kind);
  if (discrepancies.size() > kMaxDiscrepanciesPerFailure) {
    discrepancies.resize(kMaxDiscrepanciesPerFailure);
  }
  f.discrepancies = std::move(discrepancies);
  f.csv = rel::WriteCsvString(relation);
  f.rows = relation.num_rows();
  f.cols = relation.num_columns();
  return f;
}

/// Re-runs algorithms under a check budget / an armed fault and asserts the
/// partial result is a sound subset of the complete run: every partial claim
/// must hold semantically and be derivable from the complete closure. The
/// RunContext composition (PR 1) promises stopped runs degrade to valid
/// partial answers — this is where that promise is audited.
std::vector<Discrepancy> CheckStoppedRuns(const rel::CodedRelation& coded,
                                          const AlgorithmRuns& runs,
                                          std::uint64_t* checks,
                                          std::uint64_t* skipped) {
  std::vector<Discrepancy> out;
  const std::size_t n = coded.num_columns();
  const std::size_t L = DefaultMaxListLen(n);

  auto check_list_partial = [&](const ClaimSet& partial,
                                const od::OdInferenceEngine& complete,
                                const char* algorithm, const char* how) {
    for (const auto& od : partial.ods) {
      ++*checks;
      if (!od::BruteForceHoldsOd(coded, od.lhs, od.rhs)) {
        out.push_back({"stopped_run", algorithm,
                       std::string(how) + " unsound OD " + od.ToString()});
        continue;
      }
      if (od.lhs.Normalized().size() > L || od.rhs.Normalized().size() > L) {
        ++*skipped;
        continue;
      }
      if (!complete.Implies(od)) {
        out.push_back({"stopped_run", algorithm,
                       std::string(how) + " OD outside complete closure " +
                           od.ToString()});
      }
    }
    for (const auto& ocd : partial.ocds) {
      ++*checks;
      if (!od::BruteForceHoldsOcd(coded, ocd.lhs, ocd.rhs)) {
        out.push_back({"stopped_run", algorithm,
                       std::string(how) + " unsound OCD " + ocd.ToString()});
        continue;
      }
      if (ocd.lhs.Concat(ocd.rhs).Normalized().size() > L) {
        ++*skipped;
        continue;
      }
      if (!complete.ImpliesOcd(ocd)) {
        out.push_back({"stopped_run", algorithm,
                       std::string(how) + " OCD outside complete closure " +
                           ocd.ToString()});
      }
    }
  };

  if (runs.ocdd.num_checks >= 2) {
    od::OdInferenceEngine complete = BuildClosureEngine(n, L, runs.ocdd, skipped);

    RunContext budgeted;
    budgeted.set_check_budget(runs.ocdd.num_checks / 2);
    check_list_partial(RunOcddiscoverClaims(coded, &budgeted), complete,
                       "ocddiscover", "budgeted");

    FaultInjector injector;
    injector.Arm("ocd.check", FaultAction::kCancel,
                 std::max<std::uint64_t>(1, runs.ocdd.num_checks / 3));
    RunContext faulted;
    faulted.set_fault_injector(&injector);
    check_list_partial(RunOcddiscoverClaims(coded, &faulted), complete,
                       "ocddiscover", "fault-injected");
  }

  if (runs.order.num_checks >= 2) {
    od::OdInferenceEngine complete =
        BuildClosureEngine(n, L, runs.order, skipped);
    RunContext budgeted;
    budgeted.set_check_budget(runs.order.num_checks / 2);
    check_list_partial(RunOrderClaims(coded, &budgeted), complete, "order",
                       "budgeted");
  }

  if (runs.fastod.num_checks >= 2) {
    CanonicalClosure complete(runs.fastod.canonical);
    RunContext budgeted;
    budgeted.set_check_budget(runs.fastod.num_checks / 2);
    ClaimSet partial = RunFastodClaims(coded, &budgeted);
    for (const auto& cod : partial.canonical) {
      ++*checks;
      std::vector<rel::ColumnId> ctx = cod.context;
      std::sort(ctx.begin(), ctx.end());
      bool constancy = cod.kind == od::CanonicalOd::Kind::kConstancy;
      bool sound = constancy ? HoldsConstancy(coded, ctx, cod.right)
                             : HoldsCompat(coded, ctx, cod.left, cod.right);
      if (!sound) {
        out.push_back({"stopped_run", "fastod",
                       "budgeted unsound " + cod.ToString()});
        continue;
      }
      bool implied = constancy
                         ? complete.ImpliesConstancy(ctx, cod.right)
                         : complete.ImpliesCompat(ctx, cod.left, cod.right);
      if (!implied) {
        out.push_back({"stopped_run", "fastod",
                       "budgeted claim outside complete closure " +
                           cod.ToString()});
      }
    }
  }

  return out;
}

/// The resume-equivalence audit: for each checkpointable algorithm, run with
/// a checkpoint directory under a check budget that stops it mid-lattice,
/// then resume from the snapshot with no budget, and assert the resumed
/// claims are *identical* to the uninterrupted run's — not merely a sound
/// subset. This is the crash-safety contract `ocdd supervise` leans on: a
/// kill + resume must converge to the same closure as a run that was never
/// interrupted (docs/checkpointing.md).
std::vector<Discrepancy> CheckResumedRuns(const rel::CodedRelation& coded,
                                          const AlgorithmRuns& runs,
                                          const std::string& scratch_dir,
                                          std::uint64_t* checks) {
  std::vector<Discrepancy> out;

  auto check_one = [&](const char* algorithm, const ClaimSet& complete,
                       auto runner) {
    if (complete.num_checks < 2) return;
    const std::string dir = scratch_dir + "/" + algorithm;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);

    // Leg 1: checkpointed run stopped mid-lattice (drains to a snapshot; if
    // the budget happens to suffice, the final snapshot marks completion and
    // the resume below degenerates to a no-op replay — still equivalent).
    CheckpointConfig stopped_cfg;
    stopped_cfg.dir = dir;
    RunContext stopped_ctx;
    stopped_ctx.set_check_budget(complete.num_checks / 2);
    (void)runner(coded, &stopped_ctx, &stopped_cfg);

    // Leg 2: resume with no budget; must complete.
    CheckpointConfig resume_cfg;
    resume_cfg.dir = dir;
    resume_cfg.resume = true;
    RunContext resume_ctx;
    ClaimSet resumed = runner(coded, &resume_ctx, &resume_cfg);

    ++*checks;
    if (!resumed.completed) {
      out.push_back({"resumed_run", algorithm,
                     "resumed run did not complete (stop reason " +
                         std::string(StopReasonName(resumed.stop_reason)) +
                         ")"});
    } else {
      std::vector<std::string> want = complete.Render();
      std::vector<std::string> got = resumed.Render();
      std::vector<std::string> missing, extra;
      std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                          std::back_inserter(missing));
      std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                          std::back_inserter(extra));
      for (const std::string& s : missing) {
        out.push_back({"resumed_run", algorithm, "resume lost claim " + s});
      }
      for (const std::string& s : extra) {
        out.push_back({"resumed_run", algorithm, "resume invented claim " + s});
      }
    }
    std::filesystem::remove_all(dir, ec);
  };

  check_one("ocddiscover", runs.ocdd,
            [](const rel::CodedRelation& c, RunContext* ctx,
               const CheckpointConfig* cfg) {
              return RunOcddiscoverClaims(c, ctx, cfg);
            });
  check_one("fastod", runs.fastod,
            [](const rel::CodedRelation& c, RunContext* ctx,
               const CheckpointConfig* cfg) {
              return RunFastodClaims(c, ctx, cfg);
            });
  check_one("tane", runs.tane,
            [](const rel::CodedRelation& c, RunContext* ctx,
               const CheckpointConfig* cfg) {
              return RunTaneClaims(c, ctx, cfg);
            });
  return out;
}

/// The scalar-fallback equivalence stage: re-run OCDDISCOVER with the
/// check-kernel backend pinned to the scalar fallback (what `OCDD_SIMD=off`
/// selects at startup) and assert the closure — and the check accounting —
/// is identical to the default-backend run's, in both check modes. The
/// sort-walk leg reuses the iteration's existing default-backend claims as
/// the reference; the partition leg runs both backends back to back so the
/// extremes fill/scan kernels and the partition cache accounting are
/// covered too. A no-op when the scalar backend is already the active one.
std::vector<Discrepancy> CheckSimdFallback(const rel::CodedRelation& coded,
                                           const AlgorithmRuns& runs,
                                           std::uint64_t* checks) {
  std::vector<Discrepancy> out;
  if (simd::Active() == simd::Backend::kScalar) return out;

  auto diff_render = [&out](const std::vector<std::string>& want,
                            const std::vector<std::string>& got,
                            const char* leg) {
    std::vector<std::string> missing, extra;
    std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                        std::back_inserter(missing));
    std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                        std::back_inserter(extra));
    for (const std::string& s : missing) {
      out.push_back({"simd", leg, "scalar run lost " + s});
    }
    for (const std::string& s : extra) {
      out.push_back({"simd", leg, "scalar run invented " + s});
    }
  };

  // Leg 1: the sort-based checker (first-diff walk kernels) against the
  // iteration's default-backend claims.
  simd::ForceBackendForTest(simd::Backend::kScalar);
  ClaimSet scalar = RunOcddiscoverClaims(coded);
  ++*checks;
  diff_render(runs.ocdd.Render(), scalar.Render(), "sort-walk");
  if (scalar.num_checks != runs.ocdd.num_checks) {
    out.push_back({"simd", "sort-walk",
                   "scalar run performed " +
                       std::to_string(scalar.num_checks) + " checks, " +
                       "default backend " +
                       std::to_string(runs.ocdd.num_checks)});
  }

  // Leg 2: cached sorted partitions (extremes fill/scan kernels), scalar
  // first, then the default backend restored via Refresh.
  core::OcdDiscoverOptions popts;
  popts.use_sorted_partitions = true;
  core::OcdDiscoverResult scalar_part = core::DiscoverOcds(coded, popts);
  simd::Refresh();
  core::OcdDiscoverResult simd_part = core::DiscoverOcds(coded, popts);
  ++*checks;
  if (scalar_part.ocds != simd_part.ocds ||
      scalar_part.ods != simd_part.ods) {
    out.push_back({"simd", "partitions",
                   "backends disagree on the partition-mode closure"});
  }
  if (scalar_part.num_checks != simd_part.num_checks ||
      scalar_part.partition_cache_bytes != simd_part.partition_cache_bytes) {
    out.push_back(
        {"simd", "partitions",
         "backends disagree on accounting: " +
             std::to_string(scalar_part.num_checks) + "/" +
             std::to_string(scalar_part.partition_cache_bytes) +
             " (scalar) vs " + std::to_string(simd_part.num_checks) + "/" +
             std::to_string(simd_part.partition_cache_bytes) + " bytes"});
  }
  return out;
}

/// A CSV rendering of the instance with deterministic malformed rows
/// spliced between the good ones.
struct DirtyCsv {
  std::string clean;  ///< WriteCsvString(relation), unmodified
  std::string text;   ///< clean + injected bad rows
  std::size_t num_bad = 0;
  /// Exact accounting only holds when the clean rendering has no quote
  /// characters — an injected `"broken` row next to a quoted field can merge
  /// records, which the generic contract tolerates but exact counts don't.
  bool exact = false;
};

DirtyCsv InjectBadRows(const rel::Relation& relation, Rng& rng) {
  DirtyCsv dirty;
  dirty.clean = rel::WriteCsvString(relation);
  dirty.exact = dirty.clean.find('"') == std::string::npos;
  dirty.num_bad = 1 + rng.Uniform(3);

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < dirty.clean.size()) {
    std::size_t nl = dirty.clean.find('\n', start);
    std::size_t end = nl == std::string::npos ? dirty.clean.size() : nl;
    lines.push_back(dirty.clean.substr(start, end - start));
    start = end + 1;
  }

  // One-rejection-per-injection accounting constrains how injection kinds
  // may mix: a stray `"` scans forward until the next quote or NUL, so a
  // second `"broken` would close the first one's quote (merging the records
  // between them) and a NUL row after a `"broken` would be swallowed into
  // its span along with every good line between. Both are well-defined
  // recovery behaviour, just not one-rejection-per-row. So each instance
  // draws either from {ragged, broken-quote (at most one)} or from
  // {ragged, NUL} — over iterations all three kinds are exercised.
  const bool quote_flavour = rng.Uniform(2) == 0;
  bool quote_used = false;
  for (std::size_t b = 0; b < dirty.num_bad; ++b) {
    std::string bad;
    std::uint64_t kind = rng.Uniform(2);
    if (kind == 1 && quote_flavour && quote_used) kind = 0;
    if (kind == 0) {
      // Ragged width (one field too few, or too many for 1-col).
      bad = relation.num_columns() == 1 ? "!,!" : "!";
    } else if (quote_flavour) {
      bad = "\"broken";  // quote opened, never closed
      quote_used = true;
    } else {
      // Binary fed to a text reader.
      bad = std::string("nul") + '\0' + "byte";
      if (relation.num_columns() > 1) {
        bad += std::string(relation.num_columns() - 1, ',');
      }
    }
    // Any data position, including past the last row; never before the
    // header.
    std::size_t at = 1 + rng.Uniform(lines.size());
    lines.insert(lines.begin() + at, std::move(bad));
  }

  for (const std::string& line : lines) {
    dirty.text += line;
    dirty.text += '\n';
  }
  return dirty;
}

/// Self-contained consistency audit of the three bad-row policies on one
/// text — needs no knowledge of how the text was produced, so it doubles as
/// the shrinking predicate. Checks: skip and quarantine agree on
/// readability and on the surviving relation; the quarantine accounting
/// identities hold (total = ingested + rejected, per-code counts sum to
/// rejected, one preserved raw row per rejection); strict fail errors
/// exactly when rejections exist, with a structured IngestError rendering.
std::vector<Discrepancy> CheckIngestContract(const std::string& text,
                                             std::uint64_t* checks) {
  std::vector<Discrepancy> out;
  auto add = [&out](const char* policy, std::string detail) {
    out.push_back({"ingest", policy, std::move(detail)});
  };

  rel::CsvOptions quarantine_opts;
  quarantine_opts.on_bad_row = rel::BadRowPolicy::kQuarantine;
  auto quarantined = rel::ReadCsvWithReport(text, quarantine_opts);
  rel::CsvOptions skip_opts;
  skip_opts.on_bad_row = rel::BadRowPolicy::kSkip;
  auto skipped = rel::ReadCsvWithReport(text, skip_opts);

  ++*checks;
  if (quarantined.ok() != skipped.ok()) {
    add("skip~quarantine",
        std::string("policies disagree on readability: quarantine ") +
            (quarantined.ok() ? "accepts" : "rejects") + ", skip " +
            (skipped.ok() ? "accepts" : "rejects"));
    return out;
  }
  if (!quarantined.ok()) return out;  // both reject (e.g. bad header) — fine

  const rel::CsvIngestReport& report = quarantined->report;
  ++*checks;
  if (report.records_total != report.rows_ingested + report.rows_rejected) {
    add("quarantine",
        "count identity broken: " + std::to_string(report.records_total) +
            " records != " + std::to_string(report.rows_ingested) +
            " ingested + " + std::to_string(report.rows_rejected) +
            " rejected");
  }
  ++*checks;
  if (report.rejected_by_code.total() != report.rows_rejected) {
    add("quarantine", "per-code counts sum to " +
                          std::to_string(report.rejected_by_code.total()) +
                          ", not rows_rejected " +
                          std::to_string(report.rows_rejected) + " (" +
                          report.rejected_by_code.ToString() + ")");
  }
  ++*checks;
  if (report.quarantined_rows.size() != report.rows_rejected) {
    add("quarantine", "preserved " +
                          std::to_string(report.quarantined_rows.size()) +
                          " raw rows for " +
                          std::to_string(report.rows_rejected) +
                          " rejections");
  }
  ++*checks;
  if (quarantined->relation.num_rows() != report.rows_ingested) {
    add("quarantine",
        "relation has " + std::to_string(quarantined->relation.num_rows()) +
            " rows, report counted " + std::to_string(report.rows_ingested));
  }
  ++*checks;
  if (rel::WriteCsvString(quarantined->relation) !=
      rel::WriteCsvString(skipped->relation)) {
    add("skip~quarantine", "policies ingest different relations");
  }

  rel::CsvOptions fail_opts;  // kFail is the default
  auto failed = rel::ReadCsvWithReport(text, fail_opts);
  ++*checks;
  if (failed.ok() != report.clean()) {
    add("fail", report.clean()
                    ? "strict fail rejects input quarantine found clean: " +
                          failed.status().ToString()
                    : "strict fail accepted input with " +
                          std::to_string(report.rows_rejected) +
                          " quarantined rejections");
  }
  ++*checks;
  if (!failed.ok() && failed.status().ToString().find("ingest error [") ==
                          std::string::npos) {
    add("fail", "error is not a structured IngestError: " +
                    failed.status().ToString());
  }
  return out;
}

/// The seeded ingest stage of one qa iteration: splice malformed rows into
/// the instance's CSV, audit the policy contract, and — when the injection
/// is quote-free so exact accounting is provable — pin the exact counts and
/// the recovered relation against the known-good rendering.
std::vector<Discrepancy> CheckIngest(const rel::Relation& relation, Rng& rng,
                                     std::uint64_t* checks, DirtyCsv* dirty) {
  *dirty = InjectBadRows(relation, rng);
  std::vector<Discrepancy> out = CheckIngestContract(dirty->text, checks);
  if (!out.empty() || !dirty->exact) return out;

  rel::CsvOptions opts;
  opts.on_bad_row = rel::BadRowPolicy::kQuarantine;
  auto read = rel::ReadCsvWithReport(dirty->text, opts);
  ++*checks;
  if (!read.ok()) {
    out.push_back({"ingest", "quarantine",
                   "quote-free injection unreadable: " +
                       read.status().ToString()});
    return out;
  }
  if (read->report.rows_rejected != dirty->num_bad) {
    out.push_back({"ingest", "quarantine",
                   "injected " + std::to_string(dirty->num_bad) +
                       " bad rows, counted " +
                       std::to_string(read->report.rows_rejected) + " (" +
                       read->report.rejected_by_code.ToString() + ")"});
  }
  if (read->report.rows_ingested != relation.num_rows()) {
    out.push_back({"ingest", "quarantine",
                   "ingested " + std::to_string(read->report.rows_ingested) +
                       " of " + std::to_string(relation.num_rows()) +
                       " good rows"});
  }
  if (rel::WriteCsvString(read->relation) != dirty->clean) {
    out.push_back({"ingest", "quarantine",
                   "recovered relation differs from the pre-injection one"});
  }
  return out;
}

/// One seeded batch schedule over `base`, covering the batch shapes the
/// incremental contract names (docs/incremental.md): append-only with fresh
/// rows, delete-only, mixed with a duplicated row, an empty batch,
/// NULL-bearing appends (including an all-NULL row), and a final mixed
/// batch. Delete indices are drawn against the row count the relation will
/// have when each batch applies, so the schedule is valid by construction.
std::vector<rel::RowBatch> MakeBatchSchedule(const rel::Relation& base,
                                             Rng& rng) {
  const std::size_t cols = base.num_columns();
  std::size_t rows = base.num_rows();

  auto fresh_row = [&](bool with_nulls, bool all_nulls) {
    std::vector<rel::Value> row;
    row.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      if (all_nulls || (with_nulls && rng.Uniform(4) == 0)) {
        row.push_back(rel::Value::Null());
      } else {
        // A small domain keeps collisions and rank changes frequent — the
        // cases the warm counting fast paths must decide correctly.
        row.push_back(
            rel::Value::Int(static_cast<std::int64_t>(rng.Uniform(8))));
      }
    }
    return row;
  };
  // Duplicate of a base-relation row. If that row was deleted by an earlier
  // batch this is a re-insert — equally interesting for the warm state.
  auto duplicate_row = [&](std::size_t r) {
    std::vector<rel::Value> row;
    row.reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      row.push_back(base.column(c).ValueAt(r));
    }
    return row;
  };
  // Distinct sorted pre-batch indices against the *current* row count.
  auto draw_deletes = [&](std::size_t want) {
    std::vector<std::size_t> ids(rows);
    for (std::size_t r = 0; r < rows; ++r) ids[r] = r;
    for (std::size_t r = 0; r + 1 < ids.size(); ++r) {
      std::size_t j = r + rng.Uniform(ids.size() - r);
      std::swap(ids[r], ids[j]);
    }
    ids.resize(std::min(want, rows));
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  auto advance = [&rows](const rel::RowBatch& b) {
    rows = rows - b.deletes.size() + b.appends.size();
  };

  std::vector<rel::RowBatch> schedule;
  {
    rel::RowBatch b;  // append-only, fresh rows
    std::size_t n = 1 + rng.Uniform(3);
    for (std::size_t k = 0; k < n; ++k) {
      b.appends.push_back(fresh_row(false, false));
    }
    advance(b);
    schedule.push_back(std::move(b));
  }
  {
    rel::RowBatch b;  // delete-only
    b.deletes = draw_deletes(1 + rng.Uniform(2));
    advance(b);
    schedule.push_back(std::move(b));
  }
  {
    rel::RowBatch b;  // mixed, with a duplicated row
    b.deletes = draw_deletes(rng.Uniform(3));
    if (base.num_rows() > 0) {
      b.appends.push_back(duplicate_row(rng.Uniform(base.num_rows())));
    }
    b.appends.push_back(fresh_row(false, false));
    advance(b);
    schedule.push_back(std::move(b));
  }
  schedule.emplace_back();  // empty batch: everything must be served warm
  {
    rel::RowBatch b;  // NULL-bearing appends, first row all-NULL
    b.appends.push_back(fresh_row(true, true));
    b.appends.push_back(fresh_row(true, false));
    advance(b);
    schedule.push_back(std::move(b));
  }
  {
    rel::RowBatch b;  // final mixed batch
    b.deletes = draw_deletes(rng.Uniform(3));
    std::size_t n = rng.Uniform(3);
    for (std::size_t k = 0; k < n; ++k) {
      b.appends.push_back(fresh_row(true, false));
    }
    advance(b);
    schedule.push_back(std::move(b));
  }
  return schedule;
}

/// The incremental-equivalence stage of one qa iteration: replay `schedule`
/// on an IncrementalSession over `base` and assert after every batch that
/// the session's claims equal a from-scratch discovery of the materialized
/// relation — the contract of docs/incremental.md. With a non-empty
/// `state_dir` the session is additionally dropped mid-schedule and
/// reopened from its on-disk warm state (the persistence leg); an empty
/// `state_dir` runs purely in memory, which is what the schedule shrinker's
/// predicate uses.
std::vector<Discrepancy> CheckIncremental(
    const rel::Relation& base, const std::vector<rel::RowBatch>& schedule,
    const std::string& state_dir, std::uint64_t* checks) {
  std::vector<Discrepancy> out;
  algo::IncrementalOptions iopts;
  iopts.state_dir = state_dir;
  if (!state_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(state_dir, ec);
  }

  auto compare = [&](const algo::IncrementalSession& session,
                     const std::string& where, bool compare_counters) {
    ++*checks;
    core::OcdDiscoverResult oracle =
        algo::DiscoverFromScratch(session.relation(), iopts);
    if (!oracle.completed || !session.last_result().completed) {
      out.push_back({"incremental", "walk", where + ": walk incomplete"});
      return;
    }
    auto diff = [&](const char* what, const auto& inc_claims,
                    const auto& want_claims) {
      if (inc_claims == want_claims) return;
      std::vector<std::string> got, want;
      for (const auto& c : inc_claims) got.push_back(c.ToString());
      for (const auto& c : want_claims) want.push_back(c.ToString());
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      std::vector<std::string> missing, extra;
      std::set_difference(want.begin(), want.end(), got.begin(), got.end(),
                          std::back_inserter(missing));
      std::set_difference(got.begin(), got.end(), want.begin(), want.end(),
                          std::back_inserter(extra));
      for (const std::string& s : missing) {
        out.push_back({"incremental", what, where + " lost " + s});
      }
      for (const std::string& s : extra) {
        out.push_back({"incremental", what, where + " invented " + s});
      }
      if (missing.empty() && extra.empty()) {
        out.push_back({"incremental", what, where + " claims reordered"});
      }
    };
    diff("ods", session.last_result().ods, oracle.ods);
    diff("ocds", session.last_result().ocds, oracle.ocds);
    if (compare_counters && session.last_result().candidates_generated !=
                                oracle.candidates_generated) {
      out.push_back(
          {"incremental", "lattice",
           where + " visited " +
               std::to_string(session.last_result().candidates_generated) +
               " candidates, from-scratch " +
               std::to_string(oracle.candidates_generated)});
    }
  };

  auto started = algo::IncrementalSession::Start(base, iopts);
  if (!started.ok()) {
    out.push_back(
        {"incremental", "session", "Start: " + started.status().ToString()});
    return out;
  }
  algo::IncrementalSession session = std::move(started).value();
  compare(session, "bootstrap", true);

  // Reopen from disk once, mid-schedule — crossing the persistence boundary
  // with warm state that has already absorbed batches.
  const std::size_t reopen_after =
      state_dir.empty() ? schedule.size() + 1 : schedule.size() / 2;

  for (std::size_t b = 0; b < schedule.size() && out.empty(); ++b) {
    auto stats = session.ApplyBatch(schedule[b]);
    if (!stats.ok()) {
      out.push_back({"incremental", "apply",
                     "batch " + std::to_string(b + 1) + ": " +
                         stats.status().ToString()});
      return out;
    }
    const std::string where = "after batch " + std::to_string(b + 1);
    compare(session, where, true);
    if (schedule[b].empty() && stats->result.hook_recomputed != 0) {
      out.push_back({"incremental", "warmth",
                     where + " (empty) recomputed " +
                         std::to_string(stats->result.hook_recomputed) +
                         " candidates; all must be served warm"});
    }

    if (out.empty() && b + 1 == reopen_after) {
      const std::uint64_t seq = session.batch_seq();
      session = algo::IncrementalSession();  // drop the in-memory state
      auto reopened = algo::IncrementalSession::Open(
          iopts, [] {
            return Result<rel::Relation>(
                Status::NotFound("loader must not be consulted"));
          });
      if (!reopened.ok()) {
        out.push_back({"incremental", "reopen",
                       where + ": " + reopened.status().ToString()});
        return out;
      }
      session = std::move(reopened).value();
      if (!session.resumed() || session.batch_seq() != seq) {
        out.push_back(
            {"incremental", "reopen",
             where + " warm state not restored (batch_seq " +
                 std::to_string(session.batch_seq()) + " of " +
                 std::to_string(seq) + "): " + session.open_warning()});
        return out;
      }
      // Restored claims must equal the oracle too (counters travel through
      // the snapshot's stats section, so they are held to the same bar).
      compare(session, where + " (reopened)", true);
    }
  }
  return out;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

/// Canonicalizes a worker report for equivalence comparison: drops the keys
/// that legitimately differ between two runs of the same computation
/// (timing), then re-serializes with the canonical sorted-key writer. Every
/// semantic key — the dependency sets above all — survives verbatim.
std::string CanonicalReportForCompare(const report::JsonValue& doc) {
  std::map<std::string, report::JsonValue> members = doc.object();
  members.erase("elapsed_seconds");
  members.erase("checkpoint");
  return report::SerializeJson(report::JsonValue::Object(std::move(members)));
}

/// The serve-equivalence stage: one in-process daemon (started lazily on
/// first use, drained on destruction) whose workers are real `<cli> run`
/// processes, plus a direct `<cli> run` baseline per check. Asserts the
/// daemon answers the same question with byte-identical results, cold and
/// from its cache.
class ServeEquivalence {
 public:
  ServeEquivalence(std::string cli_path, std::string scratch_dir,
                   bool chaos = false)
      : cli_path_(std::move(cli_path)),
        scratch_(std::move(scratch_dir)),
        chaos_(chaos) {}

  ~ServeEquivalence() {
    if (proxy_) proxy_->Stop();
    if (server_) {
      server_->RequestStop();
      run_thread_.join();
    }
  }

  std::vector<Discrepancy> Check(const rel::Relation& relation,
                                 std::uint64_t iteration,
                                 std::uint64_t* checks) {
    std::vector<Discrepancy> out;
    if (!EnsureStarted()) {
      // Report the infra failure once; later iterations skip quietly
      // rather than drowning the summary in copies.
      if (!start_failure_reported_) {
        start_failure_reported_ = true;
        out.push_back({"serve", "daemon", start_error_});
      }
      return out;
    }
    ++*checks;

    // One CSV per check (distinct relations must be distinct cache keys —
    // the daemon fingerprints content, not paths, so reuse of the path is
    // itself part of the test).
    const std::string csv_path = scratch_ + "/serve_check.csv";
    Status wrote = rel::WriteCsvFile(relation, csv_path);
    if (!wrote.ok()) {
      out.push_back({"serve", "daemon", "scratch CSV: " + wrote.ToString()});
      return out;
    }

    // Direct baseline: exactly the argv the daemon hands its worker.
    engine::WorkerOutcome direct = engine::RunWorkerProcess(
        {cli_path_, "run", csv_path, "--algo", "discover", "--json",
         "--seed", "42"},
        {});
    Result<report::JsonValue> direct_doc =
        report::ParseJson(direct.stdout_text);
    if (direct.exit_code != 0 || !direct_doc.ok()) {
      out.push_back({"serve", "run",
                     "direct run failed (exit " +
                         std::to_string(direct.exit_code) + ")"});
      return out;
    }
    const std::string want = CanonicalReportForCompare(*direct_doc);

    serve::ServeRequest request;
    request.kind = "run";
    request.tenant = "qa";
    request.id = "qa-" + std::to_string(iteration);
    request.source = csv_path;
    for (const char* expect_cache : {"miss", "hit"}) {
      auto resp = serve::SendRequestOnce(server_->endpoint(), request);
      if (!resp.ok()) {
        out.push_back({"serve", expect_cache,
                       "transport: " + resp.status().ToString()});
        return out;
      }
      if (resp->status != "ok" || !resp->have_report) {
        out.push_back({"serve", expect_cache,
                       "daemon answered status=" + resp->status + " " +
                           resp->reject_reason + " " + resp->error});
        return out;
      }
      if (resp->cache != expect_cache) {
        out.push_back({"serve", expect_cache,
                       "expected a cache " + std::string(expect_cache) +
                           ", got " + resp->cache});
      }
      const std::string got = CanonicalReportForCompare(resp->report);
      if (got != want) {
        out.push_back({"serve", expect_cache,
                       "daemon-served report differs from direct `ocdd "
                       "run` (" +
                           std::to_string(got.size()) + " vs " +
                           std::to_string(want.size()) + " bytes)"});
      }
    }

    // Chaos leg: the same question again, but over TCP through the fault
    // proxy with a retrying client. Every injected reset/torn/latency/
    // corruption must be absorbed by a retry that lands on the (now warm)
    // result cache — the answer stays byte-identical.
    if (chaos_ && proxy_) {
      serve::ClientOptions copts;
      copts.connect_attempts = 10;
      copts.io_timeout_seconds = 5.0;
      serve::RetryOptions retry;
      retry.max_retries = 12;
      retry.deadline_seconds = 120.0;
      retry.backoff_base_seconds = 0.01;
      retry.backoff_cap_seconds = 0.1;
      retry.jitter_seed = iteration + 1;
      serve::ServeClient client(proxy_->endpoint(), copts, retry);
      serve::ClientResult result = client.Call(request);
      if (result.outcome != serve::ClientOutcome::kResponse) {
        out.push_back({"serve", "chaos",
                       std::string("chaos client gave up: ") +
                           serve::ClientOutcomeName(result.outcome) + ": " +
                           result.error});
      } else if (result.response.status != "ok" ||
                 !result.response.have_report) {
        out.push_back({"serve", "chaos",
                       "chaos answer status=" + result.response.status + " " +
                           result.response.reject_reason + " " +
                           result.response.error});
      } else if (CanonicalReportForCompare(result.response.report) != want) {
        out.push_back({"serve", "chaos",
                       "chaos-path report differs from direct `ocdd run`"});
      }
    }
    return out;
  }

 private:
  bool EnsureStarted() {
    if (server_) return true;
    if (!start_error_.empty()) return false;
    serve::ServerOptions opts;
    if (chaos_) {
      // Chaos mode exercises the TCP transport end to end: daemon on an
      // ephemeral TCP port, fault proxy in front of it.
      opts.listen_address = "127.0.0.1:0";
    } else {
      opts.socket_path = scratch_ + "/qa_serve.sock";
    }
    opts.num_executors = 1;
    opts.worker_argv_prefix = {cli_path_, "run"};
    opts.cache_capacity_bytes = 16u << 20;
    opts.drain_grace_seconds = 10.0;
    server_ = std::make_unique<serve::Server>(std::move(opts));
    Status started = server_->Start();
    if (!started.ok()) {
      start_error_ = started.ToString();
      server_.reset();
      return false;
    }
    run_thread_ = std::thread([server = server_.get()] { server->Run(); });
    if (chaos_) {
      serve::ChaosPlan plan;
      plan.fault = serve::ChaosFault::kMix;
      plan.probability = 0.5;
      plan.seed = 0xc4a05;
      plan.latency_seconds = 0.02;
      proxy_ =
          std::make_unique<serve::ChaosProxy>(server_->endpoint(), plan);
      Status proxy_started = proxy_->Start();
      if (!proxy_started.ok()) {
        start_error_ = proxy_started.ToString();
        proxy_.reset();
        server_->RequestStop();
        run_thread_.join();
        server_.reset();
        return false;
      }
    }
    return true;
  }

  std::string cli_path_;
  std::string scratch_;
  bool chaos_ = false;
  std::string start_error_;
  bool start_failure_reported_ = false;
  std::unique_ptr<serve::Server> server_;
  std::unique_ptr<serve::ChaosProxy> proxy_;
  std::thread run_thread_;
};

}  // namespace

QaSummary RunQa(const QaOptions& options) {
  QaSummary summary;
  summary.seed = options.seed;
  summary.iters_requested = options.iters;
  summary.corruption = CorruptionModeName(options.inject);

  // Per-process scratch (ctest runs harness instances in parallel; a shared
  // path would interleave snapshot generations across processes).
  std::string scratch = options.checkpoint_scratch_dir;
  const bool scratch_is_ours =
      (options.resume_runs || options.incremental ||
       !options.serve_cli_path.empty()) &&
      scratch.empty();
  if (scratch_is_ours) {
    scratch = (std::filesystem::temp_directory_path() /
               ("ocdd_qa_ckpt_" + std::to_string(::getpid())))
                  .string();
  }

  std::unique_ptr<ServeEquivalence> serve_stage;
  if (!options.serve_cli_path.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(scratch, ec);
    serve_stage = std::make_unique<ServeEquivalence>(
        options.serve_cli_path, scratch, options.serve_chaos);
  }

  for (std::size_t i = 0; i < options.iters; ++i) {
    if (summary.failures.size() >= options.max_failures) break;
    ++summary.iterations_run;
    const std::uint64_t iter_seed = IterationSeed(options.seed, i);
    Rng rng(iter_seed);
    rel::Relation relation = datagen::MakeRandomRelation(rng, options.spec);
    rel::CodedRelation coded = rel::CodedRelation::Encode(relation);
    AlgorithmRuns runs = RunAllClaims(coded);

    // Corruption is delivered through the shared fault-injection subsystem:
    // arm the qa point, let the oracle poll it.
    FaultInjector injector;
    OracleOptions oracle_options;
    oracle_options.max_side_len = options.max_side_len;
    if (options.inject != CorruptionMode::kNone) {
      injector.Arm(CorruptionPoint(options.inject), FaultAction::kCancel, 1);
      oracle_options.injector = &injector;
    }

    OracleReport report = CrossCheckRuns(coded, runs, oracle_options);
    summary.oracle_comparisons += report.comparisons;
    summary.skipped += report.skipped;

    if (!report.clean()) {
      OracleOptions shrink_options;
      shrink_options.max_side_len = options.max_side_len;
      shrink_options.corruption = options.inject;
      auto still_fails = [&shrink_options](const rel::Relation& r) {
        if (r.num_rows() == 0 || r.num_columns() == 0) return false;
        return !CrossCheck(rel::CodedRelation::Encode(r), shrink_options)
                    .clean();
      };
      ShrinkResult shrunk = ShrinkFailingRelation(relation, still_fails);
      summary.shrink_evaluations += shrunk.evaluations;
      // Report the discrepancies of the *shrunk* instance — same failure,
      // minimal statement.
      OracleReport shrunk_report =
          CrossCheck(rel::CodedRelation::Encode(shrunk.relation),
                     shrink_options);
      QaFailure f = MakeFailure(
          i, iter_seed, "oracle",
          shrunk_report.clean() ? std::move(report.discrepancies)
                                : std::move(shrunk_report.discrepancies),
          shrunk.relation);
      MaybeWriteRepro(options, &f);
      summary.failures.push_back(std::move(f));
      continue;
    }

    bool failed = false;
    if (options.ingest) {
      DirtyCsv dirty;
      std::vector<Discrepancy> ds =
          CheckIngest(relation, rng, &summary.ingest_checks, &dirty);
      if (!ds.empty()) {
        // Shrink by raw lines when the self-contained contract reproduces;
        // exact-count mismatches depend on the injection and ship unshrunk.
        std::string repro_text = dirty.text;
        auto contract_fails = [](const std::string& text) {
          std::uint64_t scratch = 0;
          return !CheckIngestContract(text, &scratch).empty();
        };
        std::uint64_t scratch = 0;
        if (!CheckIngestContract(dirty.text, &scratch).empty()) {
          ShrinkCsvResult shrunk =
              ShrinkFailingCsvLines(dirty.text, contract_fails);
          summary.shrink_evaluations += shrunk.evaluations;
          repro_text = std::move(shrunk.csv);
        }
        QaFailure f;
        f.iteration = i;
        f.iteration_seed = iter_seed;
        f.kind = "ingest";
        if (ds.size() > kMaxDiscrepanciesPerFailure) {
          ds.resize(kMaxDiscrepanciesPerFailure);
        }
        f.discrepancies = std::move(ds);
        f.csv = std::move(repro_text);
        f.rows = relation.num_rows();
        f.cols = relation.num_columns();
        MaybeWriteRepro(options, &f);
        summary.failures.push_back(std::move(f));
        continue;
      }
    }

    if (options.metamorphic) {
      for (Transform t : kAllTransforms) {
        OracleReport mreport = CheckMetamorphic(relation, runs, t, rng);
        summary.metamorphic_comparisons += mreport.comparisons;
        summary.skipped += mreport.skipped;
        if (!mreport.clean()) {
          QaFailure f = MakeFailure(
              i, iter_seed, std::string("metamorphic/") + TransformName(t),
              std::move(mreport.discrepancies), relation);
          MaybeWriteRepro(options, &f);
          summary.failures.push_back(std::move(f));
          failed = true;
          break;
        }
      }
    }
    if (failed) continue;

    if (options.simd_fallback && i % 4 == 1 && runs.ocdd.completed) {
      std::vector<Discrepancy> ds =
          CheckSimdFallback(coded, runs, &summary.simd_checks);
      if (!ds.empty()) {
        QaFailure f =
            MakeFailure(i, iter_seed, "simd", std::move(ds), relation);
        MaybeWriteRepro(options, &f);
        summary.failures.push_back(std::move(f));
        continue;
      }
    }

    if (options.stopped_runs && i % 5 == 0 && runs.AllCompleted()) {
      std::vector<Discrepancy> ds = CheckStoppedRuns(
          coded, runs, &summary.stopped_run_checks, &summary.skipped);
      if (!ds.empty()) {
        QaFailure f =
            MakeFailure(i, iter_seed, "stopped_run", std::move(ds), relation);
        MaybeWriteRepro(options, &f);
        summary.failures.push_back(std::move(f));
        continue;
      }
    }

    if (options.resume_runs && i % 7 == 0 && runs.AllCompleted()) {
      std::vector<Discrepancy> ds =
          CheckResumedRuns(coded, runs, scratch, &summary.resume_checks);
      if (!ds.empty()) {
        QaFailure f =
            MakeFailure(i, iter_seed, "resumed_run", std::move(ds), relation);
        MaybeWriteRepro(options, &f);
        summary.failures.push_back(std::move(f));
        continue;
      }
    }

    // The incremental stage pays one from-scratch oracle walk per batch of
    // its schedule, so it shares the sparse cadences above.
    if (options.incremental && i % 3 == 0) {
      std::vector<rel::RowBatch> schedule = MakeBatchSchedule(relation, rng);
      std::vector<Discrepancy> ds =
          CheckIncremental(relation, schedule, scratch + "/incremental_stage",
                           &summary.incremental_checks);
      if (!ds.empty()) {
        // Shrink the schedule when the failure reproduces without the
        // persistence leg; disk-specific failures ship unshrunk. Candidates
        // that no longer apply cleanly are rejected, not counted as repros.
        auto schedule_fails = [&relation](
                                  const std::vector<rel::RowBatch>& cand) {
          rel::Relation cur = relation;
          for (const rel::RowBatch& b : cand) {
            auto next = rel::ApplyBatch(cur, b);
            if (!next.ok()) return false;
            cur = std::move(next).value();
          }
          std::uint64_t scratch_checks = 0;
          return !CheckIncremental(relation, cand, "", &scratch_checks)
                      .empty();
        };
        if (schedule_fails(schedule)) {
          ShrinkScheduleResult shrunk =
              ShrinkFailingSchedule(schedule, schedule_fails);
          summary.shrink_evaluations += shrunk.evaluations;
          std::uint64_t scratch_checks = 0;
          std::vector<Discrepancy> shrunk_ds = CheckIncremental(
              relation, shrunk.schedule, "", &scratch_checks);
          if (!shrunk_ds.empty()) {
            schedule = std::move(shrunk.schedule);
            ds = std::move(shrunk_ds);
          }
        }
        std::string rendered;
        for (std::size_t b = 0; b < schedule.size(); ++b) {
          rendered += "batch " + std::to_string(b + 1) + ":\n" +
                      rel::WriteBatchText(schedule[b], relation.schema());
        }
        ds.push_back({"incremental", "schedule", std::move(rendered)});
        QaFailure f =
            MakeFailure(i, iter_seed, "incremental", std::move(ds), relation);
        MaybeWriteRepro(options, &f);
        summary.failures.push_back(std::move(f));
        continue;
      }
    }

    // The serve stage spawns two real worker processes per check (direct
    // baseline + cold daemon run), so it runs on its own sparse cadence.
    if (serve_stage && i % 9 == 0) {
      std::vector<Discrepancy> ds =
          serve_stage->Check(relation, i, &summary.serve_checks);
      if (!ds.empty()) {
        QaFailure f =
            MakeFailure(i, iter_seed, "serve", std::move(ds), relation);
        MaybeWriteRepro(options, &f);
        summary.failures.push_back(std::move(f));
      }
    }
  }

  // Drain the daemon before tearing its scratch directory down.
  serve_stage.reset();
  if (scratch_is_ours) {
    std::error_code ec;
    std::filesystem::remove_all(scratch, ec);
  }
  return summary;
}

std::string SummaryToJson(const QaSummary& summary) {
  std::string out = "{\n";
  out += "  \"seed\": " + std::to_string(summary.seed) + ",\n";
  out += "  \"iters_requested\": " + std::to_string(summary.iters_requested) +
         ",\n";
  out += "  \"iterations_run\": " + std::to_string(summary.iterations_run) +
         ",\n";
  out += "  \"corruption\": ";
  AppendJsonString(out, summary.corruption);
  out += ",\n";
  out += "  \"oracle_comparisons\": " +
         std::to_string(summary.oracle_comparisons) + ",\n";
  out += "  \"metamorphic_comparisons\": " +
         std::to_string(summary.metamorphic_comparisons) + ",\n";
  out += "  \"stopped_run_checks\": " +
         std::to_string(summary.stopped_run_checks) + ",\n";
  out += "  \"resume_checks\": " + std::to_string(summary.resume_checks) +
         ",\n";
  out += "  \"ingest_checks\": " + std::to_string(summary.ingest_checks) +
         ",\n";
  out += "  \"incremental_checks\": " +
         std::to_string(summary.incremental_checks) + ",\n";
  out += "  \"simd_checks\": " + std::to_string(summary.simd_checks) + ",\n";
  out += "  \"serve_checks\": " + std::to_string(summary.serve_checks) +
         ",\n";
  out += "  \"skipped\": " + std::to_string(summary.skipped) + ",\n";
  out += "  \"shrink_evaluations\": " +
         std::to_string(summary.shrink_evaluations) + ",\n";
  out += std::string("  \"clean\": ") + (summary.clean() ? "true" : "false") +
         ",\n";
  out += "  \"failures\": [";
  for (std::size_t i = 0; i < summary.failures.size(); ++i) {
    const QaFailure& f = summary.failures[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"iteration\": " + std::to_string(f.iteration) +
           ", \"seed\": " + std::to_string(f.iteration_seed) + ", \"kind\": ";
    AppendJsonString(out, f.kind);
    out += ", \"rows\": " + std::to_string(f.rows) +
           ", \"cols\": " + std::to_string(f.cols) + ", \"repro_path\": ";
    AppendJsonString(out, f.repro_path);
    if (!f.repro_error.empty()) {
      out += ", \"repro_error\": ";
      AppendJsonString(out, f.repro_error);
    }
    out += ", \"csv\": ";
    AppendJsonString(out, f.csv);
    out += ", \"discrepancies\": [";
    for (std::size_t d = 0; d < f.discrepancies.size(); ++d) {
      if (d > 0) out += ", ";
      AppendJsonString(out, f.discrepancies[d].ToString());
    }
    out += "]}";
  }
  out += summary.failures.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace ocdd::qa
