#ifndef OCDD_QA_HARNESS_H_
#define OCDD_QA_HARNESS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/random_relation.h"
#include "qa/oracle.h"

namespace ocdd::qa {

struct QaOptions {
  std::uint64_t seed = 1;
  std::size_t iters = 100;
  /// Brute-force ground-truth side-length bound.
  std::size_t max_side_len = 2;
  /// Corruption to arm through the fault-injection subsystem (end-to-end
  /// harness self-test: detect → shrink → repro).
  CorruptionMode inject = CorruptionMode::kNone;
  /// Run the metamorphic transforms on instances the oracle found clean.
  bool metamorphic = true;
  /// Periodically re-run algorithms under check budgets / injected faults
  /// and assert the partial results are sound subsets of the complete ones.
  bool stopped_runs = true;
  /// Periodically stop a checkpointed run mid-lattice, resume it from its
  /// snapshot, and assert the resumed claims equal the uninterrupted run's
  /// (the crash-safety contract, docs/checkpointing.md).
  bool resume_runs = true;
  /// Splice seeded malformed rows into each instance's CSV rendering and
  /// audit the ingest boundary: skip ≡ quarantine on the surviving relation,
  /// exact per-code rejection accounting, and strict-fail erroring
  /// structurally (docs/robustness.md). Failures are shrunk line-wise.
  bool ingest = true;
  /// Periodically drive the iteration's relation through a seeded random
  /// batch schedule — append-only (fresh, duplicated, and NULL-bearing
  /// rows), delete-only, mixed, and empty batches — on an
  /// `IncrementalSession`, asserting after every batch that the
  /// incrementally maintained OD/OCD claims equal a from-scratch discovery
  /// of the materialized relation, with a drop-and-reopen persistence leg
  /// mid-schedule (docs/incremental.md). Failing schedules are ddmin-shrunk
  /// batch- and op-wise (ShrinkFailingSchedule).
  bool incremental = true;
  /// Periodically re-run OCDDISCOVER with the check-kernel backend pinned
  /// to the scalar fallback (what `OCDD_SIMD=off` selects at startup) — in
  /// both check modes — and assert the closure is identical to the
  /// default-backend run's. Audits the SIMD dispatch layer's bit-identical
  /// promise end to end; a no-op when the scalar backend is already active
  /// (no AVX2, or `OCDD_SIMD=off` in the environment).
  bool simd_fallback = true;
  /// Path to the `ocdd` CLI binary, enabling the serve-equivalence stage:
  /// periodically serve the iteration's relation through an in-process
  /// daemon (spawning real worker processes) and assert the daemon's report
  /// is byte-identical to a direct `ocdd run` of the same CSV — both cold
  /// (cache miss) and cached (hit) — after stripping volatile keys
  /// (docs/serving.md). Empty disables the stage.
  std::string serve_cli_path;
  /// With the serve stage enabled, also replay each equivalence exchange
  /// over TCP through the in-process chaos fault proxy (ChaosProxy, mixed
  /// recoverable faults) with a retrying ServeClient — the report must
  /// still come back byte-identical despite injected resets, torn writes,
  /// latency and corruption (docs/serving.md).
  bool serve_chaos = false;
  /// Scratch directory for resume-equivalence snapshots; empty means a
  /// per-process directory under the system temp dir (removed afterwards).
  std::string checkpoint_scratch_dir;
  /// Stop collecting after this many failures (each is shrunk, which costs
  /// many oracle evaluations).
  std::size_t max_failures = 8;
  /// When non-empty, shrunk repro CSVs are written here.
  std::string repro_dir;
  datagen::RandomRelationSpec spec;
};

struct QaFailure {
  std::uint64_t iteration = 0;
  /// The per-iteration derived seed; `qa --seed <this> --iters 1` replays
  /// the failing instance exactly. (Iteration seeds are derived, not
  /// sequential — see IterationSeed.)
  std::uint64_t iteration_seed = 0;
  /// "oracle", "metamorphic/<transform>", "stopped_run", "resumed_run",
  /// "ingest", "incremental", "simd", or "serve". For "ingest" failures
  /// `csv` holds
  /// the raw corrupted text
  /// (line-shrunk when the contract violation survives shrinking) and each
  /// discrepancy names the bad-row policy it indicts.
  std::string kind;
  std::vector<Discrepancy> discrepancies;
  /// CSV of the shrunk failing relation (oracle failures) or of the base
  /// instance (metamorphic / stopped-run failures, which depend on more
  /// state than the relation alone). "incremental" failures carry the base
  /// relation here and the ddmin-shrunk batch schedule (batch wire format)
  /// in a trailing "schedule" discrepancy.
  std::string csv;
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// File the CSV was written to, when QaOptions::repro_dir is set.
  std::string repro_path;
  /// Typed IoError when the repro write itself failed (disk full while
  /// saving evidence); empty on success.
  std::string repro_error;
};

struct QaSummary {
  std::uint64_t seed = 0;
  std::size_t iters_requested = 0;
  std::uint64_t iterations_run = 0;
  std::string corruption;
  std::uint64_t oracle_comparisons = 0;
  std::uint64_t metamorphic_comparisons = 0;
  std::uint64_t stopped_run_checks = 0;
  std::uint64_t resume_checks = 0;
  std::uint64_t ingest_checks = 0;
  std::uint64_t incremental_checks = 0;
  std::uint64_t simd_checks = 0;
  std::uint64_t serve_checks = 0;
  std::uint64_t skipped = 0;
  std::uint64_t shrink_evaluations = 0;
  std::vector<QaFailure> failures;

  bool clean() const { return failures.empty(); }
};

/// Seed of iteration `i` under master seed `seed` — a splitmix-style spread
/// so neighbouring iterations share no low-bit structure.
std::uint64_t IterationSeed(std::uint64_t seed, std::uint64_t i);

/// The differential/metamorphic sweep: per iteration, generate a random
/// relation from the iteration seed, run every algorithm, cross-check
/// (CrossCheckRuns), then metamorphic transforms and periodic stopped-run
/// subset checks. Failing instances are shrunk (ShrinkFailingRelation) and
/// reported with a replay seed. Fully deterministic in `options`.
QaSummary RunQa(const QaOptions& options);

/// Deterministic JSON rendering of a summary — a pure function of the
/// summary (no timing, no environment), so equal seeds yield byte-identical
/// reports.
std::string SummaryToJson(const QaSummary& summary);

}  // namespace ocdd::qa

#endif  // OCDD_QA_HARNESS_H_
