#include "qa/shrinker.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace ocdd::qa {

ShrinkResult ShrinkFailingRelation(const rel::Relation& failing,
                                   const FailurePredicate& still_fails,
                                   std::size_t max_evaluations) {
  rel::Relation cur = failing;
  std::size_t evals = 0;
  auto reproduces = [&](const rel::Relation& cand) {
    if (evals >= max_evaluations) return false;
    ++evals;
    return still_fails(cand);
  };

  bool progress = true;
  while (progress && evals < max_evaluations) {
    progress = false;

    // Column drops, last column first so surviving ids stay stable longest.
    for (std::size_t c = cur.num_columns(); c-- > 0;) {
      if (cur.num_columns() <= 1) break;
      std::vector<rel::ColumnId> keep;
      keep.reserve(cur.num_columns() - 1);
      for (std::size_t k = 0; k < cur.num_columns(); ++k) {
        if (k != c) keep.push_back(k);
      }
      auto cand = cur.ProjectColumns(keep);
      if (cand.ok() && reproduces(*cand)) {
        cur = std::move(cand).value();
        progress = true;
      }
    }

    // Row-block removal with halving granularity (ddmin-style).
    std::size_t chunk = std::max<std::size_t>(1, cur.num_rows() / 2);
    while (true) {
      std::size_t start = 0;
      while (start < cur.num_rows() && cur.num_rows() > 1) {
        std::size_t end = std::min(cur.num_rows(), start + chunk);
        if (end - start >= cur.num_rows()) break;  // keep at least one row
        std::vector<std::size_t> keep;
        keep.reserve(cur.num_rows() - (end - start));
        for (std::size_t r = 0; r < cur.num_rows(); ++r) {
          if (r < start || r >= end) keep.push_back(r);
        }
        rel::Relation cand = cur.SelectRows(keep);
        if (reproduces(cand)) {
          cur = std::move(cand);
          progress = true;
          // retry the same position — the next block slid into it
        } else {
          start = end;
        }
      }
      if (chunk == 1) break;
      chunk /= 2;
    }
  }

  return ShrinkResult{std::move(cur), evals};
}

namespace {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace

ShrinkCsvResult ShrinkFailingCsvLines(const std::string& failing_csv,
                                      const CsvTextPredicate& still_fails,
                                      std::size_t max_evaluations) {
  ShrinkCsvResult result{failing_csv, 0};
  std::vector<std::string> lines = SplitLines(failing_csv);
  if (lines.size() <= 2) return result;

  // Joining normalizes the trailing newline; bail to the verbatim input if
  // that alone changes the verdict (the contract is "returned text fails").
  ++result.evaluations;
  if (!still_fails(JoinLines(lines))) return result;

  bool progress = true;
  while (progress && result.evaluations < max_evaluations) {
    progress = false;
    // Data lines only — line 0 is the header, which the ingest boundary
    // needs to even have a schema to reject rows against.
    std::size_t chunk = std::max<std::size_t>(1, (lines.size() - 1) / 2);
    while (true) {
      std::size_t at = 1;
      while (at + chunk <= lines.size() &&
             result.evaluations < max_evaluations) {
        std::vector<std::string> cand(lines.begin(), lines.begin() + at);
        cand.insert(cand.end(), lines.begin() + at + chunk, lines.end());
        ++result.evaluations;
        if (still_fails(JoinLines(cand))) {
          lines = std::move(cand);
          progress = true;
          // retry the same position — the next block slid into it
        } else {
          at += chunk;
        }
      }
      if (chunk == 1) break;
      chunk /= 2;
    }
  }

  result.csv = JoinLines(lines);
  return result;
}

ShrinkScheduleResult ShrinkFailingSchedule(
    const std::vector<rel::RowBatch>& failing,
    const SchedulePredicate& still_fails, std::size_t max_evaluations) {
  ShrinkScheduleResult result{failing, 0};
  std::vector<rel::RowBatch>& cur = result.schedule;
  auto reproduces = [&](const std::vector<rel::RowBatch>& cand) {
    if (result.evaluations >= max_evaluations) return false;
    ++result.evaluations;
    return still_fails(cand);
  };

  bool progress = true;
  while (progress && result.evaluations < max_evaluations) {
    progress = false;

    // Whole-batch block drops with halving granularity (ddmin-style).
    std::size_t chunk = std::max<std::size_t>(1, cur.size() / 2);
    while (true) {
      std::size_t at = 0;
      while (at < cur.size() && cur.size() > 1) {
        std::size_t end = std::min(cur.size(), at + chunk);
        if (end - at >= cur.size()) break;  // keep at least one batch
        std::vector<rel::RowBatch> cand(cur.begin(), cur.begin() + at);
        cand.insert(cand.end(), cur.begin() + end, cur.end());
        if (reproduces(cand)) {
          cur = std::move(cand);
          progress = true;
          // retry the same position — the next block slid into it
        } else {
          at = end;
        }
      }
      if (chunk == 1) break;
      chunk /= 2;
    }

    // Op drops inside each surviving batch, one at a time (QA batches are
    // small — a handful of ops — so per-op granularity is affordable and
    // gets closer to 1-minimal than block drops would).
    for (std::size_t b = 0; b < cur.size(); ++b) {
      for (std::size_t a = cur[b].appends.size(); a-- > 0;) {
        std::vector<rel::RowBatch> cand = cur;
        cand[b].appends.erase(cand[b].appends.begin() +
                              static_cast<std::ptrdiff_t>(a));
        if (reproduces(cand)) {
          cur = std::move(cand);
          progress = true;
        }
      }
      for (std::size_t d = cur[b].deletes.size(); d-- > 0;) {
        std::vector<rel::RowBatch> cand = cur;
        cand[b].deletes.erase(cand[b].deletes.begin() +
                              static_cast<std::ptrdiff_t>(d));
        if (reproduces(cand)) {
          cur = std::move(cand);
          progress = true;
        }
      }
    }
  }

  return result;
}

}  // namespace ocdd::qa
