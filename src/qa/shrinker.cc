#include "qa/shrinker.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace ocdd::qa {

ShrinkResult ShrinkFailingRelation(const rel::Relation& failing,
                                   const FailurePredicate& still_fails,
                                   std::size_t max_evaluations) {
  rel::Relation cur = failing;
  std::size_t evals = 0;
  auto reproduces = [&](const rel::Relation& cand) {
    if (evals >= max_evaluations) return false;
    ++evals;
    return still_fails(cand);
  };

  bool progress = true;
  while (progress && evals < max_evaluations) {
    progress = false;

    // Column drops, last column first so surviving ids stay stable longest.
    for (std::size_t c = cur.num_columns(); c-- > 0;) {
      if (cur.num_columns() <= 1) break;
      std::vector<rel::ColumnId> keep;
      keep.reserve(cur.num_columns() - 1);
      for (std::size_t k = 0; k < cur.num_columns(); ++k) {
        if (k != c) keep.push_back(k);
      }
      auto cand = cur.ProjectColumns(keep);
      if (cand.ok() && reproduces(*cand)) {
        cur = std::move(cand).value();
        progress = true;
      }
    }

    // Row-block removal with halving granularity (ddmin-style).
    std::size_t chunk = std::max<std::size_t>(1, cur.num_rows() / 2);
    while (true) {
      std::size_t start = 0;
      while (start < cur.num_rows() && cur.num_rows() > 1) {
        std::size_t end = std::min(cur.num_rows(), start + chunk);
        if (end - start >= cur.num_rows()) break;  // keep at least one row
        std::vector<std::size_t> keep;
        keep.reserve(cur.num_rows() - (end - start));
        for (std::size_t r = 0; r < cur.num_rows(); ++r) {
          if (r < start || r >= end) keep.push_back(r);
        }
        rel::Relation cand = cur.SelectRows(keep);
        if (reproduces(cand)) {
          cur = std::move(cand);
          progress = true;
          // retry the same position — the next block slid into it
        } else {
          start = end;
        }
      }
      if (chunk == 1) break;
      chunk /= 2;
    }
  }

  return ShrinkResult{std::move(cur), evals};
}

}  // namespace ocdd::qa
