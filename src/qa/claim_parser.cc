#include "qa/claim_parser.h"

#include <algorithm>
#include <cctype>
#include <vector>

namespace ocdd::qa {

namespace {

/// Cursor over one claim line. Every helper returns false on mismatch and
/// leaves a structured error for the caller to wrap; nothing here throws or
/// reads past `line_`.
class LineParser {
 public:
  LineParser(const std::string& line, const ClaimParseLimits& limits)
      : line_(line), limits_(limits) {}

  bool Literal(const char* s) {
    std::size_t len = 0;
    while (s[len] != '\0') ++len;
    if (line_.compare(pos_, len, s) != 0) return false;
    pos_ += len;
    return true;
  }

  /// Unsigned decimal column id, bounded by `max_column_id`.
  bool Id(rel::ColumnId* out) {
    if (pos_ >= line_.size() || !std::isdigit(static_cast<unsigned char>(
                                    line_[pos_]))) {
      return false;
    }
    std::uint64_t v = 0;
    while (pos_ < line_.size() &&
           std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(line_[pos_] - '0');
      if (v >= limits_.max_column_id) {
        out_of_range_ = true;
        return false;
      }
      ++pos_;
    }
    *out = static_cast<rel::ColumnId>(v);
    return true;
  }

  /// `open` ids `close`, comma-separated, possibly empty: "[1,2]", "{}", ...
  bool IdSeq(char open, char close, std::vector<rel::ColumnId>* out) {
    out->clear();
    if (pos_ >= line_.size() || line_[pos_] != open) return false;
    ++pos_;
    if (pos_ < line_.size() && line_[pos_] == close) {
      ++pos_;
      return true;
    }
    for (;;) {
      rel::ColumnId id = 0;
      if (!Id(&id)) return false;
      if (out->size() >= limits_.max_list_len) {
        out_of_range_ = true;
        return false;
      }
      out->push_back(id);
      if (pos_ < line_.size() && line_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= line_.size() || line_[pos_] != close) return false;
    ++pos_;
    return true;
  }

  bool List(std::vector<rel::ColumnId>* out) { return IdSeq('[', ']', out); }
  bool Set(std::vector<rel::ColumnId>* out) { return IdSeq('{', '}', out); }

  bool AtEnd() const { return pos_ == line_.size(); }
  std::size_t pos() const { return pos_; }
  /// True when the parse failed on a bound (id or list too large) rather
  /// than on syntax.
  bool out_of_range() const { return out_of_range_; }

 private:
  const std::string& line_;
  const ClaimParseLimits& limits_;
  std::size_t pos_ = 0;
  bool out_of_range_ = false;
};

/// Parses one non-blank, non-comment line into `claims`. On failure returns
/// false with `*rel_offset` at the position within the line where the parse
/// stopped and `*code` describing why.
bool ParseOneLine(const std::string& line, const ClaimParseLimits& limits,
                  ClaimSet* claims, std::size_t* rel_offset,
                  IngestErrorCode* code) {
  LineParser p(line, limits);
  std::vector<rel::ColumnId> a, b;
  bool ok = false;
  if (p.Literal("OD ")) {
    ok = p.List(&a) && p.Literal(" -> ") && p.List(&b) && p.AtEnd();
    if (ok) {
      claims->ods.push_back(
          {od::AttributeList(std::move(a)), od::AttributeList(std::move(b))});
    }
  } else if (p.Literal("OCD ")) {
    ok = p.List(&a) && p.Literal(" ~ ") && p.List(&b) && p.AtEnd();
    if (ok) {
      claims->ocds.push_back(
          {od::AttributeList(std::move(a)), od::AttributeList(std::move(b))});
    }
  } else if (p.Literal("CONST ")) {
    ok = p.List(&a) && a.size() == 1 && p.AtEnd();
    if (ok) claims->constant_columns.push_back(a[0]);
  } else if (p.Literal("EQUIV ")) {
    ok = p.List(&a) && p.AtEnd();
    if (ok) claims->equivalence_classes.push_back(std::move(a));
  } else if (p.Literal("COD ")) {
    if (p.Set(&a) && p.Literal(": ")) {
      od::CanonicalOd cod;
      cod.context = std::move(a);
      if (p.Literal("[] -> ")) {
        cod.kind = od::CanonicalOd::Kind::kConstancy;
        ok = p.Id(&cod.right) && p.AtEnd();
      } else {
        cod.kind = od::CanonicalOd::Kind::kOrderCompatible;
        ok = p.Id(&cod.left) && p.Literal(" ~ ") && p.Id(&cod.right) &&
             p.AtEnd();
      }
      if (ok) claims->canonical.push_back(std::move(cod));
    }
  } else if (p.Literal("FD ")) {
    od::FunctionalDependency fd;
    ok = p.Set(&fd.lhs) && p.Literal(" -> ") && p.Id(&fd.rhs) && p.AtEnd();
    if (ok) claims->fds.push_back(std::move(fd));
  }
  if (!ok) {
    *rel_offset = p.pos();
    *code = p.out_of_range() ? IngestErrorCode::kValueOutOfRange
                             : IngestErrorCode::kMalformedSyntax;
  }
  return ok;
}

IngestError MakeError(IngestErrorCode code, std::uint64_t byte_offset,
                      std::uint64_t line_no, std::string detail,
                      const std::string& line) {
  IngestError err;
  err.code = code;
  err.byte_offset = byte_offset;
  err.row = line_no;
  err.detail = std::move(detail);
  err.excerpt = SanitizeExcerpt(line);
  return err;
}

}  // namespace

Result<ClaimSet> ParseClaimLines(const std::string& text,
                                 const ClaimParseLimits& limits) {
  if (text.size() > limits.max_input_bytes) {
    return MakeError(IngestErrorCode::kInputTooLarge, limits.max_input_bytes,
                     0,
                     "claim text exceeds max_input_bytes=" +
                         std::to_string(limits.max_input_bytes),
                     "")
        .ToStatus();
  }
  ClaimSet claims;
  claims.algorithm = "parsed";

  std::size_t line_start = 0;
  std::uint64_t line_no = 0;
  while (line_start <= text.size()) {
    if (line_start == text.size()) break;
    std::size_t nl = text.find('\n', line_start);
    std::size_t line_end = (nl == std::string::npos) ? text.size() : nl;
    std::string line = text.substr(line_start, line_end - line_start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++line_no;
    if (line_no > limits.max_lines) {
      return MakeError(IngestErrorCode::kInputTooLarge, line_start, line_no,
                       "claim text exceeds max_lines=" +
                           std::to_string(limits.max_lines),
                       line)
          .ToStatus();
    }
    if (line.size() > limits.max_line_bytes) {
      return MakeError(IngestErrorCode::kInputTooLarge, line_start, line_no,
                       "claim line exceeds max_line_bytes=" +
                           std::to_string(limits.max_line_bytes),
                       line)
          .ToStatus();
    }
    if (line.find('\0') != std::string::npos) {
      return MakeError(IngestErrorCode::kEmbeddedNul,
                       line_start + line.find('\0'), line_no,
                       "embedded NUL byte", line)
          .ToStatus();
    }
    if (!line.empty() && line[0] == '#') {
      const std::string kAlgo = "# algorithm: ";
      if (line.compare(0, kAlgo.size(), kAlgo) == 0) {
        claims.algorithm = line.substr(kAlgo.size());
      }
    } else if (!line.empty()) {
      std::size_t rel_offset = 0;
      IngestErrorCode code = IngestErrorCode::kMalformedSyntax;
      if (!ParseOneLine(line, limits, &claims, &rel_offset, &code)) {
        return MakeError(code, line_start + rel_offset, line_no,
                         "unrecognized claim line", line)
            .ToStatus();
      }
    }
    if (nl == std::string::npos) break;
    line_start = nl + 1;
  }
  claims.SortAll();
  return claims;
}

}  // namespace ocdd::qa
