#ifndef OCDD_QA_SHRINKER_H_
#define OCDD_QA_SHRINKER_H_

#include <cstddef>
#include <functional>

#include "relation/relation.h"

namespace ocdd::qa {

/// Returns true when the instance still reproduces the failure under
/// investigation. Must be deterministic — the shrinker re-evaluates
/// candidates freely and assumes a stable verdict.
using FailurePredicate = std::function<bool(const rel::Relation&)>;

struct ShrinkResult {
  rel::Relation relation;
  /// Predicate evaluations spent (candidate relations tried).
  std::size_t evaluations = 0;
};

/// Greedy delta-debugging minimizer: repeatedly drops columns and
/// binary-searched row blocks from `failing` while `still_fails` keeps
/// returning true, until a fixpoint (or the evaluation budget) is reached.
/// The result is 1-minimal-ish, not globally minimal — good enough to turn a
/// 24×5 fuzz instance into a repro a human can eyeball.
///
/// `failing` itself must satisfy the predicate; the returned relation always
/// does, and keeps at least one row and one column.
ShrinkResult ShrinkFailingRelation(const rel::Relation& failing,
                                   const FailurePredicate& still_fails,
                                   std::size_t max_evaluations = 4000);

}  // namespace ocdd::qa

#endif  // OCDD_QA_SHRINKER_H_
