#ifndef OCDD_QA_SHRINKER_H_
#define OCDD_QA_SHRINKER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "relation/batch.h"
#include "relation/relation.h"

namespace ocdd::qa {

/// Returns true when the instance still reproduces the failure under
/// investigation. Must be deterministic — the shrinker re-evaluates
/// candidates freely and assumes a stable verdict.
using FailurePredicate = std::function<bool(const rel::Relation&)>;

struct ShrinkResult {
  rel::Relation relation;
  /// Predicate evaluations spent (candidate relations tried).
  std::size_t evaluations = 0;
};

/// Greedy delta-debugging minimizer: repeatedly drops columns and
/// binary-searched row blocks from `failing` while `still_fails` keeps
/// returning true, until a fixpoint (or the evaluation budget) is reached.
/// The result is 1-minimal-ish, not globally minimal — good enough to turn a
/// 24×5 fuzz instance into a repro a human can eyeball.
///
/// `failing` itself must satisfy the predicate; the returned relation always
/// does, and keeps at least one row and one column.
ShrinkResult ShrinkFailingRelation(const rel::Relation& failing,
                                   const FailurePredicate& still_fails,
                                   std::size_t max_evaluations = 4000);

/// Returns true when the raw CSV text still reproduces the failure. Must be
/// deterministic, like FailurePredicate.
using CsvTextPredicate = std::function<bool(const std::string&)>;

struct ShrinkCsvResult {
  std::string csv;
  /// Predicate evaluations spent (candidate texts tried).
  std::size_t evaluations = 0;
};

/// Line-based delta-debugging over raw CSV *text* — for failures that live
/// at the ingest boundary, where the offending bytes may not survive a
/// parse/re-serialize cycle (malformed rows, broken quoting). Repeatedly
/// drops binary-searched blocks of data lines while `still_fails` keeps
/// returning true; the header line is always kept. Splitting on '\n' may cut
/// through a quoted multi-line field — such candidates simply stop
/// reproducing and are rejected by the predicate.
///
/// `failing_csv` itself must satisfy the predicate; the returned text always
/// does (it is `failing_csv` verbatim when no line can be dropped).
ShrinkCsvResult ShrinkFailingCsvLines(const std::string& failing_csv,
                                      const CsvTextPredicate& still_fails,
                                      std::size_t max_evaluations = 2000);

/// Returns true when the batch schedule still reproduces the failure
/// against its (fixed, captured-by-the-predicate) base relation. Candidates
/// that no longer apply cleanly — dropping an append can push a later
/// batch's delete index out of range — must simply return false; the
/// shrinker never reasons about batch validity itself. Must be
/// deterministic, like FailurePredicate.
using SchedulePredicate =
    std::function<bool(const std::vector<rel::RowBatch>&)>;

struct ShrinkScheduleResult {
  std::vector<rel::RowBatch> schedule;
  /// Predicate evaluations spent (candidate schedules tried).
  std::size_t evaluations = 0;
};

/// Delta-debugging minimizer for incremental-maintenance failures
/// (docs/incremental.md): alternates ddmin-style whole-batch block drops
/// with one-at-a-time op drops (appends, then deletes) inside each
/// surviving batch, to a fixpoint or the evaluation budget. Each predicate
/// evaluation replays the whole candidate schedule through a fresh session,
/// so the default budget is deliberately small.
///
/// `failing` itself must satisfy the predicate; the returned schedule
/// always does, and keeps at least one batch (possibly an empty one — an
/// empty batch can itself be the repro).
ShrinkScheduleResult ShrinkFailingSchedule(
    const std::vector<rel::RowBatch>& failing,
    const SchedulePredicate& still_fails, std::size_t max_evaluations = 400);

}  // namespace ocdd::qa

#endif  // OCDD_QA_SHRINKER_H_
