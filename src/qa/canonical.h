#ifndef OCDD_QA_CANONICAL_H_
#define OCDD_QA_CANONICAL_H_

#include <cstddef>
#include <vector>

#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::qa {

/// Semantic ground-truth checks for set-based canonical ODs (the FASTOD
/// vocabulary), straight from their definitions over the equivalence classes
/// of the context:
///  * constancy  `ctx : [] ↦ a` — `a` takes one value within every class;
///  * compatibility `ctx : a ~ b` — no swap between `a` and `b` within any
///    class (two rows of one class with `a` strictly increasing and `b`
///    strictly decreasing).
bool HoldsConstancy(const rel::CodedRelation& relation,
                    const std::vector<rel::ColumnId>& context,
                    rel::ColumnId a);
bool HoldsCompat(const rel::CodedRelation& relation,
                 const std::vector<rel::ColumnId>& context, rel::ColumnId a,
                 rel::ColumnId b);

/// Decision procedure over FASTOD's *minimal* canonical output, implementing
/// its pruning semantics in reverse:
///  * `ctx : [] ↦ a` follows iff `a ∈ ctx` or some emitted constancy OD has
///    the same RHS and a context ⊆ ctx;
///  * `ctx : a ~ b` follows iff it is constancy-implied (ctx ↦ a or
///    ctx ↦ b) or some emitted compatibility OD over {a, b} has a
///    context ⊆ ctx.
///
/// List-form dependencies are decided through the set-based mapping theorems
/// (Szlichta et al. [7]):
///  * `X ~ Y`  ⟺  ∀ i, j:  {x₁..xᵢ₋₁} ∪ {y₁..yⱼ₋₁} : xᵢ ~ yⱼ;
///  * `X → Y`  ⟺  `X ~ Y` and `set(X) ↦ A` for every attribute A of Y.
///
/// With FASTOD's complete minimal canonical set as input, `ImpliesOd` /
/// `ImpliesOcd` decide exactly the semantic validity of any list
/// dependency — the oracle leans on this to compare FASTOD against the
/// list-based algorithms by closure, not by syntax.
class CanonicalClosure {
 public:
  explicit CanonicalClosure(const std::vector<od::CanonicalOd>& emitted);

  bool ImpliesConstancy(const std::vector<rel::ColumnId>& context,
                        rel::ColumnId a) const;
  bool ImpliesCompat(const std::vector<rel::ColumnId>& context,
                     rel::ColumnId a, rel::ColumnId b) const;
  bool ImpliesOd(const od::OrderDependency& od) const;
  bool ImpliesOcd(const od::OrderCompatibility& ocd) const;

 private:
  /// (sorted context, rhs) for constancy claims.
  std::vector<std::pair<std::vector<rel::ColumnId>, rel::ColumnId>> constancy_;
  /// (sorted context, min(a,b), max(a,b)) for compatibility claims.
  std::vector<std::pair<std::vector<rel::ColumnId>,
                        std::pair<rel::ColumnId, rel::ColumnId>>> compat_;
};

/// The same mapping theorems evaluated against the *relation* instead of an
/// emitted set, using the semantic checks above. Equal to brute-force OD/OCD
/// validity by the theorems — the oracle cross-checks that equality on every
/// instance, guarding both the theorems' implementation and the checkers.
bool SemanticOdViaCanonical(const rel::CodedRelation& relation,
                            const od::OrderDependency& od);
bool SemanticOcdViaCanonical(const rel::CodedRelation& relation,
                             const od::OrderCompatibility& ocd);

}  // namespace ocdd::qa

#endif  // OCDD_QA_CANONICAL_H_
