#include "od/inference.h"

#include "od/brute_force.h"

namespace ocdd::od {

OdInferenceEngine::OdInferenceEngine(std::vector<ColumnId> universe,
                                     std::size_t max_list_len)
    : universe_(std::move(universe)), max_list_len_(max_list_len) {
  lists_.push_back(AttributeList{});  // the empty list [ ]
  std::vector<AttributeList> nonempty = EnumerateLists(universe_, max_list_len_);
  lists_.insert(lists_.end(), nonempty.begin(), nonempty.end());
  for (std::size_t i = 0; i < lists_.size(); ++i) {
    list_ids_.emplace(lists_[i], static_cast<int>(i));
  }
  implies_.assign(lists_.size(), std::vector<bool>(lists_.size(), false));
  // Reflexivity (AX1): every list orders each of its prefixes (and itself).
  for (std::size_t i = 0; i < lists_.size(); ++i) {
    for (std::size_t j = 0; j < lists_.size(); ++j) {
      if (lists_[i].HasPrefix(lists_[j])) implies_[i][j] = true;
    }
  }
}

int OdInferenceEngine::ListId(const AttributeList& list) const {
  auto it = list_ids_.find(list);
  if (it == list_ids_.end()) return -1;
  return it->second;
}

bool OdInferenceEngine::Set(std::size_t i, std::size_t j) {
  if (implies_[i][j]) return false;
  implies_[i][j] = true;
  dirty_ = true;
  return true;
}

bool OdInferenceEngine::AddOd(const OrderDependency& od) {
  int lhs = ListId(od.lhs.Normalized());
  int rhs = ListId(od.rhs.Normalized());
  if (lhs < 0 || rhs < 0) return false;
  Set(static_cast<std::size_t>(lhs), static_cast<std::size_t>(rhs));
  return true;
}

bool OdInferenceEngine::AddOcd(const OrderCompatibility& ocd) {
  AttributeList xy = ocd.lhs.Concat(ocd.rhs).Normalized();
  AttributeList yx = ocd.rhs.Concat(ocd.lhs).Normalized();
  int a = ListId(xy);
  int b = ListId(yx);
  if (a < 0 || b < 0) return false;
  Set(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
  Set(static_cast<std::size_t>(b), static_cast<std::size_t>(a));
  return true;
}

bool OdInferenceEngine::AddEquivalence(const AttributeList& x,
                                       const AttributeList& y) {
  int a = ListId(x.Normalized());
  int b = ListId(y.Normalized());
  if (a < 0 || b < 0) return false;
  Set(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
  Set(static_cast<std::size_t>(b), static_cast<std::size_t>(a));
  return true;
}

void OdInferenceEngine::ComputeClosure() {
  std::size_t n = lists_.size();
  // Iterate rule application to fixpoint. Each pass applies Prefix and
  // Suffix to every known implication, then closes transitively.
  dirty_ = true;
  while (dirty_) {
    dirty_ = false;

    // Transitivity (AX4): Floyd–Warshall.
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!implies_[i][k]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (implies_[k][j] && !implies_[i][j]) {
            implies_[i][j] = true;
            dirty_ = true;
          }
        }
      }
    }

    // Prefix (AX2) and Suffix: applied to a snapshot of current facts.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (!implies_[i][j]) continue;
        // Suffix (AX5): X → Y  ⟹  X ↔ YX; the variant X ↔ XY is also a
        // sound consequence and cheap to add.
        int yx = ListId(lists_[j].Concat(lists_[i]).Normalized());
        if (yx >= 0) {
          Set(i, static_cast<std::size_t>(yx));
          Set(static_cast<std::size_t>(yx), i);
        }
        int xy = ListId(lists_[i].Concat(lists_[j]).Normalized());
        if (xy >= 0) {
          Set(i, static_cast<std::size_t>(xy));
          Set(static_cast<std::size_t>(xy), i);
        }
        // Prefix: X → Y  ⟹  ZX → ZY for every materialized Z.
        // Lists whose concatenation normalizes past max_list_len_ are simply
        // absent from the lattice; ListId returning -1 filters them out.
        for (std::size_t z = 1; z < n; ++z) {  // z == 0 is the empty list
          int zx = ListId(lists_[z].Concat(lists_[i]).Normalized());
          int zy = ListId(lists_[z].Concat(lists_[j]).Normalized());
          if (zx >= 0 && zy >= 0) {
            Set(static_cast<std::size_t>(zx), static_cast<std::size_t>(zy));
          }
        }
        // Replace (append form, derived from the Replace theorem of [16]):
        // X ↔ Y  ⟹  XZ → YZ. Equivalent lists induce the same weak order,
        // so a common suffix breaks ties identically.
        if (implies_[j][i]) {
          for (std::size_t z = 1; z < n; ++z) {
            int xz = ListId(lists_[i].Concat(lists_[z]).Normalized());
            int yz = ListId(lists_[j].Concat(lists_[z]).Normalized());
            if (xz >= 0 && yz >= 0) {
              Set(static_cast<std::size_t>(xz), static_cast<std::size_t>(yz));
            }
          }
        }
      }
    }
  }
}

bool OdInferenceEngine::Implies(const OrderDependency& od) const {
  int lhs = ListId(od.lhs.Normalized());
  int rhs = ListId(od.rhs.Normalized());
  if (lhs < 0 || rhs < 0) return false;
  return implies_[static_cast<std::size_t>(lhs)][static_cast<std::size_t>(rhs)];
}

bool OdInferenceEngine::ImpliesOcd(const OrderCompatibility& ocd) const {
  AttributeList xy = ocd.lhs.Concat(ocd.rhs).Normalized();
  AttributeList yx = ocd.rhs.Concat(ocd.lhs).Normalized();
  return ImpliesEquivalence(xy, yx);
}

bool OdInferenceEngine::ImpliesEquivalence(const AttributeList& x,
                                           const AttributeList& y) const {
  int a = ListId(x.Normalized());
  int b = ListId(y.Normalized());
  if (a < 0 || b < 0) return false;
  return implies_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] &&
         implies_[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)];
}

std::vector<OrderDependency> OdInferenceEngine::AllImpliedOds(
    bool skip_reflexive) const {
  std::vector<OrderDependency> out;
  for (std::size_t i = 0; i < lists_.size(); ++i) {
    for (std::size_t j = 0; j < lists_.size(); ++j) {
      if (i == j || !implies_[i][j]) continue;
      if (skip_reflexive && lists_[i].HasPrefix(lists_[j])) continue;
      out.push_back(OrderDependency{lists_[i], lists_[j]});
    }
  }
  return out;
}

}  // namespace ocdd::od
