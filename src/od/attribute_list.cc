#include "od/attribute_list.h"

#include <algorithm>

namespace ocdd::od {

bool AttributeList::Contains(ColumnId id) const {
  return std::find(attrs_.begin(), attrs_.end(), id) != attrs_.end();
}

bool AttributeList::DisjointWith(const AttributeList& other) const {
  for (ColumnId id : attrs_) {
    if (other.Contains(id)) return false;
  }
  return true;
}

AttributeList AttributeList::WithAppended(ColumnId id) const {
  std::vector<ColumnId> out = attrs_;
  out.push_back(id);
  return AttributeList(std::move(out));
}

AttributeList AttributeList::Concat(const AttributeList& other) const {
  std::vector<ColumnId> out = attrs_;
  out.insert(out.end(), other.attrs_.begin(), other.attrs_.end());
  return AttributeList(std::move(out));
}

AttributeList AttributeList::Normalized() const {
  std::vector<ColumnId> out;
  out.reserve(attrs_.size());
  for (ColumnId id : attrs_) {
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
  return AttributeList(std::move(out));
}

bool AttributeList::HasPrefix(const AttributeList& prefix) const {
  if (prefix.size() > size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (attrs_[i] != prefix.attrs_[i]) return false;
  }
  return true;
}

std::string AttributeList::ToString(const rel::CodedRelation& relation) const {
  std::string out = "[";
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ",";
    out += relation.column_name(attrs_[i]);
  }
  out += "]";
  return out;
}

std::string AttributeList::ToString() const {
  std::string out = "[";
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(attrs_[i]);
  }
  out += "]";
  return out;
}

}  // namespace ocdd::od
