#include "od/dependency_set.h"

namespace ocdd::od {

void DependencyStore::MergeFrom(DependencyStore&& other) {
  auto append = [](auto& dst, auto& src) {
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
    src.clear();
  };
  append(ods_, other.ods_);
  append(ocds_, other.ocds_);
  append(fds_, other.fds_);
  append(canonical_, other.canonical_);
}

void DependencyStore::Finalize() {
  SortUnique(ods_);
  SortUnique(ocds_);
  SortUnique(fds_);
  SortUnique(canonical_);
}

}  // namespace ocdd::od
