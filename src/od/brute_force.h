#ifndef OCDD_OD_BRUTE_FORCE_H_
#define OCDD_OD_BRUTE_FORCE_H_

#include <cstddef>
#include <vector>

#include "od/attribute_list.h"
#include "od/dependency.h"
#include "relation/coded_relation.h"

namespace ocdd::od {

/// Semantic ground-truth checkers, straight from Definitions 2.2–2.4 by
/// enumerating all O(m²) tuple pairs. Exponentially slower than the
/// production checkers — these exist so that tests can verify the fast
/// implementations against the definitions on small instances.

/// Definition 2.2: for every tuple pair, `p ⪯_lhs q ⟹ p ⪯_rhs q`.
bool BruteForceHoldsOd(const rel::CodedRelation& relation,
                       const AttributeList& lhs, const AttributeList& rhs);

/// Definition 2.4 via `X ~ Y ≡ XY ↔ YX`.
bool BruteForceHoldsOcd(const rel::CodedRelation& relation,
                        const AttributeList& x, const AttributeList& y);

/// Definition 2.3: `p =_lhs q ⟹ p =_rhs q` (lhs as a set).
bool BruteForceHoldsFd(const rel::CodedRelation& relation,
                       const std::vector<ColumnId>& lhs, ColumnId rhs);

/// Enumerates every valid OCD `X ~ Y` with disjoint, duplicate-free sides of
/// length in [1, max_side_len], canonicalized (lhs < rhs). Exhaustive over
/// all list permutations — intended for relations with ≤ 6 columns.
std::vector<OrderCompatibility> BruteForceAllOcds(
    const rel::CodedRelation& relation, std::size_t max_side_len);

/// Enumerates every valid OD `X → Y` with duplicate-free sides whose lengths
/// are in [1, max_side_len]. When `disjoint_only`, skips candidates whose
/// sides share attributes (ORDER's candidate space).
std::vector<OrderDependency> BruteForceAllOds(const rel::CodedRelation& relation,
                                              std::size_t max_side_len,
                                              bool disjoint_only);

/// Enumerates all duplicate-free attribute lists over `universe` with length
/// in [1, max_len]. Exposed for tests and for the inference engine.
std::vector<AttributeList> EnumerateLists(const std::vector<ColumnId>& universe,
                                          std::size_t max_len);

}  // namespace ocdd::od

#endif  // OCDD_OD_BRUTE_FORCE_H_
