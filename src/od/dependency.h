#ifndef OCDD_OD_DEPENDENCY_H_
#define OCDD_OD_DEPENDENCY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "od/attribute_list.h"
#include "relation/coded_relation.h"

namespace ocdd::od {

/// An order dependency `lhs → rhs` ("lhs orders rhs", Definition 2.2):
/// for every pair of tuples, `p ⪯_lhs q  ⟹  p ⪯_rhs q`.
struct OrderDependency {
  AttributeList lhs;
  AttributeList rhs;

  std::string ToString(const rel::CodedRelation& relation) const;
  std::string ToString() const;

  friend bool operator==(const OrderDependency& a, const OrderDependency& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const OrderDependency& a, const OrderDependency& b) {
    if (a.lhs == b.lhs) return a.rhs < b.rhs;
    return a.lhs < b.lhs;
  }
};

/// An order compatibility dependency `lhs ~ rhs` (Definition 2.4):
/// `lhs.Concat(rhs) ↔ rhs.Concat(lhs)`. The relation is symmetric;
/// `Canonical()` orders the smaller side first so that sets of OCDs
/// deduplicate naturally.
struct OrderCompatibility {
  AttributeList lhs;
  AttributeList rhs;

  OrderCompatibility Canonical() const {
    if (rhs < lhs) return {rhs, lhs};
    return *this;
  }

  std::string ToString(const rel::CodedRelation& relation) const;
  std::string ToString() const;

  friend bool operator==(const OrderCompatibility& a,
                         const OrderCompatibility& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const OrderCompatibility& a,
                        const OrderCompatibility& b) {
    if (a.lhs == b.lhs) return a.rhs < b.rhs;
    return a.lhs < b.lhs;
  }
};

/// A functional dependency `lhs → rhs` over attribute *sets*
/// (Definition 2.3). `lhs` is kept sorted; `rhs` is a single attribute
/// (minimal FDs are reported in this standard single-RHS form).
struct FunctionalDependency {
  std::vector<ColumnId> lhs;  ///< sorted, duplicate-free
  ColumnId rhs = 0;

  std::string ToString(const rel::CodedRelation& relation) const;
  std::string ToString() const;

  friend bool operator==(const FunctionalDependency& a,
                         const FunctionalDependency& b) {
    return a.lhs == b.lhs && a.rhs == b.rhs;
  }
  friend bool operator<(const FunctionalDependency& a,
                        const FunctionalDependency& b) {
    if (a.lhs == b.lhs) return a.rhs < b.rhs;
    return a.lhs < b.lhs;
  }
};

/// FASTOD's set-based canonical order dependencies (§6, [7]).
///
/// Two forms share this struct:
///  * constancy  — `context : [] ↦ right`  (`left` unused):
///    `right` is constant within every equivalence class of `context`;
///  * compatibility — `context : left ~ right`:
///    `left` and `right` are order compatible within every class of
///    `context`.
struct CanonicalOd {
  enum class Kind { kConstancy, kOrderCompatible };

  Kind kind = Kind::kConstancy;
  std::vector<ColumnId> context;  ///< sorted, duplicate-free
  ColumnId left = 0;              ///< only for kOrderCompatible
  ColumnId right = 0;

  std::string ToString(const rel::CodedRelation& relation) const;
  std::string ToString() const;

  friend bool operator==(const CanonicalOd& a, const CanonicalOd& b) {
    return a.kind == b.kind && a.context == b.context && a.left == b.left &&
           a.right == b.right;
  }
  friend bool operator<(const CanonicalOd& a, const CanonicalOd& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.context != b.context) return a.context < b.context;
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  }
};

}  // namespace ocdd::od

#endif  // OCDD_OD_DEPENDENCY_H_
