#include "od/dependency.h"

namespace ocdd::od {

namespace {

std::string SetToString(const std::vector<ColumnId>& ids,
                        const rel::CodedRelation* relation) {
  std::string out = "{";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ",";
    out += relation ? relation->column_name(ids[i]) : std::to_string(ids[i]);
  }
  out += "}";
  return out;
}

}  // namespace

std::string OrderDependency::ToString(
    const rel::CodedRelation& relation) const {
  return lhs.ToString(relation) + " -> " + rhs.ToString(relation);
}

std::string OrderDependency::ToString() const {
  return lhs.ToString() + " -> " + rhs.ToString();
}

std::string OrderCompatibility::ToString(
    const rel::CodedRelation& relation) const {
  return lhs.ToString(relation) + " ~ " + rhs.ToString(relation);
}

std::string OrderCompatibility::ToString() const {
  return lhs.ToString() + " ~ " + rhs.ToString();
}

std::string FunctionalDependency::ToString(
    const rel::CodedRelation& relation) const {
  return SetToString(lhs, &relation) + " -> " + relation.column_name(rhs);
}

std::string FunctionalDependency::ToString() const {
  return SetToString(lhs, nullptr) + " -> " + std::to_string(rhs);
}

namespace {

std::string CanonicalOdToString(const CanonicalOd& od,
                                const rel::CodedRelation* relation) {
  auto name = [&](ColumnId id) {
    return relation ? relation->column_name(id) : std::to_string(id);
  };
  std::string out = SetToString(od.context, relation);
  out += ": ";
  if (od.kind == CanonicalOd::Kind::kConstancy) {
    out += "[] -> " + name(od.right);
  } else {
    out += name(od.left) + " ~ " + name(od.right);
  }
  return out;
}

}  // namespace

std::string CanonicalOd::ToString(const rel::CodedRelation& relation) const {
  return CanonicalOdToString(*this, &relation);
}

std::string CanonicalOd::ToString() const {
  return CanonicalOdToString(*this, nullptr);
}

}  // namespace ocdd::od
