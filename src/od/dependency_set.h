#ifndef OCDD_OD_DEPENDENCY_SET_H_
#define OCDD_OD_DEPENDENCY_SET_H_

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "od/dependency.h"

namespace ocdd::od {

/// Sorts and removes duplicates; the canonical way results are finalized so
/// that every algorithm reports dependencies in a deterministic order.
template <typename T>
void SortUnique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Accumulates the dependencies emitted during a discovery run.
///
/// Thread-compatible (not thread-safe): the parallel drivers give each
/// worker its own store and merge at barriers.
class DependencyStore {
 public:
  void AddOd(OrderDependency od) { ods_.push_back(std::move(od)); }
  void AddOcd(OrderCompatibility ocd) {
    ocds_.push_back(ocd.Canonical());
  }
  void AddFd(FunctionalDependency fd) { fds_.push_back(std::move(fd)); }
  void AddCanonicalOd(CanonicalOd od) { canonical_.push_back(std::move(od)); }

  /// Merges another store's contents into this one.
  void MergeFrom(DependencyStore&& other);

  /// Deduplicates and sorts every collection. Call once, after discovery.
  void Finalize();

  const std::vector<OrderDependency>& ods() const { return ods_; }
  const std::vector<OrderCompatibility>& ocds() const { return ocds_; }
  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  const std::vector<CanonicalOd>& canonical_ods() const { return canonical_; }

  std::size_t TotalCount() const {
    return ods_.size() + ocds_.size() + fds_.size() + canonical_.size();
  }

 private:
  std::vector<OrderDependency> ods_;
  std::vector<OrderCompatibility> ocds_;
  std::vector<FunctionalDependency> fds_;
  std::vector<CanonicalOd> canonical_;
};

}  // namespace ocdd::od

#endif  // OCDD_OD_DEPENDENCY_SET_H_
