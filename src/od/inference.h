#ifndef OCDD_OD_INFERENCE_H_
#define OCDD_OD_INFERENCE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "od/attribute_list.h"
#include "od/dependency.h"

namespace ocdd::od {

/// Syntactic inference over the J_OD axiom system (Table 3 of the paper),
/// restricted to normalized (duplicate-free) attribute lists of bounded
/// length over a small universe.
///
/// The engine materializes every duplicate-free list of length ≤
/// `max_list_len` over `universe` (including the empty list) and closes an
/// implication matrix `X → Y` under:
///
///  * AX1 Reflexivity  — `XY → X` (every list orders each of its prefixes);
///  * AX2 Prefix       — `X → Y  ⟹  ZX → ZY` for every list `Z`;
///  * AX3 Normalization— lists are kept in normalized form; rule results
///                       are normalized before insertion;
///  * AX4 Transitivity — Floyd–Warshall closure;
///  * AX5 Suffix       — `X → Y  ⟹  X ↔ YX` (plus the sound variant
///                       `X ↔ XY`);
///  * Replace (derived)— `X ↔ Y  ⟹  XZ → YZ` (equivalent lists induce the
///                       same weak order, so a common suffix breaks ties
///                       identically).
///
/// The closure is *sound* (everything derived is implied by J_OD). It is
/// used by tests to validate the paper's minimality theorems and by the
/// result-expansion step to recognize redundant dependencies. Note: general
/// OD inference is co-NP-complete [7]; this bounded engine is only suitable
/// for universes of ≲6 attributes.
class OdInferenceEngine {
 public:
  /// `universe`: attribute ids; `max_list_len`: longest list materialized.
  OdInferenceEngine(std::vector<ColumnId> universe, std::size_t max_list_len);

  /// Declares `od` as given. Sides are normalized; sides longer than
  /// `max_list_len` after normalization are ignored (returns false).
  bool AddOd(const OrderDependency& od);

  /// Declares `X ~ Y`, i.e. both `XY → YX` and `YX → XY`.
  bool AddOcd(const OrderCompatibility& ocd);

  /// Declares `X ↔ Y` (both `X → Y` and `Y → X`). Used to seed
  /// order-equivalence classes and constant columns (`[] ↔ [C]`).
  bool AddEquivalence(const AttributeList& x, const AttributeList& y);

  /// Runs the rules to fixpoint. Call after all Add*; may be called again
  /// after adding more facts.
  void ComputeClosure();

  /// True when `od` follows from the added facts (after ComputeClosure()).
  bool Implies(const OrderDependency& od) const;

  /// True when both directions of the OCD's defining equivalence follow.
  bool ImpliesOcd(const OrderCompatibility& ocd) const;

  /// True when `X ↔ Y` follows.
  bool ImpliesEquivalence(const AttributeList& x, const AttributeList& y) const;

  /// Every implied OD between materialized lists (excluding trivially
  /// reflexive `X → prefix(X)` pairs when `skip_reflexive`).
  std::vector<OrderDependency> AllImpliedOds(bool skip_reflexive) const;

  std::size_t num_lists() const { return lists_.size(); }

 private:
  int ListId(const AttributeList& list) const;
  bool Get(std::size_t i, std::size_t j) const { return implies_[i][j]; }
  bool Set(std::size_t i, std::size_t j);

  std::vector<ColumnId> universe_;
  std::size_t max_list_len_;
  std::vector<AttributeList> lists_;
  std::unordered_map<AttributeList, int, AttributeListHash> list_ids_;
  std::vector<std::vector<bool>> implies_;
  bool dirty_ = false;
};

}  // namespace ocdd::od

#endif  // OCDD_OD_INFERENCE_H_
