#ifndef OCDD_OD_ATTRIBUTE_LIST_H_
#define OCDD_OD_ATTRIBUTE_LIST_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "relation/coded_relation.h"

namespace ocdd::od {

using rel::ColumnId;

/// An ordered list of attributes — the `X`, `Y` of the paper's notation
/// (Table 2). Unlike a set, position matters: `[A,B] ≠ [B,A]`.
///
/// `AttributeList` is a small value type; discovery algorithms copy lists
/// freely (they are short — bounded by the schema width).
class AttributeList {
 public:
  AttributeList() = default;
  explicit AttributeList(std::vector<ColumnId> attrs)
      : attrs_(std::move(attrs)) {}
  AttributeList(std::initializer_list<ColumnId> attrs) : attrs_(attrs) {}

  std::size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }
  ColumnId operator[](std::size_t i) const { return attrs_[i]; }
  const std::vector<ColumnId>& ids() const { return attrs_; }

  bool Contains(ColumnId id) const;

  /// True when the two lists share no attribute.
  bool DisjointWith(const AttributeList& other) const;

  /// Returns this list with `id` appended (`XA` shorthand of Table 2).
  AttributeList WithAppended(ColumnId id) const;

  /// Concatenation (`XY` shorthand of Table 2).
  AttributeList Concat(const AttributeList& other) const;

  /// Returns the list with every attribute already seen earlier removed —
  /// the canonical form under the Normalization axiom (AX3):
  /// [A,B,A] -> [A,B].
  AttributeList Normalized() const;

  /// True if `prefix` is a (not necessarily proper) prefix of this list.
  bool HasPrefix(const AttributeList& prefix) const;

  /// Renders as "[name,name,...]" using relation column names.
  std::string ToString(const rel::CodedRelation& relation) const;
  /// Renders as "[3,1,...]" with raw column ids.
  std::string ToString() const;

  friend bool operator==(const AttributeList& a, const AttributeList& b) {
    return a.attrs_ == b.attrs_;
  }
  friend bool operator<(const AttributeList& a, const AttributeList& b) {
    return a.attrs_ < b.attrs_;
  }

 private:
  std::vector<ColumnId> attrs_;
};

/// FNV-style hash for use in level-deduplication hash sets.
struct AttributeListHash {
  std::size_t operator()(const AttributeList& l) const {
    std::size_t h = 1469598103934665603ULL;
    for (ColumnId id : l.ids()) {
      h ^= id + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace ocdd::od

#endif  // OCDD_OD_ATTRIBUTE_LIST_H_
