#include "od/brute_force.h"

#include "relation/sorted_index.h"

namespace ocdd::od {

bool BruteForceHoldsOd(const rel::CodedRelation& relation,
                       const AttributeList& lhs, const AttributeList& rhs) {
  std::size_t m = relation.num_rows();
  for (std::uint32_t p = 0; p < m; ++p) {
    for (std::uint32_t q = 0; q < m; ++q) {
      int cl = rel::CompareRowsOnList(relation, lhs.ids(), p, q);
      if (cl <= 0) {
        int cr = rel::CompareRowsOnList(relation, rhs.ids(), p, q);
        if (cr > 0) return false;
      }
    }
  }
  return true;
}

bool BruteForceHoldsOcd(const rel::CodedRelation& relation,
                        const AttributeList& x, const AttributeList& y) {
  AttributeList xy = x.Concat(y);
  AttributeList yx = y.Concat(x);
  return BruteForceHoldsOd(relation, xy, yx) &&
         BruteForceHoldsOd(relation, yx, xy);
}

bool BruteForceHoldsFd(const rel::CodedRelation& relation,
                       const std::vector<ColumnId>& lhs, ColumnId rhs) {
  std::size_t m = relation.num_rows();
  for (std::uint32_t p = 0; p < m; ++p) {
    for (std::uint32_t q = p + 1; q < m; ++q) {
      bool equal = true;
      for (ColumnId c : lhs) {
        if (relation.code(p, c) != relation.code(q, c)) {
          equal = false;
          break;
        }
      }
      if (equal && relation.code(p, rhs) != relation.code(q, rhs)) {
        return false;
      }
    }
  }
  return true;
}

namespace {

void EnumerateListsRec(const std::vector<ColumnId>& universe,
                       std::size_t max_len, std::vector<ColumnId>& current,
                       std::vector<AttributeList>& out) {
  if (!current.empty()) out.push_back(AttributeList(current));
  if (current.size() == max_len) return;
  for (ColumnId id : universe) {
    bool used = false;
    for (ColumnId c : current) {
      if (c == id) {
        used = true;
        break;
      }
    }
    if (used) continue;
    current.push_back(id);
    EnumerateListsRec(universe, max_len, current, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<AttributeList> EnumerateLists(const std::vector<ColumnId>& universe,
                                          std::size_t max_len) {
  std::vector<AttributeList> out;
  std::vector<ColumnId> current;
  EnumerateListsRec(universe, max_len, current, out);
  return out;
}

std::vector<OrderCompatibility> BruteForceAllOcds(
    const rel::CodedRelation& relation, std::size_t max_side_len) {
  std::vector<ColumnId> universe(relation.num_columns());
  for (std::size_t i = 0; i < universe.size(); ++i) universe[i] = i;
  std::vector<AttributeList> lists = EnumerateLists(universe, max_side_len);

  std::vector<OrderCompatibility> out;
  for (const AttributeList& x : lists) {
    for (const AttributeList& y : lists) {
      if (!(x < y)) continue;  // canonical orientation, skips x == y
      if (!x.DisjointWith(y)) continue;
      if (BruteForceHoldsOcd(relation, x, y)) {
        out.push_back(OrderCompatibility{x, y});
      }
    }
  }
  return out;
}

std::vector<OrderDependency> BruteForceAllOds(
    const rel::CodedRelation& relation, std::size_t max_side_len,
    bool disjoint_only) {
  std::vector<ColumnId> universe(relation.num_columns());
  for (std::size_t i = 0; i < universe.size(); ++i) universe[i] = i;
  std::vector<AttributeList> lists = EnumerateLists(universe, max_side_len);

  std::vector<OrderDependency> out;
  for (const AttributeList& x : lists) {
    for (const AttributeList& y : lists) {
      if (x == y) continue;
      if (disjoint_only && !x.DisjointWith(y)) continue;
      if (BruteForceHoldsOd(relation, x, y)) {
        out.push_back(OrderDependency{x, y});
      }
    }
  }
  return out;
}

}  // namespace ocdd::od
