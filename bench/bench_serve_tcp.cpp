// Transport benchmark for the `ocdd serve` daemon (docs/serving.md):
// warm-cache requests (the fixed per-request overhead — connect, framing,
// admission, cache probe) measured over four paths:
//
//   unix            — the baseline Unix-domain socket transport.
//   tcp             — the same daemon behind `--listen 127.0.0.1:0`.
//   tcp_proxy       — TCP through the in-process chaos proxy with no
//                     faults armed: isolates the proxy's relay overhead so
//                     the reset scenario below is interpretable.
//   tcp_reset_1pct  — TCP through the proxy with a 1% mid-frame
//                     connection-reset rate; the retrying ServeClient must
//                     absorb every reset (ok == requests), which prices a
//                     realistic flaky-network tail into p99.
//
// Latency percentiles plus retry/absorption counters land in
// $OCDD_BENCH_JSON_DIR/BENCH_serve_tcp.json (tools/run_serve_bench.sh).
// The worker binary comes from $OCDD_CLI or argv[1].

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/chaos_proxy.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace {

using Clock = std::chrono::steady_clock;

struct ScenarioResult {
  std::string scenario;
  std::size_t requests = 0;
  std::size_t concurrency = 0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  std::uint64_t attempts = 0;
  std::uint64_t transport_failures = 0;
  std::uint64_t faults_injected = 0;
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

/// Issues warm-cache requests at `endpoint` from `concurrency` threads,
/// each through its own retrying ServeClient.
ScenarioResult Drive(const ocdd::serve::Endpoint& endpoint,
                     const std::string& scenario, std::size_t requests,
                     std::size_t concurrency) {
  ScenarioResult result;
  result.scenario = scenario;
  result.requests = requests;
  result.concurrency = concurrency;

  std::vector<double> latencies_ms(requests, 0.0);
  std::vector<int> ok(requests, 0);
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> transport_failures{0};

  auto worker = [&](std::size_t tid) {
    ocdd::serve::ClientOptions copts;
    copts.io_timeout_seconds = 30.0;
    ocdd::serve::RetryOptions retry;
    retry.max_retries = 8;
    retry.backoff_base_seconds = 0.002;
    retry.backoff_cap_seconds = 0.05;
    retry.jitter_seed = 0x7cb0 + tid;
    ocdd::serve::ServeClient client(endpoint, copts, retry);
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= requests) return;
      ocdd::serve::ServeRequest req;
      req.kind = "run";
      req.id = scenario + "-" + std::to_string(i);
      req.source = "NUMBERS";
      req.rows = 100;
      const Clock::time_point t0 = Clock::now();
      ocdd::serve::ClientResult r = client.Call(req);
      latencies_ms[i] =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      attempts.fetch_add(static_cast<std::uint64_t>(r.attempts));
      transport_failures.fetch_add(
          static_cast<std::uint64_t>(r.transport_failures));
      if (r.outcome == ocdd::serve::ClientOutcome::kResponse &&
          r.response.status == "ok") {
        ok[i] = 1;
      }
    }
  };
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < concurrency; ++t)
    threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < requests; ++i) {
    if (ok[i] != 0) {
      ++result.ok;
    } else {
      ++result.failed;
    }
  }
  result.attempts = attempts.load();
  result.transport_failures = transport_failures.load();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = Percentile(latencies_ms, 0.50);
  result.p90_ms = Percentile(latencies_ms, 0.90);
  result.p99_ms = Percentile(latencies_ms, 0.99);
  return result;
}

void WriteReport(const std::vector<ScenarioResult>& results) {
  std::string dir = ".";
  if (const char* env = std::getenv("OCDD_BENCH_JSON_DIR")) {
    if (*env != '\0') dir = env;
  }
  const std::string path = dir + "/BENCH_serve_tcp.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serve_tcp\",\n  \"entries\": [");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::fprintf(
        f,
        "%s\n    {\"scenario\": \"%s\", \"requests\": %zu, "
        "\"concurrency\": %zu, \"p50_ms\": %.3f, \"p90_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"ok\": %llu, \"failed\": %llu, "
        "\"attempts\": %llu, \"transport_failures\": %llu, "
        "\"faults_injected\": %llu}",
        i == 0 ? "" : ",", r.scenario.c_str(), r.requests, r.concurrency,
        r.p50_ms, r.p90_ms, r.p99_ms,
        static_cast<unsigned long long>(r.ok),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.attempts),
        static_cast<unsigned long long>(r.transport_failures),
        static_cast<unsigned long long>(r.faults_injected));
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "bench report written to %s\n", path.c_str());
}

void PrintScenario(const ScenarioResult& r) {
  std::printf(
      "%-16s requests=%zu conc=%zu  p50=%.2fms p90=%.2fms p99=%.2fms  "
      "ok=%llu failed=%llu attempts=%llu transport_failures=%llu "
      "faults=%llu\n",
      r.scenario.c_str(), r.requests, r.concurrency, r.p50_ms, r.p90_ms,
      r.p99_ms, static_cast<unsigned long long>(r.ok),
      static_cast<unsigned long long>(r.failed),
      static_cast<unsigned long long>(r.attempts),
      static_cast<unsigned long long>(r.transport_failures),
      static_cast<unsigned long long>(r.faults_injected));
}

}  // namespace

int main(int argc, char** argv) {
  std::string cli;
  if (const char* env = std::getenv("OCDD_CLI")) cli = env;
  if (argc > 1) cli = argv[1];
  if (cli.empty()) {
    std::fprintf(stderr,
                 "usage: bench_serve_tcp <path-to-ocdd-cli>  "
                 "(or set OCDD_CLI)\n");
    return 2;
  }

  namespace fs = std::filesystem;
  const std::string scratch =
      (fs::temp_directory_path() /
       ("ocdd_bench_serve_tcp_" + std::to_string(::getpid())))
          .string();
  fs::create_directories(scratch);

  constexpr std::size_t kRequests = 400;
  constexpr std::size_t kConcurrency = 4;
  std::vector<ScenarioResult> results;

  // unix: baseline over the Unix-domain socket.
  {
    ocdd::serve::ServerOptions opts;
    opts.socket_path = scratch + "/bench.sock";
    opts.num_executors = 4;
    opts.queue_capacity = 64;
    opts.worker_argv_prefix = {cli, "run"};
    ocdd::serve::Server server(std::move(opts));
    if (!server.Start().ok()) {
      std::fprintf(stderr, "unix daemon failed to start\n");
      return 1;
    }
    std::thread run_thread([&server] { server.Run(); });
    ScenarioResult r =
        Drive(server.endpoint(), "unix", kRequests, kConcurrency);
    PrintScenario(r);
    results.push_back(r);
    server.RequestStop();
    run_thread.join();
  }

  // tcp / tcp_proxy / tcp_reset_1pct share one TCP daemon so the cache
  // stays warm across scenarios and only the path under test changes.
  {
    ocdd::serve::ServerOptions opts;
    opts.listen_address = "127.0.0.1:0";
    opts.num_executors = 4;
    opts.queue_capacity = 64;
    opts.max_connections = 256;
    opts.worker_argv_prefix = {cli, "run"};
    ocdd::serve::Server server(std::move(opts));
    if (!server.Start().ok()) {
      std::fprintf(stderr, "tcp daemon failed to start\n");
      return 1;
    }
    std::thread run_thread([&server] { server.Run(); });

    ScenarioResult tcp =
        Drive(server.endpoint(), "tcp", kRequests, kConcurrency);
    PrintScenario(tcp);
    results.push_back(tcp);

    {
      ocdd::serve::ChaosPlan plan;
      plan.fault = ocdd::serve::ChaosFault::kNone;
      ocdd::serve::ChaosProxy proxy(server.endpoint(), plan);
      if (!proxy.Start().ok()) {
        std::fprintf(stderr, "proxy failed to start\n");
        return 1;
      }
      ScenarioResult r =
          Drive(proxy.endpoint(), "tcp_proxy", kRequests, kConcurrency);
      r.faults_injected = proxy.counters().faults_injected;
      proxy.Stop();
      PrintScenario(r);
      results.push_back(r);
    }

    {
      ocdd::serve::ChaosPlan plan;
      plan.fault = ocdd::serve::ChaosFault::kResetMidFrame;
      plan.probability = 0.01;
      plan.seed = 0xbe9c;
      ocdd::serve::ChaosProxy proxy(server.endpoint(), plan);
      if (!proxy.Start().ok()) {
        std::fprintf(stderr, "reset proxy failed to start\n");
        return 1;
      }
      ScenarioResult r =
          Drive(proxy.endpoint(), "tcp_reset_1pct", kRequests, kConcurrency);
      r.faults_injected = proxy.counters().faults_injected;
      proxy.Stop();
      PrintScenario(r);
      results.push_back(r);
    }

    server.RequestStop();
    run_thread.join();
  }

  WriteReport(results);
  std::error_code ec;
  fs::remove_all(scratch, ec);

  // The retrying client must absorb every injected reset: a failed request
  // means the resilience contract, not just a latency target, is broken.
  for (const ScenarioResult& r : results) {
    if (r.failed != 0) {
      std::fprintf(stderr, "%s: %llu requests failed\n", r.scenario.c_str(),
                   static_cast<unsigned long long>(r.failed));
      return 1;
    }
  }
  return 0;
}
