// Kernel micro-benchmarks behind the raw-speed push: the vectorized check
// kernels (extremes scan, sort-walk first-diff), the width-adaptive refine
// paths, and — as the headline number — a full single-thread OCDDISCOVER
// run over LATTICE, per SIMD backend.
//
// Three sections, all landing in BENCH_kernels.json:
//
//  1. `full-lattice-<backend>`: LATTICE at 100k rows (the acceptance
//     target: < 4s single-thread with cached sorted partitions), once per
//     available backend. The `pre-refactor-baseline` entry records the
//     measurement taken at the commit *before* the compressed-column /
//     SIMD work (same machine, same configuration, standalone harness):
//     10.57s, 50030 checks, 9400 OCDs — committed so the before/after is
//     visible in one file.
//
//  2. `extremes-<width>-<backend>`: ListPartition::CheckOd over synthetic
//     two-column relations whose cardinalities pin the partition storage
//     to u8 / u16 / u32, isolating the packed MinMax fill + scan kernels.
//     `firstdiff-…-<backend>` does the same for the sort-based checker's
//     walk (OrderChecker), in the single-attribute fast path and the
//     multi-attribute gather path.
//
//  3. `refine-<path>-<width>`: ListPartition::Refine by histogram and
//     counting path per storage width (refine is scalar on every backend,
//     so no backend dimension).
//
// Entries report seconds *per iteration* (the loop runs until a fixed
// wall budget) with `checks` = iterations; every entry carries the
// profiler's per-phase counters via BenchReport. Overridable without
// rebuilding:
//   OCDD_BENCH_ROWS=100000          rows for the full LATTICE run
//   OCDD_BENCH_MICRO_ROWS=1048576   rows for the synthetic kernels
//   OCDD_BENCH_JSON_DIR=dir         where the JSON report lands

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/prof.h"
#include "common/simd_dispatch.h"
#include "core/checker.h"
#include "core/list_partition.h"
#include "core/ocd_discover.h"
#include "datagen/generators.h"

namespace {

using ocdd::core::ListPartition;
using ocdd::core::OrderChecker;
using ocdd::core::RefinePath;
using ocdd::core::RefineScratch;
using ocdd::rel::CodedColumn;
using ocdd::rel::CodedRelation;

std::size_t RowsFromEnv(const char* var, std::size_t fallback) {
  if (const char* env = std::getenv(var)) {
    long long v = std::atoll(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

std::vector<ocdd::simd::Backend> AvailableBackends() {
  std::vector<ocdd::simd::Backend> out = {ocdd::simd::Backend::kScalar};
  if (ocdd::simd::CpuHasAvx2()) out.push_back(ocdd::simd::Backend::kAvx2);
  return out;
}

/// Synthetic relation of `cols` random columns with `domain` distinct
/// values each (every code guaranteed present, so the dense-rank invariant
/// holds and the partition width is pinned by `domain`).
CodedRelation MakeSynthetic(std::size_t rows, std::int32_t domain,
                            std::size_t cols, std::uint64_t seed) {
  std::vector<CodedColumn> columns(cols);
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (std::size_t c = 0; c < cols; ++c) {
    CodedColumn& col = columns[c];
    char name[16];
    std::snprintf(name, sizeof(name), "c%zu", c);
    col.name = name;
    col.num_distinct = domain;
    col.codes.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      col.codes[i] =
          static_cast<std::int32_t>((state >> 33) % static_cast<std::uint64_t>(domain));
    }
    for (std::int32_t v = 0; v < domain && static_cast<std::size_t>(v) < rows;
         ++v) {
      col.codes[v] = v;
    }
  }
  return CodedRelation::FromColumns(std::move(columns));
}

/// Runs `fn` until ~0.3s of wall clock (at least 3 times) and returns
/// {seconds per iteration, iterations}.
template <typename Fn>
std::pair<double, std::uint64_t> TimeLoop(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  std::uint64_t iters = 0;
  auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 0.3 || iters < 3);
  return {elapsed / static_cast<double>(iters), iters};
}

const char* WidthName(ocdd::rel::CodeWidth w) {
  switch (w) {
    case ocdd::rel::CodeWidth::k8:
      return "u8";
    case ocdd::rel::CodeWidth::k16:
      return "u16";
    case ocdd::rel::CodeWidth::k32:
      break;
  }
  return "u32";
}

}  // namespace

int main() {
  const std::size_t full_rows = RowsFromEnv("OCDD_BENCH_ROWS", 100000);
  const std::size_t micro_rows =
      RowsFromEnv("OCDD_BENCH_MICRO_ROWS", std::size_t{1} << 20);
  const std::vector<ocdd::simd::Backend> backends = AvailableBackends();
  ocdd::bench::BenchReport report("kernels");

  std::printf("check-kernel micro-bench (backends:");
  for (auto b : backends) std::printf(" %s", ocdd::simd::BackendName(b));
  std::printf(")\n\n");

  // --- Section 1: full LATTICE run per backend, plus the committed
  // pre-refactor measurement for the before/after diff.
  {
    ocdd::bench::BenchEntry baseline;
    baseline.dataset = "LATTICE";
    baseline.label = "pre-refactor-baseline";
    baseline.rows = 100000;
    baseline.cols = 8;
    baseline.threads = 1;
    baseline.use_sorted_partitions = true;
    baseline.seconds = 10.57;  // measured at the parent commit, same box
    baseline.checks = 50030;
    baseline.ocds = 9400;
    baseline.ods = 0;
    baseline.profile_json.clear();
    ocdd::prof::Reset();  // keep the synthetic entry's profile empty
    report.Add(std::move(baseline));
  }

  {
    auto relation =
        CodedRelation::Encode(ocdd::datagen::MakeLattice(full_rows));
    for (auto backend : backends) {
      ocdd::simd::ForceBackendForTest(backend);
      ocdd::core::OcdDiscoverOptions opts;
      opts.num_threads = 1;
      opts.use_sorted_partitions = true;
      opts.max_partition_cache_bytes = std::size_t{2} << 30;
      opts.time_limit_seconds =
          std::max(ocdd::bench::RunBudgetSeconds(), 120.0);
      auto result = ocdd::core::DiscoverOcds(relation, opts);
      std::printf("full LATTICE %zu rows, %-6s: %8.3fs  (%llu checks, "
                  "%zu ocds, %zu ods)%s\n",
                  full_rows, ocdd::simd::BackendName(backend),
                  result.elapsed_seconds,
                  static_cast<unsigned long long>(result.num_checks),
                  result.ocds.size(), result.ods.size(),
                  result.completed ? "" : "  [TLE]");
      ocdd::bench::BenchEntry e;
      e.dataset = "LATTICE";
      e.label = std::string("full-lattice-") +
                ocdd::simd::BackendName(backend);
      e.rows = relation.num_rows();
      e.cols = relation.num_columns();
      e.threads = 1;
      e.use_sorted_partitions = true;
      e.seconds = result.elapsed_seconds;
      e.checks = result.num_checks;
      e.ocds = result.ocds.size();
      e.ods = result.ods.size();
      e.completed = result.completed;
      report.Add(std::move(e));
    }
    ocdd::simd::Refresh();
  }

  // --- Section 2a: extremes fill + scan per storage width and backend.
  const std::int32_t kDomains[] = {200, 1000, 100000};  // u8 / u16 / u32
  std::printf("\nextremes kernel (ListPartition::CheckOd, %zu rows):\n",
              micro_rows);
  for (std::int32_t domain : kDomains) {
    auto relation = MakeSynthetic(micro_rows, domain, 2, domain);
    ListPartition lhs = ListPartition::ForColumn(relation, 0);
    ListPartition rhs = ListPartition::ForColumn(relation, 1);
    const char* width = WidthName(lhs.width());
    for (auto backend : backends) {
      ocdd::simd::ForceBackendForTest(backend);
      ocdd::prof::Reset();
      volatile bool sink = false;
      auto [secs, iters] = TimeLoop([&] {
        auto outcome = ListPartition::CheckOd(lhs, rhs);
        sink = sink || outcome.has_swap;
      });
      std::printf("  %-4s %-6s: %9.3f ms/check  (%llu iters)\n", width,
                  ocdd::simd::BackendName(backend), secs * 1e3,
                  static_cast<unsigned long long>(iters));
      ocdd::bench::BenchEntry e;
      e.dataset = "synthetic";
      e.label = std::string("extremes-") + width + "-" +
                ocdd::simd::BackendName(backend);
      e.rows = micro_rows;
      e.cols = 2;
      e.threads = 1;
      e.use_sorted_partitions = true;
      e.seconds = secs;
      e.checks = iters;
      report.Add(std::move(e));
    }
  }
  ocdd::simd::Refresh();

  // --- Section 2b: sort-walk first-diff per backend — the single-attr
  // fast path and the multi-attribute gather path of the sort-based
  // checker. The sort dominates each call; the backend delta isolates the
  // walk.
  std::printf("\nfirst-diff walk (OrderChecker, %zu rows):\n", micro_rows);
  {
    auto relation = MakeSynthetic(micro_rows, 1000, 4, 7);
    OrderChecker checker(relation);
    struct Case {
      const char* name;
      ocdd::od::AttributeList x, y;
    };
    const Case cases[] = {
        {"firstdiff-single", {0}, {1}},
        {"firstdiff-multi", {0, 1}, {2, 3}},
    };
    for (const Case& c : cases) {
      for (auto backend : backends) {
        ocdd::simd::ForceBackendForTest(backend);
        ocdd::prof::Reset();
        volatile bool sink = false;
        auto [secs, iters] = TimeLoop([&] {
          bool swap =
              checker.CheckOd(c.x, c.y, /*early_exit=*/false).has_swap;
          sink = sink || swap;
        });
        std::printf("  %-17s %-6s: %9.3f ms/check  (%llu iters)\n", c.name,
                    ocdd::simd::BackendName(backend), secs * 1e3,
                    static_cast<unsigned long long>(iters));
        ocdd::bench::BenchEntry e;
        e.dataset = "synthetic";
        e.label = std::string(c.name) + "-" +
                  ocdd::simd::BackendName(backend);
        e.rows = micro_rows;
        e.cols = relation.num_columns();
        e.threads = 1;
        e.seconds = secs;
        e.checks = iters;
        report.Add(std::move(e));
      }
    }
  }
  ocdd::simd::Refresh();

  // --- Section 3: refine paths per width (scalar on every backend).
  std::printf("\nrefine paths (ListPartition::Refine, %zu rows):\n",
              micro_rows);
  for (std::int32_t domain : kDomains) {
    auto relation = MakeSynthetic(micro_rows, domain, 2, domain + 1);
    ListPartition parent = ListPartition::ForColumn(relation, 0);
    const char* width = WidthName(parent.width());
    const struct {
      const char* name;
      RefinePath path;
    } paths[] = {
        {"histogram", RefinePath::kHistogram},
        {"counting", RefinePath::kCounting},
    };
    for (const auto& p : paths) {
      // The histogram path's bucket table is g·d entries; skip it where
      // the auto heuristic would never pick it (u32 × u32 would be ~40GB).
      if (p.path == RefinePath::kHistogram &&
          static_cast<std::int64_t>(parent.num_groups()) * domain >
              static_cast<std::int64_t>(8 * micro_rows)) {
        std::printf("  refine-%-10s %-4s: skipped (g*d too large)\n", p.name,
                    width);
        continue;
      }
      RefineScratch scratch;
      ocdd::prof::Reset();
      volatile std::int32_t sink = 0;
      auto [secs, iters] = TimeLoop([&] {
        ListPartition refined = parent.Refine(relation, 1, &scratch, p.path);
        sink = sink + refined.num_groups();
      });
      std::printf("  refine-%-10s %-4s: %9.3f ms/refine  (%llu iters)\n",
                  p.name, width, secs * 1e3,
                  static_cast<unsigned long long>(iters));
      ocdd::bench::BenchEntry e;
      e.dataset = "synthetic";
      e.label = std::string("refine-") + p.name + "-" + width;
      e.rows = micro_rows;
      e.cols = 2;
      e.threads = 1;
      e.use_sorted_partitions = true;
      e.seconds = secs;
      e.checks = iters;
      report.Add(std::move(e));
    }
  }

  return 0;
}
