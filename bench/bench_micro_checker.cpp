// Microbenchmarks (google-benchmark) for the primitives whose costs the
// paper's complexity analysis is built on: dictionary encoding, the
// Theorem-4.1 single OCD check, the full OD check, stripped-partition
// products, and column reduction.

#include <benchmark/benchmark.h>

#include <map>

#include "algo/partition/stripped_partition.h"
#include "core/checker.h"
#include "core/column_reduction.h"
#include "datagen/generators.h"
#include "datagen/lineitem.h"
#include "od/attribute_list.h"
#include "relation/coded_relation.h"

namespace {

using ocdd::core::OrderChecker;
using ocdd::od::AttributeList;
using ocdd::rel::CodedRelation;

const CodedRelation& Lineitem(std::size_t rows) {
  static auto* cache =
      new std::map<std::size_t, CodedRelation>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    it = cache->emplace(rows, CodedRelation::Encode(
                                  ocdd::datagen::MakeLineitem(rows, 99)))
             .first;
  }
  return it->second;
}

void BM_Encode(benchmark::State& state) {
  ocdd::rel::Relation raw =
      ocdd::datagen::MakeLineitem(static_cast<std::size_t>(state.range(0)),
                                  99);
  for (auto _ : state) {
    CodedRelation coded = CodedRelation::Encode(raw);
    benchmark::DoNotOptimize(coded.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Encode)->Arg(1000)->Arg(10000);

const CodedRelation& Dbtesma(std::size_t rows) {
  static auto* cache = new std::map<std::size_t, CodedRelation>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    it = cache->emplace(rows, CodedRelation::Encode(
                                  ocdd::datagen::MakeDbtesma(rows, 99)))
             .first;
  }
  return it->second;
}

void BM_OcdSingleCheck(benchmark::State& state) {
  // key ~ batch on DBTESMA: a *valid* OCD, so no early exit shortens the
  // scan — the honest per-check cost.
  const CodedRelation& r = Dbtesma(static_cast<std::size_t>(state.range(0)));
  OrderChecker checker(r);
  for (auto _ : state) {
    bool ok = checker.HoldsOcd(AttributeList{0}, AttributeList{1});
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OcdSingleCheck)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_OcdDoubleCheck(benchmark::State& state) {
  // Ablation of Theorem 4.1: validate the same (valid) OCD the naive way,
  // via both directions of the defining order equivalence — two sorted
  // scans instead of one.
  const CodedRelation& r = Dbtesma(static_cast<std::size_t>(state.range(0)));
  OrderChecker checker(r);
  AttributeList x{0}, y{1};
  AttributeList xy = x.Concat(y);
  AttributeList yx = y.Concat(x);
  for (auto _ : state) {
    bool ok = checker.HoldsOd(xy, yx) && checker.HoldsOd(yx, xy);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OcdDoubleCheck)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_OdFullCheck(benchmark::State& state) {
  const CodedRelation& r = Lineitem(static_cast<std::size_t>(state.range(0)));
  OrderChecker checker(r);
  for (auto _ : state) {
    auto out = checker.CheckOd(AttributeList{0, 3}, AttributeList{10},
                               /*early_exit=*/false);
    benchmark::DoNotOptimize(out.has_swap);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OdFullCheck)->Arg(1000)->Arg(10000);

void BM_ColumnReduction(benchmark::State& state) {
  const CodedRelation& r = Lineitem(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto red = ocdd::core::ReduceColumns(r);
    benchmark::DoNotOptimize(red.reduced_universe.size());
  }
}
BENCHMARK(BM_ColumnReduction)->Arg(1000)->Arg(10000);

void BM_PartitionProduct(benchmark::State& state) {
  const CodedRelation& r = Lineitem(static_cast<std::size_t>(state.range(0)));
  auto pa = ocdd::algo::StrippedPartition::ForColumn(r, 8);   // returnflag
  auto pb = ocdd::algo::StrippedPartition::ForColumn(r, 14);  // shipmode
  for (auto _ : state) {
    auto prod = ocdd::algo::StrippedPartition::Product(pa, pb, r.num_rows());
    benchmark::DoNotOptimize(prod.error());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionProduct)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
