// Reproduces Figure 3: column scalability of OCDDISCOVER on HEPATITIS.
// Starting from 2 random columns, random columns are added one at a time;
// execution time is averaged over many independent column samples
// (the paper uses 50; default here is scaled down).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/ocd_discover.h"
#include "datagen/registry.h"

namespace {

void ColumnSweep(const char* name, const ocdd::rel::CodedRelation& full,
                 int samples) {
  std::printf("%s (%zu rows, %zu cols), avg of %d random column samples\n",
              name, full.num_rows(), full.num_columns(), samples);
  std::printf("%6s %12s %10s %8s\n", "cols", "time_s", "checks", "ocds");
  for (std::size_t c = 2; c <= full.num_columns(); ++c) {
    double total = 0.0;
    std::uint64_t checks = 0;
    std::size_t ocds = 0;
    int tle = 0;
    for (int s = 0; s < samples; ++s) {
      ocdd::Rng rng(1000 * c + static_cast<std::size_t>(s));
      std::vector<std::size_t> cols =
          rng.SampleWithoutReplacement(full.num_columns(), c);
      ocdd::rel::CodedRelation sample = full.ProjectColumns(cols);
      ocdd::core::OcdDiscoverOptions opts;
      opts.time_limit_seconds = ocdd::bench::RunBudgetSeconds();
      auto result = ocdd::core::DiscoverOcds(sample, opts);
      total += result.elapsed_seconds;
      checks += result.num_checks;
      ocds += result.ocds.size();
      if (!result.completed) ++tle;
    }
    std::printf("%6zu %12.4f %10llu %8zu%s\n", c, total / samples,
                static_cast<unsigned long long>(checks / samples),
                ocds / static_cast<std::size_t>(samples),
                tle > 0 ? "  (some TLE)" : "");
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  std::printf("Figure 3 reproduction: column scalability on HEPATITIS\n\n");
  int samples = ocdd::datagen::FullScaleRequested() ? 50 : 8;
  ocdd::rel::CodedRelation hepatitis = ocdd::bench::LoadCoded("HEPATITIS");
  ColumnSweep("HEPATITIS", hepatitis, samples);
  return 0;
}
